// Case 1 (Section III): the attacker can measure power but NOT read the
// network's outputs. The column-1-norm leak still identifies the most
// attack-worthy pixel; this example runs the paper's five single-pixel
// methods at one attack strength and prints the resulting accuracies.
#include <cstdio>
#include <iostream>

#include "xbarsec/attack/single_pixel.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/sidechannel/probe.hpp"

int main() {
    using namespace xbarsec;
    try {
        data::LoadOptions load;
        load.train_count = 3000;
        load.test_count = 600;
        const data::DataSplit split = data::load_mnist_like(load);

        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = 12;
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);

        // The deployment hides outputs in this scenario; only power leaks.
        // (We query labels here only to *evaluate* the attack afterwards.)
        const tensor::Vector l1 =
            sidechannel::probe_columns(oracle.power_measure_fn(), oracle.inputs())
                .conductance_sums;

        const nn::SingleLayerNet deployed = oracle.hardware_for_evaluation().effective_network();
        const double strength = 6.0;
        Table table({"Method", "Test accuracy under attack"});
        for (const attack::SinglePixelMethod method : attack::all_single_pixel_methods()) {
            Rng rng(7);
            const double acc = attack::evaluate_single_pixel_attack(
                deployed, split.test, method, strength, &l1, rng);
            table.begin_row();
            table.add(to_string(method));
            table.add(acc, 4);
        }
        std::cout << "clean accuracy: " << victim.test_accuracy << "\n"
                  << "attack strength: " << strength << "\n\n"
                  << table
                  << "\n'+'/'RD'/'-' use only the power side channel; 'Worst' is the "
                     "white-box bound; 'RP' is the no-information baseline.\n";
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "single_pixel_attack: %s\n", e.what());
        return 1;
    }
}
