// Quickstart: the library in ~60 lines.
//
//   1. train a single-layer network on the MNIST-like dataset;
//   2. deploy it on a simulated NVM crossbar;
//   3. measure the power side channel and recover the column 1-norms
//      (the paper's Eq. 5-6 leak);
//   4. confirm the leak matches the secret weights.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/stats/correlation.hpp"
#include "xbarsec/tensor/ops.hpp"

int main() {
    using namespace xbarsec;
    try {
        // 1. Data + victim training. (Drop real MNIST files into
        //    --data-dir in the benches; examples just use the synthetic set.)
        data::LoadOptions load;
        load.train_count = 2000;
        load.test_count = 500;
        const data::DataSplit split = data::load_mnist_like(load);

        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = 10;
        const core::TrainedVictim victim = core::train_victim(split, config);
        std::cout << "victim test accuracy: " << victim.test_accuracy << "\n";

        // 2. Deploy on the crossbar. The oracle is all an attacker sees.
        core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);

        // 3. Power side channel: one basis-vector probe per input line
        //    reveals every column's 1-norm (Eq. 5-6).
        const sidechannel::ProbeResult probe =
            sidechannel::probe_columns(oracle.power_measure_fn(), oracle.inputs());
        std::cout << "probe used " << probe.queries << " power measurements\n";

        // 4. The leak is real: compare with the (secret) weights.
        const tensor::Vector truth = tensor::column_abs_sums(victim.net.weights());
        std::cout << "pearson(probed, true column 1-norms) = "
                  << stats::pearson(probe.conductance_sums, truth) << "  (1.0 = exact)\n";
        std::cout << "most power-hungry input pixel: #" << tensor::argmax(probe.conductance_sums)
                  << " (true: #" << tensor::argmax(truth) << ")\n";
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "quickstart: %s\n", e.what());
        return 1;
    }
}
