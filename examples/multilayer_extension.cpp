// Future-work extension (paper's conclusion): multi-layer networks. Each
// layer gets its own crossbar; probing the FIRST layer's supply current
// still leaks that layer's column 1-norms, but its link to the end-to-end
// input sensitivity weakens — quantified here by comparing the
// single-layer and two-layer correlations.
#include <cstdio>
#include <iostream>

#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/nn/mlp_trainer.hpp"
#include "xbarsec/nn/sensitivity.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/stats/correlation.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/multilayer.hpp"

int main() {
    using namespace xbarsec;
    try {
        data::LoadOptions load;
        load.train_count = 2000;
        load.test_count = 400;
        const data::DataSplit split = data::load_mnist_like(load);

        // --- Reference: the paper's single-layer case. ---------------------
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = 10;
        const core::TrainedVictim single = core::train_victim(split, config);
        const tensor::Vector single_l1 = tensor::column_abs_sums(single.net.weights());
        const double single_corr = nn::correlation_of_mean(single.net, split.test, single_l1);

        // --- Extension: a 784-64-10 MLP deployed on two crossbars. ---------
        Rng rng(11);
        nn::MlpConfig mc;
        mc.layer_sizes = {784, 64, 10};
        mc.hidden_activation = nn::Activation::Relu;
        mc.output_activation = nn::Activation::Softmax;
        mc.loss = nn::Loss::CategoricalCrossentropy;
        mc.with_bias = false;  // crossbars have no bias
        nn::Mlp mlp(rng, mc);
        nn::TrainConfig tc;
        tc.epochs = 6;
        tc.batch_size = 32;
        tc.learning_rate = 0.05;
        tc.momentum = 0.9;
        nn::train_mlp(mlp, split.train, tc);

        xbar::DeviceSpec spec;
        const xbar::MultiLayerCrossbarNetwork hw(mlp, spec);

        // The externally measurable side channel: layer 0's supply current.
        const tensor::Vector probed =
            sidechannel::probe_columns(hw.layer(0)).conductance_sums;

        // End-to-end input sensitivity of the MLP (mean |dL/du| by backprop).
        tensor::Vector mlp_sens(784, 0.0);
        for (std::size_t i = 0; i < split.test.size(); ++i) {
            mlp_sens +=
                tensor::abs(mlp.input_gradient(split.test.input(i), split.test.target(i)));
        }
        mlp_sens /= static_cast<double>(split.test.size());
        const double mlp_corr = stats::pearson(mlp_sens, probed);

        std::cout << "single-layer victim:  test acc " << single.test_accuracy
                  << ", corr(mean |dL/du|, layer-1 L1) = " << single_corr << "\n"
                  << "two-layer victim:     analog test acc " << hw.accuracy(split.test)
                  << ", corr(mean |dL/du|, layer-1 L1) = " << mlp_corr << "\n\n"
                  << "The first-layer power leak persists in deeper networks, but its "
                     "correlation with input sensitivity weakens — exactly the open "
                     "question the paper flags for future work.\n";
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "multilayer_extension: %s\n", e.what());
        return 1;
    }
}
