// Case 2 (Section IV): the attacker queries the deployed model and also
// records its power draw, then fits a surrogate with the paper's
// L = L_out + λ·L_power loss (Eq. 9). The example contrasts λ = 0 against
// λ > 0 at a moderate query budget and transfers FGSM adversarial
// examples from each surrogate to the oracle.
#include <cstdio>
#include <iostream>

#include "xbarsec/attack/fgsm.hpp"
#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/nn/metrics.hpp"

int main() {
    using namespace xbarsec;
    try {
        data::LoadOptions load;
        load.train_count = 3000;
        load.test_count = 600;
        const data::DataSplit split = data::load_mnist_like(load);

        // Linear-output oracle, as in the paper's Section IV.
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::linear_mse());
        config.train.epochs = 12;
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);
        const nn::SingleLayerNet deployed = oracle.hardware_for_evaluation().effective_network();

        // The attacker's query session: Q inputs, raw outputs + power.
        core::QueryPlan plan;
        plan.count = 80;  // far fewer than the 784 inputs — power should help
        plan.raw_outputs = true;
        const attack::QueryDataset queries = core::collect_queries(oracle, split.train, plan);
        std::cout << "attacker spent " << oracle.counters().inference << " inference + "
                  << oracle.counters().power << " power queries\n\n";

        const data::Dataset eval = split.test.take(300);
        Table table({"lambda", "surrogate test acc", "oracle acc under FGSM(0.1)"});
        for (const double lambda : {0.0, 0.004, 0.01}) {
            attack::SurrogateConfig sc;
            sc.power_loss_weight = lambda;
            sc.train.epochs = 250;
            sc.train.batch_size = 32;
            sc.train.learning_rate = 0.05;
            sc.train.momentum = 0.9;
            sc.train.final_lr_fraction = 0.1;
            const attack::SurrogateTrainResult fit = attack::train_surrogate(queries, sc);

            const tensor::Matrix adv = attack::fgsm_attack_batch(
                fit.surrogate, eval.inputs(), eval.labels(), eval.num_classes(), 0.1);
            table.begin_row();
            table.add(Table::format_number(lambda, 4));
            table.add(nn::accuracy(fit.surrogate, split.test), 4);
            table.add(nn::accuracy(deployed, adv, eval.labels()), 4);
        }
        std::cout << "oracle clean accuracy: " << victim.test_accuracy << "\n\n"
                  << table
                  << "\nLower attacked accuracy = stronger attack. With Q << N the power "
                     "term (lambda > 0) should improve the transfer attack (Fig. 5).\n";
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "surrogate_extraction: %s\n", e.what());
        return 1;
    }
}
