// Defensive scenario (library extension): the deployment stacks power
// obfuscation decorators — supply-rail dithering, dummy loads, sensing
// noise, a hard query budget — over the crossbar oracle, and we measure
// how much side-channel quality the attacker loses through each stack.
//
// The attacker only ever sees `core::Oracle&`; swapping the defense is a
// different decorator composition, not different attack code.
#include <cstdio>
#include <iostream>

#include "xbarsec/common/table.hpp"
#include "xbarsec/core/decorators.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/tensor/ops.hpp"

int main() {
    using namespace xbarsec;
    try {
        data::LoadOptions load;
        load.train_count = 2000;
        load.test_count = 400;
        const data::DataSplit split = data::load_mnist_like(load);

        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = 10;
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle backend = core::deploy_victim(victim.net, config);
        const tensor::Vector truth = tensor::column_abs_sums(victim.net.weights());
        const double scale = tensor::max(truth);

        // Each row probes the deployment through a different decorator
        // stack built over the same backend.
        struct Row {
            const char* name;
            core::DecoratorStack stack;
            std::size_t repeats;
        };
        std::vector<Row> rows;
        rows.push_back({"undefended", core::DecoratorStack(backend), 1});
        {
            core::ObfuscationConfig dither;
            dither.kind = core::ObfuscationConfig::Kind::Dither;
            dither.magnitude = 0.5 * scale;
            dither.seed = 1;
            core::DecoratorStack stack(backend);
            stack.push<core::ObfuscatedOracle>(dither);
            rows.push_back({"dither (1 probe)", std::move(stack), 1});
        }
        {
            core::ObfuscationConfig dither;
            dither.kind = core::ObfuscationConfig::Kind::Dither;
            dither.magnitude = 0.5 * scale;
            dither.seed = 2;
            core::DecoratorStack stack(backend);
            stack.push<core::ObfuscatedOracle>(dither);
            rows.push_back({"dither (32 probes avg)", std::move(stack), 32});
        }
        {
            core::ObfuscationConfig dummies;
            dummies.kind = core::ObfuscationConfig::Kind::UniformDummy;
            dummies.magnitude = scale;
            core::DecoratorStack stack(backend);
            stack.push<core::ObfuscatedOracle>(dummies);
            rows.push_back({"uniform dummies", std::move(stack), 1});
        }
        {
            core::ObfuscationConfig dummies;
            dummies.kind = core::ObfuscationConfig::Kind::RandomDummy;
            dummies.magnitude = scale;
            dummies.seed = 3;
            core::DecoratorStack stack(backend);
            stack.push<core::ObfuscatedOracle>(dummies);
            rows.push_back({"random dummies", std::move(stack), 1});
        }
        {
            // A full production stack: randomised dummies + sensing noise
            // + a hard measurement budget (enough for exactly 32 probe
            // repeats of every line).
            core::ObfuscationConfig dummies;
            dummies.kind = core::ObfuscationConfig::Kind::RandomDummy;
            dummies.magnitude = scale;
            dummies.seed = 3;
            core::QueryBudget budget;
            budget.max_power = 32 * backend.inputs();
            core::DecoratorStack stack(backend);
            stack.push<core::ObfuscatedOracle>(dummies);
            stack.push<core::NoisyPowerOracle>(0.1 * scale, 4);
            stack.push<core::QueryBudgetOracle>(budget);
            rows.push_back({"random dummies + noise + budget (32 avg)", std::move(stack), 32});
        }

        Table table({"Deployment", "L1 rel. error", "Top-16 ranking agreement", "Power queries"});
        for (Row& row : rows) {
            backend.reset_counters();
            sidechannel::ProbeOptions po;
            po.repeats = row.repeats;
            const tensor::Vector est =
                core::probe_columns(row.stack.top(), po).conductance_sums;
            table.begin_row();
            table.add(row.name);
            table.add(sidechannel::relative_error(est, truth), 4);
            table.add(sidechannel::topk_agreement(est, truth, 16), 3);
            table.add(static_cast<long long>(backend.counters().power));
        }
        std::cout << table
                  << "\nTakeaways: dithering is defeated by averaging; uniform dummies shift "
                     "magnitudes but cannot hide the *ranking*; randomised per-line dummies "
                     "survive averaging and actually blunt the attack — and a query budget "
                     "caps how hard the attacker can average. Counters are accumulated once, "
                     "at the backend, however deep the decorator stack.\n";
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "defended_deployment: %s\n", e.what());
        return 1;
    }
}
