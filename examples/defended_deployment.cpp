// Defensive scenario (library extension): the deployment adds power
// obfuscation — supply-rail dithering or randomised dummy loads — and we
// measure how much side-channel quality the attacker loses.
#include <cstdio>
#include <iostream>

#include "xbarsec/common/table.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/sidechannel/obfuscation.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/ops.hpp"

int main() {
    using namespace xbarsec;
    try {
        data::LoadOptions load;
        load.train_count = 2000;
        load.test_count = 400;
        const data::DataSplit split = data::load_mnist_like(load);

        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = 10;
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);
        const tensor::Vector truth = tensor::column_abs_sums(victim.net.weights());
        const double scale = tensor::max(truth);

        struct Row {
            const char* name;
            sidechannel::TotalCurrentFn measure;
            std::size_t repeats;
        };
        std::vector<Row> rows;
        rows.push_back({"undefended", oracle.power_measure_fn(), 1});
        rows.push_back({"dither (1 probe)",
                        sidechannel::make_dithered_measure(oracle.power_measure_fn(), 0.5 * scale, 1),
                        1});
        rows.push_back({"dither (32 probes avg)",
                        sidechannel::make_dithered_measure(oracle.power_measure_fn(), 0.5 * scale, 2),
                        32});
        rows.push_back({"uniform dummies",
                        sidechannel::make_uniform_dummy_measure(oracle.power_measure_fn(), scale),
                        1});
        rows.push_back({"random dummies",
                        sidechannel::make_random_dummy_measure(oracle.power_measure_fn(),
                                                               oracle.inputs(), scale, 3),
                        1});
        rows.push_back({"random dummies (32 probes avg)",
                        sidechannel::make_random_dummy_measure(oracle.power_measure_fn(),
                                                               oracle.inputs(), scale, 3),
                        32});

        Table table({"Deployment", "L1 rel. error", "Top-16 ranking agreement"});
        for (const Row& row : rows) {
            sidechannel::ProbeOptions po;
            po.repeats = row.repeats;
            const tensor::Vector est =
                sidechannel::probe_columns(row.measure, oracle.inputs(), po).conductance_sums;
            table.begin_row();
            table.add(row.name);
            table.add(sidechannel::relative_error(est, truth), 4);
            table.add(sidechannel::topk_agreement(est, truth, 16), 3);
        }
        std::cout << table
                  << "\nTakeaways: dithering is defeated by averaging; uniform dummies shift "
                     "magnitudes but cannot hide the *ranking*; randomised per-line dummies "
                     "survive averaging and actually blunt the attack.\n";
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "defended_deployment: %s\n", e.what());
        return 1;
    }
}
