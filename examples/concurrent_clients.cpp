// Multi-tenant serving walkthrough: one crossbar deployment, many
// concurrent clients, per-session policy.
//
// An OracleService fronts the deployment; every client opens a Session
// with its own query budget, detection window, and sensing-noise
// stream. Benign clients stream clean classification traffic while an
// attacker hides among them running the paper's probe-then-attack
// pipeline — and the per-session state shows exactly whose window
// flagged and whose budget drained, without the tenants perturbing
// each other.
//
// A second act re-deploys the same victim as a replica fleet: three
// physically distinct crossbars (same weights, per-replica
// device-variation seeds) behind one service with round-robin routing,
// showing the per-replica counters and that every replica still
// answers from the same logical model.
#include <cstdio>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "xbarsec/common/table.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/service.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/tensor/ops.hpp"

int main() {
    using namespace xbarsec;
    try {
        // Train and deploy the victim (the shared backend).
        data::LoadOptions load;
        load.train_count = 2000;
        load.test_count = 400;
        const data::DataSplit split = data::load_mnist_like(load);
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = 10;
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle backend = core::deploy_victim(victim.net, config);

        // One enrolled detector, shared read-only by every session's
        // private screening window.
        const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                             split.train.take(256));

        // The serving layer over the deployment.
        core::OracleService service(backend);

        // Tenant policy: a power budget that allows about one basis
        // sweep, log-only detection, and a per-tenant noise stream.
        core::SessionConfig tenant;
        tenant.budget.max_power = backend.inputs() + backend.inputs() / 2;
        tenant.detector = &detector;
        tenant.block_flagged = false;

        constexpr std::size_t kBenign = 3;
        constexpr std::size_t kQueries = 400;
        std::vector<core::Session> benign;
        for (std::size_t c = 0; c < kBenign; ++c) benign.push_back(service.open_session(tenant));
        core::Session attacker = service.open_session(tenant);

        // Benign tenants stream pipelined async label queries; the
        // coalescer packs everyone's vectors into shared GEMM batches.
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < kBenign; ++c) {
            clients.emplace_back([&, c] {
                Rng rng(100 + c);
                std::vector<std::future<int>> window;
                for (std::size_t q = 0; q < kQueries; ++q) {
                    const auto pick = static_cast<std::size_t>(rng.below(split.test.size()));
                    window.push_back(benign[c].submit_label(split.test.inputs().row(pick)));
                    if (window.size() == 32) {
                        for (auto& f : window) (void)f.get();
                        window.clear();
                    }
                }
                for (auto& f : window) (void)f.get();
            });
        }

        // The attacker, concurrently: probe the power side channel for
        // the highest-leakage input line (fits the budget once), then
        // drive it with single-pixel inference queries.
        std::size_t flagged_attacks = 0;
        {
            const auto probe = core::probe_columns(attacker);  // session entry point
            const std::size_t target = tensor::argmax(probe.conductance_sums);
            Rng rng(9);
            for (std::size_t q = 0; q < 64; ++q) {
                const auto pick = static_cast<std::size_t>(rng.below(split.test.size()));
                tensor::Vector u = split.test.inputs().row(pick);
                u[target] = 50.0;  // far beyond any clean pixel
                (void)attacker.submit_label(std::move(u)).get();
            }
            flagged_attacks = attacker.flagged();
            // A second probe sweep would cross the power budget.
            try {
                (void)core::probe_columns(attacker);
            } catch (const core::QueryBudgetExceeded&) {
                std::puts("attacker's second probe: budget exhausted (as designed)");
            }
        }
        for (auto& t : clients) t.join();

        Table table({"Tenant", "Inference", "Power", "Screened", "Flagged", "Flagged frac."});
        for (std::size_t c = 0; c < kBenign; ++c) {
            table.begin_row();
            table.add("benign#" + std::to_string(c));
            table.add(static_cast<long long>(benign[c].counters().inference));
            table.add(static_cast<long long>(benign[c].counters().power));
            table.add(static_cast<long long>(benign[c].screened()));
            table.add(static_cast<long long>(benign[c].flagged()));
            table.add(benign[c].flagged_fraction(), 3);
        }
        table.begin_row();
        table.add("attacker");
        table.add(static_cast<long long>(attacker.counters().inference));
        table.add(static_cast<long long>(attacker.counters().power));
        table.add(static_cast<long long>(attacker.screened()));
        table.add(static_cast<long long>(flagged_attacks));
        table.add(attacker.flagged_fraction(), 3);

        std::cout << table << "\nService totals: "
                  << service.counters().inference << " inference + "
                  << service.counters().power << " power queries over "
                  << service.sessions_opened() << " sessions; "
                  << service.flushed_rows() << " rows in "
                  << service.flushed_batches() << " coalesced backend batches (mean "
                  << Table::format_number(
                         service.flushed_batches() > 0
                             ? static_cast<double>(service.flushed_rows()) /
                                   static_cast<double>(service.flushed_batches())
                             : 0.0,
                         1)
                  << " rows/batch).\n"
                  << "\nTakeaways: the attacker's own window flags its single-pixel "
                     "queries while the benign tenants' windows stay near the "
                     "detector's false-positive rate, and its probe budget drains "
                     "without costing any benign tenant a query — per-session policy "
                     "over one shared backend, with everyone's traffic riding the "
                     "same coalesced GEMM batches.\n";

        // -- Act two: the same victim as a replica fleet ---------------------
        //
        // deploy_victim_fleet programs identical weights onto three
        // crossbars with distinct device-variation seeds (replica 0
        // keeps the base seed — on an ideal device it IS the deployment
        // above; here the fleet gets realistic read noise + stuck cells
        // so the per-replica signatures actually differ). Round-robin
        // routing spreads the scalar stream over the fleet; each replica
        // coalesces its own share on its own flusher.
        core::VictimConfig fleet_victim = config;
        fleet_victim.nonideal.read_noise_std = 0.05;
        fleet_victim.nonideal.stuck_off_fraction = 0.01;
        std::vector<core::CrossbarOracle> fleet =
            core::deploy_victim_fleet(victim.net, fleet_victim, 3);
        std::vector<core::Oracle*> replicas;
        for (core::CrossbarOracle& r : fleet) replicas.push_back(&r);
        core::ServiceConfig fleet_config;
        fleet_config.routing = core::RoutingPolicy::RoundRobin;
        core::OracleService fleet_service(replicas, fleet_config);

        core::Session client = fleet_service.open_session();
        std::size_t agree = 0;
        constexpr std::size_t kFleetQueries = 300;
        {
            std::vector<std::future<int>> window;
            std::vector<int> reference;
            Rng rng(11);
            for (std::size_t q = 0; q < kFleetQueries; ++q) {
                const auto pick = static_cast<std::size_t>(rng.below(split.test.size()));
                reference.push_back(backend.query_label(split.test.inputs().row(pick)));
                window.push_back(client.submit_label(split.test.inputs().row(pick)));
            }
            for (std::size_t q = 0; q < kFleetQueries; ++q) {
                if (window[q].get() == reference[q]) ++agree;
            }
        }

        Table fleet_table({"Replica", "Inference", "Flushed rows", "Flushed batches"});
        for (std::size_t k = 0; k < fleet_service.replica_count(); ++k) {
            fleet_table.begin_row();
            fleet_table.add("xbar#" + std::to_string(k));
            fleet_table.add(static_cast<long long>(fleet_service.replica_counters(k).inference));
            fleet_table.add(static_cast<long long>(fleet_service.flushed_rows(k)));
            fleet_table.add(static_cast<long long>(fleet_service.flushed_batches(k)));
        }
        std::cout << "\n## Replica fleet (3 noisy crossbars, round-robin routing)\n\n"
                  << fleet_table << "\nFleet label agreement with the ideal deployment: "
                  << agree << "/" << kFleetQueries
                  << " — same logical model, three distinct device signatures; "
                     "the disagreements are the per-replica read-noise/stuck-cell "
                     "variation an extraction attacker has to average over "
                     "(see service/mnist/replica-fidelity).\n";
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "concurrent_clients: %s\n", e.what());
        return 1;
    }
}
