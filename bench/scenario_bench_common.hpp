// Shared driver for the scenario-registry benches: every figure/table
// bench is the same loop — select registry entries by prefix, apply CLI
// overrides, run through core::ScenarioRunner, print and persist the
// outcome. New workloads are registry entries, not new translation units.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "record.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/scenario.hpp"

namespace xbarsec::benchscenario {

inline void register_standard_flags(Cli& cli) {
    cli.flag("out", "", "JSON results path (default BENCH_<bench>.json)");
    cli.flag("train", "", "override training samples");
    cli.flag("test", "", "override test samples");
    cli.flag("epochs", "", "override victim training epochs");
    cli.flag("runs", "", "override independent runs (fig5/table1)");
    cli.flag("eval", "", "override evaluation subsample (fig4/fig5; 0 = all)");
    cli.flag("queries", "", "override the fig5 query-count sweep (comma list)");
    cli.flag("lambdas", "", "override the fig5 power-loss weight sweep (comma list)");
    cli.flag("eps", "", "override the fig5 FGSM strength");
    cli.flag("seed", "", "override the base seed");
    cli.flag("data-dir", "", "directory with real MNIST/CIFAR files (optional)");
    cli.flag("threads", "0", "worker threads (0 = hardware)");
    cli.flag("ascii", "true", "print ASCII heat maps (fig3 scenarios)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
}

inline void apply_overrides(core::ScenarioSpec& spec, const Cli& cli) {
    if (cli.provided("train")) spec.load.train_count = static_cast<std::size_t>(cli.integer("train"));
    if (cli.provided("test")) spec.load.test_count = static_cast<std::size_t>(cli.integer("test"));
    if (cli.provided("epochs")) {
        spec.victim.train.epochs = static_cast<std::size_t>(cli.integer("epochs"));
    }
    if (cli.provided("runs")) {
        spec.fig5.runs = static_cast<std::size_t>(cli.integer("runs"));
        spec.table1.runs = static_cast<std::size_t>(cli.integer("runs"));
    }
    if (cli.provided("eval")) {
        spec.fig4.eval_limit = static_cast<std::size_t>(cli.integer("eval"));
        spec.fig5.eval_limit = static_cast<std::size_t>(cli.integer("eval"));
    }
    if (cli.provided("queries")) {
        spec.fig5.query_counts.clear();
        for (const long long q : cli.integer_list("queries")) {
            spec.fig5.query_counts.push_back(static_cast<std::size_t>(q));
        }
    }
    if (cli.provided("lambdas")) spec.fig5.lambdas = cli.real_list("lambdas");
    if (cli.provided("eps")) spec.fig5.fgsm_eps = cli.real("eps");
    if (cli.provided("seed")) {
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
        spec.load.seed = seed;
        spec.fig4.seed = seed + 33;
        spec.fig5.seed = seed;
        spec.table1.seed = seed;
    }
    if (cli.provided("data-dir")) spec.load.data_dir = cli.str("data-dir");
    if (cli.boolean("smoke")) core::apply_smoke(spec);
}

inline void print_outcome(const core::ScenarioOutcome& outcome, bool ascii) {
    std::cout << "\n## Scenario " << outcome.name << " — " << outcome.label << "\n";
    const std::string stem = core::results_dir() + "/" + core::sanitize_label(outcome.name);
    for (const auto& [name, table] : outcome.tables) {
        std::cout << "\n### " << name << "\n\n" << table;
        table.write_csv(stem + "_" + core::sanitize_label(name) + ".csv");
    }
    if (ascii) {
        for (const auto& [name, text] : outcome.notes) {
            std::cout << "\n### " << name << "\n" << text;
        }
    }
    for (const auto& grid : outcome.grids) {
        core::write_grid_csv(stem + "_" + core::sanitize_label(grid.name) + ".csv", grid.map,
                             grid.shape);
    }
    if (!outcome.metrics.empty()) {
        std::cout << "\nmetrics:";
        for (const auto& [key, value] : outcome.metrics) {
            std::cout << " " << key << "=" << Table::format_number(value, 4);
        }
        std::cout << "\n";
    }
}

/// Runs the named scenarios through one shared runner pool, printing each
/// outcome and recording every metric — plus the pool's thread count and
/// per-scenario wall time — to BENCH_<bench_name>.json via the shared
/// recorder (override the path with --out).
inline int run_scenarios(const std::string& bench_name, const std::vector<std::string>& names,
                         const Cli& cli, ThreadPool& pool, core::ScenarioRunner& runner) {
    bench::BenchRecorder rec(bench_name,
                             std::to_string(pool.thread_count()) + " worker threads, " +
                                 std::to_string(names.size()) + " scenario(s)" +
                                 (cli.boolean("smoke") ? ", smoke" : ""));
    for (const std::string& name : names) {
        core::ScenarioSpec spec = core::builtin_scenarios().get(name);
        apply_overrides(spec, cli);
        WallTimer scenario_timer;
        const core::ScenarioOutcome outcome = runner.run(spec);
        const double seconds = scenario_timer.seconds();
        print_outcome(outcome, cli.boolean("ascii"));
        rec.begin(name);
        rec.add("threads", pool.thread_count());
        rec.add("seconds", seconds);
        for (const auto& [key, value] : outcome.metrics) rec.add(key, value);
    }
    const std::string out_path =
        cli.provided("out") ? cli.str("out") : "BENCH_" + bench_name + ".json";
    if (!rec.write(out_path)) {
        std::fprintf(stderr, "%s: cannot write %s\n", bench_name.c_str(), out_path.c_str());
        return 1;
    }
    std::cout << "\nResults written to " << out_path << "\n";
    return 0;
}

/// Runs every registry scenario whose name starts with `prefix`.
inline int run_prefix(const char* summary, const std::string& prefix, int argc, char** argv,
                      const char* shape_note) {
    Cli cli(summary);
    register_standard_flags(cli);
    try {
        if (!cli.parse(argc, argv)) return 0;

        // The one pool of the whole bench: the runner threads it through
        // every deployment's oracle, collect_queries, and the fig5
        // run-level parallel_for (no per-scenario throwaway pools).
        ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
        core::ScenarioRunner runner(&pool);
        const std::vector<std::string> names = core::builtin_scenarios().names(prefix);
        if (names.empty()) {
            std::fprintf(stderr, "no scenarios registered under prefix '%s'\n", prefix.c_str());
            return 1;
        }

        std::string bench_name = prefix;
        while (!bench_name.empty() && bench_name.back() == '/') bench_name.pop_back();
        for (char& c : bench_name) {
            if (c == '/') c = '_';
        }

        WallTimer timer;
        const int rc = run_scenarios(bench_name, names, cli, pool, runner);
        if (rc != 0) return rc;
        if (shape_note != nullptr) std::cout << "\n" << shape_note << "\n";
        std::cout << "\nCSV outputs written to " << core::results_dir() << "/\n";
        log::info(summary, " finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", summary, e.what());
        return 1;
    }
}

}  // namespace xbarsec::benchscenario
