// Arms-race bench: the full adaptive-attacker strategy × defense-policy
// matrix on one trained victim, via the service/mnist/arms-race registry
// scenario.
//
// Rows of BENCH_arms.json are cells of the matrix: each records the
// extraction fidelity the strategy reached under the policy, what the
// campaign cost the attacker (wall-clock, refusals, sessions burned),
// and what the policy cost the benign tenants sharing the deployment
// (refused queries, answered throughput).
//
// Acceptance gates (full runs; recorded but not enforced with --smoke):
//   1. the token bucket alone measurably cuts the fixed attacker's
//      fidelity: fixed@rate + 0.05 < fixed@open;
//   2. adapting to the limiter recovers samples: the best adaptive
//      strategy's collected count at @rate exceeds the fixed attacker's;
//   3. the suspicion-scaled defense holds the line: the throttle
//      attacker's fidelity under the full rate+adaptive policy stays
//      below the fixed-attacker/static-defense baseline (fixed@open).
// The rotate/spread rows measure how far session rotation and probe
// spreading claw back — the open end of the arms race, reported not
// gated.
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "record.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/scenario.hpp"

using namespace xbarsec;

namespace {

double metric(const core::ScenarioOutcome& outcome, const std::string& key) {
    const auto it = outcome.metrics.find(key);
    if (it == outcome.metrics.end()) throw ConfigError("missing arms-race metric: " + key);
    return it->second;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_arms — adaptive attacker vs adaptive defense: strategy x policy matrix "
            "with benign-tenant cost");
    cli.flag("out", "BENCH_arms.json", "JSON results path");
    cli.flag("train", "", "override training samples");
    cli.flag("test", "", "override test samples");
    cli.flag("epochs", "", "override victim training epochs");
    cli.flag("queries", "", "override attacker samples per cell");
    cli.flag("benign", "", "override benign queries per client");
    cli.flag("seed", "", "override the base seed");
    cli.flag("threads", "0", "worker threads (0 = hardware)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs (gates recorded, not enforced)");
    if (!cli.parse(argc, argv)) return 0;

    core::ScenarioSpec spec = core::builtin_scenarios().get("service/mnist/arms-race");
    if (cli.provided("train")) spec.load.train_count = static_cast<std::size_t>(cli.integer("train"));
    if (cli.provided("test")) spec.load.test_count = static_cast<std::size_t>(cli.integer("test"));
    if (cli.provided("epochs")) {
        spec.victim.train.epochs = static_cast<std::size_t>(cli.integer("epochs"));
    }
    if (cli.provided("queries")) {
        spec.arms_race.attacker.planned_queries = static_cast<std::size_t>(cli.integer("queries"));
    }
    if (cli.provided("benign")) {
        spec.arms_race.benign_queries = static_cast<std::size_t>(cli.integer("benign"));
    }
    if (cli.provided("seed")) {
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
        spec.load.seed = seed;
        spec.arms_race.seed = seed + 77;
    }
    const bool smoke = cli.boolean("smoke");
    if (smoke) core::apply_smoke(spec);

    std::size_t threads = static_cast<std::size_t>(cli.integer("threads"));
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    ThreadPool pool(threads);
    core::ScenarioRunner runner(&pool);

    WallTimer timer;
    const core::ScenarioOutcome outcome = runner.run(spec);
    const double total_s = timer.seconds();

    std::cout << "\n## Arms race — " << outcome.label << "\n";
    for (const auto& [name, table] : outcome.tables) std::cout << "\n" << table;
    std::cout << "\ntotal wall time: " << total_s << " s\n";

    bench::BenchRecorder recorder(
        "arms", "strategy x policy matrix, " + std::to_string(threads) + " worker threads, " +
                    std::to_string(spec.arms_race.attacker.planned_queries) +
                    " attacker samples/cell" + (smoke ? ", smoke" : ""));
    for (const attack::AttackerStrategy strategy : spec.arms_race.strategies) {
        for (const core::ArmsDefense& defense : spec.arms_race.defenses) {
            const std::string key = std::string(attack::to_string(strategy)) + "_" + defense.name;
            recorder.begin(key);
            recorder.add("strategy", attack::to_string(strategy));
            recorder.add("defense", defense.name);
            recorder.add("fidelity", metric(outcome, "fidelity_" + key));
            recorder.add("collected", metric(outcome, "collected_" + key));
            recorder.add("refused", metric(outcome, "refused_" + key));
            recorder.add("raw_denied", metric(outcome, "raw_denied_" + key));
            recorder.add("sessions", metric(outcome, "sessions_" + key));
            recorder.add("attacker_wall_s", metric(outcome, "attacker_wall_s_" + key));
            recorder.add("max_flagged_fraction", metric(outcome, "max_flagged_" + key));
            recorder.add("benign_answered", metric(outcome, "benign_answered_" + key));
            recorder.add("benign_refused", metric(outcome, "benign_refused_" + key));
            recorder.add("benign_qps", metric(outcome, "benign_qps_" + key));
        }
    }
    recorder.begin("summary");
    recorder.add("victim_test_accuracy", metric(outcome, "victim_test_accuracy"));
    recorder.add("total_wall_s", total_s);

    const std::string out = cli.str("out");
    if (!recorder.write(out)) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    std::cout << "wrote " << out << "\n";

    // Gates (see file header). Smoke runs are too small for stable
    // fidelity estimates, so they record but do not enforce.
    const double fixed_open = metric(outcome, "fidelity_fixed_open");
    const double fixed_rate = metric(outcome, "fidelity_fixed_rate");
    const double throttle_full = metric(outcome, "fidelity_throttle_rate+adaptive");
    double best_adaptive_rate_collected = 0.0;
    for (const char* s : {"throttle", "rotate", "spread"}) {
        best_adaptive_rate_collected = std::max(
            best_adaptive_rate_collected, metric(outcome, std::string("collected_") + s + "_rate"));
    }
    const double fixed_rate_collected = metric(outcome, "collected_fixed_rate");

    bool ok = true;
    if (!(fixed_rate + 0.05 < fixed_open)) {
        std::cerr << "GATE: rate limiting did not measurably cut the fixed attacker (fixed@rate "
                  << fixed_rate << " vs fixed@open " << fixed_open << ")\n";
        ok = false;
    }
    if (!(best_adaptive_rate_collected > fixed_rate_collected)) {
        std::cerr << "GATE: no adaptive strategy recovered samples under the rate limit ("
                  << best_adaptive_rate_collected << " vs fixed " << fixed_rate_collected << ")\n";
        ok = false;
    }
    if (!(throttle_full < fixed_open)) {
        std::cerr << "GATE: adaptive defense did not hold: throttle@rate+adaptive " << throttle_full
                  << " >= fixed@open " << fixed_open << "\n";
        ok = false;
    }
    if (!ok && !smoke) return 1;
    if (!ok) std::cout << "(smoke run: gate failures recorded, not enforced)\n";
    std::cout << "arms-race gates " << (ok ? "passed" : "skipped") << "\n";
    return 0;
}
