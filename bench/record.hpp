// Shared bench-result recorder.
//
// Every bench executable that persists measurements emits the same JSON
// shape through this recorder, so tooling (CI artifact diffing, the
// README's reproduction instructions) can treat BENCH_*.json files
// uniformly:
//
//   {
//     "bench": "<name>",
//     "setup": "<one-line machine/config context>",
//     "results": [ {"label": "...", "<key>": <value>, ...}, ... ]
//   }
//
// Values are numbers or strings; insertion order is preserved.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::bench {

class BenchRecorder {
public:
    BenchRecorder(std::string name, std::string setup)
        : name_(std::move(name)), setup_(std::move(setup)) {}

    /// Starts a result row. Subsequent add() calls attach fields to it.
    void begin(const std::string& label) {
        rows_.emplace_back();
        add("label", label);
    }

    void add(const std::string& key, const std::string& value) {
        field(key, "\"" + escaped(value) + "\"");
    }
    void add(const std::string& key, const char* value) { add(key, std::string(value)); }
    void add(const std::string& key, double value) {
        std::ostringstream os;
        os.precision(10);
        os << value;
        field(key, os.str());
    }
    void add(const std::string& key, long long value) { field(key, std::to_string(value)); }
    void add(const std::string& key, std::size_t value) {
        field(key, std::to_string(value));
    }

    std::size_t size() const { return rows_.size(); }

    /// Writes the JSON file; returns false when the file cannot be opened.
    bool write(const std::string& path) const {
        std::ofstream out(path);
        if (!out) return false;
        out << "{\n  \"bench\": \"" << escaped(name_) << "\",\n  \"setup\": \"" << escaped(setup_)
            << "\",\n  \"results\": [\n";
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            out << "    {";
            for (std::size_t f = 0; f < rows_[r].size(); ++f) {
                out << "\"" << rows_[r][f].first << "\": " << rows_[r][f].second;
                if (f + 1 < rows_[r].size()) out << ", ";
            }
            out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        return static_cast<bool>(out);
    }

private:
    void field(const std::string& key, std::string serialized) {
        XS_EXPECTS_MSG(!rows_.empty(), "BenchRecorder::begin() a row before adding fields");
        rows_.back().emplace_back(key, std::move(serialized));
    }

    static std::string escaped(const std::string& s) {
        std::string out;
        out.reserve(s.size());
        for (const char c : s) {
            if (c == '"' || c == '\\') out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    std::string name_;
    std::string setup_;
    std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace xbarsec::bench
