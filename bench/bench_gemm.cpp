// Scalar-vs-kernel GEMM throughput at the paper's shapes.
//
// Measures the packed-panel register-tile kernel (tensor/gemm.cpp) against
// the PR-1 blocked-axpy kernel (kept here verbatim as the baseline) on the
// minibatch products that dominate surrogate training:
//   * forward   (batch×N)·(N×10)ᵀ   — X·Wᵀ at the 10×784 / 10×3072 arrays
//   * gradient  (10×batch)ᵀ·(batch×N) — Δᵀ·X weight gradients
// plus a square product and the ThreadPool-sharded kernel. Two further
// series measure this PR's work: per-ISA-arm throughput (portable / AVX2 /
// AVX-512 via set_kernel_variant) on the paper shapes plus the
// normal-equations and hidden-layer products, and the trainer hot loop
// with the workspace arena on vs off. Results go to BENCH_gemm.json via
// the shared recorder; the full run fails (non-zero exit) if the kernel
// does not hold >= 2x single-thread throughput over the PR-1 baseline on
// the paper-shape products, or — on avx512f hosts, where this PR's
// trainer-path win lives — if AVX-512 does not reach >= 1.3x over AVX2
// on at least two shapes or the arena-backed trainer path does not reach
// >= 1.2x on at least one trainer shape. (On AVX2-only hosts the arena
// contributes only allocation reuse, a few percent; the series is still
// recorded but not gated.)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "record.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/rng.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/mlp_trainer.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"

using namespace xbarsec;
using tensor::KernelVariant;
using tensor::Matrix;
using tensor::Op;

namespace {

// ---- the PR-1 kernel, verbatim, as the measurement baseline -----------------
namespace pr1 {

constexpr std::size_t kBlockI = 64;
constexpr std::size_t kBlockK = 256;

void gemm_nn(double alpha, const Matrix& A, const Matrix& B, Matrix& C) {
    const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
    for (std::size_t i0 = 0; i0 < m; i0 += kBlockI) {
        const std::size_t i1 = std::min(i0 + kBlockI, m);
        for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
            const std::size_t k1 = std::min(k0 + kBlockK, k);
            for (std::size_t i = i0; i < i1; ++i) {
                const double* arow = A.data() + i * k;
                double* crow = C.data() + i * n;
                for (std::size_t p = k0; p < k1; ++p) {
                    const double aip = alpha * arow[p];
                    if (aip == 0.0) continue;
                    const double* brow = B.data() + p * n;
                    for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
                }
            }
        }
    }
}

void gemm(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, Matrix& C) {
    C.fill(0.0);
    if (opA == Op::None && opB == Op::None) gemm_nn(alpha, A, B, C);
    else if (opA == Op::Transpose && opB == Op::None) gemm_nn(alpha, A.transposed(), B, C);
    else if (opA == Op::None && opB == Op::Transpose) gemm_nn(alpha, A, B.transposed(), C);
    else gemm_nn(alpha, A.transposed(), B.transposed(), C);
}

}  // namespace pr1

// ---- the pre-arena trainer loops, verbatim, as the measurement baseline -----
//
// What the trainers did before the workspace arena: fresh zero-filled
// Matrix temporaries every minibatch, by-value helper returns. Timed under
// the kernel arm the previous PR dispatched (AVX2 where available) so the
// recorded trainer-path speedup is exactly what this PR changed: arena
// reuse + the AVX-512 dispatcher arm.
namespace seedtrainer {

Matrix gather_rows(const Matrix& src, const std::vector<std::size_t>& idx, std::size_t lo,
                   std::size_t hi) {
    Matrix out(hi - lo, src.cols());
    for (std::size_t r = lo; r < hi; ++r) {
        const auto s = src.row_span(idx[r]);
        auto d = out.row_span(r - lo);
        std::copy(s.begin(), s.end(), d.begin());
    }
    return out;
}

void train_regression(nn::SingleLayerNet& net, const Matrix& X, const Matrix& Y,
                      const nn::TrainConfig& config) {
    const std::size_t n = X.rows();
    auto optimizer = nn::make_optimizer(config.optimizer, config.learning_rate, config.momentum);
    const std::size_t w_slot = optimizer->register_parameter(net.weights().size());
    Rng rng(config.shuffle_seed);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    Matrix grad_w(net.outputs(), net.inputs(), 0.0);
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t lo = 0; lo < n; lo += config.batch_size) {
            const std::size_t hi = std::min(lo + config.batch_size, n);
            const Matrix xb = gather_rows(X, order, lo, hi);
            const Matrix tb = gather_rows(Y, order, lo, hi);
            const Matrix sb = net.layer().forward_batch(xb);
            const Matrix delta =
                nn::batch_preactivation_delta(net.activation(), net.loss_kind(), sb, tb);
            nn::loss_value_batch_sum(net.loss_kind(),
                                     nn::apply_activation_rows(net.activation(), sb), tb);
            const double inv_b = 1.0 / static_cast<double>(hi - lo);
            tensor::gemm(inv_b, delta, Op::Transpose, xb, Op::None, 0.0, grad_w);
            optimizer->step(w_slot, {net.weights().data(), net.weights().size()},
                            {grad_w.data(), grad_w.size()});
        }
    }
}

void train_mlp(nn::Mlp& mlp, const data::Dataset& dataset, const nn::TrainConfig& config) {
    const std::size_t L = mlp.depth();
    auto optimizer = nn::make_optimizer(config.optimizer, config.learning_rate, config.momentum);
    std::vector<std::size_t> w_slots(L), b_slots(L);
    for (std::size_t l = 0; l < L; ++l) {
        w_slots[l] = optimizer->register_parameter(mlp.layers()[l].weights().size());
        if (mlp.layers()[l].has_bias()) {
            b_slots[l] = optimizer->register_parameter(mlp.layers()[l].bias().size());
        }
    }
    Rng rng(config.shuffle_seed);
    std::vector<std::size_t> order(dataset.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const nn::Activation out_act = mlp.config().output_activation;
    const nn::Activation hid_act = mlp.config().hidden_activation;
    const nn::Loss loss = mlp.config().loss;
    std::vector<Matrix> grad_w(L);
    for (std::size_t l = 0; l < L; ++l) {
        grad_w[l] = Matrix(mlp.layers()[l].weights().rows(), mlp.layers()[l].weights().cols(),
                           0.0);
    }
    std::vector<Matrix> inputs(L), pre(L);
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t lo = 0; lo < dataset.size(); lo += config.batch_size) {
            const std::size_t hi = std::min(lo + config.batch_size, dataset.size());
            const double inv_b = 1.0 / static_cast<double>(hi - lo);
            const Matrix tb = gather_rows(dataset.targets(), order, lo, hi);
            Matrix x = gather_rows(dataset.inputs(), order, lo, hi);
            for (std::size_t l = 0; l < L; ++l) {
                inputs[l] = std::move(x);
                pre[l] = mlp.layers()[l].forward_batch(inputs[l]);
                x = nn::apply_activation_rows(l + 1 == L ? out_act : hid_act, pre[l]);
            }
            nn::loss_value_batch_sum(loss, x, tb);
            std::vector<tensor::Vector> grad_b(L);
            Matrix delta = nn::loss_gradient_preactivation_batch(out_act, loss, pre[L - 1], tb);
            for (std::size_t lrev = 0; lrev < L; ++lrev) {
                const std::size_t l = L - 1 - lrev;
                tensor::gemm(inv_b, delta, Op::Transpose, inputs[l], Op::None, 0.0, grad_w[l]);
                if (mlp.layers()[l].has_bias()) {
                    grad_b[l] = tensor::column_sums(delta);
                    grad_b[l] *= inv_b;
                }
                if (l > 0) {
                    Matrix upstream(delta.rows(), mlp.layers()[l].weights().cols(), 0.0);
                    tensor::gemm(1.0, delta, Op::None, mlp.layers()[l].weights(), Op::None, 0.0,
                                 upstream);
                    const Matrix fprime = nn::activation_derivative_rows(hid_act, pre[l - 1]);
                    double* __restrict up = upstream.data();
                    const double* __restrict fp = fprime.data();
                    for (std::size_t i = 0; i < upstream.size(); ++i) up[i] *= fp[i];
                    delta = std::move(upstream);
                }
            }
            for (std::size_t l = 0; l < L; ++l) {
                Matrix& W = mlp.layers()[l].weights();
                optimizer->step(w_slots[l], {W.data(), W.size()},
                                {grad_w[l].data(), grad_w[l].size()});
                if (mlp.layers()[l].has_bias()) {
                    tensor::Vector& b = mlp.layers()[l].bias();
                    optimizer->step(b_slots[l], {b.data(), b.size()},
                                    {grad_b[l].data(), grad_b[l].size()});
                }
            }
        }
    }
}

}  // namespace seedtrainer

struct Shape {
    std::string label;
    bool gate = false;  ///< participates in the >= 2x acceptance check
    std::size_t m, k, n;
    Op opA, opB;
};

/// Best-of-`reps` throughput in GFLOP/s (best-of removes scheduler noise
/// from a single-core container).
template <typename Fn>
double gflops(const Fn& run, std::size_t m, std::size_t k, std::size_t n, std::size_t reps) {
    const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                         static_cast<double>(n);
    const std::size_t inner = std::max<std::size_t>(1, static_cast<std::size_t>(2e8 / flops));
    run();  // warm
    double best = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
        WallTimer timer;
        for (std::size_t i = 0; i < inner; ++i) run();
        best = std::max(best, flops * static_cast<double>(inner) / timer.seconds());
    }
    return best / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_gemm — packed-panel kernel vs the PR-1 blocked-axpy baseline");
    cli.flag("batch", "256", "minibatch dimension of the training-shape products");
    cli.flag("reps", "7", "timed repetitions per measurement (best-of)");
    cli.flag("out", "BENCH_gemm.json", "JSON results path");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;
        const std::size_t batch = static_cast<std::size_t>(cli.integer("batch"));
        std::size_t reps = static_cast<std::size_t>(cli.integer("reps"));
        // The full run enforces the 2x acceptance bar; the CI smoke run is a
        // regression canary on noisy shared runners, so it gates at 1.5x.
        double gate = 2.0;
        if (cli.boolean("smoke")) {
            reps = 3;
            gate = 1.5;
        }

        const std::vector<Shape> shapes = {
            {"fwd mnist (" + std::to_string(batch) + "x784)*(784x10)", true, batch, 784, 10,
             Op::None, Op::Transpose},
            {"grad mnist (10x" + std::to_string(batch) + ")*(" + std::to_string(batch) + "x784)",
             true, 10, batch, 784, Op::Transpose, Op::None},
            {"fwd cifar (" + std::to_string(batch) + "x3072)*(3072x10)", true, batch, 3072, 10,
             Op::None, Op::Transpose},
            {"grad cifar (10x" + std::to_string(batch) + ")*(" + std::to_string(batch) + "x3072)",
             true, 10, batch, 3072, Op::Transpose, Op::None},
            {"square 256", false, 256, 256, 256, Op::None, Op::None},
        };

        ThreadPool pool;
        bench::BenchRecorder rec("gemm", "paper-shape GEMMs, kernel vs PR-1 baseline, best-of-" +
                                             std::to_string(reps));
        Table table({"Shape", "PR-1 GF/s", "Kernel GF/s", "Speedup", "Pooled GF/s"});
        bool pass = true;

        for (const Shape& s : shapes) {
            Rng rng(s.m * 31 + s.k * 7 + s.n);
            const Matrix A = Matrix::random_normal(rng, s.opA == Op::None ? s.m : s.k,
                                                   s.opA == Op::None ? s.k : s.m);
            const Matrix B = Matrix::random_normal(rng, s.opB == Op::None ? s.k : s.n,
                                                   s.opB == Op::None ? s.n : s.k);
            Matrix C(s.m, s.n, 0.0);

            const double base = gflops(
                [&] { pr1::gemm(1.0, A, s.opA, B, s.opB, C); }, s.m, s.k, s.n, reps);
            const double kern = gflops(
                [&] { tensor::gemm(1.0, A, s.opA, B, s.opB, 0.0, C); }, s.m, s.k, s.n, reps);
            const double pooled = gflops(
                [&] { tensor::gemm(1.0, A, s.opA, B, s.opB, 0.0, C, &pool); }, s.m, s.k, s.n,
                reps);
            const double speedup = kern / base;

            table.begin_row();
            table.add(s.label);
            table.add(base, 2);
            table.add(kern, 2);
            table.add(speedup, 2);
            table.add(pooled, 2);

            rec.begin(s.label);
            rec.add("m", static_cast<long long>(s.m));
            rec.add("k", static_cast<long long>(s.k));
            rec.add("n", static_cast<long long>(s.n));
            rec.add("baseline_gflops", base);
            rec.add("kernel_gflops", kern);
            rec.add("pooled_gflops", pooled);
            rec.add("speedup", speedup);

            if (s.gate && speedup < gate) {
                pass = false;
                std::cout << "FAIL: " << s.label << " at " << Table::format_number(speedup, 2)
                          << "x (target >= " << Table::format_number(gate, 1) << "x)\n";
            }
        }

        std::cout << "\n## GEMM kernel throughput (paper shapes)\n\n" << table;

        // ---- per-ISA-arm series ---------------------------------------------
        //
        // The same kernel, forced onto each arm the host supports. Shapes
        // add the fit_least_squares normal-equations product (the O(Q·N²)
        // bulk of every surrogate fit, wide enough to fill 8-lane strips)
        // and the multilayer hidden product.
        const std::vector<Shape> vshapes = {
            {"fwd mnist (" + std::to_string(batch) + "x784)*(784x10)", false, batch, 784, 10,
             Op::None, Op::Transpose},
            {"grad mnist (10x" + std::to_string(batch) + ")*(" + std::to_string(batch) + "x784)",
             false, 10, batch, 784, Op::Transpose, Op::None},
            {"normal-eq mnist (784x1000)T*(1000x784)", false, 784, 1000, 784, Op::Transpose,
             Op::None},
            {"normal-eq cifar (3072x500)T*(500x3072)", false, 3072, 500, 3072, Op::Transpose,
             Op::None},
            {"mlp hidden (" + std::to_string(batch) + "x784)*(784x128)", false, batch, 784, 128,
             Op::None, Op::Transpose},
            {"square 256", false, 256, 256, 256, Op::None, Op::None},
        };
        std::vector<KernelVariant> variants = {KernelVariant::Portable};
        if (tensor::kernel_variant_available(KernelVariant::Avx2)) {
            variants.push_back(KernelVariant::Avx2);
        }
        const bool has_avx512 = tensor::kernel_variant_available(KernelVariant::Avx512);
        if (has_avx512) variants.push_back(KernelVariant::Avx512);
        const KernelVariant entry_variant = tensor::forced_kernel_variant();

        Table vtable({"Shape", "Portable GF/s", "AVX2 GF/s", "AVX-512 GF/s", "AVX-512/AVX2"});
        std::size_t avx512_wins = 0;
        for (const Shape& s : vshapes) {
            Rng rng(s.m * 17 + s.k * 3 + s.n);
            const Matrix A = Matrix::random_normal(rng, s.opA == Op::None ? s.m : s.k,
                                                   s.opA == Op::None ? s.k : s.m);
            const Matrix B = Matrix::random_normal(rng, s.opB == Op::None ? s.k : s.n,
                                                   s.opB == Op::None ? s.n : s.k);
            Matrix C(s.m, s.n, 0.0);

            rec.begin("variant: " + s.label);
            rec.add("m", static_cast<long long>(s.m));
            rec.add("k", static_cast<long long>(s.k));
            rec.add("n", static_cast<long long>(s.n));
            double gf_avx2 = 0.0, gf_avx512 = 0.0;
            vtable.begin_row();
            vtable.add(s.label);
            for (const KernelVariant v : variants) {
                tensor::set_kernel_variant(v);
                const double gf = gflops(
                    [&] { tensor::gemm(1.0, A, s.opA, B, s.opB, 0.0, C); }, s.m, s.k, s.n, reps);
                rec.add(std::string("gflops_") + tensor::to_string(v), gf);
                vtable.add(gf, 2);
                if (v == KernelVariant::Avx2) gf_avx2 = gf;
                if (v == KernelVariant::Avx512) gf_avx512 = gf;
            }
            tensor::set_kernel_variant(entry_variant);
            if (!tensor::kernel_variant_available(KernelVariant::Avx2)) vtable.add("-");
            if (!has_avx512) {
                vtable.add("-");
                vtable.add("-");
            } else {
                const double ratio = gf_avx512 / gf_avx2;
                rec.add("speedup_avx512_vs_avx2", ratio);
                vtable.add(ratio, 2);
                if (ratio >= 1.3) ++avx512_wins;
            }
        }
        std::cout << "\n## Kernel variants (forced via set_kernel_variant)\n\n" << vtable;
        if (!cli.boolean("smoke") && has_avx512 && avx512_wins < 2) {
            pass = false;
            std::cout << "FAIL: AVX-512 >= 1.3x over AVX2 on only " << avx512_wins
                      << " shapes (target >= 2)\n";
        }

        // ---- trainer hot loop: seed (fresh allocations, pre-PR kernel) vs
        //      the arena-backed path under the current dispatcher ------------
        //
        // Baseline = the verbatim pre-arena trainer loop on the kernel arm
        // the previous PR dispatched (AVX2 where available); candidate =
        // the shipped trainer with the workspace arena under Auto dispatch
        // (AVX-512 where available). The delta is this PR's whole trainer
        // path. A second column isolates the arena alone (same kernel,
        // arena on vs off).
        const KernelVariant seed_kernel =
            tensor::kernel_variant_available(KernelVariant::Avx2) ? KernelVariant::Avx2
                                                                  : KernelVariant::Portable;
        // Single-core containers are noisy at ~10 ms timings; best-of-7
        // keeps the recorded speedups within a few percent run to run.
        const std::size_t train_reps = cli.boolean("smoke") ? 2 : 7;
        const std::size_t train_epochs = cli.boolean("smoke") ? 1 : 3;
        struct TrainShape {
            std::string label;
            std::size_t samples, dim, hidden;  ///< hidden == 0: single layer
        };
        const std::vector<TrainShape> tshapes = {
            {"trainer mnist (2000x784 -> 10)", 2000, 784, 0},
            {"trainer cifar (600x3072 -> 10)", 600, 3072, 0},
            {"trainer mlp mnist (2000x784 -> 128 -> 10)", 2000, 784, 128},
        };
        Table ttable({"Trainer shape", "Seed s/epoch", "Arena s/epoch", "Arena-only x",
                      "Path speedup"});
        double best_path_speedup = 0.0;
        for (const TrainShape& ts : tshapes) {
            Rng rng(ts.samples + ts.dim);
            nn::TrainConfig tc;
            tc.epochs = train_epochs;
            tc.batch_size = 32;

            double sec_seed = 0.0, sec_arena = 0.0, sec_malloc = 0.0;
            auto best_of = [&](auto&& fn) {
                double best = 1e100;
                for (std::size_t r = 0; r < train_reps; ++r) {
                    WallTimer timer;
                    fn();
                    best = std::min(best, timer.seconds());
                }
                return best / static_cast<double>(tc.epochs);
            };

            if (ts.hidden == 0) {
                const Matrix X = Matrix::random_uniform(rng, ts.samples, ts.dim);
                const Matrix Y = Matrix::random_normal(rng, ts.samples, 10);
                tensor::set_kernel_variant(seed_kernel);
                sec_seed = best_of([&] {
                    Rng init(1);
                    nn::SingleLayerNet net(init, ts.dim, 10, nn::Activation::Linear,
                                           nn::Loss::Mse);
                    seedtrainer::train_regression(net, X, Y, tc);
                });
                tensor::set_kernel_variant(entry_variant);
                auto shipped = [&](bool arena) {
                    tc.arena = arena;
                    return best_of([&] {
                        Rng init(1);
                        nn::SingleLayerNet net(init, ts.dim, 10, nn::Activation::Linear,
                                               nn::Loss::Mse);
                        nn::train_regression(net, X, Y, tc);
                    });
                };
                sec_malloc = shipped(false);
                sec_arena = shipped(true);
            } else {
                Matrix X = Matrix::random_uniform(rng, ts.samples, ts.dim);
                std::vector<int> labels(ts.samples);
                for (auto& l : labels) l = static_cast<int>(rng.below(10));
                const data::Dataset ds(std::move(X), std::move(labels), 10, {1, ts.dim, 1});
                nn::MlpConfig mc;
                mc.layer_sizes = {ts.dim, ts.hidden, 10};
                tensor::set_kernel_variant(seed_kernel);
                sec_seed = best_of([&] {
                    Rng init(1);
                    nn::Mlp mlp(init, mc);
                    seedtrainer::train_mlp(mlp, ds, tc);
                });
                tensor::set_kernel_variant(entry_variant);
                auto shipped = [&](bool arena) {
                    tc.arena = arena;
                    return best_of([&] {
                        Rng init(1);
                        nn::Mlp mlp(init, mc);
                        nn::train_mlp(mlp, ds, tc);
                    });
                };
                sec_malloc = shipped(false);
                sec_arena = shipped(true);
            }

            const double arena_only = sec_malloc / sec_arena;
            const double path_speedup = sec_seed / sec_arena;
            best_path_speedup = std::max(best_path_speedup, path_speedup);

            ttable.begin_row();
            ttable.add(ts.label);
            ttable.add(sec_seed, 4);
            ttable.add(sec_arena, 4);
            ttable.add(arena_only, 2);
            ttable.add(path_speedup, 2);

            rec.begin(ts.label);
            rec.add("samples", static_cast<long long>(ts.samples));
            rec.add("dim", static_cast<long long>(ts.dim));
            rec.add("hidden", static_cast<long long>(ts.hidden));
            rec.add("batch_size", static_cast<long long>(tc.batch_size));
            rec.add("seed_kernel", tensor::to_string(seed_kernel));
            rec.add("seconds_per_epoch_seed", sec_seed);
            rec.add("seconds_per_epoch_malloc", sec_malloc);
            rec.add("seconds_per_epoch_arena", sec_arena);
            rec.add("speedup_arena_only", arena_only);
            rec.add("speedup_trainer_path", path_speedup);
        }
        std::cout << "\n## Trainer hot loop: seed loop (" << tensor::to_string(seed_kernel)
                  << ") vs arena-backed path (" << tensor::to_string(entry_variant) << ")\n\n"
                  << ttable;
        if (!cli.boolean("smoke") && has_avx512 && best_path_speedup < 1.2) {
            pass = false;
            std::cout << "FAIL: arena-backed trainer path best speedup "
                      << Table::format_number(best_path_speedup, 2) << "x (target >= 1.2x)\n";
        }

        const std::string out_path = cli.str("out");
        if (!rec.write(out_path)) {
            std::fprintf(stderr, "bench_gemm: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::cout << "\nResults written to " << out_path << "\n"
                  << "kernel vs PR-1 baseline on the paper shapes: "
                  << (pass ? "PASS" : "FAIL") << " (bar: >= "
                  << Table::format_number(gate, 1) << "x)\n";
        return pass ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_gemm: %s\n", e.what());
        return 1;
    }
}
