// Scalar-vs-kernel GEMM throughput at the paper's shapes.
//
// Measures the packed-panel register-tile kernel (tensor/gemm.cpp) against
// the PR-1 blocked-axpy kernel (kept here verbatim as the baseline) on the
// minibatch products that dominate surrogate training:
//   * forward   (batch×N)·(N×10)ᵀ   — X·Wᵀ at the 10×784 / 10×3072 arrays
//   * gradient  (10×batch)ᵀ·(batch×N) — Δᵀ·X weight gradients
// plus a square product and the ThreadPool-sharded kernel. Results go to
// BENCH_gemm.json via the shared recorder; the run fails (non-zero exit)
// if the kernel does not hold >= 2x single-thread throughput over the
// PR-1 baseline on the paper-shape products.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "record.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/rng.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/tensor/gemm.hpp"

using namespace xbarsec;
using tensor::Matrix;
using tensor::Op;

namespace {

// ---- the PR-1 kernel, verbatim, as the measurement baseline -----------------
namespace pr1 {

constexpr std::size_t kBlockI = 64;
constexpr std::size_t kBlockK = 256;

void gemm_nn(double alpha, const Matrix& A, const Matrix& B, Matrix& C) {
    const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
    for (std::size_t i0 = 0; i0 < m; i0 += kBlockI) {
        const std::size_t i1 = std::min(i0 + kBlockI, m);
        for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
            const std::size_t k1 = std::min(k0 + kBlockK, k);
            for (std::size_t i = i0; i < i1; ++i) {
                const double* arow = A.data() + i * k;
                double* crow = C.data() + i * n;
                for (std::size_t p = k0; p < k1; ++p) {
                    const double aip = alpha * arow[p];
                    if (aip == 0.0) continue;
                    const double* brow = B.data() + p * n;
                    for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
                }
            }
        }
    }
}

void gemm(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, Matrix& C) {
    C.fill(0.0);
    if (opA == Op::None && opB == Op::None) gemm_nn(alpha, A, B, C);
    else if (opA == Op::Transpose && opB == Op::None) gemm_nn(alpha, A.transposed(), B, C);
    else if (opA == Op::None && opB == Op::Transpose) gemm_nn(alpha, A, B.transposed(), C);
    else gemm_nn(alpha, A.transposed(), B.transposed(), C);
}

}  // namespace pr1

struct Shape {
    std::string label;
    bool gate = false;  ///< participates in the >= 2x acceptance check
    std::size_t m, k, n;
    Op opA, opB;
};

/// Best-of-`reps` throughput in GFLOP/s (best-of removes scheduler noise
/// from a single-core container).
template <typename Fn>
double gflops(const Fn& run, std::size_t m, std::size_t k, std::size_t n, std::size_t reps) {
    const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                         static_cast<double>(n);
    const std::size_t inner = std::max<std::size_t>(1, static_cast<std::size_t>(2e8 / flops));
    run();  // warm
    double best = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
        WallTimer timer;
        for (std::size_t i = 0; i < inner; ++i) run();
        best = std::max(best, flops * static_cast<double>(inner) / timer.seconds());
    }
    return best / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_gemm — packed-panel kernel vs the PR-1 blocked-axpy baseline");
    cli.flag("batch", "256", "minibatch dimension of the training-shape products");
    cli.flag("reps", "7", "timed repetitions per measurement (best-of)");
    cli.flag("out", "BENCH_gemm.json", "JSON results path");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;
        const std::size_t batch = static_cast<std::size_t>(cli.integer("batch"));
        std::size_t reps = static_cast<std::size_t>(cli.integer("reps"));
        // The full run enforces the 2x acceptance bar; the CI smoke run is a
        // regression canary on noisy shared runners, so it gates at 1.5x.
        double gate = 2.0;
        if (cli.boolean("smoke")) {
            reps = 3;
            gate = 1.5;
        }

        const std::vector<Shape> shapes = {
            {"fwd mnist (" + std::to_string(batch) + "x784)*(784x10)", true, batch, 784, 10,
             Op::None, Op::Transpose},
            {"grad mnist (10x" + std::to_string(batch) + ")*(" + std::to_string(batch) + "x784)",
             true, 10, batch, 784, Op::Transpose, Op::None},
            {"fwd cifar (" + std::to_string(batch) + "x3072)*(3072x10)", true, batch, 3072, 10,
             Op::None, Op::Transpose},
            {"grad cifar (10x" + std::to_string(batch) + ")*(" + std::to_string(batch) + "x3072)",
             true, 10, batch, 3072, Op::Transpose, Op::None},
            {"square 256", false, 256, 256, 256, Op::None, Op::None},
        };

        ThreadPool pool;
        bench::BenchRecorder rec("gemm", "paper-shape GEMMs, kernel vs PR-1 baseline, best-of-" +
                                             std::to_string(reps));
        Table table({"Shape", "PR-1 GF/s", "Kernel GF/s", "Speedup", "Pooled GF/s"});
        bool pass = true;

        for (const Shape& s : shapes) {
            Rng rng(s.m * 31 + s.k * 7 + s.n);
            const Matrix A = Matrix::random_normal(rng, s.opA == Op::None ? s.m : s.k,
                                                   s.opA == Op::None ? s.k : s.m);
            const Matrix B = Matrix::random_normal(rng, s.opB == Op::None ? s.k : s.n,
                                                   s.opB == Op::None ? s.n : s.k);
            Matrix C(s.m, s.n, 0.0);

            const double base = gflops(
                [&] { pr1::gemm(1.0, A, s.opA, B, s.opB, C); }, s.m, s.k, s.n, reps);
            const double kern = gflops(
                [&] { tensor::gemm(1.0, A, s.opA, B, s.opB, 0.0, C); }, s.m, s.k, s.n, reps);
            const double pooled = gflops(
                [&] { tensor::gemm(1.0, A, s.opA, B, s.opB, 0.0, C, &pool); }, s.m, s.k, s.n,
                reps);
            const double speedup = kern / base;

            table.begin_row();
            table.add(s.label);
            table.add(base, 2);
            table.add(kern, 2);
            table.add(speedup, 2);
            table.add(pooled, 2);

            rec.begin(s.label);
            rec.add("m", static_cast<long long>(s.m));
            rec.add("k", static_cast<long long>(s.k));
            rec.add("n", static_cast<long long>(s.n));
            rec.add("baseline_gflops", base);
            rec.add("kernel_gflops", kern);
            rec.add("pooled_gflops", pooled);
            rec.add("speedup", speedup);

            if (s.gate && speedup < gate) {
                pass = false;
                std::cout << "FAIL: " << s.label << " at " << Table::format_number(speedup, 2)
                          << "x (target >= " << Table::format_number(gate, 1) << "x)\n";
            }
        }

        std::cout << "\n## GEMM kernel throughput (paper shapes)\n\n" << table;

        const std::string out_path = cli.str("out");
        if (!rec.write(out_path)) {
            std::fprintf(stderr, "bench_gemm: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::cout << "\nResults written to " << out_path << "\n"
                  << "kernel vs PR-1 baseline on the paper shapes: "
                  << (pass ? "PASS" : "FAIL") << " (bar: >= "
                  << Table::format_number(gate, 1) << "x)\n";
        return pass ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_gemm: %s\n", e.what());
        return 1;
    }
}
