// Ablation X5 — defensive baseline from the paper's related work [13]
// (DetectX-style current signatures): how well does a class-conditional
// total-current profile detect the paper's attacks, and what does it
// cost in clean false positives?
//
// Expected shape: near-perfect detection of strong single-pixel attacks
// (their whole mechanism is a large current spike), poor detection of
// small-ε FGSM (aggregate current barely moves) — the defense is narrow.
#include <cstdio>
#include <iostream>

#include "xbarsec/attack/fgsm.hpp"
#include "xbarsec/attack/pgd.hpp"
#include "xbarsec/attack/single_pixel.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/sidechannel/detector.hpp"
#include "xbarsec/sidechannel/probe.hpp"

using namespace xbarsec;

int main(int argc, char** argv) {
    Cli cli("bench_detector — DetectX-style current-signature defense vs the paper's attacks");
    cli.flag("train", "4000", "training samples");
    cli.flag("test", "800", "test samples");
    cli.flag("epochs", "10", "victim training epochs");
    cli.flag("enroll", "1500", "clean samples used to enrol the detector");
    cli.flag("z", "0", "manual anomaly threshold (0 = auto-calibrated to 2% clean FPR)");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real MNIST files (optional)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        std::size_t enroll = static_cast<std::size_t>(cli.integer("enroll"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            epochs = 4;
            enroll = 300;
        }

        WallTimer timer;
        const data::DataSplit split = data::load_mnist_like(load);
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = epochs;
        const core::TrainedVictim victim = core::train_victim(split, config);
        const xbar::CrossbarNetwork hardware(victim.net, config.device, config.nonideal);

        sidechannel::DetectorConfig dconfig;
        dconfig.z_threshold = cli.real("z");
        const sidechannel::CurrentSignatureDetector detector(hardware, split.train.take(enroll),
                                                             dconfig);

        const tensor::Vector l1 =
            sidechannel::probe_columns(hardware.crossbar()).conductance_sums;
        const data::Dataset eval = split.test;
        Rng rng(load.seed + 9);

        Table table({"Input batch", "Flagged fraction", "Victim acc on batch"});
        auto add_row = [&](const std::string& name, const tensor::Matrix& inputs,
                           const std::vector<int>& labels) {
            table.begin_row();
            table.add(name);
            table.add(detector.flagged_fraction(inputs), 4);
            table.add(nn::accuracy(victim.net, inputs, labels), 4);
        };

        add_row("clean test set", eval.inputs(), eval.labels());

        for (const double strength : {2.0, 5.0, 8.0}) {
            tensor::Matrix adv(eval.size(), eval.input_dim());
            for (std::size_t i = 0; i < eval.size(); ++i) {
                const tensor::Vector a = attack::attack_single_pixel(
                    attack::SinglePixelMethod::PowerAdd, eval.input(i), eval.target(i), strength,
                    &l1, nullptr, rng);
                auto dst = adv.row_span(i);
                std::copy(a.begin(), a.end(), dst.begin());
            }
            add_row("single-pixel '+' s=" + Table::format_number(strength, 0), adv,
                    eval.labels());
        }

        for (const double eps : {0.03, 0.1, 0.3}) {
            const tensor::Matrix adv = attack::fgsm_attack_batch(
                victim.net, eval.inputs(), eval.labels(), eval.num_classes(), eps);
            add_row("FGSM eps=" + Table::format_number(eps, 2), adv, eval.labels());
        }

        {
            attack::PgdConfig pgd;
            pgd.epsilon = 0.1;
            pgd.step_size = 0.025;
            pgd.steps = 10;
            const tensor::Matrix adv = attack::pgd_attack_batch(
                victim.net, eval.inputs(), eval.labels(), eval.num_classes(), pgd);
            add_row("PGD eps=0.10 (10 steps)", adv, eval.labels());
        }

        std::cout << "\n## Current-signature detection (threshold=" << detector.threshold()
                  << ", victim clean acc " << Table::format_number(victim.test_accuracy, 3)
                  << ")\n\n"
                  << table << "\n"
                  << "Expected: strong single-pixel attacks are flagged nearly always "
                     "(their current spike IS the attack); small-eps gradient attacks "
                     "mostly evade — the defense is narrow, motivating the paper's broader "
                     "threat-model analysis.\n";
        table.write_csv(core::results_dir() + "/detector.csv");
        log::info("bench_detector finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_detector: %s\n", e.what());
        return 1;
    }
}
