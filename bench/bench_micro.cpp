// Microbenchmarks (google-benchmark): throughput of the simulator's hot
// paths at the paper's array sizes (10×784 MNIST, 10×3072 CIFAR).
#include <benchmark/benchmark.h>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/crossbar.hpp"

namespace {

using namespace xbarsec;

xbar::Crossbar make_crossbar(std::size_t rows, std::size_t cols) {
    Rng rng(1);
    xbar::DeviceSpec spec;
    spec.g_on_max = 100e-6;
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, rows, cols);
    return xbar::Crossbar(map_weights(W, spec));
}

void BM_CrossbarMvm(benchmark::State& state) {
    const auto cols = static_cast<std::size_t>(state.range(0));
    const xbar::Crossbar xbar = make_crossbar(10, cols);
    Rng rng(2);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, cols);
    for (auto _ : state) {
        benchmark::DoNotOptimize(xbar.mvm(u));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10 * cols);
}
BENCHMARK(BM_CrossbarMvm)->Arg(784)->Arg(3072);

void BM_CrossbarTotalCurrent(benchmark::State& state) {
    const auto cols = static_cast<std::size_t>(state.range(0));
    const xbar::Crossbar xbar = make_crossbar(10, cols);
    Rng rng(3);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, cols);
    for (auto _ : state) {
        benchmark::DoNotOptimize(xbar.total_current(u));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10 * cols);
}
BENCHMARK(BM_CrossbarTotalCurrent)->Arg(784)->Arg(3072);

void BM_FullPowerProbe(benchmark::State& state) {
    const auto cols = static_cast<std::size_t>(state.range(0));
    const xbar::Crossbar xbar = make_crossbar(10, cols);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sidechannel::probe_columns(xbar));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * cols);
}
BENCHMARK(BM_FullPowerProbe)->Arg(784)->Arg(3072);

void BM_Gemm(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(4);
    const tensor::Matrix A = tensor::Matrix::random_normal(rng, n, n);
    const tensor::Matrix B = tensor::Matrix::random_normal(rng, n, n);
    tensor::Matrix C(n, n, 0.0);
    for (auto _ : state) {
        tensor::gemm(1.0, A, tensor::Op::None, B, tensor::Op::None, 0.0, C);
        benchmark::DoNotOptimize(C.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256);

void BM_BatchForward(benchmark::State& state) {
    // One minibatch forward pass of the MNIST-scale single layer — the
    // inner loop of every Figure-5 surrogate fit.
    Rng rng(5);
    nn::SingleLayerNet net(rng, 784, 10, nn::Activation::Linear, nn::Loss::Mse);
    const tensor::Matrix X = tensor::Matrix::random_uniform(rng, 32, 784);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.layer().forward_batch(X));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32 * 784 * 10);
}
BENCHMARK(BM_BatchForward);

void BM_ColumnAbsSums(benchmark::State& state) {
    // The surrogate's power model (Eq. 9's p̂) reduces to this kernel.
    Rng rng(6);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 10, 3072);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::column_abs_sums(W));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10 * 3072);
}
BENCHMARK(BM_ColumnAbsSums);

}  // namespace

BENCHMARK_MAIN();
