// Microbenchmarks: throughput of the simulator's hot paths at the paper's
// array sizes (10×784 MNIST, 10×3072 CIFAR). Hand-rolled harness (no
// external benchmark dependency) emitting BENCH_micro.json through the
// shared recorder.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "record.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/rng.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/crossbar.hpp"

using namespace xbarsec;

namespace {

xbar::Crossbar make_crossbar(std::size_t rows, std::size_t cols) {
    Rng rng(1);
    xbar::DeviceSpec spec;
    spec.g_on_max = 100e-6;
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, rows, cols);
    return xbar::Crossbar(map_weights(W, spec));
}

struct Harness {
    Table table{{"Benchmark", "ns/op", "Mitems/s"}};
    bench::BenchRecorder rec;
    double min_seconds;
    std::size_t reps;

    Harness(std::string setup, double min_secs, std::size_t reps_)
        : rec("micro", std::move(setup)), min_seconds(min_secs), reps(reps_) {}

    /// Times `body` until it has run for min_seconds, `reps` times, and
    /// records the best repetition (noise-robust on a shared container).
    void run(const std::string& label, std::size_t items_per_op,
             const std::function<void()>& body) {
        body();  // warm
        // Calibrate the inner loop count to the target wall time.
        std::size_t inner = 1;
        for (;;) {
            WallTimer timer;
            for (std::size_t i = 0; i < inner; ++i) body();
            if (timer.seconds() >= min_seconds || inner >= (1u << 24)) break;
            inner *= 4;
        }
        double best_ns = 1e30;
        for (std::size_t r = 0; r < reps; ++r) {
            WallTimer timer;
            for (std::size_t i = 0; i < inner; ++i) body();
            best_ns = std::min(best_ns, timer.seconds() * 1e9 / static_cast<double>(inner));
        }
        const double mitems = static_cast<double>(items_per_op) / best_ns * 1e3;
        table.begin_row();
        table.add(label);
        table.add(best_ns, 0);
        table.add(mitems, 1);
        rec.begin(label);
        rec.add("ns_per_op", best_ns);
        rec.add("items_per_op", static_cast<long long>(items_per_op));
        rec.add("mitems_per_s", mitems);
    }
};

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_micro — hot-path microbenchmarks at the paper's array sizes");
    cli.flag("min-time", "0.05", "seconds each measurement must accumulate");
    cli.flag("reps", "3", "repetitions per measurement (best-of)");
    cli.flag("out", "BENCH_micro.json", "JSON results path");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;
        double min_time = std::stod(cli.str("min-time"));
        std::size_t reps = static_cast<std::size_t>(cli.integer("reps"));
        if (cli.boolean("smoke")) {
            min_time = 0.01;
            reps = 1;
        }

        Harness h("paper-size arrays, best-of-" + std::to_string(reps), min_time, reps);
        Rng rng(2);

        for (const std::size_t cols : {std::size_t{784}, std::size_t{3072}}) {
            const xbar::Crossbar xbar = make_crossbar(10, cols);
            const tensor::Vector u = tensor::Vector::random_uniform(rng, cols);
            const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 64, cols);
            const std::string suffix = "/" + std::to_string(cols);

            h.run("crossbar_mvm" + suffix, 10 * cols, [&] {
                volatile double sink = xbar.mvm(u)[0];
                (void)sink;
            });
            h.run("crossbar_mvm_batch64" + suffix, 64 * 10 * cols, [&] {
                volatile double sink = xbar.mvm_batch(U)(0, 0);
                (void)sink;
            });
            h.run("crossbar_total_current" + suffix, 10 * cols, [&] {
                volatile double sink = xbar.total_current(u);
                (void)sink;
            });
            h.run("crossbar_total_current_batch64" + suffix, 64 * cols, [&] {
                volatile double sink = xbar.total_current_batch(U)[0];
                (void)sink;
            });
            h.run("full_power_probe" + suffix, cols, [&] {
                volatile double sink = sidechannel::probe_columns(xbar).conductance_sums[0];
                (void)sink;
            });
        }

        for (const std::size_t n : {std::size_t{64}, std::size_t{256}}) {
            const tensor::Matrix A = tensor::Matrix::random_normal(rng, n, n);
            const tensor::Matrix B = tensor::Matrix::random_normal(rng, n, n);
            tensor::Matrix C(n, n, 0.0);
            h.run("gemm_square/" + std::to_string(n), 2 * n * n * n, [&] {
                tensor::gemm(1.0, A, tensor::Op::None, B, tensor::Op::None, 0.0, C);
            });
        }

        {
            // One minibatch forward pass of the MNIST-scale single layer —
            // the inner loop of every Figure-5 surrogate fit.
            Rng net_rng(5);
            nn::SingleLayerNet net(net_rng, 784, 10, nn::Activation::Linear, nn::Loss::Mse);
            const tensor::Matrix X = tensor::Matrix::random_uniform(rng, 32, 784);
            h.run("batch_forward_32x784", 32 * 784 * 10, [&] {
                volatile double sink = net.layer().forward_batch(X)(0, 0);
                (void)sink;
            });

            // The surrogate's power model (Eq. 9's p̂) reduces to this kernel.
            const tensor::Matrix W = tensor::Matrix::random_normal(rng, 10, 3072);
            h.run("column_abs_sums_10x3072", 10 * 3072, [&] {
                volatile double sink = tensor::column_abs_sums(W)[0];
                (void)sink;
            });
        }

        std::cout << "\n## Microbenchmarks\n\n" << h.table;
        const std::string out_path = cli.str("out");
        if (!h.rec.write(out_path)) {
            std::fprintf(stderr, "bench_micro: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::cout << "\nResults written to " << out_path << "\n";
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_micro: %s\n", e.what());
        return 1;
    }
}
