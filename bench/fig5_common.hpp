// Shared driver for the two Figure-5 benches (MNIST-like / CIFAR-like).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/fig5.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/data/loaders.hpp"

namespace xbarsec::benchfig5 {

struct DatasetSpec {
    const char* cli_summary;
    const char* dataset_label;
    bool cifar;  ///< false ⇒ MNIST-like
    const char* row_label_only;
    const char* row_raw;
    // Default sweep sizes (CIFAR's 3072-dim inputs cost ~4× MNIST per
    // sample, so its defaults are smaller to keep the bench in minutes).
    const char* default_train;
    const char* default_queries;
    const char* default_eval;
};

inline int run(const DatasetSpec& spec, int argc, char** argv) {
    Cli cli(spec.cli_summary);
    cli.flag("runs", "5", "independent runs per cell (paper: 10)");
    cli.flag("train", spec.default_train, "training-pool samples");
    cli.flag("test", "1500", "test samples");
    cli.flag("epochs", "15", "oracle training epochs");
    cli.flag("queries", spec.default_queries, "query-count sweep Q");
    cli.flag("lambdas", "0,0.002,0.004,0.006,0.008,0.01", "power-loss weight sweep");
    cli.flag("eps", "0.1", "FGSM attack strength (paper: 0.1)");
    cli.flag("eval", spec.default_eval, "adversarial evaluation subsample (0 = full test set)");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real dataset files (optional)");
    cli.flag("threads", "0", "worker threads (0 = hardware)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));

        core::Fig5Options options;
        options.runs = static_cast<std::size_t>(cli.integer("runs"));
        options.fgsm_eps = cli.real("eps");
        options.eval_limit = static_cast<std::size_t>(cli.integer("eval"));
        options.seed = load.seed;
        options.query_counts.clear();
        for (const long long q : cli.integer_list("queries")) {
            options.query_counts.push_back(static_cast<std::size_t>(q));
        }
        options.lambdas = cli.real_list("lambdas");

        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            options.runs = 2;
            options.query_counts = {10, 100};
            options.lambdas = {0.0, 0.005};
            options.eval_limit = 60;
            epochs = 4;
        }

        ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
        options.pool = &pool;

        WallTimer timer;
        const data::DataSplit split =
            spec.cifar ? data::load_cifar10_like(load) : data::load_mnist_like(load);

        // The oracle outputs are linear+MSE (the paper's Section-IV setup:
        // "only linear activation function is used").
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::linear_mse());
        config.train.epochs = epochs;

        for (const bool raw : {false, true}) {
            core::Fig5Options row_options = options;
            row_options.raw_outputs = raw;
            const core::Fig5Result result = core::run_fig5(
                split, spec.dataset_label, core::OutputConfig::linear_mse(), config, row_options);

            const char* row_name = raw ? spec.row_raw : spec.row_label_only;
            std::cout << "\n## Figure 5 " << row_name << " — " << result.label
                      << " (oracle clean acc "
                      << Table::format_number(result.oracle_clean_accuracy_mean, 3) << ", "
                      << options.runs << " runs)\n";
            const Table sur = core::render_fig5_surrogate_accuracy(result);
            const Table adv = core::render_fig5_adversarial_accuracy(result);
            const Table imp = core::render_fig5_improvement(result);
            std::cout << "\n### Surrogate test accuracy (panels a/d/g/j)\n\n"
                      << sur << "\n### Oracle accuracy under FGSM(eps="
                      << Table::format_number(options.fgsm_eps, 2)
                      << ") from the surrogate (panels b/e/h/k)\n\n"
                      << adv
                      << "\n### Improvement vs lambda=0 with significance (* = p<0.05; "
                         "panels c/f/i/l)\n\n"
                      << imp;
            const std::string stem =
                core::results_dir() + "/fig5_" + core::sanitize_label(result.label);
            sur.write_csv(stem + "_surrogate_acc.csv");
            adv.write_csv(stem + "_adv_acc.csv");
            imp.write_csv(stem + "_improvement.csv");
        }
        std::cout << "\nPaper shape (" << spec.dataset_label
                  << "): see EXPERIMENTS.md — power info helps at moderate Q on MNIST "
                     "(many *), little/none on CIFAR; benefit vanishes once Q exceeds the "
                     "input dimension.\n";
        log::info("fig5 bench finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_fig5: %s\n", e.what());
        return 1;
    }
}

}  // namespace xbarsec::benchfig5
