// Shared driver for the two Figure-5 benches (MNIST-like / CIFAR-like):
// a thin prefix filter over the fig5/* scenario registry entries.
#pragma once

#include "scenario_bench_common.hpp"

namespace xbarsec::benchfig5 {

inline int run(const char* summary, const std::string& prefix, int argc, char** argv) {
    return benchscenario::run_prefix(
        summary, prefix, argc, argv,
        "Paper shape: see EXPERIMENTS.md — power info helps at moderate Q on MNIST (many *), "
        "little/none on CIFAR; benefit vanishes once Q exceeds the input dimension.");
}

}  // namespace xbarsec::benchfig5
