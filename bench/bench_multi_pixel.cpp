// Ablation X1 — the Section-III remark: attacking the pixels with the
// top-N column 1-norms (random ± per pixel) *loses* effectiveness as N
// grows, because all directions must be guessed right ((1/2)^N). The
// all-add and white-box-direction variants are included for contrast.
#include <cstdio>
#include <iostream>

#include "xbarsec/attack/multi_pixel.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/sidechannel/probe.hpp"

using namespace xbarsec;

int main(int argc, char** argv) {
    Cli cli("bench_multi_pixel — top-N 1-norm multi-pixel attack (Section III remark)");
    cli.flag("train", "5000", "training samples");
    cli.flag("test", "1000", "test samples");
    cli.flag("epochs", "12", "victim training epochs");
    cli.flag("strength", "5.0", "attack strength per pixel");
    cli.flag("pixels", "1,2,4,8,16,32", "N sweep (top-N 1-norm pixels)");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real MNIST files (optional)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        std::vector<long long> pixel_counts = cli.integer_list("pixels");
        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            pixel_counts = {1, 4};
            epochs = 4;
        }

        WallTimer timer;
        const data::DataSplit split = data::load_mnist_like(load);
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = epochs;
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);
        const tensor::Vector l1 =
            sidechannel::probe_columns(oracle.power_measure_fn(), oracle.inputs())
                .conductance_sums;

        const double strength = cli.real("strength");
        // Two regimes: fixed per-pixel strength (total perturbation grows
        // with N) and fixed total l1 budget (strength/N per pixel — the
        // regime where the paper's (1/2)^N direction-guessing argument
        // bites, because random signs cancel).
        Table table({"N", "Rand acc (per-pixel)", "Rand acc (budget)", "AllAdd acc (budget)",
                     "OracleDir acc (per-pixel)"});
        for (const long long n : pixel_counts) {
            Rng rng(load.seed + static_cast<std::uint64_t>(n));
            const auto pixels = static_cast<std::size_t>(n);
            const double per_budget = strength / static_cast<double>(n);
            table.begin_row();
            table.add(n);
            table.add(attack::evaluate_multi_pixel_attack(
                          victim.net, split.test, l1, pixels, strength,
                          attack::MultiPixelDirection::RandomPerPixel, rng),
                      4);
            table.add(attack::evaluate_multi_pixel_attack(
                          victim.net, split.test, l1, pixels, per_budget,
                          attack::MultiPixelDirection::RandomPerPixel, rng),
                      4);
            table.add(attack::evaluate_multi_pixel_attack(
                          victim.net, split.test, l1, pixels, per_budget,
                          attack::MultiPixelDirection::AllAdd, rng),
                      4);
            table.add(attack::evaluate_multi_pixel_attack(
                          victim.net, split.test, l1, pixels, strength,
                          attack::MultiPixelDirection::Oracle, rng),
                      4);
        }
        std::cout << "\n## Multi-pixel attack vs N (clean acc "
                  << Table::format_number(victim.test_accuracy, 3) << ", strength "
                  << Table::format_number(strength, 1) << ")\n\n"
                  << table << "\n"
                  << "Paper shape: at a FIXED TOTAL BUDGET, random-direction accuracy rises "
                     "with N (attack weakens; direction guessing cancels, the paper's "
                     "(1/2)^N argument), while the budget-matched AllAdd baseline shows the "
                     "cancellation is the cause. With fixed per-pixel strength the total "
                     "perturbation grows and accuracy simply falls.\n";
        table.write_csv(core::results_dir() + "/multi_pixel.csv");
        log::info("bench_multi_pixel finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_multi_pixel: %s\n", e.what());
        return 1;
    }
}
