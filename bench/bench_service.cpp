// Multi-tenant serving throughput: many concurrent clients issuing
// individual label queries against one deployment, with and without the
// OracleService coalescing queue.
//
// Three paths per client count, all driving the same 784×10
// synthetic-MNIST victim:
//   * direct-scalar       — C threads calling query_label straight on the
//                           shared backend, one vector at a time (what the
//                           pre-service Oracle API forced on every client);
//   * service-uncoalesced — the same per-vector stream through the
//                           service with coalescing disabled (max_batch=1:
//                           every submission is its own backend call);
//   * service-coalesced   — the coalescing queue on: concurrently
//                           submitted vectors are gathered into one
//                           query_labels GEMM batch per flush.
// A second series fixes 8 clients and sweeps max_batch, recording
// throughput against the *realised* mean coalesced batch size. A third
// series sweeps the backend fleet size (replicas@N: N independent
// crossbar replicas behind the routing policy), and a fourth isolates
// the max_batch/pipeline-depth interaction (depth@D: max_batch fixed at
// 1024 while the per-client pipeline depth D varies — the realised mean
// batch tracks clients x D, not max_batch; see ServiceConfig::max_batch).
//
// Results go to BENCH_service.json through the shared recorder. The
// acceptance gates (full runs): coalesced >= 3x uncoalesced per-vector
// issue at 8 concurrent clients, and >= 2.5x single-replica coalesced
// throughput at 4 replicas on hosts with >= 4 cores (recorded but not
// gated on smaller hosts).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "record.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/service.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"

using namespace xbarsec;

namespace {

/// In-flight futures per client before draining: deep enough to keep the
/// coalescer fed, small enough to stay realistic for an online client.
constexpr std::size_t kPipeline = 64;

/// Client-side batching for the batched-submission series: each client
/// packs 32 queries per submit_labels call, 4 batches in flight.
constexpr std::size_t kClientBatch = 32;
constexpr std::size_t kBatchWindow = 4;

double run_direct_scalar(core::CrossbarOracle& oracle, const tensor::Matrix& pool,
                         std::size_t clients, std::size_t per_client) {
    WallTimer timer;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (std::size_t q = 0; q < per_client; ++q) {
                (void)oracle.query_label(pool.row((c * per_client + q) % pool.rows()));
            }
        });
    }
    for (auto& t : threads) t.join();
    return timer.seconds();
}

/// Per-vector request-response issue through the service: each client
/// waits for every answer before sending the next query — the usage
/// pattern the pre-service Oracle& API forced on concurrent clients.
/// With max_batch = 1 this is the uncoalesced baseline of the
/// acceptance gate.
double run_request_response(core::OracleService& service, const tensor::Matrix& pool,
                            std::size_t clients, std::size_t per_client) {
    std::vector<core::Session> sessions;
    sessions.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) sessions.push_back(service.open_session());
    WallTimer timer;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            core::Oracle& oracle = sessions[c].oracle();
            for (std::size_t q = 0; q < per_client; ++q) {
                (void)oracle.query_label(pool.row((c * per_client + q) % pool.rows()));
            }
        });
    }
    for (auto& t : threads) t.join();
    return timer.seconds();
}

/// Async batched submission: each client packs kClientBatch queries per
/// submit_labels call and keeps kBatchWindow batches in flight; the
/// coalescer merges batches from all clients into max_batch-row GEMMs.
double run_batched_clients(core::OracleService& service, const tensor::Matrix& pool,
                           std::size_t clients, std::size_t per_client) {
    std::vector<core::Session> sessions;
    sessions.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) sessions.push_back(service.open_session());
    WallTimer timer;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<std::future<std::vector<int>>> window;
            window.reserve(kBatchWindow);
            for (std::size_t q = 0; q < per_client; q += kClientBatch) {
                const std::size_t rows = std::min(kClientBatch, per_client - q);
                tensor::Matrix U(rows, pool.cols());
                for (std::size_t r = 0; r < rows; ++r) {
                    const auto src = pool.row_span((c * per_client + q + r) % pool.rows());
                    auto dst = U.row_span(r);
                    std::copy(src.begin(), src.end(), dst.begin());
                }
                window.push_back(sessions[c].submit_labels(std::move(U)));
                if (window.size() == kBatchWindow) {
                    for (auto& f : window) (void)f.get();
                    window.clear();
                }
            }
            for (auto& f : window) (void)f.get();
        });
    }
    for (auto& t : threads) t.join();
    return timer.seconds();
}

double run_service_clients(core::OracleService& service, const tensor::Matrix& pool,
                           std::size_t clients, std::size_t per_client,
                           std::size_t depth = kPipeline) {
    std::vector<core::Session> sessions;
    sessions.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) sessions.push_back(service.open_session());
    WallTimer timer;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<std::future<int>> window;
            window.reserve(depth);
            for (std::size_t q = 0; q < per_client; ++q) {
                window.push_back(
                    sessions[c].submit_label(pool.row((c * per_client + q) % pool.rows())));
                if (window.size() == depth) {
                    for (auto& f : window) (void)f.get();
                    window.clear();
                }
            }
            for (auto& f : window) (void)f.get();
        });
    }
    for (auto& t : threads) t.join();
    return timer.seconds();
}

/// Zipf(s) rank CDF over n pool rows: weight(r) = (r+1)^-s. s = 0 is
/// uniform traffic; s = 1.0 sends ~92% of queries to the hottest 2048 of
/// 4096 rows — the "popular inputs dominate" regime the result cache
/// exists for.
std::vector<double> zipf_cdf(std::size_t n, double skew) {
    std::vector<double> cdf(n);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
        cdf[r] = total;
    }
    for (double& v : cdf) v /= total;
    return cdf;
}

std::size_t zipf_sample(const std::vector<double>& cdf, double u) {
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return std::min(static_cast<std::size_t>(it - cdf.begin()), cdf.size() - 1);
}

struct ZipfRun {
    double qps = 0.0;
    double hit_rate = 0.0;          ///< 0 for the cache-off baseline
    std::uint64_t served = 0;       ///< queries answered (budgeted sessions stop early)
};

/// Zipf-distributed request-response traffic: every client waits for each
/// answer before the next query (interactive tenants — the traffic shape
/// where per-query latency, and therefore the cache, matters most).
/// Budgeted sessions stop at QueryBudgetExceeded and report how many
/// queries they actually got served.
ZipfRun run_zipf_clients(core::OracleService& service, const tensor::Matrix& pool,
                         const std::vector<double>& cdf, std::size_t clients,
                         std::size_t per_client, std::uint64_t seed,
                         const core::SessionConfig& session_config) {
    std::vector<core::Session> sessions;
    sessions.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        sessions.push_back(service.open_session(session_config));
    }
    const std::uint64_t hits0 = service.cache_hits();
    const std::uint64_t misses0 = service.cache_misses();
    std::atomic<std::uint64_t> served{0};
    WallTimer timer;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            core::Oracle& oracle = sessions[c].oracle();
            Rng rng(seed ^ (0x2F1Full * (c + 1)));
            std::uint64_t ok = 0;
            for (std::size_t q = 0; q < per_client; ++q) {
                const std::size_t row = zipf_sample(cdf, rng.uniform());
                try {
                    (void)oracle.query_label(pool.row(row));
                } catch (const core::QueryBudgetExceeded&) {
                    break;  // budget spent; the session served `ok` queries
                }
                ++ok;
            }
            served.fetch_add(ok, std::memory_order_relaxed);
        });
    }
    for (auto& t : threads) t.join();
    ZipfRun run;
    run.served = served.load(std::memory_order_relaxed);
    run.qps = static_cast<double>(run.served) / timer.seconds();
    const std::uint64_t hits = service.cache_hits() - hits0;
    const std::uint64_t misses = service.cache_misses() - misses0;
    run.hit_rate = hits + misses > 0
                       ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                       : 0.0;
    return run;
}

struct ServiceRun {
    double qps = 0.0;
    double mean_batch = 0.0;       ///< realised rows per backend call
    double mean_queue_depth = 0.0; ///< fleet-total pending rows, sampled over the run
    std::uint64_t max_queue_depth = 0;
    std::vector<std::uint64_t> replica_rows;  ///< flushed rows per replica (timed run)
};

/// One timed coalesced-scalar measurement over a service (single backend
/// or replica fleet): throughput, realised mean batch, per-replica rows,
/// and a sampled per-replica queue-depth profile (the routing signal).
ServiceRun measure_service_over(core::OracleService& service, const tensor::Matrix& query_pool,
                                std::size_t clients, std::size_t per_client,
                                std::size_t depth = kPipeline) {
    // Untimed warm-up pass (first-touch faults, cache fills), matching
    // the other benches' measurement protocol.
    (void)run_service_clients(service, query_pool, clients, per_client / 4 + 1, depth);
    const std::uint64_t batches0 = service.flushed_batches();
    const std::uint64_t rows0 = service.flushed_rows();
    std::vector<std::uint64_t> replica_rows0(service.replica_count());
    for (std::size_t k = 0; k < service.replica_count(); ++k) {
        replica_rows0[k] = service.flushed_rows(k);
    }

    // Sample the fleet-total queue depth while the clients run: the mean
    // says how much coalescable work was pending, the max bounds the
    // backlog the routing policy had to spread.
    std::atomic<bool> sampling{true};
    std::uint64_t depth_samples = 0, depth_sum = 0, depth_max = 0;
    std::thread sampler([&] {
        while (sampling.load(std::memory_order_acquire)) {
            std::uint64_t total = 0;
            for (std::size_t k = 0; k < service.replica_count(); ++k) {
                total += service.queue_depth(k);
            }
            depth_sum += total;
            depth_max = std::max(depth_max, total);
            ++depth_samples;
            std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
    });
    const double secs = run_service_clients(service, query_pool, clients, per_client, depth);
    sampling.store(false, std::memory_order_release);
    sampler.join();

    ServiceRun run;
    run.qps = static_cast<double>(clients * per_client) / secs;
    const std::uint64_t batches = service.flushed_batches() - batches0;
    const std::uint64_t rows = service.flushed_rows() - rows0;
    run.mean_batch = batches > 0 ? static_cast<double>(rows) / static_cast<double>(batches) : 0.0;
    run.mean_queue_depth = depth_samples > 0
                               ? static_cast<double>(depth_sum) / static_cast<double>(depth_samples)
                               : 0.0;
    run.max_queue_depth = depth_max;
    run.replica_rows.resize(service.replica_count());
    for (std::size_t k = 0; k < service.replica_count(); ++k) {
        run.replica_rows[k] = service.flushed_rows(k) - replica_rows0[k];
    }
    return run;
}

ServiceRun measure_service(core::CrossbarOracle& backend, ThreadPool* pool,
                           const tensor::Matrix& query_pool, std::size_t clients,
                           std::size_t per_client, std::size_t max_batch,
                           std::size_t depth = kPipeline) {
    core::ServiceConfig config;
    config.pool = pool;
    config.max_batch = max_batch;
    core::OracleService service(backend, config);
    return measure_service_over(service, query_pool, clients, per_client, depth);
}

/// Appends the fleet-shape fields every result row carries (satellite:
/// replicas, routing, and the sampled per-replica queue depth).
void record_fleet_fields(bench::BenchRecorder& rec, std::size_t replicas,
                         core::RoutingPolicy routing, const ServiceRun& run) {
    rec.add("replicas", static_cast<long long>(replicas));
    rec.add("routing", core::to_string(routing));
    rec.add("mean_queue_depth", run.mean_queue_depth);
    rec.add("max_queue_depth", static_cast<long long>(run.max_queue_depth));
    for (std::size_t k = 0; k < run.replica_rows.size(); ++k) {
        rec.add("replica" + std::to_string(k) + "_rows",
                static_cast<long long>(run.replica_rows[k]));
    }
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_service — multi-client serving throughput with and without coalescing");
    cli.flag("clients", "1,2,4,8", "concurrent client counts to measure");
    cli.flag("queries", "8192", "label queries per client per measurement");
    cli.flag("max-batches", "16,64,256,1024", "coalescing max_batch sweep (at the most clients)");
    cli.flag("replicas", "1,2,4", "backend fleet sizes for the replica-scaling series");
    cli.flag("routing", "round-robin",
             "routing policy for the replica series (session-affine|round-robin|least-loaded)");
    cli.flag("depths", "16,64,256,512",
             "per-client pipeline depths for the max_batch-interaction series");
    cli.flag("skews", "0,0.6,1.0", "Zipf skew exponents for the result-cache traffic series");
    cli.flag("cache-capacity", "2048", "result-cache entries for the Zipf series");
    cli.flag("pool", "4096", "rows in the shared query pool");
    cli.flag("train", "2000", "victim training samples");
    cli.flag("epochs", "6", "victim training epochs");
    cli.flag("threads", "0", "backend worker threads (0 = hardware concurrency)");
    cli.flag("out", "BENCH_service.json", "JSON results path");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = 400;
        std::vector<long long> client_counts = cli.integer_list("clients");
        std::vector<long long> batch_sweep = cli.integer_list("max-batches");
        std::vector<long long> replica_sweep = cli.integer_list("replicas");
        std::vector<long long> depth_sweep = cli.integer_list("depths");
        std::vector<double> skew_sweep = cli.real_list("skews");
        std::size_t cache_capacity = static_cast<std::size_t>(cli.integer("cache-capacity"));
        const core::RoutingPolicy routing = core::parse_routing_policy(cli.str("routing"));
        std::size_t per_client = static_cast<std::size_t>(cli.integer("queries"));
        std::size_t pool_rows = static_cast<std::size_t>(cli.integer("pool"));
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = static_cast<std::size_t>(cli.integer("epochs"));
        const bool smoke = cli.boolean("smoke");
        if (smoke) {
            load.train_count = 400;
            load.test_count = 120;
            client_counts = {2, 8};
            batch_sweep = {16, 256};
            replica_sweep = {1, 2};
            depth_sweep = {16, 256};
            per_client = 1024;
            pool_rows = 1024;
            config.train.epochs = 2;
            skew_sweep = {0, 1.0};
            cache_capacity = 512;  // half the smoke pool, matching the full-run ratio
        }

        const data::DataSplit split = data::load_mnist_like(load);
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle backend = core::deploy_victim(victim.net, config);

        // A one-worker pool is pure scheduling overhead — run the backend
        // GEMMs inline on the flusher thread instead on such hosts.
        const std::size_t workers = cli.integer("threads") > 0
                                        ? static_cast<std::size_t>(cli.integer("threads"))
                                        : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
        std::unique_ptr<ThreadPool> pool;
        if (workers > 1) {
            pool = std::make_unique<ThreadPool>(workers);
            backend.set_thread_pool(pool.get());
        }

        Rng rng(7);
        const tensor::Matrix query_pool =
            tensor::Matrix::random_uniform(rng, pool_rows, backend.inputs());

        bench::BenchRecorder rec(
            "service", "synthetic-mnist-784x10 victim, " + std::to_string(workers) +
                           (workers == 1 ? " backend worker, " : " backend workers, ") +
                           std::to_string(per_client) +
                           " label queries per client, pipeline depth " +
                           std::to_string(kPipeline));

        // -- series 1: throughput vs client count --------------------------------
        //
        // Per-vector baselines: "direct" calls the backend with no
        // service at all; "uncoalesced" issues one query at a time
        // through a session and waits for each answer, with coalescing
        // disabled (max_batch = 1: every vector is its own backend call
        // — the gate's uncoalesced per-vector reference). Coalesced
        // paths: scalar async submissions (pipelined), and client-side
        // batches of kClientBatch (the designed high-throughput usage).
        Table table({"Clients", "Direct q/s", "Uncoalesced q/s", "Coal. scalar q/s",
                     "Coal. batch q/s", "Mean batch", "Scalar speedup", "Batch speedup"});
        double gate_speedup = 0.0;
        std::size_t gate_clients = 0;
        for (const long long cc : client_counts) {
            const std::size_t clients = static_cast<std::size_t>(cc);
            if (clients < 1) throw ConfigError("--clients entries must be >= 1");
            const double total = static_cast<double>(clients * per_client);

            (void)run_direct_scalar(backend, query_pool, clients, per_client / 4 + 1);  // warm
            const double direct_qps =
                total / run_direct_scalar(backend, query_pool, clients, per_client);
            double uncoalesced_qps = 0.0;
            {
                core::ServiceConfig config;
                config.pool = pool.get();
                config.max_batch = 1;  // per-vector: no coalescing anywhere
                core::OracleService service(backend, config);
                (void)run_request_response(service, query_pool, clients, per_client / 4 + 1);
                uncoalesced_qps =
                    total / run_request_response(service, query_pool, clients, per_client);
            }
            const ServiceRun coalesced =
                measure_service(backend, pool.get(), query_pool, clients, per_client, 256);
            double batched_qps = 0.0;
            double batched_mean_batch = 0.0;
            {
                core::ServiceConfig config;
                config.pool = pool.get();
                core::OracleService service(backend, config);
                (void)run_batched_clients(service, query_pool, clients, per_client / 4 + 1);
                const std::uint64_t batches0 = service.flushed_batches();
                const std::uint64_t rows0 = service.flushed_rows();
                batched_qps =
                    total / run_batched_clients(service, query_pool, clients, per_client);
                const std::uint64_t batches = service.flushed_batches() - batches0;
                batched_mean_batch =
                    batches > 0 ? static_cast<double>(service.flushed_rows() - rows0) /
                                      static_cast<double>(batches)
                                : 0.0;
            }

            const double scalar_speedup = coalesced.qps / uncoalesced_qps;
            const double batch_speedup = batched_qps / uncoalesced_qps;
            if (clients >= gate_clients) {
                gate_clients = clients;
                gate_speedup = batch_speedup;
            }

            table.begin_row();
            table.add(static_cast<long long>(clients));
            table.add(direct_qps, 0);
            table.add(uncoalesced_qps, 0);
            table.add(coalesced.qps, 0);
            table.add(batched_qps, 0);
            table.add(batched_mean_batch, 1);
            table.add(scalar_speedup, 2);
            table.add(batch_speedup, 2);

            rec.begin("clients@" + std::to_string(clients));
            rec.add("clients", static_cast<long long>(clients));
            rec.add("direct_scalar_qps", direct_qps);
            rec.add("uncoalesced_qps", uncoalesced_qps);
            rec.add("coalesced_scalar_qps", coalesced.qps);
            rec.add("coalesced_batch_qps", batched_qps);
            rec.add("mean_coalesced_batch", batched_mean_batch);
            rec.add("scalar_speedup_vs_uncoalesced", scalar_speedup);
            rec.add("batch_speedup_vs_uncoalesced", batch_speedup);
            record_fleet_fields(rec, 1, core::RoutingPolicy::SessionAffine, coalesced);
        }

        // -- series 2: throughput vs coalesced-batch size ------------------------
        const std::size_t sweep_clients =
            static_cast<std::size_t>(client_counts.back());
        Table sweep_table({"max_batch", "Coalesced q/s", "Mean batch"});
        for (const long long mb : batch_sweep) {
            if (mb < 1) throw ConfigError("--max-batches entries must be >= 1");
            const ServiceRun run = measure_service(backend, pool.get(), query_pool, sweep_clients,
                                                   per_client, static_cast<std::size_t>(mb));
            sweep_table.begin_row();
            sweep_table.add(mb);
            sweep_table.add(run.qps, 0);
            sweep_table.add(run.mean_batch, 1);
            rec.begin("max_batch@" + std::to_string(mb));
            rec.add("clients", static_cast<long long>(sweep_clients));
            rec.add("max_batch", mb);
            rec.add("coalesced_qps", run.qps);
            rec.add("mean_coalesced_batch", run.mean_batch);
            record_fleet_fields(rec, 1, core::RoutingPolicy::SessionAffine, run);
        }

        // -- series 3: throughput vs replica count -------------------------------
        //
        // N independent crossbar replicas of the same victim (distinct
        // device-variation seeds) behind one service; the scalar
        // coalesced stream spreads over the fleet via the routing
        // policy. On a multicore host each replica's flusher + GEMM runs
        // on its own core, so throughput scales until the cores (or the
        // shared pool) saturate.
        Table replica_table({"Replicas", "Routing", "Coalesced q/s", "Mean batch",
                             "Speedup vs 1", "Rows/replica (min..max)"});
        double single_replica_qps = 0.0;
        double quad_replica_speedup = 0.0;
        for (const long long rc : replica_sweep) {
            if (rc < 1) throw ConfigError("--replicas entries must be >= 1");
            const std::size_t replicas = static_cast<std::size_t>(rc);
            std::vector<core::CrossbarOracle> fleet =
                core::deploy_victim_fleet(victim.net, config, replicas);
            std::vector<core::Oracle*> backends;
            backends.reserve(replicas);
            for (core::CrossbarOracle& replica : fleet) {
                replica.set_thread_pool(pool.get());
                backends.push_back(&replica);
            }
            core::ServiceConfig service_config;
            service_config.pool = pool.get();
            service_config.routing = routing;
            core::OracleService service(backends, service_config);
            const ServiceRun run =
                measure_service_over(service, query_pool, sweep_clients, per_client);
            if (replicas == 1) single_replica_qps = run.qps;
            const double speedup = single_replica_qps > 0.0 ? run.qps / single_replica_qps : 0.0;
            if (replicas == 4) quad_replica_speedup = speedup;

            std::uint64_t min_rows = run.replica_rows.empty() ? 0 : run.replica_rows.front();
            std::uint64_t max_rows = min_rows;
            for (const std::uint64_t rows : run.replica_rows) {
                min_rows = std::min(min_rows, rows);
                max_rows = std::max(max_rows, rows);
            }
            replica_table.begin_row();
            replica_table.add(rc);
            replica_table.add(core::to_string(routing));
            replica_table.add(run.qps, 0);
            replica_table.add(run.mean_batch, 1);
            replica_table.add(speedup, 2);
            replica_table.add(std::to_string(min_rows) + ".." + std::to_string(max_rows));

            rec.begin("replicas@" + std::to_string(replicas));
            rec.add("clients", static_cast<long long>(sweep_clients));
            rec.add("coalesced_qps", run.qps);
            rec.add("mean_coalesced_batch", run.mean_batch);
            rec.add("speedup_vs_1_replica", speedup);
            record_fleet_fields(rec, replicas, routing, run);
        }

        // -- series 4: the max_batch/pipeline-depth interaction ------------------
        //
        // max_batch pinned far above what the clients can supply: with C
        // clients at pipeline depth D, at most C x D rows are ever in
        // flight, so the realised mean batch saturates near min(C x D,
        // max_batch) and max_wait closes every window early. This is the
        // "max_batch@1024 plateaus near 437 rows" anomaly, isolated.
        constexpr std::size_t kDepthSeriesMaxBatch = 1024;
        Table depth_table({"Pipeline depth", "In-flight cap", "Coalesced q/s", "Mean batch"});
        for (const long long dd : depth_sweep) {
            if (dd < 1) throw ConfigError("--depths entries must be >= 1");
            const std::size_t depth = static_cast<std::size_t>(dd);
            const ServiceRun run = measure_service(backend, pool.get(), query_pool, sweep_clients,
                                                   per_client, kDepthSeriesMaxBatch, depth);
            depth_table.begin_row();
            depth_table.add(dd);
            depth_table.add(static_cast<long long>(sweep_clients * depth));
            depth_table.add(run.qps, 0);
            depth_table.add(run.mean_batch, 1);
            rec.begin("depth@" + std::to_string(depth));
            rec.add("clients", static_cast<long long>(sweep_clients));
            rec.add("pipeline_depth", static_cast<long long>(depth));
            rec.add("max_batch", static_cast<long long>(kDepthSeriesMaxBatch));
            rec.add("inflight_row_cap", static_cast<long long>(sweep_clients * depth));
            rec.add("coalesced_qps", run.qps);
            rec.add("mean_coalesced_batch", run.mean_batch);
            record_fleet_fields(rec, 1, core::RoutingPolicy::SessionAffine, run);
        }

        // -- series 5: Zipfian traffic through the result cache -------------------
        //
        // Request-response clients (each waits for every answer — the
        // interactive-tenant shape where per-query latency dominates)
        // sampling the pool by Zipf rank. Three configs per skew:
        // cache-off (today's fleet), the shared cross-session cache, and
        // the per-session-partitioned cache (the timing-channel defense;
        // partitioning costs cross-tenant reuse, so its hit rate shows
        // what the defense pays). Capacity covers the hottest
        // `cache_capacity` of `pool` rows.
        Table zipf_table({"Skew", "Cache", "q/s", "Hit rate", "Speedup vs off"});
        double zipf_gate_speedup = 0.0;
        double max_skew = 0.0;
        for (const double skew : skew_sweep) max_skew = std::max(max_skew, skew);
        for (const double skew : skew_sweep) {
            if (skew < 0.0) throw ConfigError("--skews entries must be >= 0");
            const std::vector<double> cdf = zipf_cdf(query_pool.rows(), skew);
            double off_qps = 0.0;
            for (int mode = 0; mode < 3; ++mode) {
                core::ServiceConfig service_config;
                service_config.pool = pool.get();
                service_config.cache.enabled = mode > 0;
                service_config.cache.capacity = cache_capacity;
                service_config.cache.partition_by_session = mode == 2;
                core::OracleService service(backend, service_config);
                (void)run_zipf_clients(service, query_pool, cdf, sweep_clients,
                                       per_client / 4 + 1, 11, {});  // warm
                const ZipfRun run = run_zipf_clients(service, query_pool, cdf, sweep_clients,
                                                     per_client, 13, {});
                if (mode == 0) off_qps = run.qps;
                const double speedup = off_qps > 0.0 ? run.qps / off_qps : 0.0;
                const char* label = mode == 0 ? "off" : (mode == 1 ? "shared" : "partitioned");
                if (mode == 1 && skew == max_skew) zipf_gate_speedup = speedup;

                zipf_table.begin_row();
                zipf_table.add(skew, 1);
                zipf_table.add(label);
                zipf_table.add(run.qps, 0);
                zipf_table.add(run.hit_rate, 3);
                zipf_table.add(speedup, 2);

                rec.begin("zipf@" + Table::format_number(skew, 1) + "/" + label);
                rec.add("skew", skew);
                rec.add("cache", label);
                rec.add("clients", static_cast<long long>(sweep_clients));
                rec.add("cache_capacity", static_cast<long long>(cache_capacity));
                rec.add("pool_rows", static_cast<long long>(query_pool.rows()));
                rec.add("qps", run.qps);
                rec.add("hit_rate", run.hit_rate);
                rec.add("speedup_vs_cache_off", speedup);
            }
        }

        // Hit-charging semantics at the highest skew: sessions on a
        // finite budget of per_client/2 inference queries. With
        // hits_charge_budget (the paper-faithful default) a hit spends
        // budget like any query; with it off, only misses charge, so a
        // hot-traffic tenant gets far more answers from the same budget.
        Table charge_table({"hits_charge_budget", "Served/client", "Budget", "q/s", "Hit rate"});
        {
            const std::vector<double> cdf = zipf_cdf(query_pool.rows(), max_skew);
            core::SessionConfig budgeted;
            budgeted.budget.max_inference = per_client / 2;
            for (const bool charge_hits : {true, false}) {
                core::ServiceConfig service_config;
                service_config.pool = pool.get();
                service_config.cache.enabled = true;
                service_config.cache.capacity = cache_capacity;
                service_config.cache.hits_charge_budget = charge_hits;
                core::OracleService service(backend, service_config);
                (void)run_zipf_clients(service, query_pool, cdf, sweep_clients,
                                       per_client / 4 + 1, 17, {});  // warm (unbudgeted)
                const ZipfRun run = run_zipf_clients(service, query_pool, cdf, sweep_clients,
                                                     per_client, 19, budgeted);
                charge_table.begin_row();
                charge_table.add(charge_hits ? "on" : "off");
                charge_table.add(static_cast<double>(run.served) /
                                     static_cast<double>(sweep_clients),
                                 0);
                charge_table.add(static_cast<long long>(budgeted.budget.max_inference));
                charge_table.add(run.qps, 0);
                charge_table.add(run.hit_rate, 3);
                rec.begin(std::string("hit_charge@") + (charge_hits ? "on" : "off"));
                rec.add("hits_charge_budget", charge_hits ? 1ll : 0ll);
                rec.add("skew", max_skew);
                rec.add("budget_per_client", static_cast<long long>(budgeted.budget.max_inference));
                rec.add("served_per_client", static_cast<double>(run.served) /
                                                 static_cast<double>(sweep_clients));
                rec.add("qps", run.qps);
                rec.add("hit_rate", run.hit_rate);
            }
        }

        std::cout << "\n## Multi-client label-query throughput (784×10 victim, " << workers
                  << (workers == 1 ? " backend worker)\n\n" : " backend workers)\n\n")
                  << table << "\n## Throughput vs coalescing max_batch ("
                  << sweep_clients << " clients)\n\n"
                  << sweep_table << "\n## Throughput vs replica count ("
                  << sweep_clients << " clients, " << core::to_string(routing) << ")\n\n"
                  << replica_table << "\n## Mean batch vs pipeline depth (max_batch "
                  << kDepthSeriesMaxBatch << ", " << sweep_clients << " clients)\n\n"
                  << depth_table << "\n## Zipfian traffic through the result cache ("
                  << sweep_clients << " request-response clients, capacity " << cache_capacity
                  << "/" << query_pool.rows() << " rows)\n\n"
                  << zipf_table << "\n## Hit-charging semantics (skew "
                  << Table::format_number(max_skew, 1) << ", budgeted sessions)\n\n"
                  << charge_table;

        const std::string out_path = cli.str("out");
        if (!rec.write(out_path)) {
            std::fprintf(stderr, "bench_service: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::cout << "\nResults written to " << out_path << "\n";

        // Acceptance gate (full runs): coalesced async submission must
        // buy >= 3x over uncoalesced per-vector (request-response) issue
        // at the highest client count. Smoke runs are milliseconds of
        // wall time and not gated.
        int exit_code = 0;
        if (!smoke) {
            const bool pass = gate_speedup >= 3.0;
            std::cout << "coalesced vs uncoalesced per-vector issue at " << gate_clients
                      << " clients: " << Table::format_number(gate_speedup, 2)
                      << (pass ? " (PASS, >= 3x)" : " (FAIL, below the 3x target)") << "\n";
            if (!pass) exit_code = 1;

            // Replica-scaling gate: 4 replicas must buy >= 2.5x the
            // single-replica coalesced throughput — but only on hosts
            // with >= 4 cores (one flusher per replica needs a core to
            // run on). Smaller hosts record the numbers without gating.
            if (quad_replica_speedup > 0.0) {
                if (std::thread::hardware_concurrency() >= 4) {
                    const bool replica_pass = quad_replica_speedup >= 2.5;
                    std::cout << "4-replica vs single-replica coalesced throughput: "
                              << Table::format_number(quad_replica_speedup, 2)
                              << (replica_pass ? " (PASS, >= 2.5x)"
                                               : " (FAIL, below the 2.5x target)")
                              << "\n";
                    if (!replica_pass) exit_code = 1;
                } else {
                    std::cout << "4-replica vs single-replica coalesced throughput: "
                              << Table::format_number(quad_replica_speedup, 2)
                              << " (gate skipped: host has < 4 cores; recorded only)\n";
                }
            }

            // Zipf cache gate: the shared cache must buy >= 5x
            // request-response throughput at the highest skew. A hit runs
            // on the submitting thread while a miss pays the queue
            // roundtrip — on a 1-core host the miss baseline is itself
            // throttled by flusher/client context switching, so the ratio
            // is only meaningful with >= 2 cores (recorded regardless).
            if (zipf_gate_speedup > 0.0) {
                if (std::thread::hardware_concurrency() >= 2) {
                    const bool zipf_pass = zipf_gate_speedup >= 5.0;
                    std::cout << "shared-cache vs cache-off throughput at skew "
                              << Table::format_number(max_skew, 1) << ": "
                              << Table::format_number(zipf_gate_speedup, 2)
                              << (zipf_pass ? " (PASS, >= 5x)" : " (FAIL, below the 5x target)")
                              << "\n";
                    if (!zipf_pass) exit_code = 1;
                } else {
                    std::cout << "shared-cache vs cache-off throughput at skew "
                              << Table::format_number(max_skew, 1) << ": "
                              << Table::format_number(zipf_gate_speedup, 2)
                              << " (gate skipped: host has < 2 cores; recorded only)\n";
                }
            }
        }
        return exit_code;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_service: %s\n", e.what());
        return 1;
    }
}
