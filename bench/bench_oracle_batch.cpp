// Batched vs per-vector oracle query throughput on the synthetic-MNIST
// victim (784 inputs × 10 classes) — the measurement behind the batched
// Oracle API: query_labels / query_raw_batch / query_power_batch route
// through the crossbar's GEMM/matvec kernel layer instead of the
// per-vector simulation loop.
//
// Both paths stream *fresh* query windows drawn from a pool much larger
// than L2, so each batch size is measured at steady state. (Re-measuring
// one small batch over and over — what this bench did before — lets the
// batch stay cache-resident across repetitions and inflates small-batch
// throughput by ~50% relative to large batches, an artifact no real
// attacker ever sees.) Results are written to BENCH_oracle.json through
// the shared recorder.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "record.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"

using namespace xbarsec;

namespace {

struct Measurement {
    std::string query;
    std::size_t batch = 0;
    double scalar_qps = 0.0;
    double batched_qps = 0.0;
    double speedup = 0.0;
};

/// Non-ideal (line_resistance > 0) series: the baseline is the retained
/// per-cell reference simulation — the per-vector fallback the batched
/// IR-drop kernel replaced.
struct NonIdealMeasurement {
    std::string query;
    std::size_t batch = 0;
    double fallback_qps = 0.0;  ///< per-vector reference simulation
    double scalar_qps = 0.0;    ///< vectorized per-vector path
    double batched_qps = 0.0;   ///< batched GEMM/rowwise-dot path
    double speedup_vs_fallback = 0.0;
};

double seconds_for(const std::function<void()>& body, std::size_t reps) {
    WallTimer timer;
    for (std::size_t i = 0; i < reps; ++i) body();
    return timer.seconds();
}

/// Shared measurement protocol: one untimed warm-up pass (first-touch
/// faults, cache fills), then `reps` timed passes over `queries_per_pass`
/// queries. Every path in this bench — including the reference fallback —
/// is measured through this helper so the protocols cannot drift.
double qps_for(const std::function<void()>& pass, double queries_per_pass, std::size_t reps) {
    pass();  // warm
    return queries_per_pass * static_cast<double>(reps) / seconds_for(pass, reps);
}

/// One pass = every window of the pool queried once; `reps` passes per
/// measurement, so both paths touch pool_rows × reps fresh inputs.
Measurement measure(core::CrossbarOracle& oracle, const std::vector<tensor::Matrix>& windows,
                    const std::string& query, std::size_t reps) {
    Measurement m;
    m.query = query;
    m.batch = windows.front().rows();

    const auto scalar_pass = [&] {
        for (const tensor::Matrix& U : windows) {
            for (std::size_t r = 0; r < U.rows(); ++r) {
                if (query == "labels") {
                    (void)oracle.query_label(U.row(r));
                } else if (query == "raw") {
                    (void)oracle.query_raw(U.row(r));
                } else {
                    (void)oracle.query_power(U.row(r));
                }
            }
        }
    };
    const auto batched_pass = [&] {
        for (const tensor::Matrix& U : windows) {
            if (query == "labels") {
                (void)oracle.query_labels(U);
            } else if (query == "raw") {
                (void)oracle.query_raw_batch(U);
            } else {
                (void)oracle.query_power_batch(U);
            }
        }
    };

    const double queries = static_cast<double>(windows.size() * windows.front().rows());
    m.scalar_qps = qps_for(scalar_pass, queries, reps);
    m.batched_qps = qps_for(batched_pass, queries, reps);
    m.speedup = m.batched_qps / m.scalar_qps;
    return m;
}

NonIdealMeasurement measure_nonideal(core::CrossbarOracle& oracle,
                                     const std::vector<tensor::Matrix>& windows,
                                     const std::string& query, std::size_t reps) {
    NonIdealMeasurement m;
    m.query = query;
    m.batch = windows.front().rows();
    const xbar::Crossbar& crossbar = oracle.hardware_for_evaluation().crossbar();

    const auto fallback_pass = [&] {
        for (const tensor::Matrix& U : windows) {
            for (std::size_t r = 0; r < U.rows(); ++r) {
                if (query == "power") {
                    (void)crossbar.total_current_reference(U.row(r));
                } else {
                    (void)crossbar.output_currents_reference(U.row(r));
                }
            }
        }
    };
    const auto scalar_pass = [&] {
        for (const tensor::Matrix& U : windows) {
            for (std::size_t r = 0; r < U.rows(); ++r) {
                if (query == "power") {
                    (void)oracle.query_power(U.row(r));
                } else {
                    (void)oracle.query_label(U.row(r));
                }
            }
        }
    };
    const auto batched_pass = [&] {
        for (const tensor::Matrix& U : windows) {
            if (query == "power") {
                (void)oracle.query_power_batch(U);
            } else {
                (void)oracle.query_labels(U);
            }
        }
    };

    const double queries = static_cast<double>(windows.size() * windows.front().rows());
    // The reference pass is ~2 orders slower; one timed rep bounds its
    // runtime (it still gets qps_for's untimed warm-up pass, so the
    // speedup gate compares steady state against steady state).
    m.fallback_qps = qps_for(fallback_pass, queries, 1);
    m.scalar_qps = qps_for(scalar_pass, queries, reps);
    m.batched_qps = qps_for(batched_pass, queries, reps);
    m.speedup_vs_fallback = m.batched_qps / m.fallback_qps;
    return m;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_oracle_batch — batched vs per-vector oracle query throughput");
    cli.flag("batches", "64,256,1024", "batch sizes to measure");
    cli.flag("pool", "8192", "rows in the streamed query pool (>> L2)");
    cli.flag("reps", "4", "passes over the pool per measurement");
    cli.flag("train", "2000", "victim training samples");
    cli.flag("epochs", "6", "victim training epochs");
    cli.flag("threads", "0", "worker threads for the batched path (0 = serial)");
    cli.flag("out", "BENCH_oracle.json", "JSON results path");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = 400;
        std::vector<long long> batches = cli.integer_list("batches");
        for (const long long batch : batches) {
            if (batch < 1) throw ConfigError("--batches entries must be >= 1");
        }
        std::size_t pool_rows = static_cast<std::size_t>(cli.integer("pool"));
        std::size_t reps = static_cast<std::size_t>(cli.integer("reps"));
        if (reps < 1) throw ConfigError("--reps must be >= 1");
        const bool smoke = cli.boolean("smoke");
        const std::size_t threads = static_cast<std::size_t>(cli.integer("threads"));
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (smoke) {
            load.train_count = 400;
            load.test_count = 120;
            batches = {64, 256};
            pool_rows = 1024;
            reps = 2;
            config.train.epochs = 2;
        }

        const data::DataSplit split = data::load_mnist_like(load);
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);

        // The non-ideal deployment at the fig3 shape: IR drop engaged, so
        // every batched query runs the attenuated-conductance kernel that
        // replaced the per-vector fallback.
        constexpr double kLineResistance = 50.0;
        core::VictimConfig nonideal_config = config;
        nonideal_config.nonideal.line_resistance = kLineResistance;
        core::CrossbarOracle nonideal_oracle = core::deploy_victim(victim.net, nonideal_config);

        std::unique_ptr<ThreadPool> pool;
        if (threads > 0) {
            pool = std::make_unique<ThreadPool>(threads);
            oracle.set_thread_pool(pool.get());
            nonideal_oracle.set_thread_pool(pool.get());
        }

        Table table({"Query", "Batch", "Per-vector q/s", "Batched q/s", "Speedup"});
        Table nonideal_table({"Query", "Batch", "Fallback q/s", "Per-vector q/s", "Batched q/s",
                              "Speedup vs fallback"});
        bench::BenchRecorder rec(
            "oracle_batch", "synthetic-mnist-784x10 victim, streamed pool of " +
                                std::to_string(pool_rows) + " rows, " +
                                std::to_string(threads) + " worker threads");
        std::vector<Measurement> results;
        std::vector<NonIdealMeasurement> nonideal_results;
        Rng rng(7);
        const tensor::Matrix query_pool =
            tensor::Matrix::random_uniform(rng, pool_rows, oracle.inputs());

        for (const long long batch : batches) {
            const std::size_t b = static_cast<std::size_t>(batch);
            if (b > pool_rows) throw ConfigError("--pool must be >= every batch size");
            // Pre-sliced consecutive windows; both paths stream these.
            std::vector<tensor::Matrix> windows;
            for (std::size_t lo = 0; lo + b <= pool_rows; lo += b) {
                tensor::Matrix U(b, oracle.inputs());
                for (std::size_t r = 0; r < b; ++r) {
                    const auto src = query_pool.row_span(lo + r);
                    auto dst = U.row_span(r);
                    std::copy(src.begin(), src.end(), dst.begin());
                }
                windows.push_back(std::move(U));
            }
            for (const char* query : {"labels", "raw", "power"}) {
                const Measurement m = measure(oracle, windows, query, reps);
                results.push_back(m);
                table.begin_row();
                table.add(m.query);
                table.add(static_cast<long long>(m.batch));
                table.add(m.scalar_qps, 0);
                table.add(m.batched_qps, 0);
                table.add(m.speedup, 2);
                rec.begin(std::string(query) + "@" + std::to_string(m.batch));
                rec.add("query", m.query);
                rec.add("batch", static_cast<long long>(m.batch));
                rec.add("scalar_qps", m.scalar_qps);
                rec.add("batched_qps", m.batched_qps);
                rec.add("speedup", m.speedup);
            }
            for (const char* query : {"labels", "power"}) {
                const NonIdealMeasurement m =
                    measure_nonideal(nonideal_oracle, windows, query, reps);
                nonideal_results.push_back(m);
                nonideal_table.begin_row();
                nonideal_table.add(m.query);
                nonideal_table.add(static_cast<long long>(m.batch));
                nonideal_table.add(m.fallback_qps, 0);
                nonideal_table.add(m.scalar_qps, 0);
                nonideal_table.add(m.batched_qps, 0);
                nonideal_table.add(m.speedup_vs_fallback, 2);
                rec.begin(std::string(query) + "-nonideal@" + std::to_string(m.batch));
                rec.add("query", m.query);
                rec.add("batch", static_cast<long long>(m.batch));
                rec.add("line_resistance", kLineResistance);
                rec.add("fallback_qps", m.fallback_qps);
                rec.add("scalar_qps", m.scalar_qps);
                rec.add("batched_qps", m.batched_qps);
                rec.add("speedup_vs_fallback", m.speedup_vs_fallback);
            }
        }

        std::cout << "\n## Batched oracle query throughput (784×10 synthetic-MNIST victim)\n\n"
                  << table
                  << "\n## Non-ideal deployment (line_resistance = "
                  << Table::format_number(kLineResistance, 0)
                  << " ohm): batched kernel vs the per-vector reference fallback\n\n"
                  << nonideal_table;

        const std::string out_path = cli.str("out");
        if (!rec.write(out_path)) {
            std::fprintf(stderr, "bench_oracle_batch: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::cout << "\nResults written to " << out_path << "\n";

        // Acceptance gates, enforced (non-zero exit) so the CI smoke run
        // fails loudly when the fast path regresses:
        //   * labels@256 batched >= 3x the per-vector path (margin ~3x);
        //   * batched power qps at the largest batch within 15% of the
        //     smallest (the batch-1024 falloff this bench used to show was
        //     a hot-cache artifact; with streamed windows the batch size
        //     must not matter). Full runs only: a smoke measurement is
        //     ~1 ms of wall time, where scheduler jitter alone exceeds
        //     the 15% band.
        int exit_code = 0;
        for (const Measurement& m : results) {
            if (m.query == "labels" && m.batch == 256) {
                const bool pass = m.speedup >= 3.0;
                std::cout << "labels@256 speedup: " << Table::format_number(m.speedup, 2)
                          << (pass ? " (PASS, >= 3x)" : " (FAIL, below the 3x target)") << "\n";
                if (!pass) exit_code = 1;
            }
        }
        //   * non-ideal labels@256 batched >= 4x the per-vector reference
        //     fallback (PR-3 acceptance: the IR-drop path must not fall
        //     back to per-vector simulation).
        for (const NonIdealMeasurement& m : nonideal_results) {
            if (m.query == "labels" && m.batch == 256) {
                const bool pass = m.speedup_vs_fallback >= 4.0;
                std::cout << "labels-nonideal@256 speedup vs fallback: "
                          << Table::format_number(m.speedup_vs_fallback, 2)
                          << (pass ? " (PASS, >= 4x)" : " (FAIL, below the 4x target)") << "\n";
                if (!pass) exit_code = 1;
            }
        }
        double power_small = 0.0, power_large = 0.0;
        std::size_t small_b = 0, large_b = 0;
        for (const Measurement& m : results) {
            if (m.query != "power") continue;
            if (small_b == 0 || m.batch < small_b) {
                small_b = m.batch;
                power_small = m.batched_qps;
            }
            if (m.batch > large_b) {
                large_b = m.batch;
                power_large = m.batched_qps;
            }
        }
        if (!smoke && small_b != 0 && large_b != small_b) {
            const double ratio = power_large / power_small;
            const bool pass = ratio >= 0.85;
            std::cout << "power@" << large_b << " vs power@" << small_b
                      << " batched qps ratio: " << Table::format_number(ratio, 3)
                      << (pass ? " (PASS, within 15%)" : " (FAIL, > 15% falloff)") << "\n";
            if (!pass) exit_code = 1;
        }
        return exit_code;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_oracle_batch: %s\n", e.what());
        return 1;
    }
}
