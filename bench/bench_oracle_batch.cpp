// Batched vs per-vector oracle query throughput on the synthetic-MNIST
// victim (784 inputs × 10 classes) — the measurement behind the batched
// Oracle API: query_labels / query_raw_batch / query_power_batch route
// through the crossbar's dense GEMM path instead of the per-vector
// simulation loop. Results are written to BENCH_oracle.json.
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"

using namespace xbarsec;

namespace {

struct Measurement {
    std::string query;
    std::size_t batch = 0;
    double scalar_qps = 0.0;
    double batched_qps = 0.0;
    double speedup = 0.0;
};

double seconds_for(const std::function<void()>& body, std::size_t reps) {
    WallTimer timer;
    for (std::size_t i = 0; i < reps; ++i) body();
    return timer.seconds();
}

/// Repeats until the slower path accumulates enough wall time to trust.
Measurement measure(core::CrossbarOracle& oracle, const tensor::Matrix& U,
                    const std::string& query, std::size_t reps) {
    Measurement m;
    m.query = query;
    m.batch = U.rows();

    const auto scalar_pass = [&] {
        for (std::size_t r = 0; r < U.rows(); ++r) {
            if (query == "labels") {
                (void)oracle.query_label(U.row(r));
            } else if (query == "raw") {
                (void)oracle.query_raw(U.row(r));
            } else {
                (void)oracle.query_power(U.row(r));
            }
        }
    };
    const auto batched_pass = [&] {
        if (query == "labels") {
            (void)oracle.query_labels(U);
        } else if (query == "raw") {
            (void)oracle.query_raw_batch(U);
        } else {
            (void)oracle.query_power_batch(U);
        }
    };

    scalar_pass();   // warm caches
    batched_pass();
    const double queries = static_cast<double>(U.rows() * reps);
    m.scalar_qps = queries / seconds_for(scalar_pass, reps);
    m.batched_qps = queries / seconds_for(batched_pass, reps);
    m.speedup = m.batched_qps / m.scalar_qps;
    return m;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_oracle_batch — batched vs per-vector oracle query throughput");
    cli.flag("batches", "64,256,1024", "batch sizes to measure");
    cli.flag("reps", "8", "repetitions per measurement");
    cli.flag("train", "2000", "victim training samples");
    cli.flag("epochs", "6", "victim training epochs");
    cli.flag("out", "BENCH_oracle.json", "JSON results path");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = 400;
        std::vector<long long> batches = cli.integer_list("batches");
        for (const long long batch : batches) {
            if (batch < 1) throw ConfigError("--batches entries must be >= 1");
        }
        std::size_t reps = static_cast<std::size_t>(cli.integer("reps"));
        if (reps < 1) throw ConfigError("--reps must be >= 1");
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            batches = {64, 256};
            reps = 2;
            config.train.epochs = 2;
        }

        const data::DataSplit split = data::load_mnist_like(load);
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);

        Table table({"Query", "Batch", "Per-vector q/s", "Batched q/s", "Speedup"});
        std::vector<Measurement> results;
        Rng rng(7);
        for (const long long batch : batches) {
            const tensor::Matrix U = tensor::Matrix::random_uniform(
                rng, static_cast<std::size_t>(batch), oracle.inputs());
            for (const char* query : {"labels", "raw", "power"}) {
                const Measurement m = measure(oracle, U, query, reps);
                results.push_back(m);
                table.begin_row();
                table.add(m.query);
                table.add(static_cast<long long>(m.batch));
                table.add(m.scalar_qps, 0);
                table.add(m.batched_qps, 0);
                table.add(m.speedup, 2);
            }
        }

        std::cout << "\n## Batched oracle query throughput (784×10 synthetic-MNIST victim)\n\n"
                  << table;

        const std::string out_path = cli.str("out");
        std::ofstream out(out_path);
        out << "{\n  \"victim\": \"synthetic-mnist-784x10\",\n  \"results\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const Measurement& m = results[i];
            out << "    {\"query\": \"" << m.query << "\", \"batch\": " << m.batch
                << ", \"scalar_qps\": " << static_cast<long long>(m.scalar_qps)
                << ", \"batched_qps\": " << static_cast<long long>(m.batched_qps)
                << ", \"speedup\": " << m.speedup << "}" << (i + 1 < results.size() ? "," : "")
                << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "\nResults written to " << out_path << "\n";

        // The acceptance bar for the batched API: >= 3x label throughput
        // at batch 256. Enforced (non-zero exit) so the CI smoke run
        // fails loudly if the fast path regresses; the measured margin
        // is ~3x the bar, so scheduler noise cannot trip it.
        int exit_code = 0;
        for (const Measurement& m : results) {
            if (m.query == "labels" && m.batch == 256) {
                const bool pass = m.speedup >= 3.0;
                std::cout << "labels@256 speedup: " << Table::format_number(m.speedup, 2)
                          << (pass ? " (PASS, >= 3x)" : " (FAIL, below the 3x target)") << "\n";
                if (!pass) exit_code = 1;
            }
        }
        return exit_code;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_oracle_batch: %s\n", e.what());
        return 1;
    }
}
