// Reproduces Figure 3: mean |∂L/∂u| sensitivity maps (panels a,c,e,g)
// against power-probed column 1-norm maps (panels b,d,f,h) for the four
// dataset × activation configurations, via the fig3/* scenario registry
// entries. Prints ASCII heat maps and the per-pair Pearson correlation;
// writes CSV grids for re-plotting.
//
// Shape target (paper): visually matching map pairs; MNIST maps smooth
// and centre-weighted, CIFAR maps rapidly varying.
#include "scenario_bench_common.hpp"

int main(int argc, char** argv) {
    return xbarsec::benchscenario::run_prefix(
        "bench_fig3 — reproduces Figure 3 (sensitivity maps vs 1-norm maps)", "fig3/", argc, argv,
        "Paper shape: high Pearson r per panel pair; MNIST maps smoother (lower roughness) "
        "than CIFAR.");
}
