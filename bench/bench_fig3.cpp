// Reproduces Figure 3: mean |∂L/∂u| sensitivity maps (panels a,c,e,g)
// against power-probed column 1-norm maps (panels b,d,f,h) for the four
// dataset × activation configurations. Prints ASCII heat maps and the
// per-pair Pearson correlation; writes CSV grids for re-plotting.
//
// Shape target (paper): visually matching map pairs; MNIST maps smooth
// and centre-weighted, CIFAR maps rapidly varying.
#include <cstdio>
#include <iostream>

#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/fig3.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/data/loaders.hpp"

using namespace xbarsec;

namespace {

// Mean absolute pixel-to-neighbour difference of a (normalised) map — the
// roughness measure behind the paper's smooth-vs-rough contrast.
double roughness(const tensor::Vector& map, const data::ImageShape& shape) {
    const std::size_t plane = shape.height * shape.width;
    double lo = map[0], hi = map[0];
    for (std::size_t j = 0; j < plane; ++j) {
        lo = std::min(lo, map[j]);
        hi = std::max(hi, map[j]);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t y = 0; y < shape.height; ++y) {
        for (std::size_t x = 0; x + 1 < shape.width; ++x) {
            acc += std::abs(map[y * shape.width + x + 1] - map[y * shape.width + x]) / span;
            ++count;
        }
    }
    return acc / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_fig3 — reproduces Figure 3 (sensitivity maps vs 1-norm maps)");
    cli.flag("train", "6000", "training samples per dataset");
    cli.flag("test", "1500", "test samples per dataset");
    cli.flag("epochs", "15", "victim training epochs");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real MNIST/CIFAR files (optional)");
    cli.flag("ascii", "true", "print ASCII heat maps");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            epochs = 4;
        }

        WallTimer timer;
        const data::DataSplit mnist = data::load_mnist_like(load);
        const data::DataSplit cifar = data::load_cifar10_like(load);

        Table summary({"Panel pair", "Config", "Pearson r", "Roughness(sens)", "Roughness(L1)",
                       "Victim test acc"});
        const char* panels[] = {"(a,b)", "(c,d)", "(e,f)", "(g,h)"};
        int panel_idx = 0;
        for (const auto& [split, name] :
             {std::pair<const data::DataSplit*, const char*>{&mnist, "MNIST-like"},
              std::pair<const data::DataSplit*, const char*>{&cifar, "CIFAR-10-like"}}) {
            for (const core::OutputConfig output :
                 {core::OutputConfig::linear_mse(), core::OutputConfig::softmax_ce()}) {
                core::VictimConfig config = core::VictimConfig::defaults(output);
                config.train.epochs = epochs;
                const core::Fig3Panel panel =
                    core::run_fig3_config(*split, name, output, config);

                summary.begin_row();
                summary.add(panels[panel_idx]);
                summary.add(panel.label);
                summary.add(panel.correlation, 3);
                summary.add(roughness(panel.sensitivity_map, panel.shape), 3);
                summary.add(roughness(panel.l1_map, panel.shape), 3);
                summary.add(panel.victim_test_accuracy, 3);

                const std::string stem =
                    core::results_dir() + "/fig3_" + core::sanitize_label(panel.label);
                core::write_grid_csv(stem + "_sensitivity.csv", panel.sensitivity_map,
                                     panel.shape);
                core::write_grid_csv(stem + "_l1.csv", panel.l1_map, panel.shape);

                if (cli.boolean("ascii")) {
                    std::cout << "\n### " << panel.label
                              << " — mean |dL/du| (left target of the panel pair)\n"
                              << core::render_ascii_heatmap(panel.sensitivity_map, panel.shape)
                              << "\n### " << panel.label
                              << " — probed column 1-norms (right target)\n"
                              << core::render_ascii_heatmap(panel.l1_map, panel.shape);
                }
                ++panel_idx;
            }
        }

        std::cout << "\n## Figure 3 reproduction summary\n\n"
                  << summary << "\n"
                  << "Paper shape: high r per pair; MNIST maps smoother (lower roughness) "
                     "than CIFAR.\nCSV grids written to "
                  << core::results_dir() << "/fig3_*.csv\n";
        summary.write_csv(core::results_dir() + "/fig3_summary.csv");
        log::info("bench_fig3 finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_fig3: %s\n", e.what());
        return 1;
    }
}
