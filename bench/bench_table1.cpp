// Reproduces Table I: correlation between the loss-sensitivity magnitude
// |∂L/∂u_j| and the power-probed column 1-norms, for
// {MNIST-like, CIFAR-10-like} × {linear+MSE, softmax+CE}, averaged over
// independent runs.
//
// Shape target (paper): correlation-of-mean ≫ per-sample mean
// correlation; MNIST rows above CIFAR rows; all positive.
#include <cstdio>
#include <iostream>

#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/table1.hpp"
#include "xbarsec/data/loaders.hpp"

using namespace xbarsec;

int main(int argc, char** argv) {
    Cli cli("bench_table1 — reproduces Table I (sensitivity vs 1-norm correlations)");
    cli.flag("runs", "5", "independent runs averaged per row");
    cli.flag("train", "6000", "training samples per dataset");
    cli.flag("test", "1500", "test samples per dataset");
    cli.flag("epochs", "15", "victim training epochs");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real MNIST/CIFAR files (optional)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));

        core::Table1Options options;
        options.runs = static_cast<std::size_t>(cli.integer("runs"));
        options.seed = load.seed;

        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            options.runs = 2;
            epochs = 4;
        }

        WallTimer timer;
        std::vector<core::Table1Row> rows;
        const data::DataSplit mnist = data::load_mnist_like(load);
        const data::DataSplit cifar = data::load_cifar10_like(load);
        for (const auto& [split, name] :
             {std::pair<const data::DataSplit*, const char*>{&mnist, "MNIST-like"},
              std::pair<const data::DataSplit*, const char*>{&cifar, "CIFAR-10-like"}}) {
            for (const core::OutputConfig output :
                 {core::OutputConfig::linear_mse(), core::OutputConfig::softmax_ce()}) {
                core::Table1Options per = options;
                per.victim = core::VictimConfig::defaults(output);
                per.victim.train.epochs = epochs;
                rows.push_back(core::run_table1_config(*split, name, output, per));
            }
        }

        const Table table = core::render_table1(rows);
        std::cout << "\n## Table I reproduction (sensitivity/1-norm correlations)\n\n"
                  << table << "\n"
                  << "Paper shape: Corr-of-Mean >> Mean-Corr per row; MNIST > CIFAR; "
                     "all positive.\n";
        table.write_csv(core::results_dir() + "/table1.csv");
        log::info("bench_table1 finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_table1: %s\n", e.what());
        return 1;
    }
}
