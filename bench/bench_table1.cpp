// Reproduces Table I: correlation between the loss-sensitivity magnitude
// |∂L/∂u_j| and the power-probed column 1-norms, for
// {MNIST-like, CIFAR-10-like} × {linear+MSE, softmax+CE}, averaged over
// independent runs — via the table1/* scenario registry entries.
//
// Shape target (paper): correlation-of-mean ≫ per-sample mean
// correlation; MNIST rows above CIFAR rows; all positive.
#include "scenario_bench_common.hpp"

int main(int argc, char** argv) {
    return xbarsec::benchscenario::run_prefix(
        "bench_table1 — reproduces Table I (sensitivity vs 1-norm correlations)", "table1/", argc,
        argv,
        "Paper shape: Corr-of-Mean >> Mean-Corr per row; MNIST > CIFAR; all positive.");
}
