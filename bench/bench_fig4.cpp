// Reproduces Figure 4: single-pixel attack test accuracy vs attack
// strength (0..10) for RP / + / − / RD / Worst, in all four dataset ×
// activation configurations.
//
// Shape target (paper): power-guided methods beat RP; "+" strongest of
// the power methods, "−" weakest; "Worst" is the floor; effects larger
// on MNIST than CIFAR.
#include <cstdio>
#include <iostream>

#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/fig4.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/data/loaders.hpp"

using namespace xbarsec;

int main(int argc, char** argv) {
    Cli cli("bench_fig4 — reproduces Figure 4 (power-guided single-pixel attacks)");
    cli.flag("runs", "1", "reserved; Figure 4 is a single sweep in the paper");
    cli.flag("train", "6000", "training samples per dataset");
    cli.flag("test", "1500", "test samples per dataset");
    cli.flag("epochs", "15", "victim training epochs");
    cli.flag("eval", "0", "evaluate on at most this many test samples (0 = all)");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real MNIST/CIFAR files (optional)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));

        core::Fig4Options options;
        options.seed = load.seed + 33;
        options.eval_limit = static_cast<std::size_t>(cli.integer("eval"));
        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            options.strengths = {0, 5, 10};
            epochs = 4;
        }

        WallTimer timer;
        const data::DataSplit mnist = data::load_mnist_like(load);
        const data::DataSplit cifar = data::load_cifar10_like(load);

        const char* panels[] = {"(a)", "(b)", "(c)", "(d)"};
        int panel_idx = 0;
        for (const auto& [split, name] :
             {std::pair<const data::DataSplit*, const char*>{&mnist, "MNIST-like"},
              std::pair<const data::DataSplit*, const char*>{&cifar, "CIFAR-10-like"}}) {
            for (const core::OutputConfig output :
                 {core::OutputConfig::linear_mse(), core::OutputConfig::softmax_ce()}) {
                core::VictimConfig config = core::VictimConfig::defaults(output);
                config.train.epochs = epochs;
                const core::Fig4Result result =
                    core::run_fig4_config(*split, name, output, config, options);
                const Table table = core::render_fig4(result);
                std::cout << "\n## Figure 4" << panels[panel_idx] << " — " << result.label
                          << " (clean acc " << Table::format_number(result.clean_accuracy, 3)
                          << ")\n\n"
                          << table;
                table.write_csv(core::results_dir() + "/fig4_" +
                                core::sanitize_label(result.label) + ".csv");
                ++panel_idx;
            }
        }
        std::cout << "\nPaper shape: accuracy falls with strength; '+' <= RD <= '-' among "
                     "power methods, all <= RP; 'Worst' is the lower bound.\n";
        log::info("bench_fig4 finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_fig4: %s\n", e.what());
        return 1;
    }
}
