// Reproduces Figure 4: single-pixel attack test accuracy vs attack
// strength (0..10) for RP / + / − / RD / Worst, via the fig4/* scenario
// registry entries — the paper's four dataset × activation panels plus
// the noisy-device and detector-guarded variants.
//
// Shape target (paper): power-guided methods beat RP; "+" strongest of
// the power methods, "−" weakest; "Worst" is the floor; effects larger
// on MNIST than CIFAR.
#include "scenario_bench_common.hpp"

int main(int argc, char** argv) {
    return xbarsec::benchscenario::run_prefix(
        "bench_fig4 — reproduces Figure 4 (power-guided single-pixel attacks)", "fig4/", argc,
        argv,
        "Paper shape: accuracy falls with strength; '+' <= RD <= '-' among power methods, "
        "all <= RP; 'Worst' is the lower bound.");
}
