// Reproduces Figure 5 ROWS 1-2 (MNIST): surrogate black-box attacks with
// power information, label-only and raw-output variants.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
    const xbarsec::benchfig5::DatasetSpec spec{
        "bench_fig5_mnist — Figure 5 rows 1-2 (MNIST-like surrogate attacks)",
        "MNIST-like",
        /*cifar=*/false,
        "ROW 1 (label-only)",
        "ROW 2 (raw outputs)",
        /*default_train=*/"6000",
        /*default_queries=*/"2,10,50,100,500,1000,4000",
        /*default_eval=*/"500",
    };
    return xbarsec::benchfig5::run(spec, argc, argv);
}
