// Reproduces Figure 5 ROWS 1-2 (MNIST): surrogate black-box attacks with
// power information, label-only and raw-output variants (plus the
// defended-deployment registry entry).
#include "fig5_common.hpp"

int main(int argc, char** argv) {
    return xbarsec::benchfig5::run(
        "bench_fig5_mnist — Figure 5 rows 1-2 (MNIST-like surrogate attacks)", "fig5/mnist/",
        argc, argv);
}
