// Ablation X2 — the Section-III remark on finding the largest 1-norm
// with fewer queries: budgeted search strategies on the MNIST-like
// (smooth) vs CIFAR-like (rough) probed 1-norm fields.
#include <cstdio>
#include <iostream>

#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/sidechannel/search.hpp"
#include "xbarsec/tensor/ops.hpp"

using namespace xbarsec;

namespace {

struct Field {
    std::string name;
    tensor::Vector values;  // ground-truth probed 1-norms
    data::ImageShape shape;
};

void sweep(const Field& field, Table& table, std::uint64_t seed) {
    using sidechannel::SearchStrategy;
    const std::size_t true_best = tensor::argmax(field.values);
    for (const SearchStrategy strategy :
         {SearchStrategy::FullScan, SearchStrategy::RandomSubset, SearchStrategy::HillClimb,
          SearchStrategy::CoarseToFine}) {
        for (const std::size_t budget : {32u, 64u, 128u}) {
            if (strategy == SearchStrategy::FullScan && budget != 32u) continue;
            // Success rate over repeated seeds (search is stochastic).
            constexpr int kTrials = 25;
            int hits = 0;
            std::uint64_t queries_acc = 0;
            double value_ratio_acc = 0.0;
            for (int trial = 0; trial < kTrials; ++trial) {
                sidechannel::SearchOptions options;
                options.budget = budget;
                options.seed = seed + static_cast<std::uint64_t>(trial);
                const sidechannel::SearchResult r = sidechannel::find_argmax(
                    [&field](std::size_t j) { return field.values[j]; }, field.shape, strategy,
                    options);
                if (r.best_index == true_best) ++hits;
                queries_acc += r.queries;
                value_ratio_acc += r.best_value / field.values[true_best];
            }
            table.begin_row();
            table.add(field.name);
            table.add(to_string(strategy));
            table.add(static_cast<long long>(strategy == SearchStrategy::FullScan
                                                 ? field.values.size()
                                                 : budget));
            table.add(static_cast<long long>(queries_acc / kTrials));
            table.add(static_cast<double>(hits) / kTrials, 2);
            table.add(value_ratio_acc / kTrials, 3);
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_search — query-efficient 1-norm argmax search (smooth vs rough fields)");
    cli.flag("train", "5000", "training samples per dataset");
    cli.flag("test", "1000", "test samples per dataset");
    cli.flag("epochs", "12", "victim training epochs");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real dataset files (optional)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            epochs = 4;
        }

        WallTimer timer;
        std::vector<Field> fields;
        for (const bool cifar : {false, true}) {
            const data::DataSplit split =
                cifar ? data::load_cifar10_like(load) : data::load_mnist_like(load);
            core::VictimConfig config =
                core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
            config.train.epochs = epochs;
            const core::TrainedVictim victim = core::train_victim(split, config);
            fields.push_back(Field{cifar ? "CIFAR-10-like" : "MNIST-like",
                                   tensor::column_abs_sums(victim.net.weights()),
                                   split.train.shape()});
        }

        Table table({"Field", "Strategy", "Budget", "Mean queries", "Hit rate", "Value ratio"});
        for (const Field& field : fields) sweep(field, table, load.seed);

        std::cout << "\n## Query-efficient argmax search over probed 1-norm fields\n\n"
                  << table << "\n"
                  << "Paper shape: budgeted strategies recover most of the max on the smooth "
                     "MNIST-like field but degrade on the rough CIFAR-like field.\n";
        table.write_csv(core::results_dir() + "/search.csv");
        log::info("bench_search finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_search: %s\n", e.what());
        return 1;
    }
}
