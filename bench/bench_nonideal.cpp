// Ablation X3 — the paper's future-work list: how device/measurement
// non-idealities and the obfuscation counter-measures degrade the power
// side channel. Reports the probe's 1-norm recovery error, top-k ranking
// agreement, and the downstream Figure-4 "+" attack efficacy.
#include <cstdio>
#include <iostream>

#include "record.hpp"
#include "xbarsec/attack/single_pixel.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/sidechannel/obfuscation.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/ops.hpp"

using namespace xbarsec;

namespace {

struct Scenario {
    std::string name;
    xbar::DeviceSpec device;
    xbar::NonIdealityConfig nonideal;
    std::size_t probe_repeats = 1;
    // Optional obfuscation wrapper applied to the measurement channel.
    enum class Defense { None, Dither, RandomDummy } defense = Defense::None;
};

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_nonideal — side-channel quality under device non-idealities & defenses");
    cli.flag("train", "4000", "training samples");
    cli.flag("test", "800", "test samples");
    cli.flag("epochs", "10", "victim training epochs");
    cli.flag("strength", "6.0", "single-pixel attack strength for the efficacy column");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real MNIST files (optional)");
    cli.flag("threads", "0", "worker threads for the batched oracle paths (0 = hardware)");
    cli.flag("out", "BENCH_nonideal.json", "JSON results path");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            epochs = 4;
        }

        WallTimer timer;
        const data::DataSplit split = data::load_mnist_like(load);
        core::VictimConfig base = core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        base.train.epochs = epochs;
        const core::TrainedVictim victim = core::train_victim(split, base);
        const tensor::Vector l1_truth = tensor::column_abs_sums(victim.net.weights());

        std::vector<Scenario> scenarios;
        {
            Scenario s;
            s.name = "ideal";
            scenarios.push_back(s);
        }
        for (const double noise : {0.02, 0.1, 0.3}) {
            Scenario s;
            s.name = "read-noise " + Table::format_number(noise, 2);
            s.nonideal.read_noise_std = noise;
            scenarios.push_back(s);
            Scenario avg = s;
            avg.name += " x16 repeats";
            avg.probe_repeats = 16;
            scenarios.push_back(avg);
        }
        for (const int levels : {16, 4}) {
            Scenario s;
            s.name = "quantised " + std::to_string(levels) + " levels";
            s.device.conductance_levels = levels;
            scenarios.push_back(s);
        }
        {
            Scenario s;
            s.name = "stuck faults 2%/2%";
            s.nonideal.stuck_on_fraction = 0.02;
            s.nonideal.stuck_off_fraction = 0.02;
            scenarios.push_back(s);
        }
        {
            Scenario s;
            s.name = "IR drop r_line=50";
            s.nonideal.line_resistance = 50.0;
            scenarios.push_back(s);
        }
        {
            Scenario s;
            s.name = "write noise 10%";
            s.device.write_noise_std = 0.1;
            scenarios.push_back(s);
        }
        {
            Scenario s;
            s.name = "defense: dither";
            s.defense = Scenario::Defense::Dither;
            scenarios.push_back(s);
        }
        {
            Scenario s;
            s.name = "defense: random dummies";
            s.defense = Scenario::Defense::RandomDummy;
            scenarios.push_back(s);
        }

        const double strength = cli.real("strength");
        // One shared pool for every scenario's batched oracle queries —
        // deployments used to run their probes with no pool at all (and
        // other benches built throwaway pools per iteration).
        ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
        Table table({"Scenario", "L1 rel. error", "Top-16 agreement", "'+' attack acc",
                     "RP attack acc", "Deployed acc"});
        bench::BenchRecorder rec(
            "nonideal", "synthetic-mnist-784x10 victim, " + std::to_string(pool.thread_count()) +
                            " worker threads, strength " + Table::format_number(strength, 1));
        for (const Scenario& scenario : scenarios) {
            core::VictimConfig config = base;
            config.device = scenario.device;
            config.nonideal = scenario.nonideal;
            core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);
            oracle.set_thread_pool(&pool);
            const nn::SingleLayerNet deployed =
                oracle.hardware_for_evaluation().effective_network();

            sidechannel::ProbeOptions po;
            po.repeats = scenario.probe_repeats;
            tensor::Vector l1_est;
            WallTimer probe_timer;
            if (scenario.defense == Scenario::Defense::None) {
                // Undefended channel: basis batches ride the oracle's
                // pooled query_power_batch fast path.
                l1_est = core::probe_columns(oracle, po).conductance_sums;
            } else {
                // The scalar obfuscation wrappers model per-measurement
                // defenses; they stay on the per-query path.
                sidechannel::TotalCurrentFn measure = oracle.power_measure_fn();
                const double ref_scale = tensor::max(l1_truth);
                if (scenario.defense == Scenario::Defense::Dither) {
                    measure = sidechannel::make_dithered_measure(std::move(measure),
                                                                 0.3 * ref_scale, load.seed + 5);
                } else {
                    measure = sidechannel::make_random_dummy_measure(
                        std::move(measure), oracle.inputs(), ref_scale, load.seed + 6);
                }
                l1_est = sidechannel::probe_columns(measure, oracle.inputs(), po).conductance_sums;
            }
            const double probe_seconds = probe_timer.seconds();

            Rng rng(load.seed + 17);
            const double acc_plus = attack::evaluate_single_pixel_attack(
                deployed, split.test, attack::SinglePixelMethod::PowerAdd, strength, &l1_est, rng);
            const double acc_rp = attack::evaluate_single_pixel_attack(
                deployed, split.test, attack::SinglePixelMethod::RandomPixel, strength, &l1_est,
                rng);

            const double rel_error = sidechannel::relative_error(l1_est, l1_truth);
            const double agreement = sidechannel::topk_agreement(l1_est, l1_truth, 16);
            const double deployed_acc = nn::accuracy(deployed, split.test);
            table.begin_row();
            table.add(scenario.name);
            table.add(rel_error, 4);
            table.add(agreement, 3);
            table.add(acc_plus, 4);
            table.add(acc_rp, 4);
            table.add(deployed_acc, 4);

            rec.begin(scenario.name);
            rec.add("threads", pool.thread_count());
            rec.add("probe_seconds", probe_seconds);
            rec.add("power_queries", static_cast<long long>(oracle.counters().power));
            rec.add("l1_rel_error", rel_error);
            rec.add("top16_agreement", agreement);
            rec.add("attack_acc_plus", acc_plus);
            rec.add("attack_acc_rp", acc_rp);
            rec.add("deployed_acc", deployed_acc);
        }

        std::cout << "\n## Side-channel quality under non-idealities (victim clean acc "
                  << Table::format_number(victim.test_accuracy, 3) << ")\n\n"
                  << table << "\n"
                  << "Expected: mild non-idealities barely disturb the ranking (attack still "
                     "beats RP); heavy noise/defenses push '+' toward the RP baseline; "
                     "repeated probes recover from dithering but not from static dummies.\n";
        table.write_csv(core::results_dir() + "/nonideal.csv");
        const std::string out_path = cli.str("out");
        if (!rec.write(out_path)) {
            std::fprintf(stderr, "bench_nonideal: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::cout << "Results written to " << out_path << "\n";
        log::info("bench_nonideal finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_nonideal: %s\n", e.what());
        return 1;
    }
}
