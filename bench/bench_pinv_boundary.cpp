// Ablation X4 — Section IV's boundary analysis: once the attacker holds
// Q >= N independent (input, raw-output) pairs, W = U†·Ŷ recovers the
// oracle exactly and the power channel is redundant. Sweeps Q across the
// N boundary comparing the closed-form fit, the SGD surrogate (λ=0), and
// the power-aided surrogate (λ>0).
#include <cstdio>
#include <iostream>

#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/fig5.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/tensor/ops.hpp"

using namespace xbarsec;

int main(int argc, char** argv) {
    Cli cli("bench_pinv_boundary — exact weight recovery at Q >= N (Section IV analysis)");
    cli.flag("train", "4000", "training-pool samples");
    cli.flag("test", "800", "test samples");
    cli.flag("epochs", "10", "oracle training epochs");
    cli.flag("seed", "2022", "base seed");
    cli.flag("data-dir", "", "directory with real MNIST files (optional)");
    cli.flag("threads", "0", "worker threads for queries and the normal-equations solve (0 = hardware)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs");
    try {
        if (!cli.parse(argc, argv)) return 0;

        data::LoadOptions load;
        load.data_dir = cli.str("data-dir");
        load.train_count = static_cast<std::size_t>(cli.integer("train"));
        load.test_count = static_cast<std::size_t>(cli.integer("test"));
        load.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        std::size_t epochs = static_cast<std::size_t>(cli.integer("epochs"));
        std::vector<std::size_t> query_counts{98, 392, 588, 784, 980, 1568};
        if (cli.boolean("smoke")) {
            load.train_count = 400;
            load.test_count = 120;
            epochs = 4;
            query_counts = {392, 980};
        }

        WallTimer timer;
        const data::DataSplit split = data::load_mnist_like(load);
        core::VictimConfig config = core::VictimConfig::defaults(core::OutputConfig::linear_mse());
        config.train.epochs = epochs;
        const core::TrainedVictim victim = core::train_victim(split, config);
        core::CrossbarOracle oracle = core::deploy_victim(victim.net, config);
        // One shared pool: batched query collection and the blocked
        // normal-equations GEMMs of the closed-form fit both shard on it.
        ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
        oracle.set_thread_pool(&pool);
        const std::size_t N = oracle.inputs();

        Table table({"Q", "Q/N", "pinv ||W-Ŵ||F/||W||F", "pinv acc", "SGD λ=0 acc",
                     "SGD λ=0.004 acc"});
        for (const std::size_t Q : query_counts) {
            core::QueryPlan plan;
            plan.count = Q;
            plan.raw_outputs = true;
            plan.seed = load.seed + Q;
            const attack::QueryDataset queries = core::collect_queries(oracle, split.train, plan);

            // Closed form (ridge for Q < N). Exact lstsq needs Q >= N
            // *distinct* queries: when the pool is smaller than Q the
            // draws repeat and U is rank-deficient, so fall back to ridge.
            const bool exact = Q >= N && split.train.size() >= N;
            const nn::SingleLayerNet pinv_fit = [&] {
                try {
                    return attack::fit_least_squares_surrogate(queries, exact ? 0.0 : 1e-6,
                                                               &pool);
                } catch (const Error&) {
                    return attack::fit_least_squares_surrogate(queries, 1e-6, &pool);
                }
            }();
            tensor::Matrix diff = pinv_fit.weights();
            diff -= victim.net.weights();
            const double rel_err =
                tensor::frobenius_norm(diff) / tensor::frobenius_norm(victim.net.weights());

            // SGD surrogates with and without the power term.
            attack::SurrogateConfig sc;
            sc.train = core::surrogate_schedule(
                Q, tensor::mean_squared_row_norm(queries.inputs, 512));
            sc.power_loss_weight = 0.0;
            const double acc0 =
                nn::accuracy(attack::train_surrogate(queries, sc).surrogate, split.test);
            sc.power_loss_weight = 0.004;
            const double accp =
                nn::accuracy(attack::train_surrogate(queries, sc).surrogate, split.test);

            table.begin_row();
            table.add(static_cast<long long>(Q));
            table.add(static_cast<double>(Q) / static_cast<double>(N), 2);
            table.add(rel_err, 6);
            table.add(nn::accuracy(pinv_fit, split.test), 4);
            table.add(acc0, 4);
            table.add(accp, 4);
        }

        std::cout << "\n## Q >= N boundary: exact recovery makes power info redundant "
                     "(oracle test acc "
                  << Table::format_number(victim.test_accuracy, 3) << ", N = " << N << ")\n\n"
                  << table << "\n"
                  << "Expected: pinv error collapses to ~0 once Q >= N and its accuracy "
                     "equals the oracle's; the λ>0 surrogate's edge over λ=0 exists only "
                     "below the boundary.\n";
        table.write_csv(core::results_dir() + "/pinv_boundary.csv");
        log::info("bench_pinv_boundary finished in ", timer.seconds(), " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_pinv_boundary: %s\n", e.what());
        return 1;
    }
}
