// Attribution bench: the session-rotating (spread) and identity-forging
// (forge) attackers against the PR 8 best defense (rate+adaptive, which
// spread beat at fidelity ~0.79) and against the cross-session
// attribution stack, via the service/mnist/attribution registry
// scenario.
//
// Rows of BENCH_attrib.json are cells of the 2x2 matrix. Attribution
// cells additionally record the campaign-cluster count, the deployment
// alert state, benign false merges, and embed the engine's JSON
// snapshot.
//
// Acceptance gates (full runs; recorded but not enforced with --smoke):
//   1. attribution closes the rotation hole: spread@attrib fidelity
//      <= 0.2 (vs ~0.79 under rate+adaptive);
//   2. forging admission identities does not reopen it: forge@attrib
//      fidelity <= 0.2;
//   3. benign tenants keep their throughput: answered fraction under
//      the attribution policy >= 0.9 in every attribution cell (the
//      per-source bucket recovers the per-session bucket's ~73% loss);
//   4. no clean tenant is blamed: benign_false_merges == 0 in every
//      attribution cell.
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "record.hpp"
#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/scenario.hpp"

using namespace xbarsec;

namespace {

double metric(const core::ScenarioOutcome& outcome, const std::string& key) {
    const auto it = outcome.metrics.find(key);
    if (it == outcome.metrics.end()) throw ConfigError("missing attribution metric: " + key);
    return it->second;
}

const std::string* note(const core::ScenarioOutcome& outcome, const std::string& key) {
    for (const auto& [name, text] : outcome.notes) {
        if (name == key) return &text;
    }
    return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("bench_attrib — rotating/forging attackers vs cross-session attribution "
            "(per-source windows, campaign clustering, deployment alert)");
    cli.flag("out", "BENCH_attrib.json", "JSON results path");
    cli.flag("train", "", "override training samples");
    cli.flag("test", "", "override test samples");
    cli.flag("epochs", "", "override victim training epochs");
    cli.flag("queries", "", "override attacker samples per cell");
    cli.flag("benign", "", "override benign queries per client");
    cli.flag("seed", "", "override the base seed");
    cli.flag("threads", "0", "worker threads (0 = hardware)");
    cli.flag("smoke", "false", "tiny configuration for CI smoke runs (gates recorded, not enforced)");
    if (!cli.parse(argc, argv)) return 0;

    core::ScenarioSpec spec = core::builtin_scenarios().get("service/mnist/attribution");
    if (cli.provided("train")) spec.load.train_count = static_cast<std::size_t>(cli.integer("train"));
    if (cli.provided("test")) spec.load.test_count = static_cast<std::size_t>(cli.integer("test"));
    if (cli.provided("epochs")) {
        spec.victim.train.epochs = static_cast<std::size_t>(cli.integer("epochs"));
    }
    if (cli.provided("queries")) {
        spec.arms_race.attacker.planned_queries = static_cast<std::size_t>(cli.integer("queries"));
    }
    if (cli.provided("benign")) {
        spec.arms_race.benign_queries = static_cast<std::size_t>(cli.integer("benign"));
    }
    if (cli.provided("seed")) {
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
        spec.load.seed = seed;
        spec.arms_race.seed = seed + 101;
    }
    const bool smoke = cli.boolean("smoke");
    if (smoke) core::apply_smoke(spec);

    std::size_t threads = static_cast<std::size_t>(cli.integer("threads"));
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    ThreadPool pool(threads);
    core::ScenarioRunner runner(&pool);

    WallTimer timer;
    const core::ScenarioOutcome outcome = runner.run(spec);
    const double total_s = timer.seconds();

    std::cout << "\n## Attribution — " << outcome.label << "\n";
    for (const auto& [name, table] : outcome.tables) std::cout << "\n" << table;
    std::cout << "\ntotal wall time: " << total_s << " s\n";

    const double benign_total =
        static_cast<double>(spec.arms_race.benign_clients * spec.arms_race.benign_queries);

    bench::BenchRecorder recorder(
        "attrib", "rotating/forging attackers vs attribution, " + std::to_string(threads) +
                      " worker threads, " +
                      std::to_string(spec.arms_race.attacker.planned_queries) +
                      " attacker samples/cell" + (smoke ? ", smoke" : ""));
    for (const attack::AttackerStrategy strategy : spec.arms_race.strategies) {
        for (const core::ArmsDefense& defense : spec.arms_race.defenses) {
            const std::string key = std::string(attack::to_string(strategy)) + "_" + defense.name;
            recorder.begin(key);
            recorder.add("strategy", attack::to_string(strategy));
            recorder.add("defense", defense.name);
            recorder.add("fidelity", metric(outcome, "fidelity_" + key));
            recorder.add("collected", metric(outcome, "collected_" + key));
            recorder.add("refused", metric(outcome, "refused_" + key));
            recorder.add("raw_denied", metric(outcome, "raw_denied_" + key));
            recorder.add("sessions", metric(outcome, "sessions_" + key));
            recorder.add("attacker_wall_s", metric(outcome, "attacker_wall_s_" + key));
            recorder.add("max_flagged_fraction", metric(outcome, "max_flagged_" + key));
            recorder.add("benign_answered", metric(outcome, "benign_answered_" + key));
            recorder.add("benign_refused", metric(outcome, "benign_refused_" + key));
            recorder.add("benign_qps", metric(outcome, "benign_qps_" + key));
            if (defense.attribution) {
                recorder.add("campaigns", metric(outcome, "campaigns_" + key));
                recorder.add("benign_false_merges",
                             metric(outcome, "benign_false_merges_" + key));
                recorder.add("alert", metric(outcome, "alert_" + key));
                recorder.add("benign_answered_fraction",
                             benign_total > 0.0
                                 ? metric(outcome, "benign_answered_" + key) / benign_total
                                 : 0.0);
                if (const std::string* snapshot = note(outcome, "attribution_" + key)) {
                    recorder.add("attribution_snapshot", *snapshot);
                }
            }
        }
    }
    recorder.begin("summary");
    recorder.add("victim_test_accuracy", metric(outcome, "victim_test_accuracy"));
    recorder.add("total_wall_s", total_s);

    const std::string out = cli.str("out");
    if (!recorder.write(out)) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    std::cout << "wrote " << out << "\n";

    // Gates (see file header). Smoke runs are too small for stable
    // fidelity estimates, so they record but do not enforce.
    bool ok = true;
    for (const char* strategy : {"spread", "forge"}) {
        const std::string key = std::string(strategy) + "_attrib";
        const double fidelity = metric(outcome, "fidelity_" + key);
        if (!(fidelity <= 0.2)) {
            std::cerr << "GATE: attribution did not hold against " << strategy << " (fidelity "
                      << fidelity << " > 0.2)\n";
            ok = false;
        }
        const double answered = metric(outcome, "benign_answered_" + key);
        if (benign_total > 0.0 && !(answered / benign_total >= 0.9)) {
            std::cerr << "GATE: benign tenants lost throughput under attribution in " << key
                      << " (" << answered << " of " << benign_total << " answered)\n";
            ok = false;
        }
        const double false_merges = metric(outcome, "benign_false_merges_" + key);
        if (false_merges != 0.0) {
            std::cerr << "GATE: benign sessions were clustered into a campaign in " << key << " ("
                      << false_merges << " false merges)\n";
            ok = false;
        }
    }
    if (!ok && !smoke) return 1;
    if (!ok) std::cout << "(smoke run: gate failures recorded, not enforced)\n";
    std::cout << "attribution gates " << (ok ? "passed" : "skipped") << "\n";
    return 0;
}
