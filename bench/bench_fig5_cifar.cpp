// Reproduces Figure 5 ROWS 3-4 (CIFAR-10): surrogate black-box attacks
// with power information, label-only and raw-output variants.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
    return xbarsec::benchfig5::run(
        "bench_fig5_cifar — Figure 5 rows 3-4 (CIFAR-10-like surrogate attacks)", "fig5/cifar/",
        argc, argv);
}
