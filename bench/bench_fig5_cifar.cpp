// Reproduces Figure 5 ROWS 3-4 (CIFAR-10): surrogate black-box attacks
// with power information, label-only and raw-output variants.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
    const xbarsec::benchfig5::DatasetSpec spec{
        "bench_fig5_cifar — Figure 5 rows 3-4 (CIFAR-10-like surrogate attacks)",
        "CIFAR-10-like",
        /*cifar=*/true,
        "ROW 3 (label-only)",
        "ROW 4 (raw outputs)",
        /*default_train=*/"3000",
        /*default_queries=*/"2,10,50,100,500,1500",
        /*default_eval=*/"300",
    };
    return xbarsec::benchfig5::run(spec, argc, argv);
}
