// Generic scenario driver: list and run any entry of the scenario
// registry — the whole experiment surface of the repo behind one CLI.
//
//   bench_scenarios --list
//   bench_scenarios --run=probe/mnist/defended
//   bench_scenarios --run=fig4/ --smoke        (prefix = every fig4 entry)
#include "scenario_bench_common.hpp"

using namespace xbarsec;

int main(int argc, char** argv) {
    Cli cli("bench_scenarios — unified driver for the named scenario registry");
    cli.flag("list", "false", "list registered scenarios and exit");
    cli.flag("run", "", "scenario name or prefix to run");
    benchscenario::register_standard_flags(cli);
    try {
        if (!cli.parse(argc, argv)) return 0;

        core::ScenarioRegistry& registry = core::builtin_scenarios();
        if (cli.boolean("list") || !cli.provided("run")) {
            Table table({"Scenario", "Description"});
            for (const std::string& name : registry.names()) {
                table.begin_row();
                table.add(name);
                table.add(registry.get(name).description);
            }
            std::cout << "\n## Registered scenarios (" << registry.size() << ")\n\n"
                      << table << "\nRun one with --run=<name> (or a prefix like --run=fig4/).\n";
            return 0;
        }

        const std::string selector = cli.str("run");
        std::vector<std::string> names;
        if (registry.contains(selector)) {
            names.push_back(selector);
        } else {
            names = registry.names(selector);
            if (names.empty()) {
                // Produces the helpful unknown-name error listing.
                registry.get(selector);
            }
        }

        ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
        core::ScenarioRunner runner(&pool);
        WallTimer timer;
        const int rc = benchscenario::run_scenarios("scenarios", names, cli, pool, runner);
        if (rc != 0) return rc;
        log::info("bench_scenarios finished ", names.size(), " scenario(s) in ", timer.seconds(),
                  " s");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_scenarios: %s\n", e.what());
        return 1;
    }
}
