// Device model and weight→conductance mapping tests (Eq. 6 invariants).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/mapping.hpp"

namespace xbarsec::xbar {
namespace {

DeviceSpec ideal_spec() {
    DeviceSpec s;
    s.g_on_max = 100e-6;
    s.g_off = 0.0;
    return s;
}

TEST(DeviceSpec, Validation) {
    DeviceSpec s = ideal_spec();
    EXPECT_NO_THROW(s.validate());
    s.g_on_max = 0.0;
    EXPECT_THROW(s.validate(), ConfigError);
    s = ideal_spec();
    s.g_off = -1e-6;
    EXPECT_THROW(s.validate(), ConfigError);
    s = ideal_spec();
    s.g_off = 200e-6;  // above g_on_max
    EXPECT_THROW(s.validate(), ConfigError);
    s = ideal_spec();
    s.write_noise_std = -0.1;
    EXPECT_THROW(s.validate(), ConfigError);
    s = ideal_spec();
    s.conductance_levels = -2;
    EXPECT_THROW(s.validate(), ConfigError);
}

TEST(DeviceSpec, QuantizeSnapsToGrid) {
    DeviceSpec s = ideal_spec();
    s.conductance_levels = 5;  // levels at 0, 25, 50, 75, 100 µS
    EXPECT_NEAR(quantize_conductance(s, 30e-6), 25e-6, 1e-12);
    EXPECT_NEAR(quantize_conductance(s, 40e-6), 50e-6, 1e-12);
    EXPECT_NEAR(quantize_conductance(s, 100e-6), 100e-6, 1e-18);
    EXPECT_NEAR(quantize_conductance(s, 0.0), 0.0, 1e-18);
}

TEST(DeviceSpec, ContinuousSpecIsIdentity) {
    const DeviceSpec s = ideal_spec();
    EXPECT_DOUBLE_EQ(quantize_conductance(s, 42e-6), 42e-6);
}

TEST(Mapping, OneSidedConvention) {
    // Positive weights live in G⁺ with G⁻ at g_off and vice-versa (the
    // paper's minimal-power assumption that creates the 1-norm leak).
    const tensor::Matrix W{{0.5, -0.25}, {0.0, 1.0}};
    const CrossbarProgram p = map_weights(W, ideal_spec());
    EXPECT_GT(p.g_plus(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(p.g_minus(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(p.g_plus(0, 1), 0.0);
    EXPECT_GT(p.g_minus(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(p.g_plus(1, 0), 0.0);  // zero weight: both off
    EXPECT_DOUBLE_EQ(p.g_minus(1, 0), 0.0);
}

TEST(Mapping, EffectiveWeightsRoundTripExactly) {
    Rng rng(1);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 6, 11);
    const CrossbarProgram p = map_weights(W, ideal_spec());
    const tensor::Matrix W_hat = effective_weights(p);
    for (std::size_t i = 0; i < W.rows(); ++i)
        for (std::size_t j = 0; j < W.cols(); ++j) EXPECT_NEAR(W_hat(i, j), W(i, j), 1e-12);
}

TEST(Mapping, ColumnConductanceSumsEncodeL1) {
    // Eq. 5-6: G_j = 2·M·g_off + scale·‖W[:,j]‖₁.
    Rng rng(2);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 7, 5);
    DeviceSpec spec = ideal_spec();
    spec.g_off = 2e-6;
    const CrossbarProgram p = map_weights(W, spec);
    const tensor::Vector g = column_conductance_sums(p);
    const tensor::Vector l1 = tensor::column_abs_sums(W);
    for (std::size_t j = 0; j < 5; ++j) {
        const double expected = 2.0 * 7.0 * spec.g_off + p.weight_scale * l1[j];
        EXPECT_NEAR(g[j], expected, 1e-15) << "column " << j;
    }
}

TEST(Mapping, WeightMaxOverrideFixesScale) {
    const tensor::Matrix W{{0.5}};
    MappingOptions options;
    options.weight_max = 2.0;
    const DeviceSpec spec = ideal_spec();
    const CrossbarProgram p = map_weights(W, spec, options);
    EXPECT_DOUBLE_EQ(p.weight_scale, spec.g_on_max / 2.0);
    EXPECT_DOUBLE_EQ(p.g_plus(0, 0), 0.5 * p.weight_scale);
}

TEST(Mapping, OversizedWeightsSaturate) {
    const tensor::Matrix W{{4.0}};
    MappingOptions options;
    options.weight_max = 2.0;  // |w| > weight_max clips to g_on_max
    const CrossbarProgram p = map_weights(W, ideal_spec(), options);
    EXPECT_DOUBLE_EQ(p.g_plus(0, 0), ideal_spec().g_on_max);
}

TEST(Mapping, AllZeroMatrixThrows) {
    const tensor::Matrix W(3, 3, 0.0);
    EXPECT_THROW(map_weights(W, ideal_spec()), ConfigError);
}

TEST(Mapping, WriteNoisePerturbsButPreservesSigns) {
    Rng rng(3);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 5, 9);
    DeviceSpec spec = ideal_spec();
    spec.write_noise_std = 0.05;
    const CrossbarProgram noisy = map_weights(W, spec);
    const CrossbarProgram clean = map_weights(W, ideal_spec());
    const tensor::Matrix W_noisy = effective_weights(noisy);
    double total_dev = 0.0;
    for (std::size_t i = 0; i < W.rows(); ++i) {
        for (std::size_t j = 0; j < W.cols(); ++j) {
            if (W(i, j) != 0.0) {
                // One-sidedness survives noise: sign is never flipped.
                EXPECT_EQ(W_noisy(i, j) > 0.0, W(i, j) > 0.0);
            }
            total_dev += std::abs(W_noisy(i, j) - W(i, j));
        }
    }
    EXPECT_GT(total_dev, 0.0);
    (void)clean;
}

TEST(Mapping, WriteNoiseIsDeterministicPerSeed) {
    Rng rng(4);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 4, 4);
    DeviceSpec spec = ideal_spec();
    spec.write_noise_std = 0.1;
    MappingOptions o1, o2;
    o1.noise_seed = o2.noise_seed = 123;
    EXPECT_EQ(map_weights(W, spec, o1).g_plus, map_weights(W, spec, o2).g_plus);
    o2.noise_seed = 124;
    EXPECT_NE(map_weights(W, spec, o1).g_plus, map_weights(W, spec, o2).g_plus);
}

TEST(Mapping, QuantisationLimitsDistinctLevels) {
    Rng rng(5);
    const tensor::Matrix W = tensor::Matrix::random_uniform(rng, 10, 10, -1.0, 1.0);
    DeviceSpec spec = ideal_spec();
    spec.conductance_levels = 4;
    const CrossbarProgram p = map_weights(W, spec);
    std::set<double> levels;
    for (std::size_t i = 0; i < 10; ++i)
        for (std::size_t j = 0; j < 10; ++j) {
            levels.insert(p.g_plus(i, j));
            levels.insert(p.g_minus(i, j));
        }
    EXPECT_LE(levels.size(), 4u);
}

TEST(Mapping, GoffFloorsProgrammedDevices) {
    const tensor::Matrix W{{1.0, -1.0}};
    DeviceSpec spec = ideal_spec();
    spec.g_off = 5e-6;
    const CrossbarProgram p = map_weights(W, spec);
    // Off devices rest at g_off, programmed devices start from g_off.
    EXPECT_DOUBLE_EQ(p.g_minus(0, 0), 5e-6);
    EXPECT_DOUBLE_EQ(p.g_plus(0, 1), 5e-6);
    EXPECT_DOUBLE_EQ(p.g_plus(0, 0), spec.g_on_max);  // |w| = w_max
}

}  // namespace
}  // namespace xbarsec::xbar
