// Result-cache contracts of OracleService: cache-off bit-identity with
// the uncached fleet (the default), hit/miss answer identity on
// deterministic stacks (re-run per kernel variant via the
// CMake-registered XBARSEC_FORCE_KERNEL environments), per-session
// policy replay on hits (exposure, budget charging per
// CacheConfig::hits_charge_budget, noise ordinals advancing identically),
// partitioned-vs-shared isolation, eviction stress with monotone stat
// snapshots, and the cache-timing scenario's attacker AUC. Runs under
// `ctest -L service` including the ASan/UBSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "xbarsec/core/scenario.hpp"
#include "xbarsec/core/service.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 24, std::size_t out = 5) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net, OracleOptions options = {}) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec(), {}), options);
}

ServiceConfig cached_config(std::size_t capacity = 64, bool partition = false,
                            bool hits_charge = true) {
    ServiceConfig c;
    c.max_wait = std::chrono::microseconds(50000);
    c.cache.enabled = true;
    c.cache.capacity = capacity;
    c.cache.partition_by_session = partition;
    c.cache.hits_charge_budget = hits_charge;
    return c;
}

// ---- cache-off bit-identity -------------------------------------------------

TEST(ServiceCache, OffByDefaultAndBitIdenticalToUncachedService) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle plain_backend = make_oracle(net);
    CrossbarOracle cached_off_backend = make_oracle(net);
    ServiceConfig defaults;
    EXPECT_FALSE(defaults.cache.enabled);  // cache-off is the default fleet

    OracleService plain(plain_backend);
    OracleService off(cached_off_backend);  // default config: no cache anywhere
    Session a = plain.open_session();
    Session b = off.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 12, net.inputs());
    for (int repeat = 0; repeat < 2; ++repeat) {  // repeats would hit, were a cache on
        for (std::size_t r = 0; r < U.rows(); ++r) {
            EXPECT_EQ(a.oracle().query_label(U.row(r)), b.oracle().query_label(U.row(r)));
            EXPECT_DOUBLE_EQ(a.oracle().query_power(U.row(r)), b.oracle().query_power(U.row(r)));
        }
    }
    EXPECT_EQ(off.cache_hits(), 0u);
    EXPECT_EQ(off.cache_misses(), 0u);
    EXPECT_EQ(off.cache_entries(), 0u);
    EXPECT_DOUBLE_EQ(off.cache_hit_rate(), 0.0);
    // Both services did identical backend work: no probe ever happened.
    EXPECT_EQ(plain.counters().total(), off.counters().total());
}

TEST(ServiceCache, EnabledNeedsNonZeroCapacity) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config = cached_config(0);
    EXPECT_THROW(OracleService(backend, config), ConfigError);
}

// ---- hit/miss answer identity -----------------------------------------------

TEST(ServiceCache, HitsAreBitIdenticalToCacheOffOnDeterministicStack) {
    // Per kernel arm (the CMake per-variant re-runs): the same scalar
    // query stream through a cached and an uncached service must produce
    // identical labels, raw vectors, and power readings — a hit replays
    // the stored clean answer, which on a deterministic stack is exactly
    // what recomputation would produce.
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle uncached_backend = make_oracle(net);
    CrossbarOracle cached_backend = make_oracle(net);
    OracleService uncached(uncached_backend);
    OracleService cached(cached_backend, cached_config());
    Session a = uncached.open_session();
    Session b = cached.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 8, net.inputs());

    for (int repeat = 0; repeat < 3; ++repeat) {
        for (std::size_t r = 0; r < U.rows(); ++r) {
            EXPECT_EQ(a.oracle().query_label(U.row(r)), b.oracle().query_label(U.row(r)))
                << "repeat " << repeat << " row " << r;
            const tensor::Vector ya = a.oracle().query_raw(U.row(r));
            const tensor::Vector yb = b.oracle().query_raw(U.row(r));
            ASSERT_EQ(ya.size(), yb.size());
            for (std::size_t j = 0; j < ya.size(); ++j) EXPECT_DOUBLE_EQ(ya[j], yb[j]);
            EXPECT_DOUBLE_EQ(a.oracle().query_power(U.row(r)), b.oracle().query_power(U.row(r)));
        }
    }
    // Repeats 2 and 3 hit for all three kinds; only the first pass
    // reached the backend.
    EXPECT_EQ(cached.cache_misses(), 3 * U.rows());
    EXPECT_EQ(cached.cache_hits(), 2 * 3 * U.rows());
    EXPECT_EQ(cached.counters().inference, 2 * U.rows());  // label + raw misses only
    EXPECT_EQ(cached.counters().power, U.rows());
    // The session's own counters see every accepted query, hit or miss.
    EXPECT_EQ(b.counters().inference, 3 * 2 * U.rows());
    EXPECT_EQ(b.counters().power, 3 * U.rows());
}

TEST(ServiceCache, BatchSubmissionsBypassTheCache) {
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend, cached_config());
    Session session = service.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 6, net.inputs());
    (void)session.submit_labels(U).get();
    (void)session.submit_labels(U).get();  // identical batch: still no probe
    EXPECT_EQ(service.cache_hits(), 0u);
    EXPECT_EQ(service.cache_misses(), 0u);
    EXPECT_EQ(service.cache_entries(), 0u);
    EXPECT_EQ(service.counters().inference, 2 * U.rows());
}

// ---- per-session policy replay on hits --------------------------------------

TEST(ServiceCache, PowerHitsAdvanceTheSessionNoiseOrdinalIdentically) {
    // The cache stores the clean reading; every hit draws the hitting
    // session's own noise at its own next ordinal — the same values, in
    // the same order, as the uncached service would produce.
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle uncached_backend = make_oracle(net);
    CrossbarOracle cached_backend = make_oracle(net);
    CrossbarOracle reference = make_oracle(net);
    OracleService uncached(uncached_backend);
    OracleService cached(cached_backend, cached_config());
    SessionConfig noisy;
    noisy.power_noise_sigma = 0.25;
    noisy.noise_seed = 99;
    Session a = uncached.open_session(noisy);
    Session b = cached.open_session(noisy);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 4, net.inputs());
    const tensor::Vector clean = reference.query_power_batch(U);

    // Interleave scalar repeats (hits on the cached service) with a batch
    // (bypasses the cache): the ordinal stream must stay in lockstep.
    std::uint64_t ordinal = 0;
    for (std::size_t r = 0; r < U.rows(); ++r) {  // misses: ordinals 0..3
        const double pa = a.oracle().query_power(U.row(r));
        const double pb = b.oracle().query_power(U.row(r));
        EXPECT_DOUBLE_EQ(pa, pb);
        EXPECT_DOUBLE_EQ(pb, clean[r] + 0.25 * Rng::normal_at(99, ordinal, 0));
        ++ordinal;
    }
    for (std::size_t r = 0; r < U.rows(); ++r) {  // hits: ordinals 4..7
        const double pa = a.oracle().query_power(U.row(r));
        const double pb = b.oracle().query_power(U.row(r));
        EXPECT_DOUBLE_EQ(pa, pb);
        EXPECT_DOUBLE_EQ(pb, clean[r] + 0.25 * Rng::normal_at(99, ordinal, 0));
        ++ordinal;
    }
    EXPECT_EQ(cached.cache_hits(), U.rows());
    // A batch after the hits continues from ordinal 8 on both services.
    const tensor::Vector ba = a.submit_power_batch(U).get();
    const tensor::Vector bb = b.submit_power_batch(U).get();
    for (std::size_t r = 0; r < U.rows(); ++r) {
        EXPECT_DOUBLE_EQ(ba[r], bb[r]);
        EXPECT_DOUBLE_EQ(bb[r], clean[r] + 0.25 * Rng::normal_at(99, ordinal + r, 0));
    }
}

TEST(ServiceCache, ExposurePolicyStillDeniesOnResidentEntries) {
    // Priming the cache through a privileged session must not leak
    // through a restricted one: the hit path replays the hitting
    // session's own exposure policy before touching the cache.
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend, cached_config());
    Session privileged = service.open_session();
    const tensor::Vector u(net.inputs(), 0.5);
    (void)privileged.oracle().query_power(u);
    (void)privileged.oracle().query_raw(u);

    SessionConfig restricted;
    restricted.expose_power = false;
    restricted.expose_raw_outputs = false;
    Session blocked = service.open_session(restricted);
    EXPECT_THROW(blocked.submit_power(u), AccessDenied);
    EXPECT_THROW(blocked.submit_raw(u), AccessDenied);
    EXPECT_EQ(blocked.counters().total(), 0u);  // refusals count nothing
    (void)blocked.oracle().query_label(u);      // labels stay available
}

TEST(ServiceCache, HitChargingTogglesBudgetSemantics) {
    Rng rng(7);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle charging_backend = make_oracle(net);
    CrossbarOracle free_backend = make_oracle(net);
    // Default semantics: a hit spends budget exactly like a recomputed
    // answer (the paper's attacker-cost model counts queries, not work).
    OracleService charging(charging_backend, cached_config(64, false, true));
    SessionConfig budgeted;
    budgeted.budget.max_inference = 2;
    Session a = charging.open_session(budgeted);
    const tensor::Vector u(net.inputs(), 0.5);
    (void)a.oracle().query_label(u);  // miss, charges 1
    (void)a.oracle().query_label(u);  // hit, still charges 1
    EXPECT_EQ(a.budget_spent().inference, 2u);
    EXPECT_THROW(a.submit_label(u), QueryBudgetExceeded);
    EXPECT_EQ(a.counters().inference, 2u);  // the refused submission counted nothing

    // hits_charge_budget = false: only misses reach the ledger, so hot
    // repeat traffic stretches the same budget.
    OracleService free_hits(free_backend, cached_config(64, false, false));
    Session b = free_hits.open_session(budgeted);
    (void)b.oracle().query_label(u);                            // miss, charges 1
    for (int q = 0; q < 8; ++q) (void)b.oracle().query_label(u);  // hits, free
    EXPECT_EQ(b.budget_spent().inference, 1u);
    EXPECT_EQ(b.counters().inference, 9u);  // session telemetry still counts them
    EXPECT_EQ(free_hits.cache_hits(), 8u);
}

// ---- partitioned-vs-shared isolation ----------------------------------------

TEST(ServiceCache, PartitioningIsolatesSessionsSharedDoesNot) {
    Rng rng(8);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle shared_backend = make_oracle(net);
    CrossbarOracle partitioned_backend = make_oracle(net);
    const tensor::Vector u(net.inputs(), 0.5);

    OracleService shared(shared_backend, cached_config(64, false));
    Session sa = shared.open_session();
    Session sb = shared.open_session();
    (void)sa.oracle().query_label(u);
    (void)sb.oracle().query_label(u);  // cross-session hit: the timing channel
    EXPECT_EQ(shared.cache_hits(), 1u);
    EXPECT_EQ(shared.cache_misses(), 1u);
    EXPECT_EQ(shared.cache_entries(), 1u);
    EXPECT_EQ(shared.counters().inference, 1u);  // one backend answer served both

    OracleService partitioned(partitioned_backend, cached_config(64, true));
    Session pa = partitioned.open_session();
    Session pb = partitioned.open_session();
    (void)pa.oracle().query_label(u);
    (void)pb.oracle().query_label(u);  // same input, other partition: a miss
    EXPECT_EQ(partitioned.cache_hits(), 0u);
    EXPECT_EQ(partitioned.cache_misses(), 2u);
    EXPECT_EQ(partitioned.cache_entries(), 2u);
    EXPECT_EQ(partitioned.counters().inference, 2u);
    // Each session still hits its *own* entries.
    (void)pa.oracle().query_label(u);
    (void)pb.oracle().query_label(u);
    EXPECT_EQ(partitioned.cache_hits(), 2u);
}

// ---- eviction stress ---------------------------------------------------------

TEST(ServiceCache, EvictionStressKeepsStatsMonotoneAndBounded) {
    Rng rng(9);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    constexpr std::size_t kCapacity = 8;
    OracleService service(backend, cached_config(kCapacity));
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 64, net.inputs());

    std::atomic<bool> done{false};
    std::atomic<bool> monotone{true};
    std::atomic<bool> bounded{true};
    std::thread observer([&] {
        std::uint64_t last_hits = 0, last_misses = 0, last_evictions = 0;
        while (!done.load(std::memory_order_acquire)) {
            const std::uint64_t hits = service.cache_hits();
            const std::uint64_t misses = service.cache_misses();
            const std::uint64_t evictions = service.cache_evictions();
            if (hits < last_hits || misses < last_misses || evictions < last_evictions) {
                monotone.store(false, std::memory_order_release);
            }
            if (service.cache_entries() > kCapacity) bounded.store(false, std::memory_order_release);
            last_hits = hits;
            last_misses = misses;
            last_evictions = evictions;
        }
    });

    constexpr std::size_t kThreads = 4;
    std::vector<Session> sessions;
    for (std::size_t t = 0; t < kThreads; ++t) sessions.push_back(service.open_session());
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Oracle& oracle = sessions[t].oracle();
            for (int pass = 0; pass < 3; ++pass) {
                for (std::size_t r = 0; r < U.rows(); ++r) {
                    (void)oracle.query_label(U.row(r));
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    done.store(true, std::memory_order_release);
    observer.join();

    EXPECT_TRUE(monotone.load());
    EXPECT_TRUE(bounded.load());
    EXPECT_LE(service.cache_entries(), kCapacity);
    EXPECT_GT(service.cache_evictions(), 0u);  // 64 distinct keys over 8 slots must evict
    // Every probe is a hit or a miss, and every accepted query probed.
    EXPECT_EQ(service.cache_hits() + service.cache_misses(),
              kThreads * 3 * static_cast<std::uint64_t>(U.rows()));
    const double rate = service.cache_hit_rate();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
}

// ---- the cache-timing scenario ----------------------------------------------

TEST(ServiceCache, CacheTimingScenarioSeparatesSharedFromPartitioned) {
    // The acceptance bar of the registry scenario, at smoke size: on the
    // shared cache the attacker's latency ranking recovers the victim's
    // query set (AUC >= 0.9); partitioning pushes it back toward chance.
    ScenarioSpec spec = builtin_scenarios().get("service/mnist/cache-timing");
    apply_smoke(spec);
    spec.load.train_count = 300;
    spec.load.test_count = 100;
    spec.victim.train.epochs = 3;
    const ScenarioOutcome outcome = ScenarioRunner().run(spec);
    ASSERT_TRUE(outcome.metrics.count("attacker_auc_shared"));
    ASSERT_TRUE(outcome.metrics.count("attacker_auc_partitioned"));
    EXPECT_GE(outcome.metrics.at("attacker_auc_shared"), 0.9);
    const double partitioned = outcome.metrics.at("attacker_auc_partitioned");
    EXPECT_GE(partitioned, 0.2);
    EXPECT_LE(partitioned, 0.8);
    // The defense also shows up in the attacker's own hit telemetry: no
    // cross-tenant reuse under partitioning.
    EXPECT_DOUBLE_EQ(outcome.metrics.at("attacker_hit_rate_partitioned"), 0.0);
}

}  // namespace
}  // namespace xbarsec::core
