// MinHash sketch property suite and AttributionEngine unit tests: set
// semantics and bottom-k retention, merge = sketch-of-the-union
// (associative / commutative / idempotent), similarity as exact Jaccard
// under k and a monotone estimate beyond, pooled == serial bit-identity
// across ThreadPool sizes, union-find campaign clustering (same-source
// auto-union, repeat-overlap replay merges, close-time sketch merges),
// the deployment alert window, and the telemetry accessor contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "xbarsec/attrib/engine.hpp"
#include "xbarsec/attrib/sketch.hpp"
#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/common/rng.hpp"
#include "xbarsec/common/threadpool.hpp"

namespace xbarsec::attrib {
namespace {

/// Deterministic pseudo-random 64-bit item ids (counter-mode, so a test
/// names an item by (seed, i) and always gets the same hash).
std::uint64_t item(std::uint64_t seed, std::uint64_t i) { return counter_rng::hash_at(seed, i, 0); }

std::vector<std::uint64_t> items(std::uint64_t seed, std::size_t n) {
    std::vector<std::uint64_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = item(seed, i);
    return out;
}

MinHashSketch sketch_of(const std::vector<std::uint64_t>& hashes, std::size_t k) {
    MinHashSketch s(k);
    for (const std::uint64_t h : hashes) s.insert(h);
    return s;
}

double exact_jaccard(std::vector<std::uint64_t> a, std::vector<std::uint64_t> b) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    std::vector<std::uint64_t> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(inter));
    const std::size_t uni = a.size() + b.size() - inter.size();
    return uni == 0 ? 0.0 : static_cast<double>(inter.size()) / static_cast<double>(uni);
}

// ---- content hashing --------------------------------------------------------

TEST(ContentHash, IsAPureFunctionOfTheBitPattern) {
    const std::vector<double> row{0.25, -1.5, 3.0};
    EXPECT_EQ(hash_row(row), hash_row(row));

    std::vector<double> other = row;
    other[1] = -1.5000000001;
    EXPECT_NE(hash_row(row), hash_row(other));

    // Exact bit patterns: +0.0 and -0.0 are different inputs.
    EXPECT_NE(hash_row(std::vector<double>{0.0}), hash_row(std::vector<double>{-0.0}));
    // Length matters even when the extra element is zero.
    EXPECT_NE(hash_row(std::vector<double>{1.0}), hash_row(std::vector<double>{1.0, 0.0}));
}

// ---- MinHash sketch ---------------------------------------------------------

TEST(MinHashSketch, KeepsTheKSmallestDistinctHashesSorted) {
    MinHashSketch s(4);
    for (const std::uint64_t h : {50ull, 10ull, 30ull, 10ull, 50ull}) s.insert(h);
    EXPECT_EQ(s.values(), (std::vector<std::uint64_t>{10, 30, 50}));

    s.insert(40);  // fills k
    s.insert(20);  // evicts 50, the k-th minimum
    s.insert(60);  // above the k-th minimum: dropped
    EXPECT_EQ(s.values(), (std::vector<std::uint64_t>{10, 20, 30, 40}));
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s.k(), 4u);
}

TEST(MinHashSketch, IsInsertionOrderIndependent) {
    std::vector<std::uint64_t> hashes = items(7, 500);
    const MinHashSketch forward = sketch_of(hashes, 64);
    std::mt19937_64 shuffle_rng(99);
    for (int round = 0; round < 5; ++round) {
        std::shuffle(hashes.begin(), hashes.end(), shuffle_rng);
        EXPECT_TRUE(sketch_of(hashes, 64) == forward);
    }
}

TEST(MinHashSketch, MergeIsTheSketchOfTheUnion) {
    const std::vector<std::uint64_t> ha = items(1, 300);
    const std::vector<std::uint64_t> hb = items(2, 200);
    std::vector<std::uint64_t> both = ha;
    both.insert(both.end(), hb.begin(), hb.end());

    MinHashSketch merged = sketch_of(ha, 64);
    merged.merge(sketch_of(hb, 64));
    EXPECT_TRUE(merged == sketch_of(both, 64));
}

TEST(MinHashSketch, MergeIsAssociativeCommutativeIdempotent) {
    const MinHashSketch a = sketch_of(items(11, 250), 64);
    const MinHashSketch b = sketch_of(items(12, 250), 64);
    const MinHashSketch c = sketch_of(items(13, 250), 64);

    MinHashSketch ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);
    MinHashSketch bc = b;
    bc.merge(c);
    MinHashSketch a_bc = a;
    a_bc.merge(bc);
    EXPECT_TRUE(ab_c == a_bc);  // associative

    MinHashSketch ab = a;
    ab.merge(b);
    MinHashSketch ba = b;
    ba.merge(a);
    EXPECT_TRUE(ab == ba);  // commutative

    MinHashSketch aa = a;
    aa.merge(a);
    EXPECT_TRUE(aa == a);  // idempotent
}

TEST(MinHashSketch, SimilarityIsExactJaccardWhenSetsFitInK) {
    const std::vector<std::uint64_t> ha = items(21, 40);
    std::vector<std::uint64_t> hb(ha.begin(), ha.begin() + 10);  // 10 shared
    const std::vector<std::uint64_t> extra = items(22, 30);
    hb.insert(hb.end(), extra.begin(), extra.end());

    const MinHashSketch a = sketch_of(ha, 256);  // 40 + 40 distinct < k
    const MinHashSketch b = sketch_of(hb, 256);
    EXPECT_DOUBLE_EQ(a.similarity(b), exact_jaccard(ha, hb));
    EXPECT_DOUBLE_EQ(a.similarity(b), b.similarity(a));
    EXPECT_DOUBLE_EQ(a.similarity(a), 1.0);
}

TEST(MinHashSketch, SimilarityIsMonotoneInTrueOverlap) {
    // Two sets of 600 with 0, 150, 300, 450, 600 shared items, sketched
    // at k = 128 (estimation regime). The estimate must grow with the
    // true overlap and roughly track the true Jaccard.
    const std::vector<std::uint64_t> base = items(31, 600);
    double previous = -1.0;
    for (const std::size_t shared : {0u, 150u, 300u, 450u, 600u}) {
        std::vector<std::uint64_t> other(base.begin(), base.begin() + shared);
        const std::vector<std::uint64_t> fresh = items(32 + shared, 600 - shared);
        other.insert(other.end(), fresh.begin(), fresh.end());

        const double estimate = sketch_of(base, 128).similarity(sketch_of(other, 128));
        EXPECT_GT(estimate, previous);
        const double truth = exact_jaccard(base, other);
        EXPECT_NEAR(estimate, truth, 0.12);
        previous = estimate;
    }
    EXPECT_DOUBLE_EQ(previous, 1.0);  // identical sets estimate exactly 1
}

TEST(MinHashSketch, EmptySketchesNeverResembleAnything) {
    const MinHashSketch empty(64);
    const MinHashSketch full = sketch_of(items(41, 100), 64);
    EXPECT_DOUBLE_EQ(empty.similarity(empty), 0.0);
    EXPECT_DOUBLE_EQ(empty.similarity(full), 0.0);
    EXPECT_DOUBLE_EQ(full.similarity(empty), 0.0);
    EXPECT_DOUBLE_EQ(empty.containment_in(full), 0.0);
    EXPECT_TRUE(empty.empty());
}

TEST(MinHashSketch, ContainmentScoresSubsetsAsOne) {
    const std::vector<std::uint64_t> big = items(51, 200);
    const std::vector<std::uint64_t> small(big.begin(), big.begin() + 20);
    const MinHashSketch superset = sketch_of(big, 256);
    const MinHashSketch subset = sketch_of(small, 256);
    EXPECT_DOUBLE_EQ(subset.containment_in(superset), 1.0);
    EXPECT_DOUBLE_EQ(superset.containment_in(subset), 0.1);  // 20 of 200
    // Jaccard alone under-scores the subset relation — the reason the
    // engine also checks containment at session close.
    EXPECT_LT(subset.similarity(superset), 0.5);
}

TEST(MinHashSketch, PooledInsertionMatchesSerialBitIdentically) {
    // The determinism contract the engine's docs promise: a sketch is a
    // pure function of the hash *set*, so chunked parallel insertion
    // into per-chunk sketches merged in any order equals the serial
    // sketch bit-for-bit, regardless of pool size.
    const std::vector<std::uint64_t> hashes = items(61, 2000);
    const MinHashSketch serial = sketch_of(hashes, 128);

    for (const std::size_t threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        const std::size_t chunks = 8;
        std::vector<MinHashSketch> partial(chunks, MinHashSketch(128));
        parallel_for(pool, chunks, [&](std::size_t c) {
            const std::size_t begin = c * hashes.size() / chunks;
            const std::size_t end = (c + 1) * hashes.size() / chunks;
            for (std::size_t i = begin; i < end; ++i) partial[c].insert(hashes[i]);
        });

        MinHashSketch forward(128);
        for (const MinHashSketch& p : partial) forward.merge(p);
        EXPECT_TRUE(forward == serial) << threads << " threads, forward merge";

        MinHashSketch backward(128);
        for (auto it = partial.rbegin(); it != partial.rend(); ++it) backward.merge(*it);
        EXPECT_TRUE(backward == serial) << threads << " threads, reverse merge";
    }
}

TEST(MinHashSketch, RejectsZeroCapacity) { EXPECT_THROW(MinHashSketch(0), ContractViolation); }

// ---- engine: row heuristics -------------------------------------------------

TEST(AttributionEngine, RowHeuristicsMatchTheirDocs) {
    EngineConfig config;  // amplitude 1.5, nnz divisor 32
    const std::vector<double> clean(64, 0.5);
    const std::vector<double> hot = [] {
        std::vector<double> v(64, 0.5);
        v[10] = -3.0;
        return v;
    }();
    std::vector<double> basis(64, 0.0);
    basis[3] = 1.0;

    EXPECT_FALSE(AttributionEngine::suspicious_row(clean, config));
    EXPECT_TRUE(AttributionEngine::suspicious_row(hot, config));
    EXPECT_FALSE(AttributionEngine::basis_like_row(clean, config));
    EXPECT_TRUE(AttributionEngine::basis_like_row(basis, config));
}

// ---- engine: clustering -----------------------------------------------------

Observation flagged_obs(std::uint64_t session, SourceId source, std::uint64_t hash) {
    Observation obs;
    obs.session = session;
    obs.source = source;
    obs.input_hash = hash;
    obs.flagged = true;
    return obs;
}

TEST(AttributionEngine, SameSourceSessionsShareOneCampaign) {
    AttributionEngine engine;
    engine.note_session_open(1, 7);
    engine.note_session_open(2, 7);
    engine.note_session_open(3, 8);

    EXPECT_EQ(engine.campaign_count(), 2u);
    EXPECT_EQ(engine.campaign_of(1).sessions, 2u);
    EXPECT_EQ(engine.campaign_of(2).id, engine.campaign_of(1).id);
    EXPECT_EQ(engine.campaign_of(3).sessions, 1u);

    EXPECT_EQ(engine.source_count(), 2u);
    EXPECT_EQ(engine.sources(), (std::vector<SourceId>{7, 8}));
    EXPECT_EQ(engine.source_counters(7).sessions, 2u);
}

TEST(AttributionEngine, AnonymousSessionsAreNeverIdentityClustered) {
    AttributionEngine engine;
    engine.note_session_open(1, 0);
    engine.note_session_open(2, 0);
    EXPECT_EQ(engine.campaign_count(), 2u);
    EXPECT_EQ(engine.campaign_of(1).sessions, 1u);
    EXPECT_EQ(engine.campaign_of(2).sessions, 1u);
}

TEST(AttributionEngine, RepeatedReplayOfAnotherCampaignsProbesMerges) {
    EngineConfig config;
    config.repeat_overlap = 3;
    AttributionEngine engine(config);
    engine.note_session_open(1, 0);
    engine.note_session_open(2, 0);

    // Session 1 (the original campaign) issues three indexed probes.
    for (std::uint64_t i = 0; i < 3; ++i) engine.observe(flagged_obs(1, 0, item(71, i)));
    // Session 2 replays two of them: not yet enough to attribute.
    engine.observe(flagged_obs(2, 0, item(71, 0)));
    engine.observe(flagged_obs(2, 0, item(71, 1)));
    EXPECT_EQ(engine.campaign_count(), 2u);
    // The third replay crosses repeat_overlap: one campaign, pooled.
    engine.observe(flagged_obs(2, 0, item(71, 2)));
    EXPECT_EQ(engine.campaign_count(), 1u);
    EXPECT_EQ(engine.campaign_of(2).sessions, 2u);
    EXPECT_EQ(engine.campaign_of(2).screened, 6u);
    EXPECT_EQ(engine.pooled_screened(1), 6u);
    EXPECT_DOUBLE_EQ(engine.pooled_flagged_fraction(1), 1.0);
}

TEST(AttributionEngine, ReplayingYourOwnProbesNeverMergesAnything) {
    AttributionEngine engine;
    engine.note_session_open(1, 0);
    engine.note_session_open(2, 0);
    for (int round = 0; round < 10; ++round) {
        engine.observe(flagged_obs(1, 0, item(72, 0)));  // own hash, many times
    }
    EXPECT_EQ(engine.campaign_count(), 2u);
}

TEST(AttributionEngine, CleanRowsNeverEnterSketchesOrTheIndex) {
    AttributionEngine engine;
    engine.note_session_open(1, 0);
    engine.note_session_open(2, 0);
    // Two benign tenants querying the *same* inputs (a shared public
    // dataset): identical hashes, nothing flagged or suspicious.
    for (std::uint64_t i = 0; i < 200; ++i) {
        Observation obs;
        obs.input_hash = item(73, i);
        obs.session = 1;
        engine.observe(obs);
        obs.session = 2;
        engine.observe(obs);
    }
    engine.note_session_close(1);
    engine.note_session_close(2);
    EXPECT_EQ(engine.campaign_count(), 2u);  // no false merge, ever
    EXPECT_EQ(engine.campaign_of(1).sketch_hashes, 0u);
    EXPECT_EQ(engine.campaign_of(1).screened, 200u);
    EXPECT_DOUBLE_EQ(engine.campaign_of(1).flagged_fraction(), 0.0);
}

TEST(AttributionEngine, SketchOverlapMergesAtSessionClose) {
    EngineConfig config;
    config.repeat_overlap = 1000;  // keep the index path out of the way
    config.merge_min_hashes = 16;
    AttributionEngine engine(config);
    engine.note_session_open(1, 0);
    engine.note_session_open(2, 0);
    // Both anonymous sessions probe the same 24 suspicious inputs — no
    // single replay run crosses repeat_overlap, but the sketches agree.
    for (std::uint64_t i = 0; i < 24; ++i) {
        Observation obs = flagged_obs(1, 0, item(74, i));
        obs.flagged = false;
        obs.suspicious = true;
        engine.observe(obs);
        obs.session = 2;
        engine.observe(obs);
    }
    EXPECT_EQ(engine.campaign_count(), 2u);  // not merged mid-flight
    engine.note_session_close(2);
    EXPECT_EQ(engine.campaign_count(), 1u);
    EXPECT_EQ(engine.campaign_of(1).sessions, 2u);
    EXPECT_EQ(engine.campaign_of(1).sketch_hashes, 24u);
}

// ---- engine: deployment alert ----------------------------------------------

TEST(AttributionEngine, AlertTripsOnAHotWindowAndCoolsWhenItDrains) {
    EngineConfig config;
    config.window_events = 8;
    config.alert_min_screened = 4;
    AttributionEngine engine(config);
    engine.note_session_open(1, 0);

    EXPECT_FALSE(engine.alert());  // empty window
    Observation hot = flagged_obs(1, 0, item(75, 0));
    engine.observe(hot);
    engine.observe(hot);
    EXPECT_FALSE(engine.alert());  // 2 < alert_min_screened
    engine.observe(hot);
    engine.observe(hot);
    EXPECT_TRUE(engine.alert());  // 4/4 flagged
    EXPECT_DOUBLE_EQ(engine.window_flagged_fraction(), 1.0);

    Observation clean;
    clean.session = 1;
    for (int i = 0; i < 8; ++i) clean.input_hash = item(75, 100 + i), engine.observe(clean);
    EXPECT_FALSE(engine.alert());  // hot events slid out of the window
    EXPECT_EQ(engine.window_screened(), 8u);  // capped at window_events
    EXPECT_DOUBLE_EQ(engine.window_flagged_fraction(), 0.0);
}

TEST(AttributionEngine, BasisLikeRowsFeedTheAlertWindowButNeverCluster) {
    EngineConfig config;
    config.window_events = 8;
    config.alert_min_screened = 4;
    AttributionEngine engine(config);
    engine.note_session_open(1, 0);
    engine.note_session_open(2, 0);
    Observation basis;
    basis.session = 1;
    basis.basis_like = true;  // sparse probe shape, not flagged/suspicious
    for (std::uint64_t i = 0; i < 4; ++i) {
        basis.input_hash = item(76, i);
        engine.observe(basis);
        basis.session = 2;
        engine.observe(basis);
        basis.session = 1;
    }
    EXPECT_TRUE(engine.alert());  // suspicious_fraction counts basis-like
    EXPECT_DOUBLE_EQ(engine.window_suspicious_fraction(), 1.0);
    EXPECT_EQ(engine.campaign_of(1).sketch_hashes, 0u);  // ...but no clustering
    EXPECT_EQ(engine.campaign_of(1).suspicious, 0u);
    EXPECT_EQ(engine.campaign_count(), 2u);
}

// ---- engine: lifecycle + telemetry -----------------------------------------

TEST(AttributionEngine, ProbationMarksSourcesFirstSeenDuringAnAlert) {
    EngineConfig config;
    config.window_events = 8;
    config.alert_min_screened = 4;
    config.churn_fresh_sources = 0;  // isolate the detector-window alert
    AttributionEngine engine(config);
    engine.note_session_open(1, 5);  // established before any alert
    EXPECT_FALSE(engine.probation(5));

    for (std::uint64_t i = 0; i < 4; ++i) engine.observe(flagged_obs(1, 5, item(90, i)));
    ASSERT_TRUE(engine.alert());
    EXPECT_FALSE(engine.probation(5));  // pre-alert sources are never marked

    engine.note_session_open(2, 6);  // first seen mid-alert
    EXPECT_TRUE(engine.probation(6));
    EXPECT_FALSE(engine.probation(0));  // anonymous is exempt

    Observation clean;
    clean.session = 1;
    clean.source = 5;
    for (int i = 0; i < 8; ++i) clean.input_hash = item(90, 100 + i), engine.observe(clean);
    ASSERT_FALSE(engine.alert());
    EXPECT_FALSE(engine.probation(6));  // enforcement is alert-gated...

    for (std::uint64_t i = 0; i < 4; ++i) engine.observe(flagged_obs(1, 5, item(90, 200 + i)));
    ASSERT_TRUE(engine.alert());
    EXPECT_TRUE(engine.probation(6));  // ...but the mark is permanent
}

TEST(AttributionEngine, ProbationCanBeDisabled) {
    EngineConfig config;
    config.window_events = 8;
    config.alert_min_screened = 4;
    config.probation = false;
    AttributionEngine engine(config);
    engine.note_session_open(1, 5);
    for (std::uint64_t i = 0; i < 4; ++i) engine.observe(flagged_obs(1, 5, item(91, i)));
    ASSERT_TRUE(engine.alert());
    engine.note_session_open(2, 6);
    EXPECT_FALSE(engine.probation(6));
}

TEST(AttributionEngine, ChurnAlertTripsOnFreshSourceMinting) {
    EngineConfig config;
    config.churn_window_opens = 8;
    config.churn_fresh_sources = 4;
    AttributionEngine engine(config);

    engine.note_session_open(1, 0);  // anonymous opens never count
    EXPECT_FALSE(engine.churn_alert());
    for (std::uint64_t s = 1; s <= 3; ++s) engine.note_session_open(10 + s, 100 + s);
    EXPECT_FALSE(engine.churn_alert());   // 3 fresh sources < 4
    EXPECT_FALSE(engine.probation(103));  // pre-trip sources stay clear

    engine.note_session_open(14, 104);  // the tripping open is itself caught
    EXPECT_TRUE(engine.churn_alert());
    EXPECT_TRUE(engine.probation(104));
    EXPECT_FALSE(engine.probation(103));

    engine.note_session_open(15, 105);  // every later fresh source too
    EXPECT_TRUE(engine.probation(105));

    // Rotating under one honest identity is not churn: the re-opens
    // slide the fresh marks out of the window and the freeze lifts.
    for (std::uint64_t i = 0; i < 8; ++i) engine.note_session_open(20 + i, 101);
    EXPECT_FALSE(engine.churn_alert());
    EXPECT_FALSE(engine.probation(105));  // enforcement is churn-gated
}

TEST(AttributionEngine, StatisticsSurviveSessionClose) {
    AttributionEngine engine;
    engine.note_session_open(1, 9);
    for (std::uint64_t i = 0; i < 10; ++i) engine.observe(flagged_obs(1, 9, item(77, i)));
    engine.note_session_close(1);

    // The rotated successor under the same source inherits the window.
    engine.note_session_open(2, 9);
    EXPECT_EQ(engine.pooled_screened(2), 10u);
    EXPECT_DOUBLE_EQ(engine.pooled_flagged_fraction(2), 1.0);
    EXPECT_EQ(engine.campaign_of(2).sessions, 2u);
    EXPECT_EQ(engine.source_counters(9).screened, 10u);
}

TEST(AttributionEngine, ObserveAdoptsSessionsItNeverSawOpen) {
    AttributionEngine engine;
    engine.observe(flagged_obs(42, 5, item(78, 0)));  // no note_session_open
    EXPECT_EQ(engine.campaign_of(42).screened, 1u);
    EXPECT_EQ(engine.source_counters(5).sessions, 1u);
    EXPECT_EQ(engine.pooled_screened(999), 0u);  // unknown pools as empty
    EXPECT_DOUBLE_EQ(engine.pooled_flagged_fraction(999), 0.0);
}

TEST(AttributionEngine, TelemetryAccessorsThrowOnUnknownKeys) {
    AttributionEngine engine;
    engine.note_session_open(1, 7);
    EXPECT_THROW(engine.source_counters(424242), ConfigError);
    EXPECT_THROW(engine.campaign_of(999), ConfigError);
    EXPECT_NO_THROW(engine.source_counters(7));
    EXPECT_NO_THROW(engine.campaign_of(1));
}

TEST(AttributionEngine, JsonSnapshotCarriesWindowSourcesAndCampaigns) {
    AttributionEngine engine;
    engine.note_session_open(1, 7);
    engine.observe(flagged_obs(1, 7, item(79, 0)));
    const std::string json = engine.json_snapshot();
    EXPECT_NE(json.find("\"alert\":false"), std::string::npos);
    EXPECT_NE(json.find("\"window\":{\"screened\":1"), std::string::npos);
    EXPECT_NE(json.find("\"source\":7"), std::string::npos);
    EXPECT_NE(json.find("\"campaigns\":[{\"id\":1"), std::string::npos);
    EXPECT_NE(json.find("\"sketch_hashes\":1"), std::string::npos);
}

TEST(AttributionEngine, RejectsDegenerateConfigs) {
    EngineConfig config;
    config.window_events = 0;
    EXPECT_THROW(AttributionEngine{config}, ContractViolation);
    config = {};
    config.sketch_k = 0;
    EXPECT_THROW(AttributionEngine{config}, ContractViolation);
    config = {};
    config.churn_window_opens = 0;  // churn enabled but windowless
    EXPECT_THROW(AttributionEngine{config}, ContractViolation);
}

}  // namespace
}  // namespace xbarsec::attrib
