// Crossbar simulator tests: Eq. 3 MVM, Eq. 5 total current, power, and
// the non-ideality models.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/stats/descriptive.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/crossbar.hpp"

namespace xbarsec::xbar {
namespace {

DeviceSpec ideal_spec() {
    DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

Crossbar make_ideal(const tensor::Matrix& W) {
    return Crossbar(map_weights(W, ideal_spec()));
}

TEST(NonIdealityConfig, Validation) {
    NonIdealityConfig c;
    EXPECT_NO_THROW(c.validate());
    EXPECT_TRUE(c.ideal());
    c.read_noise_std = -1.0;
    EXPECT_THROW(c.validate(), ConfigError);
    c = {};
    c.stuck_on_fraction = 0.7;
    c.stuck_off_fraction = 0.7;  // sums above 1
    EXPECT_THROW(c.validate(), ConfigError);
    c = {};
    c.line_resistance = -5.0;
    EXPECT_THROW(c.validate(), ConfigError);
}

TEST(Crossbar, IdealMvmEqualsWeightMatrixProduct) {
    Rng rng(1);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 10, 17);
    const Crossbar xbar = make_ideal(W);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 17);
    const tensor::Vector s = xbar.mvm(u);
    const tensor::Vector expected = tensor::matvec(W, u);
    for (std::size_t i = 0; i < s.size(); ++i) EXPECT_NEAR(s[i], expected[i], 1e-9);
}

TEST(Crossbar, OutputCurrentsScaleWithConductance) {
    const tensor::Matrix W{{1.0}};
    const Crossbar xbar = make_ideal(W);
    const tensor::Vector i_s = xbar.output_currents(tensor::Vector{1.0});
    EXPECT_NEAR(i_s[0], 100e-6, 1e-15);  // w_max → g_on_max at 1 V
}

TEST(Crossbar, TotalCurrentImplementsEq5) {
    Rng rng(2);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 8, 6);
    const Crossbar xbar = make_ideal(W);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 6);
    const double i_total = xbar.total_current(u);
    // Eq. 5: Σ_j u_j·G_j with G_j the per-column conductance sums.
    const tensor::Vector g = xbar.column_conductances();
    double expected = 0.0;
    for (std::size_t j = 0; j < 6; ++j) expected += u[j] * g[j];
    EXPECT_NEAR(i_total, expected, 1e-15);
}

TEST(Crossbar, BasisProbeRevealsColumnL1) {
    // The core side-channel identity: i_total(V·e_j)/V = G_j ∝ ‖W[:,j]‖₁.
    Rng rng(3);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 5, 9);
    const Crossbar xbar = make_ideal(W);
    const tensor::Vector l1 = tensor::column_abs_sums(W);
    for (std::size_t j = 0; j < 9; ++j) {
        const double i = xbar.total_current(tensor::Vector::basis(9, j, 0.5));
        EXPECT_NEAR(i / 0.5, l1[j] * xbar.program().weight_scale, 1e-15);
    }
}

TEST(Crossbar, StaticPowerIsVSquaredG) {
    Rng rng(4);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 4, 3);
    const Crossbar xbar = make_ideal(W);
    const tensor::Vector u{0.5, 1.0, 0.25};
    const tensor::Vector g = xbar.column_conductances();
    double expected = 0.0;
    for (std::size_t j = 0; j < 3; ++j) expected += u[j] * u[j] * g[j];
    EXPECT_NEAR(xbar.static_power(u), expected, 1e-15);
    // Power ≤ current at sub-unit voltages (v² ≤ v for v ∈ [0,1]).
    EXPECT_LE(xbar.static_power(u), xbar.total_current(u) + 1e-18);
}

TEST(Crossbar, ReadPowerCombinesBoth) {
    Rng rng(5);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 3, 3);
    const Crossbar xbar = make_ideal(W);
    const tensor::Vector u{1, 1, 1};
    const PowerReading r = xbar.read_power(u);
    EXPECT_GT(r.total_current, 0.0);
    EXPECT_GT(r.power, 0.0);
}

TEST(Crossbar, MeasurementCounterAdvances) {
    const tensor::Matrix W{{1.0, -1.0}};
    const Crossbar xbar = make_ideal(W);
    EXPECT_EQ(xbar.measurement_count(), 0u);
    xbar.total_current(tensor::Vector{1, 0});
    xbar.output_currents(tensor::Vector{1, 0});
    xbar.static_power(tensor::Vector{1, 0});
    EXPECT_EQ(xbar.measurement_count(), 3u);
}

TEST(Crossbar, ReadNoiseHasConfiguredSpread) {
    Rng rng(6);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 6, 6);
    NonIdealityConfig nonideal;
    nonideal.read_noise_std = 0.05;
    nonideal.seed = 99;
    const Crossbar xbar(map_weights(W, ideal_spec()), nonideal);
    const tensor::Vector u(6, 1.0);

    const Crossbar clean(map_weights(W, ideal_spec()));
    const double truth = clean.total_current(u);

    std::vector<double> readings(400);
    for (auto& r : readings) r = xbar.total_current(u);
    const stats::Summary s = stats::summarize(readings);
    EXPECT_NEAR(s.mean, truth, 0.01 * std::abs(truth));
    EXPECT_NEAR(s.stddev / std::abs(truth), 0.05, 0.01);
}

TEST(Crossbar, ReadNoiseIsFreshPerMeasurement) {
    const tensor::Matrix W{{1.0}};
    NonIdealityConfig nonideal;
    nonideal.read_noise_std = 0.1;
    const Crossbar xbar(map_weights(W, ideal_spec()), nonideal);
    const tensor::Vector u{1.0};
    EXPECT_NE(xbar.total_current(u), xbar.total_current(u));
}

TEST(Crossbar, StuckFaultsChangeProgrammedArrays) {
    Rng rng(7);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 20, 20);
    NonIdealityConfig nonideal;
    nonideal.stuck_on_fraction = 0.1;
    nonideal.stuck_off_fraction = 0.1;
    nonideal.seed = 5;
    const Crossbar faulty(map_weights(W, ideal_spec()), nonideal);
    const tensor::Matrix W_eff = faulty.effective_weights();
    // Some weights must deviate from the programmed values...
    double dev = 0.0;
    for (std::size_t i = 0; i < 20; ++i)
        for (std::size_t j = 0; j < 20; ++j) dev += std::abs(W_eff(i, j) - W(i, j));
    EXPECT_GT(dev, 0.1);
    // ...and the fault pattern is seed-deterministic.
    const Crossbar faulty2(map_weights(W, ideal_spec()), nonideal);
    EXPECT_EQ(faulty.effective_weights(), faulty2.effective_weights());
}

TEST(Crossbar, AllStuckOffZeroesTheArray) {
    Rng rng(8);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 4, 4);
    NonIdealityConfig nonideal;
    nonideal.stuck_off_fraction = 1.0;
    const Crossbar dead(map_weights(W, ideal_spec()), nonideal);
    EXPECT_NEAR(tensor::frobenius_norm(dead.effective_weights()), 0.0, 1e-15);
}

TEST(Crossbar, IrDropAttenuatesAndIsMonotoneInResistance) {
    Rng rng(9);
    const tensor::Matrix W = tensor::Matrix::random_uniform(rng, 12, 12, 0.1, 1.0);
    const tensor::Vector u(12, 1.0);
    const double ideal_current = make_ideal(W).total_current(u);
    double prev = ideal_current;
    for (const double r_line : {10.0, 100.0, 1000.0}) {
        NonIdealityConfig nonideal;
        nonideal.line_resistance = r_line;
        const Crossbar xbar(map_weights(W, ideal_spec()), nonideal);
        const double current = xbar.total_current(u);
        EXPECT_LT(current, prev) << "r_line=" << r_line;
        EXPECT_GT(current, 0.0);
        prev = current;
    }
}

TEST(Crossbar, InputSizeIsChecked) {
    const tensor::Matrix W{{1.0, 2.0}};
    const Crossbar xbar = make_ideal(W);
    EXPECT_THROW(xbar.total_current(tensor::Vector{1.0}), ContractViolation);
    EXPECT_THROW(xbar.mvm(tensor::Vector{1.0, 2.0, 3.0}), ContractViolation);
}

}  // namespace
}  // namespace xbarsec::xbar
