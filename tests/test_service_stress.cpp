// Concurrency stress for the serving layer and the decorator stack:
// N threads hammer one shared stack / one service, under ASan/TSan-
// friendly patterns (no sleeps-as-synchronisation, every future drained,
// exact final accounting). Run in CI under ASan+UBSan via the `service`
// ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "xbarsec/core/service.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 16, std::size_t out = 3) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net, xbar::NonIdealityConfig nonideal = {}) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec(), nonideal), {});
}

data::Dataset make_enrollment(Rng& rng, std::size_t n = 120, std::size_t dim = 16) {
    tensor::Matrix clean = tensor::Matrix::random_uniform(rng, n, dim);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 3);
    return data::Dataset(std::move(clean), std::move(labels), 3, data::ImageShape{4, 4, 1});
}

constexpr std::size_t kThreads = 8;
constexpr std::size_t kPerThread = 64;

TEST(ServiceStress, DecoratorStackSurvivesConcurrentCallers) {
    // The satellite audit target: one budget+detector+noise stack over
    // noisy hardware (atomic measurement counter), driven directly from
    // N concurrent callers. Counting must be exact and every noise
    // coordinate unique (the atomic reservation can't hand out
    // duplicates — checked indirectly by the exact counter totals).
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    xbar::NonIdealityConfig noisy;
    noisy.read_noise_std = 0.02;
    CrossbarOracle backend = make_oracle(net, noisy);
    const data::Dataset enrollment = make_enrollment(rng);
    const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                         enrollment);

    NoisyPowerOracle noise_layer(backend, 0.01);
    DetectorOracle detect_layer(noise_layer, detector, /*block_flagged=*/false);
    QueryBudget budget;
    budget.max_inference = kThreads * kPerThread;
    budget.max_power = kThreads * kPerThread;
    QueryBudgetOracle capped(detect_layer, budget);

    const tensor::Vector u(net.inputs(), 0.3);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::size_t q = 0; q < kPerThread; ++q) {
                (void)capped.query_label(u);
                (void)capped.query_power(u);
            }
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(backend.counters().inference, kThreads * kPerThread);
    EXPECT_EQ(backend.counters().power, kThreads * kPerThread);
    EXPECT_EQ(capped.spent().inference, kThreads * kPerThread);
    EXPECT_EQ(capped.spent().power, kThreads * kPerThread);
    EXPECT_EQ(detect_layer.screened(), kThreads * kPerThread);
    // The budget is now exactly spent: one more of either kind throws.
    EXPECT_THROW(capped.query_label(u), QueryBudgetExceeded);
    EXPECT_THROW(capped.query_power(u), QueryBudgetExceeded);

    // Measurement-counter reservations were neither lost nor duplicated
    // under concurrency: the same workload issued serially on an
    // identical stack reserves exactly as many (screening and the
    // detector's own hardware reads included).
    Rng rng2(1);
    const nn::SingleLayerNet net2 = make_net(rng2);
    CrossbarOracle serial_backend = make_oracle(net2, noisy);
    const data::Dataset enrollment2 = make_enrollment(rng2);
    const sidechannel::CurrentSignatureDetector detector2(
        serial_backend.hardware_for_evaluation(), enrollment2);
    NoisyPowerOracle serial_noise(serial_backend, 0.01);
    DetectorOracle serial_detect(serial_noise, detector2, false);
    QueryBudgetOracle serial_capped(serial_detect, budget);
    for (std::size_t q = 0; q < kThreads * kPerThread; ++q) {
        (void)serial_capped.query_label(u);
        (void)serial_capped.query_power(u);
    }
    EXPECT_EQ(backend.hardware_for_evaluation().crossbar().measurement_count(),
              serial_backend.hardware_for_evaluation().crossbar().measurement_count());
}

TEST(ServiceStress, ConcurrentSessionsAccountExactly) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.max_batch = 64;
    config.max_wait = std::chrono::microseconds(100);
    OracleService service(backend, config);

    std::vector<Session> sessions;
    sessions.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) sessions.push_back(service.open_session());

    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 32, net.inputs());
    std::atomic<std::uint64_t> answered{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng r(1000 + t);
            std::vector<std::future<int>> window;
            for (std::size_t q = 0; q < kPerThread; ++q) {
                window.push_back(
                    sessions[t].submit_label(U.row(static_cast<std::size_t>(r.below(U.rows())))));
                if (window.size() == 16) {
                    for (auto& f : window) {
                        (void)f.get();
                        answered.fetch_add(1, std::memory_order_relaxed);
                    }
                    window.clear();
                }
            }
            for (auto& f : window) {
                (void)f.get();
                answered.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(answered.load(), kThreads * kPerThread);
    EXPECT_EQ(service.counters().inference, kThreads * kPerThread);
    EXPECT_EQ(backend.counters().inference, kThreads * kPerThread);
    EXPECT_EQ(service.flushed_rows(), kThreads * kPerThread);
    std::uint64_t per_session = 0;
    for (auto& s : sessions) per_session += s.counters().inference;
    EXPECT_EQ(per_session, kThreads * kPerThread);
    EXPECT_EQ(service.sessions_opened(), kThreads);
}

TEST(ServiceStress, CounterSnapshotsAreMonotoneUnderLoad) {
    // The QueryCounters satellite: concurrent snapshots of session and
    // service counters must never run backwards between resets.
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    Session session = service.open_session();
    const tensor::Vector u(net.inputs(), 0.4);

    std::atomic<bool> done{false};
    std::atomic<bool> monotone{true};
    std::thread observer([&] {
        QueryCounters last_session, last_service;
        while (!done.load(std::memory_order_acquire)) {
            const QueryCounters s = session.counters();
            const QueryCounters svc = service.counters();
            if (s.inference < last_session.inference || s.power < last_session.power ||
                svc.inference < last_service.inference || svc.power < last_service.power ||
                s.total() < last_session.total() || svc.total() < last_service.total()) {
                monotone.store(false, std::memory_order_release);
            }
            last_session = s;
            last_service = svc;
        }
    });
    std::vector<std::future<double>> pending;
    pending.reserve(256);
    for (std::size_t q = 0; q < 256; ++q) pending.push_back(session.submit_power(u));
    for (auto& f : pending) (void)f.get();
    done.store(true, std::memory_order_release);
    observer.join();

    EXPECT_TRUE(monotone.load());
    EXPECT_EQ(session.counters().power, 256u);

    // Reset semantics: service and session counters reset independently
    // and start counting again from zero.
    service.reset_counters();
    EXPECT_EQ(service.counters().total(), 0u);
    EXPECT_EQ(session.counters().power, 256u);
    session.reset_counters();
    EXPECT_EQ(session.counters().total(), 0u);
    (void)session.submit_power(u).get();
    EXPECT_EQ(session.counters().power, 1u);
    EXPECT_EQ(service.counters().power, 1u);
}

TEST(ServiceStress, MixedKindsFromManySessionsOverNoisyHardware) {
    // All three kinds racing from 8 sessions over a read-noise device:
    // exercises the atomic measurement-counter reservation through the
    // coalescer's grouped backend calls. Exact accounting, no crashes,
    // every future resolves.
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    xbar::NonIdealityConfig noisy;
    noisy.read_noise_std = 0.05;
    CrossbarOracle backend = make_oracle(net, noisy);
    ServiceConfig config;
    config.max_batch = 32;
    config.max_wait = std::chrono::microseconds(100);
    OracleService service(backend, config);

    std::vector<Session> sessions;
    for (std::size_t t = 0; t < kThreads; ++t) sessions.push_back(service.open_session());
    const tensor::Vector u(net.inputs(), 0.6);

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t q = 0; q < kPerThread / 4; ++q) {
                auto fl = sessions[t].submit_label(u);
                auto fr = sessions[t].submit_raw(u);
                auto fp = sessions[t].submit_power(u);
                (void)fl.get();
                (void)fr.get();
                (void)fp.get();
            }
        });
    }
    for (auto& t : threads) t.join();

    const std::uint64_t per_kind = kThreads * (kPerThread / 4);
    EXPECT_EQ(service.counters().inference, 2 * per_kind);
    EXPECT_EQ(service.counters().power, per_kind);
    EXPECT_EQ(backend.counters().inference, 2 * per_kind);
    EXPECT_EQ(backend.counters().power, per_kind);
}

}  // namespace
}  // namespace xbarsec::core
