// DenseLayer and SingleLayerNet tests, including the Eq. 7 input-gradient
// check against finite differences.
#include <gtest/gtest.h>

#include "xbarsec/common/error.hpp"
#include "xbarsec/nn/layer.hpp"
#include "xbarsec/nn/network.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {
namespace {

TEST(DenseLayer, ForwardIsMatVec) {
    DenseLayer layer(2, 3);
    layer.weights() = tensor::Matrix{{1, 2, 3}, {4, 5, 6}};
    const tensor::Vector s = layer.forward(tensor::Vector{1, 0, -1});
    EXPECT_DOUBLE_EQ(s[0], -2.0);
    EXPECT_DOUBLE_EQ(s[1], -2.0);
}

TEST(DenseLayer, BiasIsApplied) {
    DenseLayer layer(2, 2, /*with_bias=*/true);
    layer.weights() = tensor::Matrix{{1, 0}, {0, 1}};
    layer.bias() = tensor::Vector{10, 20};
    const tensor::Vector s = layer.forward(tensor::Vector{1, 2});
    EXPECT_DOUBLE_EQ(s[0], 11.0);
    EXPECT_DOUBLE_EQ(s[1], 22.0);
}

TEST(DenseLayer, BatchMatchesPerSampleForward) {
    Rng rng(1);
    const DenseLayer layer = DenseLayer::glorot(rng, 4, 7, /*with_bias=*/true);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 9, 7);
    const tensor::Matrix S = layer.forward_batch(U);
    for (std::size_t r = 0; r < U.rows(); ++r) {
        const tensor::Vector s = layer.forward(U.row(r));
        for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(S(r, c), s[c], 1e-12);
    }
}

TEST(DenseLayer, GlorotBounds) {
    Rng rng(2);
    const DenseLayer layer = DenseLayer::glorot(rng, 10, 90);
    const double limit = std::sqrt(6.0 / 100.0);
    EXPECT_LE(tensor::max_abs(layer.weights()), limit);
    // Not degenerate.
    EXPECT_GT(tensor::frobenius_norm(layer.weights()), 0.1);
}

TEST(SingleLayerNet, RejectsUnsupportedPairing) {
    Rng rng(3);
    EXPECT_THROW(SingleLayerNet(rng, 4, 2, Activation::Softmax, Loss::Mse), ConfigError);
    EXPECT_THROW(SingleLayerNet(rng, 4, 2, Activation::Linear, Loss::CategoricalCrossentropy),
                 ConfigError);
}

TEST(SingleLayerNet, PredictAppliesActivation) {
    Rng rng(4);
    SingleLayerNet net(rng, 3, 2, Activation::Softmax, Loss::CategoricalCrossentropy);
    const tensor::Vector y = net.predict(tensor::Vector{0.1, 0.2, 0.3});
    EXPECT_NEAR(tensor::sum(y), 1.0, 1e-12);
}

TEST(SingleLayerNet, ClassifyIsArgmax) {
    SingleLayerNet net(DenseLayer(2, 2), Activation::Linear, Loss::Mse);
    net.weights() = tensor::Matrix{{1, 0}, {0, 1}};
    EXPECT_EQ(net.classify(tensor::Vector{3.0, 1.0}), 0);
    EXPECT_EQ(net.classify(tensor::Vector{1.0, 3.0}), 1);
}

TEST(SingleLayerNet, PredictBatchMatchesPredict) {
    Rng rng(5);
    SingleLayerNet net(rng, 6, 4, Activation::Softmax, Loss::CategoricalCrossentropy);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 5, 6);
    const tensor::Matrix Y = net.predict_batch(U);
    for (std::size_t r = 0; r < U.rows(); ++r) {
        const tensor::Vector y = net.predict(U.row(r));
        for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(Y(r, c), y[c], 1e-12);
    }
}

// Eq. 7 check: ∂L/∂u from the analytic path must match central finite
// differences through the full forward computation, for both of the
// paper's configurations.
struct NetGradCase {
    Activation activation;
    Loss loss;
};

class InputGradient : public ::testing::TestWithParam<NetGradCase> {};

TEST_P(InputGradient, MatchesFiniteDifferences) {
    const auto [activation, loss] = GetParam();
    Rng rng(6);
    SingleLayerNet net(rng, 8, 5, activation, loss);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 8);
    tensor::Vector t(5, 0.0);
    t[1] = 1.0;
    const tensor::Vector grad = net.input_gradient(u, t);
    const double h = 1e-6;
    for (std::size_t j = 0; j < u.size(); ++j) {
        tensor::Vector up = u, um = u;
        up[j] += h;
        um[j] -= h;
        const double fd = (net.loss(up, t) - net.loss(um, t)) / (2 * h);
        EXPECT_NEAR(grad[j], fd, 1e-5) << "input " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, InputGradient,
                         ::testing::Values(NetGradCase{Activation::Linear, Loss::Mse},
                                           NetGradCase{Activation::Softmax,
                                                       Loss::CategoricalCrossentropy}));

TEST(SingleLayerNet, InputGradientIsWTransposeDelta) {
    // Structural identity from Eq. 7: ∂L/∂u = Wᵀ·δ.
    Rng rng(7);
    SingleLayerNet net(rng, 5, 3, Activation::Linear, Loss::Mse);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 5);
    tensor::Vector t(3, 0.0);
    t[0] = 1.0;
    const tensor::Vector delta = net.preactivation_delta(u, t);
    const tensor::Vector expected = tensor::matvec_transposed(net.weights(), delta);
    const tensor::Vector got = net.input_gradient(u, t);
    for (std::size_t j = 0; j < got.size(); ++j) EXPECT_NEAR(got[j], expected[j], 1e-12);
}

TEST(SingleLayerNet, BatchedInputGradientMatchesPerSample) {
    // The batched GEMM gradient path must agree with the per-sample
    // matvec path for both paper configurations.
    for (const auto& [act, loss] :
         {std::pair{Activation::Linear, Loss::Mse},
          {Activation::Softmax, Loss::CategoricalCrossentropy}}) {
        Rng rng(11);
        SingleLayerNet net(rng, 9, 4, act, loss);
        const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 7, 9);
        tensor::Matrix T(7, 4, 0.0);
        for (std::size_t r = 0; r < 7; ++r) T(r, r % 4) = 1.0;

        const tensor::Matrix G = net.input_gradient_batch(U, T);
        const tensor::Matrix D = net.preactivation_delta_batch(U, T);
        for (std::size_t r = 0; r < U.rows(); ++r) {
            const tensor::Vector g = net.input_gradient(U.row(r), T.row(r));
            const tensor::Vector d = net.preactivation_delta(U.row(r), T.row(r));
            for (std::size_t j = 0; j < g.size(); ++j) EXPECT_NEAR(G(r, j), g[j], 1e-12);
            for (std::size_t c = 0; c < d.size(); ++c) EXPECT_NEAR(D(r, c), d[c], 1e-12);
        }
    }
}

}  // namespace
}  // namespace xbarsec::nn
