// Reporting helper tests: heat-map rendering, grid CSV output, and
// label sanitisation (the benches' output plumbing).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/core/report.hpp"

namespace xbarsec::core {
namespace {

TEST(AsciiHeatmap, DimensionsAndExtremes) {
    // 2×3 map: min at (0,0), max at (1,2).
    tensor::Vector map{0.0, 0.5, 0.5, 0.5, 0.5, 1.0};
    const data::ImageShape shape{2, 3, 1};
    const std::string art = render_ascii_heatmap(map, shape);
    std::istringstream is(art);
    std::string line1, line2;
    ASSERT_TRUE(std::getline(is, line1));
    ASSERT_TRUE(std::getline(is, line2));
    EXPECT_EQ(line1.size(), 3u);
    EXPECT_EQ(line2.size(), 3u);
    EXPECT_EQ(line1[0], ' ');  // minimum renders blank
    EXPECT_EQ(line2[2], '@');  // maximum renders densest glyph
}

TEST(AsciiHeatmap, ConstantMapDoesNotDivideByZero) {
    tensor::Vector map(9, 0.7);
    const std::string art = render_ascii_heatmap(map, data::ImageShape{3, 3, 1});
    EXPECT_EQ(art.size(), 3u * 4u);  // 3 rows of 3 chars + newlines
}

TEST(AsciiHeatmap, ChannelSelection) {
    // Channel 1 of a 2-channel 1×2 image.
    tensor::Vector map{0.0, 0.0, 1.0, 0.0};
    const data::ImageShape shape{1, 2, 2};
    const std::string ch1 = render_ascii_heatmap(map, shape, 1);
    EXPECT_EQ(ch1[0], '@');
    EXPECT_EQ(ch1[1], ' ');
    EXPECT_THROW(render_ascii_heatmap(map, shape, 2), ContractViolation);
}

TEST(AsciiHeatmap, SizeMismatchThrows) {
    tensor::Vector map(5, 0.0);
    EXPECT_THROW(render_ascii_heatmap(map, data::ImageShape{2, 3, 1}), ContractViolation);
}

TEST(GridCsv, WritesRowMajorGrid) {
    const auto path = std::filesystem::temp_directory_path() / "xbarsec_grid_test.csv";
    tensor::Vector map{1.0, 2.0, 3.0, 4.0};
    write_grid_csv(path.string(), map, data::ImageShape{2, 2, 1});
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "1,2");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "3,4");
    std::filesystem::remove(path);
}

TEST(GridCsv, SecondChannelOfPlanarImage) {
    const auto path = std::filesystem::temp_directory_path() / "xbarsec_grid_ch.csv";
    tensor::Vector map{0.0, 0.0, 0.0, 0.0, 5.0, 6.0, 7.0, 8.0};  // ch0 plane, ch1 plane
    write_grid_csv(path.string(), map, data::ImageShape{2, 2, 2}, 1);
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "5,6");
    std::filesystem::remove(path);
}

TEST(SanitizeLabel, ReplacesSeparatorsAndSpaces) {
    EXPECT_EQ(sanitize_label("MNIST-like/linear"), "MNIST-like_linear");
    EXPECT_EQ(sanitize_label("a b\\c/d"), "a_b_c_d");
    EXPECT_EQ(sanitize_label("clean"), "clean");
    EXPECT_EQ(sanitize_label(""), "");
}

}  // namespace
}  // namespace xbarsec::core
