// Single-pixel (Figure 4) and multi-pixel (Section III remark) attack
// tests.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/attack/multi_pixel.hpp"
#include "xbarsec/attack/single_pixel.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {
namespace {

nn::SingleLayerNet diag_net() {
    // Transparent 3-input/2-output network for exact expectations.
    nn::DenseLayer layer(2, 3);
    layer.weights() = tensor::Matrix{{1.0, 0.0, 0.2}, {0.0, -3.0, 0.1}};
    return nn::SingleLayerNet(std::move(layer), nn::Activation::Linear, nn::Loss::Mse);
}

TEST(SinglePixel, MethodLabelsMatchThePaperLegend) {
    EXPECT_EQ(to_string(SinglePixelMethod::RandomPixel), "RP");
    EXPECT_EQ(to_string(SinglePixelMethod::PowerAdd), "+");
    EXPECT_EQ(to_string(SinglePixelMethod::PowerSub), "-");
    EXPECT_EQ(to_string(SinglePixelMethod::PowerRandomDir), "RD");
    EXPECT_EQ(to_string(SinglePixelMethod::WorstCase), "Worst");
    EXPECT_EQ(all_single_pixel_methods().size(), 5u);
}

TEST(SinglePixel, PowerMethodsHitTheLargestL1Column) {
    const nn::SingleLayerNet net = diag_net();
    // Column 1-norms: {1.0, 3.0, 0.3} → pixel 1 is the target.
    const tensor::Vector l1 = tensor::column_abs_sums(net.weights());
    const tensor::Vector u{0.5, 0.5, 0.5};
    const tensor::Vector t{1.0, 0.0};
    Rng rng(1);

    const tensor::Vector add =
        attack_single_pixel(SinglePixelMethod::PowerAdd, u, t, 2.0, &l1, nullptr, rng);
    EXPECT_DOUBLE_EQ(add[1], 2.5);
    EXPECT_DOUBLE_EQ(add[0], 0.5);

    const tensor::Vector sub =
        attack_single_pixel(SinglePixelMethod::PowerSub, u, t, 2.0, &l1, nullptr, rng);
    EXPECT_DOUBLE_EQ(sub[1], -1.5);

    const tensor::Vector rd =
        attack_single_pixel(SinglePixelMethod::PowerRandomDir, u, t, 2.0, &l1, nullptr, rng);
    EXPECT_DOUBLE_EQ(std::abs(rd[1] - 0.5), 2.0);
}

TEST(SinglePixel, WorstCaseFollowsTheGradient) {
    const nn::SingleLayerNet net = diag_net();
    const tensor::Vector u{0.5, 0.5, 0.5};
    const tensor::Vector t{1.0, 0.0};
    Rng rng(2);
    const tensor::Vector adv =
        attack_single_pixel(SinglePixelMethod::WorstCase, u, t, 1.0, nullptr, &net, rng);
    // The most sensitive pixel is argmax |∂L/∂u| and it moves along the
    // gradient sign.
    const tensor::Vector g = net.input_gradient(u, t);
    const std::size_t j = tensor::argmax(tensor::abs(g));
    EXPECT_NE(adv[j], u[j]);
    EXPECT_EQ(adv[j] > u[j], g[j] > 0.0);
    // Other pixels untouched.
    for (std::size_t k = 0; k < 3; ++k) {
        if (k != j) EXPECT_DOUBLE_EQ(adv[k], u[k]);
    }
}

TEST(SinglePixel, RandomPixelTouchesExactlyOnePixel) {
    const nn::SingleLayerNet net = diag_net();
    const tensor::Vector u{0.1, 0.2, 0.3};
    const tensor::Vector t{1.0, 0.0};
    Rng rng(3);
    for (int trial = 0; trial < 10; ++trial) {
        const tensor::Vector adv =
            attack_single_pixel(SinglePixelMethod::RandomPixel, u, t, 0.7, nullptr, nullptr, rng);
        int changed = 0;
        for (std::size_t j = 0; j < 3; ++j) {
            if (adv[j] != u[j]) {
                ++changed;
                EXPECT_NEAR(std::abs(adv[j] - u[j]), 0.7, 1e-12);
            }
        }
        EXPECT_EQ(changed, 1);
    }
}

TEST(SinglePixel, MissingSideInformationThrows) {
    const nn::SingleLayerNet net = diag_net();
    const tensor::Vector u{0, 0, 0};
    const tensor::Vector t{1, 0};
    Rng rng(4);
    EXPECT_THROW(attack_single_pixel(SinglePixelMethod::PowerAdd, u, t, 1.0, nullptr, &net, rng),
                 ConfigError);
    EXPECT_THROW(attack_single_pixel(SinglePixelMethod::WorstCase, u, t, 1.0, nullptr, nullptr, rng),
                 ConfigError);
}

TEST(SinglePixel, ZeroStrengthLeavesAccuracyUnchanged) {
    const nn::SingleLayerNet net = diag_net();
    tensor::Matrix inputs{{0.9, 0.0, 0.0}, {0.0, -0.9, 0.0}};
    const data::Dataset d(std::move(inputs), {0, 1}, 2, data::ImageShape{1, 3, 1});
    const tensor::Vector l1 = tensor::column_abs_sums(net.weights());
    Rng rng(5);
    const double clean = evaluate_single_pixel_attack(net, d, SinglePixelMethod::PowerAdd, 0.0,
                                                      &l1, rng);
    EXPECT_DOUBLE_EQ(clean, 1.0);
}

TEST(SinglePixel, WorstCaseMaximisesLossIncreaseAmongMethods) {
    // The "Worst" method's defining property is greedily ascending the
    // LOSS (Eq. 1-2), not directly flipping labels — with MSE it can even
    // reinforce a classification while raising the loss. Assert the loss
    // invariant: per sample, its loss increase beats the random-pixel
    // method's on average.
    Rng data_rng(6);
    const std::size_t n = 200;
    tensor::Matrix inputs(n, 3);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int c = static_cast<int>(i % 2);
        inputs(i, 0) = c == 0 ? 0.8 + 0.1 * data_rng.uniform() : 0.1;
        inputs(i, 1) = c == 1 ? -0.8 - 0.1 * data_rng.uniform() : 0.1;
        inputs(i, 2) = data_rng.uniform();
        labels[i] = c;
    }
    const data::Dataset d(std::move(inputs), std::move(labels), 2, data::ImageShape{1, 3, 1});
    const nn::SingleLayerNet net = diag_net();
    Rng rng(7);
    double worst_gain = 0.0, rp_gain = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        const tensor::Vector u = d.input(i);
        const tensor::Vector t = d.target(i);
        const double base = net.loss(u, t);
        const tensor::Vector adv_worst =
            attack_single_pixel(SinglePixelMethod::WorstCase, u, t, 2.0, nullptr, &net, rng);
        const tensor::Vector adv_rp =
            attack_single_pixel(SinglePixelMethod::RandomPixel, u, t, 2.0, nullptr, &net, rng);
        worst_gain += net.loss(adv_worst, t) - base;
        rp_gain += net.loss(adv_rp, t) - base;
    }
    EXPECT_GT(worst_gain, rp_gain);
    EXPECT_GT(worst_gain, 0.0);
}

TEST(MultiPixel, TopNIndicesAreSortedByRanking) {
    const tensor::Vector ranking{0.1, 0.9, 0.5, 0.7};
    const auto top = top_n_indices(ranking, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0], 1u);
    EXPECT_EQ(top[1], 3u);
    EXPECT_EQ(top[2], 2u);
    EXPECT_THROW(top_n_indices(ranking, 0), ContractViolation);
    EXPECT_THROW(top_n_indices(ranking, 5), ContractViolation);
}

TEST(MultiPixel, AllAddPerturbsEverySelectedPixel) {
    const nn::SingleLayerNet net = diag_net();
    const tensor::Vector u{0, 0, 0};
    const tensor::Vector t{1, 0};
    Rng rng(8);
    const tensor::Vector adv =
        attack_pixels(u, t, {0, 2}, 0.5, MultiPixelDirection::AllAdd, nullptr, rng);
    EXPECT_DOUBLE_EQ(adv[0], 0.5);
    EXPECT_DOUBLE_EQ(adv[1], 0.0);
    EXPECT_DOUBLE_EQ(adv[2], 0.5);
}

TEST(MultiPixel, OracleDirectionNeedsWhiteBox) {
    const tensor::Vector u{0, 0, 0};
    const tensor::Vector t{1, 0};
    Rng rng(9);
    EXPECT_THROW(attack_pixels(u, t, {0}, 0.5, MultiPixelDirection::Oracle, nullptr, rng),
                 ConfigError);
}

TEST(MultiPixel, RandomDirectionsTouchAllSelectedPixels) {
    const nn::SingleLayerNet net = diag_net();
    const tensor::Vector u{0, 0, 0};
    const tensor::Vector t{1, 0};
    Rng rng(10);
    const tensor::Vector adv =
        attack_pixels(u, t, {0, 1, 2}, 1.0, MultiPixelDirection::RandomPerPixel, &net, rng);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(std::abs(adv[j]), 1.0, 1e-12);
}

TEST(MultiPixel, EvaluateRunsOverDataset) {
    const nn::SingleLayerNet net = diag_net();
    tensor::Matrix inputs{{0.9, 0.0, 0.0}, {0.0, -0.9, 0.0}};
    const data::Dataset d(std::move(inputs), {0, 1}, 2, data::ImageShape{1, 3, 1});
    const tensor::Vector l1 = tensor::column_abs_sums(net.weights());
    Rng rng(11);
    const double acc = evaluate_multi_pixel_attack(net, d, l1, 2, 0.0,
                                                   MultiPixelDirection::RandomPerPixel, rng);
    EXPECT_DOUBLE_EQ(acc, 1.0);  // zero strength cannot change labels
}

}  // namespace
}  // namespace xbarsec::attack
