// Arena / Workspace allocator contracts.
//
// The kernel layer's pack buffers and the trainers' minibatch temporaries
// moved onto the arena layer (common/arena.hpp raw tier, tensor/workspace.hpp
// Matrix tier). These tests pin the contracts that move relies on:
// alignment, reset/reuse without reallocation, LIFO Scope rewind, per-thread
// disjointness under nested parallel_for, and — the end-to-end invariant —
// that every trainer produces bit-identical weights with the arena on or off.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "xbarsec/common/arena.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/mlp_trainer.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/tensor/workspace.hpp"

namespace xbarsec {
namespace {

TEST(Arena, AllocationsAreCacheLineAligned) {
    Arena arena(128);
    for (const std::size_t bytes : {1ul, 7ul, 64ul, 65ul, 1000ul, 100000ul}) {
        void* p = arena.allocate(bytes);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kAlign, 0u) << bytes;
    }
    const auto doubles = arena.alloc<double>(33);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % Arena::kAlign, 0u);
    EXPECT_EQ(doubles.size(), 33u);
}

TEST(Arena, AllocationsDoNotOverlapAndSurviveGrowth) {
    // Small initial chunk so the loop forces several growth chunks; every
    // block must stay disjoint and retain its fill pattern.
    Arena arena(256);
    std::vector<std::span<double>> blocks;
    for (std::size_t i = 0; i < 40; ++i) {
        auto s = arena.alloc<double>(17 + i * 11);
        for (auto& x : s) x = static_cast<double>(i);
        blocks.push_back(s);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (const double x : blocks[i]) ASSERT_EQ(x, static_cast<double>(i));
        for (std::size_t j = i + 1; j < blocks.size(); ++j) {
            const auto* ai = blocks[i].data();
            const auto* aj = blocks[j].data();
            const bool disjoint = ai + blocks[i].size() <= aj || aj + blocks[j].size() <= ai;
            ASSERT_TRUE(disjoint) << i << " vs " << j;
        }
    }
}

TEST(Arena, ResetReusesMemoryWithoutGrowingTheReservation) {
    Arena arena(1 << 12);
    arena.alloc<double>(2000);  // forces growth past the initial chunk
    const void* first = arena.allocate(64);
    const std::size_t reserved = arena.bytes_reserved();
    arena.reset();
    EXPECT_EQ(arena.bytes_in_use(), 0u);
    // Identical allocation sequence lands on identical addresses, and the
    // reservation never grows: steady-state loops are allocation-free.
    for (int rep = 0; rep < 5; ++rep) {
        arena.alloc<double>(2000);
        EXPECT_EQ(arena.allocate(64), first);
        arena.reset();
        EXPECT_EQ(arena.bytes_reserved(), reserved);
    }
}

TEST(Arena, ScopeRewindsLifo) {
    Arena arena(1 << 10);
    arena.allocate(128);
    const std::size_t outer_use = arena.bytes_in_use();
    {
        const Arena::Scope s1(arena);
        arena.allocate(512);
        {
            const Arena::Scope s2(arena);
            arena.allocate(4096);  // spills into a growth chunk
            EXPECT_GT(arena.bytes_in_use(), outer_use + 512);
        }
        EXPECT_EQ(arena.bytes_in_use(), outer_use + 512);
    }
    EXPECT_EQ(arena.bytes_in_use(), outer_use);
}

TEST(Arena, ThreadArenasAreDisjointUnderNestedParallelFor) {
    // Mirrors the kernel layer's allocation pattern: every worker (and the
    // nested inner parallel_for bodies it runs) bumps its own thread
    // arena. No two live blocks may overlap across the whole run, and
    // every block must keep its fill pattern until its scope closes.
    ThreadPool pool(4);
    std::mutex mu;
    std::vector<std::pair<std::uintptr_t, std::uintptr_t>> live_ranges;

    parallel_for(pool, 8, [&](std::size_t i) {
        Arena& arena = thread_arena();
        const Arena::Scope outer(arena);
        auto mine = arena.alloc<double>(1024);
        for (auto& x : mine) x = static_cast<double>(i);
        {
            std::lock_guard<std::mutex> lock(mu);
            live_ranges.emplace_back(reinterpret_cast<std::uintptr_t>(mine.data()),
                                     reinterpret_cast<std::uintptr_t>(mine.data() + mine.size()));
        }
        parallel_for(pool, 4, [&](std::size_t j) {
            Arena& inner_arena = thread_arena();
            const Arena::Scope inner(inner_arena);
            auto block = inner_arena.alloc<double>(512);
            for (auto& x : block) x = static_cast<double>(100 + j);
            for (const double x : block) ASSERT_EQ(x, static_cast<double>(100 + j));
        });
        // The nested loop ran bodies on this thread too (its scopes must
        // have rewound past our block without touching it).
        for (const double x : mine) ASSERT_EQ(x, static_cast<double>(i));
    });

    for (std::size_t a = 0; a < live_ranges.size(); ++a) {
        for (std::size_t b = a + 1; b < live_ranges.size(); ++b) {
            const bool disjoint = live_ranges[a].second <= live_ranges[b].first ||
                                  live_ranges[b].second <= live_ranges[a].first;
            // Ranges from the same thread at different indices may legally
            // reuse addresses only after the scope closed; live_ranges
            // records blocks while scopes were open on distinct stack
            // levels, so any overlap would be a rewind bug — except exact
            // reuse after a completed iteration on the same thread, which
            // is indistinguishable here and also harmless. Only flag
            // partial overlaps.
            const bool identical = live_ranges[a] == live_ranges[b];
            ASSERT_TRUE(disjoint || identical) << a << " vs " << b;
        }
    }
}

TEST(Workspace, SlotsAreStableAndReusedAfterReset) {
    tensor::Workspace ws;
    tensor::Matrix& a = ws.matrix(8, 8);
    tensor::Matrix& b = ws.matrix(4, 100);
    EXPECT_NE(&a, &b);
    a.fill(1.0);
    b.fill(2.0);
    tensor::Matrix& c = ws.matrix(2, 2);  // growth must not move a or b
    c.fill(3.0);
    EXPECT_EQ(a(0, 0), 1.0);
    EXPECT_EQ(b(3, 99), 2.0);
    EXPECT_EQ(ws.live_slots(), 3u);

    ws.reset();
    EXPECT_EQ(ws.live_slots(), 0u);
    // Same acquisition order → same slots, reshaped in place.
    tensor::Matrix& a2 = ws.matrix(6, 6);
    EXPECT_EQ(&a2, &a);
    EXPECT_EQ(a2.rows(), 6u);
    EXPECT_EQ(ws.pooled_slots(), 3u);

    tensor::Vector& v = ws.vector(12);
    EXPECT_EQ(v.size(), 12u);
}

// ---- the end-to-end invariant: arena on/off is bit-identical ---------------

data::Dataset tiny_dataset(std::uint64_t seed, std::size_t n, std::size_t dim,
                           std::size_t classes) {
    Rng rng(seed);
    tensor::Matrix X = tensor::Matrix::random_uniform(rng, n, dim);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(rng.below(classes));
    return data::Dataset(std::move(X), std::move(labels), classes, {1, dim, 1});
}

TEST(WorkspaceTrainer, SingleLayerWeightsBitIdenticalArenaOnVsOff) {
    const data::Dataset ds = tiny_dataset(5, 97, 23, 4);  // ragged final batch
    nn::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.batch_size = 16;

    auto run = [&](bool arena) {
        Rng init(11);
        nn::SingleLayerNet net(init, 23, 4, nn::Activation::Softmax,
                               nn::Loss::CategoricalCrossentropy);
        nn::TrainConfig c = cfg;
        c.arena = arena;
        const nn::TrainHistory h = nn::train(net, ds, c);
        return std::make_pair(net.weights(), h.epoch_loss);
    };
    const auto [w_on, loss_on] = run(true);
    const auto [w_off, loss_off] = run(false);
    EXPECT_EQ(w_on, w_off);
    EXPECT_EQ(loss_on, loss_off);
}

TEST(WorkspaceTrainer, MlpWeightsBitIdenticalArenaOnVsOff) {
    const data::Dataset ds = tiny_dataset(7, 90, 19, 3);
    nn::MlpConfig mc;
    mc.layer_sizes = {19, 16, 3};
    nn::TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch_size = 8;

    auto run = [&](bool arena) {
        Rng init(3);
        nn::Mlp mlp(init, mc);
        nn::TrainConfig c = cfg;
        c.arena = arena;
        nn::train_mlp(mlp, ds, c);
        std::vector<tensor::Matrix> weights;
        for (const auto& layer : mlp.layers()) weights.push_back(layer.weights());
        return weights;
    };
    const auto on = run(true);
    const auto off = run(false);
    ASSERT_EQ(on.size(), off.size());
    for (std::size_t l = 0; l < on.size(); ++l) EXPECT_EQ(on[l], off[l]) << "layer " << l;
}

TEST(WorkspaceTrainer, SurrogateWeightsBitIdenticalArenaOnVsOff) {
    Rng rng(13);
    attack::QueryDataset q;
    q.inputs = tensor::Matrix::random_uniform(rng, 61, 15);
    q.outputs = tensor::Matrix::random_normal(rng, 61, 5);
    q.power = tensor::Vector::random_uniform(rng, 61, 0.0, 3.0);

    attack::SurrogateConfig sc;
    sc.train.epochs = 3;
    sc.train.batch_size = 8;
    sc.power_loss_weight = 0.05;

    auto run = [&](bool arena) {
        attack::SurrogateConfig c = sc;
        c.train.arena = arena;
        return attack::train_surrogate(q, c);
    };
    const attack::SurrogateTrainResult on = run(true);
    const attack::SurrogateTrainResult off = run(false);
    EXPECT_EQ(on.surrogate.weights(), off.surrogate.weights());
    EXPECT_EQ(on.epoch_output_loss, off.epoch_output_loss);
    EXPECT_EQ(on.epoch_power_loss, off.epoch_power_loss);
}

}  // namespace
}  // namespace xbarsec
