// Correlation coefficient tests (the Table-I metric).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/rng.hpp"
#include "xbarsec/stats/correlation.hpp"

namespace xbarsec::stats {
namespace {

TEST(Pearson, PerfectPositiveAndNegative) {
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    const std::vector<double> yn{8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Pearson, KnownHandComputedValue) {
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{2, 1, 4, 3, 5};
    // r = cov/σxσy = 0.8 for this classic example.
    EXPECT_NEAR(pearson(x, y), 0.8, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero) {
    const std::vector<double> x{1, 1, 1};
    const std::vector<double> y{1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
    EXPECT_DOUBLE_EQ(pearson(y, x), 0.0);
}

TEST(Pearson, InvariantToAffineTransforms) {
    Rng rng(1);
    std::vector<double> x(100), y(100), x2(100), y2(100);
    for (std::size_t i = 0; i < 100; ++i) {
        x[i] = rng.normal();
        y[i] = 0.5 * x[i] + rng.normal();
        x2[i] = 3.0 * x[i] - 7.0;
        y2[i] = -2.0 * y[i] + 11.0;  // negative scale flips the sign
    }
    EXPECT_NEAR(pearson(x2, y2), -pearson(x, y), 1e-12);
}

TEST(Pearson, SizeContractViolations) {
    const std::vector<double> a{1, 2}, b{1, 2, 3}, one{1};
    EXPECT_THROW(pearson(std::span<const double>(a), std::span<const double>(b)),
                 xbarsec::ContractViolation);
    EXPECT_THROW(pearson(std::span<const double>(one), std::span<const double>(one)),
                 xbarsec::ContractViolation);
}

TEST(Pearson, VectorOverload) {
    const tensor::Vector x{1, 2, 3};
    const tensor::Vector y{4, 5, 6};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, UncorrelatedIsNearZero) {
    Rng rng(2);
    std::vector<double> x(5000), y(5000);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = rng.normal();
        y[i] = rng.normal();
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
    std::vector<double> x(20), y(20);
    for (std::size_t i = 0; i < 20; ++i) {
        x[i] = static_cast<double>(i);
        y[i] = std::exp(0.3 * static_cast<double>(i));  // monotone but nonlinear
    }
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    // Pearson is strictly below 1 for a convex transform.
    EXPECT_LT(pearson(x, y), 0.999);
}

TEST(Spearman, HandlesTiesWithAverageRanks) {
    const std::vector<double> x{1, 2, 2, 3};
    const std::vector<double> y{10, 20, 20, 30};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, ReversedOrderIsMinusOne) {
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{9, 7, 5, 3};
    EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

}  // namespace
}  // namespace xbarsec::stats
