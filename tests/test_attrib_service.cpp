// OracleService wiring of the cross-session attribution tier: the
// off-by-default contract (disabled accessors, bit-identical answers),
// campaign pooling that survives session rotation, query-overlap
// clustering across forged admission identities, zero benign false
// merges, the deployment-level alert's per-query escalation, and the
// accessor error contracts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xbarsec/core/service.hpp"
#include "xbarsec/sidechannel/detector.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 16, std::size_t out = 3) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net, xbar::NonIdealityConfig nonideal = {}) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec(), nonideal), {});
}

xbar::NonIdealityConfig noisy_device() {
    xbar::NonIdealityConfig c;
    c.read_noise_std = 0.05;
    return c;
}

data::Dataset make_enrollment(Rng& rng, std::size_t n = 120, std::size_t dim = 16) {
    tensor::Matrix clean = tensor::Matrix::random_uniform(rng, n, dim);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 3);
    return data::Dataset(std::move(clean), std::move(labels), 3, data::ImageShape{4, 4, 1});
}

/// A distinct suspicious-amplitude probe row (|value| > 1.5 trips the
/// engine's amplitude heuristic without needing a detector).
tensor::Vector probe_row(std::size_t inputs, std::size_t i) {
    tensor::Vector u(inputs, 0.5);
    u[i % inputs] = 3.0 + static_cast<double>(i);
    return u;
}

// ---- off by default ---------------------------------------------------------

TEST(AttributionOff, AccessorsReportDisabledAndKeyedCallsThrow) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);

    EXPECT_FALSE(service.attribution_enabled());
    EXPECT_FALSE(service.attribution_alert());
    EXPECT_EQ(service.attribution_source_count(), 0u);
    EXPECT_TRUE(service.attribution_sources().empty());
    EXPECT_EQ(service.attribution_campaign_count(), 0u);
    EXPECT_TRUE(service.attribution_campaigns().empty());
    EXPECT_EQ(service.attribution_snapshot(), "{}");
    EXPECT_THROW(service.attribution_source_counters(1), ConfigError);
    EXPECT_THROW(service.attribution_campaign_of(1), ConfigError);
}

TEST(AttributionOff, EnablingAttributionDoesNotPerturbAnswers) {
    // The off-by-default contract, read the other way: for benign
    // traffic on noisy hardware with session sensing noise, the
    // attribution-on service must answer bit-identically to the
    // attribution-free one — observation is bookkeeping, not a filter.
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend_off = make_oracle(net, noisy_device());
    CrossbarOracle backend_on = make_oracle(net, noisy_device());
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 16, net.inputs());

    auto run = [&U](CrossbarOracle& backend, bool attribution) {
        ServiceConfig config;
        config.attribution.enabled = attribution;
        OracleService service(backend, config);
        SessionConfig tenant;
        tenant.power_noise_sigma = 0.05;
        tenant.noise_seed = 7;
        tenant.source = attribution ? 11 : 0;
        Session session = service.open_session(tenant);
        std::vector<double> out;
        for (std::size_t r = 0; r < U.rows(); ++r) {
            out.push_back(static_cast<double>(session.submit_label(U.row(r)).get()));
            out.push_back(session.submit_power(U.row(r)).get());
        }
        return out;
    };

    const std::vector<double> off = run(backend_off, false);
    const std::vector<double> on = run(backend_on, true);
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(off[i], on[i]) << "answer " << i << " diverged";
    }
}

// ---- per-source pooling across rotation -------------------------------------

TEST(AttributionService, SourcesAndCampaignsAreTracked) {
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    OracleService service(backend, config);

    SessionConfig tenant;
    tenant.source = 5;
    Session a = service.open_session(tenant);
    Session b = service.open_session(tenant);
    tenant.source = 6;
    Session c = service.open_session(tenant);

    const tensor::Vector u(net.inputs(), 0.5);
    for (int i = 0; i < 3; ++i) (void)a.submit_label(u).get();
    (void)c.submit_label(u).get();

    EXPECT_TRUE(service.attribution_enabled());
    EXPECT_EQ(service.attribution_source_count(), 2u);
    EXPECT_EQ(service.attribution_sources(), (std::vector<attrib::SourceId>{5, 6}));
    EXPECT_EQ(service.attribution_source_counters(5).sessions, 2u);
    EXPECT_EQ(service.attribution_source_counters(5).screened, 3u);

    // Same source ⇒ one campaign; the other principal stays apart.
    EXPECT_EQ(service.attribution_campaign_count(), 2u);
    EXPECT_EQ(service.attribution_campaign_of(a.id()).sessions, 2u);
    EXPECT_EQ(service.attribution_campaign_of(b.id()).id, service.attribution_campaign_of(a.id()).id);
    EXPECT_EQ(service.attribution_campaign_of(c.id()).sessions, 1u);
}

TEST(AttributionService, CampaignSuspicionFollowsTheSourceAcrossRotation) {
    // The rotation loophole, closed: a session that earned an escalated
    // adaptive band cannot shed it by reopening — the fresh session
    // inherits its campaign's pooled screened/flagged window, so its
    // *first* raw query is already withheld. The control session shows
    // the same policy without attribution resets on rotation.
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    const data::Dataset enrollment = make_enrollment(rng);
    const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                         enrollment, {});
    const tensor::Vector attack(net.inputs(), 50.0);
    ASSERT_TRUE(detector.is_adversarial(attack));

    SessionConfig scaled;
    scaled.detector = &detector;
    scaled.block_flagged = false;
    scaled.adaptive = AdaptivePolicy::escalate_at(0.2, 4.0);
    scaled.adaptive.min_screened = 8;
    scaled.source = 7;

    {
        OracleService control(backend);
        Session first = control.open_session(scaled);
        for (int i = 0; i < 8; ++i) (void)first.submit_raw(attack).get();
        EXPECT_THROW(first.submit_raw(attack), AccessDenied);  // escalated
        first.close();
        Session rotated = control.open_session(scaled);
        (void)rotated.submit_raw(attack).get();  // rotation resets the window
    }
    {
        ServiceConfig config;
        config.attribution.enabled = true;
        OracleService service(backend, config);
        Session first = service.open_session(scaled);
        for (int i = 0; i < 8; ++i) (void)first.submit_raw(attack).get();
        EXPECT_THROW(first.submit_raw(attack), AccessDenied);
        first.close();
        Session rotated = service.open_session(scaled);
        EXPECT_THROW(rotated.submit_raw(attack), AccessDenied);  // pooled window
        (void)rotated.submit_label(attack).get();  // degraded channel still answers
        EXPECT_GE(service.attribution_campaign_of(rotated.id()).sessions, 2u);
    }
}

// ---- query-overlap clustering -----------------------------------------------

TEST(AttributionService, ReplayedProbesCollapseForgedSourcesIntoOneCampaign) {
    // Forging a fresh SourceId per rotation defeats identity pooling —
    // but the forged session replays the campaign's probe set, and
    // repeat_overlap distinct replays union-find it back in.
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    OracleService service(backend, config);

    SessionConfig forged;
    forged.source = 100;
    Session original = service.open_session(forged);
    for (std::size_t i = 0; i < 5; ++i) (void)original.submit_label(probe_row(net.inputs(), i)).get();
    original.close();

    forged.source = 200;  // "new customer"
    Session replay = service.open_session(forged);
    EXPECT_EQ(service.attribution_campaign_count(), 2u);
    for (std::size_t i = 0; i < 3; ++i) (void)replay.submit_label(probe_row(net.inputs(), i)).get();

    EXPECT_EQ(service.attribution_campaign_count(), 1u);
    const attrib::CampaignCounters campaign = service.attribution_campaign_of(replay.id());
    EXPECT_EQ(campaign.sessions, 2u);
    EXPECT_EQ(campaign.sources, 2u);  // both forged identities, attributed
    EXPECT_EQ(campaign.screened, 8u);
}

TEST(AttributionService, BenignTenantsSharingInputsNeverMerge) {
    // Two honest tenants scoring the same public dataset: identical
    // content hashes, but clean rows never enter sketches or the index,
    // so no overlap evidence can accumulate — false merges stay at zero.
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    OracleService service(backend, config);
    const tensor::Matrix shared = tensor::Matrix::random_uniform(rng, 40, net.inputs());

    SessionConfig tenant;
    std::vector<std::uint64_t> ids;
    for (const attrib::SourceId source : {1000ull, 1001ull}) {
        tenant.source = source;
        Session session = service.open_session(tenant);
        ids.push_back(session.id());
        for (std::size_t r = 0; r < shared.rows(); ++r) {
            (void)session.submit_label(shared.row(r)).get();
        }
        session.close();  // the close-time sketch merge pass must not fire
    }

    EXPECT_EQ(service.attribution_campaign_count(), 2u);
    for (const std::uint64_t id : ids) {
        EXPECT_EQ(service.attribution_campaign_of(id).sessions, 1u);
        EXPECT_EQ(service.attribution_campaign_of(id).sketch_hashes, 0u);
    }
    EXPECT_FALSE(service.attribution_alert());
}

// ---- deployment alert -------------------------------------------------------

TEST(AttributionService, DeploymentAlertEscalatesSuspiciousQueriesPerQuery) {
    // Once the service-wide probe-population window trips, suspicious
    // submissions are escalated per-query — including a brand-new
    // session's very first one, which no rotation cadence can duck.
    // Clean queries keep flowing: the alert is not an outage.
    Rng rng(7);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    config.attribution.engine.window_events = 32;
    config.attribution.engine.alert_min_screened = 8;
    OracleService service(backend, config);

    SessionConfig anonymous;  // source 0: only the probe population betrays it
    Session prober = service.open_session(anonymous);
    for (std::size_t i = 0; i < 8; ++i) (void)prober.submit_label(probe_row(net.inputs(), i)).get();
    EXPECT_TRUE(service.attribution_alert());

    Session fresh = service.open_session(anonymous);
    EXPECT_THROW(fresh.submit_raw(probe_row(net.inputs(), 99)), AccessDenied);
    (void)fresh.submit_raw(tensor::Vector(net.inputs(), 0.5)).get();  // clean raw flows
    (void)fresh.submit_label(probe_row(net.inputs(), 99)).get();      // degraded channel
}

TEST(AttributionService, QuarantinedCampaignsAreRefusedEverythingAcrossRotation) {
    // The quarantine rung: per-query escalation degrades probes but
    // still answers in-distribution traffic, which is exactly what a
    // camouflaging extractor distills from. A refuse_queries band keyed
    // on campaign-pooled suspicion denies the attributed campaign *all*
    // service — clean rows included, rotated sessions included.
    Rng rng(9);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    const data::Dataset enrollment = make_enrollment(rng);
    const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                         enrollment, {});
    const tensor::Vector attack(net.inputs(), 50.0);
    const tensor::Vector clean(net.inputs(), 0.5);
    ASSERT_TRUE(detector.is_adversarial(attack));

    SessionConfig scaled;
    scaled.detector = &detector;
    scaled.block_flagged = false;
    scaled.adaptive = AdaptivePolicy::escalate_at(0.2, 4.0);
    scaled.adaptive.min_screened = 8;
    AdaptivePolicy::Band quarantine;
    quarantine.min_suspicion = 0.5;
    quarantine.sigma_multiplier = 4.0;
    quarantine.expose_raw_outputs = false;
    quarantine.refuse_queries = true;
    scaled.adaptive.bands.push_back(quarantine);
    scaled.source = 7;

    ServiceConfig config;
    config.attribution.enabled = true;
    OracleService service(backend, config);

    Session first = service.open_session(scaled);
    for (int i = 0; i < 7; ++i) (void)first.submit_label(attack).get();
    // The 8th probe crosses min_screened with the row it just screened
    // (refusals run post-observation): suspicion 1.0 quarantines it.
    EXPECT_THROW(first.submit_label(attack), QueryRefused);
    EXPECT_THROW(first.submit_label(clean), QueryRefused);  // clean row, still refused
    first.close();

    Session rotated = service.open_session(scaled);
    EXPECT_THROW(rotated.submit_label(clean), QueryRefused);  // pooled: first query refused
    EXPECT_THROW(rotated.submit_power(clean), QueryRefused);  // every channel

    SessionConfig benign_tenant = scaled;
    benign_tenant.source = 8;
    Session benign = service.open_session(benign_tenant);
    (void)benign.submit_label(clean).get();  // other principals are untouched
}

TEST(AttributionService, ProbationFreezesSourcesFirstSeenDuringAnAlert) {
    // The registration freeze: while the deployment alert is hot, a
    // never-before-seen SourceId gets nothing — even clean queries —
    // so forging a fresh identity per rotation buys zero service. The
    // freeze is alert-gated: once the probe population drains out of
    // the window, the marked source is served again.
    Rng rng(10);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    config.attribution.engine.window_events = 32;
    config.attribution.engine.alert_min_screened = 8;
    OracleService service(backend, config);
    const tensor::Vector clean(net.inputs(), 0.5);

    SessionConfig established;
    established.source = 21;  // onboarded before any alert
    Session veteran = service.open_session(established);
    (void)veteran.submit_label(clean).get();

    Session prober = service.open_session({});  // anonymous probe population
    for (std::size_t i = 0; i < 8; ++i) (void)prober.submit_label(probe_row(net.inputs(), i)).get();
    ASSERT_TRUE(service.attribution_alert());

    SessionConfig forged;
    forged.source = 22;  // first seen mid-alert
    Session frozen = service.open_session(forged);
    EXPECT_THROW(frozen.submit_label(clean), QueryRefused);
    EXPECT_THROW(frozen.submit_raw(clean), QueryRefused);
    (void)veteran.submit_label(clean).get();  // established sources keep flowing
    Session anon = service.open_session({});
    (void)anon.submit_label(clean).get();  // anonymous is exempt (escalation covers it)

    // Drain the window with clean traffic: the alert cools and the
    // freeze lifts (the mark stays — a re-trip would resume it).
    for (int i = 0; i < 32; ++i) (void)veteran.submit_label(clean).get();
    ASSERT_FALSE(service.attribution_alert());
    (void)frozen.submit_label(clean).get();
}

TEST(AttributionService, IdentityChurnTripsTheRotationTax) {
    // Forging a fresh SourceId per session is itself the fingerprint:
    // enough first-time sources inside the churn window freeze every
    // later registration, with no detector and no probe-shaped traffic
    // required. Rotation under an established identity never trips it.
    Rng rng(11);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    config.attribution.engine.churn_fresh_sources = 4;
    OracleService service(backend, config);
    const tensor::Vector clean(net.inputs(), 0.5);

    for (std::uint64_t s = 0; s < 3; ++s) {
        SessionConfig tenant;
        tenant.source = 101 + s;
        Session session = service.open_session(tenant);
        (void)session.submit_label(clean).get();  // pre-trip onboarding flows
        session.close();
    }
    SessionConfig forged;
    forged.source = 104;  // the fourth fresh source trips the window
    Session frozen = service.open_session(forged);
    EXPECT_THROW(frozen.submit_label(clean), QueryRefused);
    EXPECT_NE(service.attribution_snapshot().find("\"churn_alert\":true"), std::string::npos);

    SessionConfig rotated;  // an established principal reopening is not churn
    rotated.source = 101;
    Session honest = service.open_session(rotated);
    (void)honest.submit_label(clean).get();
}

// ---- accessor contracts when enabled ----------------------------------------

TEST(AttributionService, KeyedAccessorsThrowOnUnknownKeysAndSnapshotIsLive) {
    Rng rng(8);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    OracleService service(backend, config);

    SessionConfig tenant;
    tenant.source = 42;
    Session session = service.open_session(tenant);
    (void)session.submit_label(tensor::Vector(net.inputs(), 0.5)).get();

    EXPECT_THROW(service.attribution_source_counters(12345), ConfigError);
    EXPECT_THROW(service.attribution_campaign_of(999999), ConfigError);
    EXPECT_NO_THROW(service.attribution_source_counters(42));
    EXPECT_NO_THROW(service.attribution_campaign_of(session.id()));

    const std::string json = service.attribution_snapshot();
    EXPECT_NE(json.find("\"alert\":false"), std::string::npos);
    EXPECT_NE(json.find("\"source\":42"), std::string::npos);
}

TEST(AttributionService, RejectsDegenerateEngineConfigs) {
    Rng rng(9);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    config.attribution.engine.window_events = 0;
    EXPECT_THROW(OracleService(backend, config), ConfigError);
    config.attribution.engine = {};
    config.attribution.engine.sketch_k = 0;
    EXPECT_THROW(OracleService(backend, config), ConfigError);
}

}  // namespace
}  // namespace xbarsec::core
