// Session isolation over one shared backend: budgets, detector windows,
// and per-session noise streams must not bleed between tenants, and a
// session's own stream must be bit-identical whether its submissions
// coalesced with other tenants' traffic or ran alone.
#include <gtest/gtest.h>

#include <future>

#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/service.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 16, std::size_t out = 3) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec()), {});
}

data::Dataset make_enrollment(Rng& rng, std::size_t n = 120, std::size_t dim = 16) {
    tensor::Matrix clean = tensor::Matrix::random_uniform(rng, n, dim);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 3);
    return data::Dataset(std::move(clean), std::move(labels), 3, data::ImageShape{4, 4, 1});
}

TEST(SessionIsolation, BudgetsDoNotBleedBetweenSessions) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    SessionConfig capped;
    capped.budget.max_power = 3;
    Session a = service.open_session(capped);
    Session b = service.open_session();  // unlimited
    const tensor::Vector u(net.inputs(), 0.5);

    for (int i = 0; i < 3; ++i) (void)a.submit_power(u).get();
    EXPECT_THROW(a.submit_power(u), QueryBudgetExceeded);
    // B's service is unaffected by A's exhaustion, in both directions.
    for (int i = 0; i < 10; ++i) EXPECT_NO_THROW((void)b.submit_power(u).get());
    EXPECT_THROW(a.submit_power(u), QueryBudgetExceeded);
    EXPECT_EQ(a.budget_spent().power, 3u);
    EXPECT_EQ(b.counters().power, 10u);  // unlimited sessions keep no ledger
    EXPECT_EQ(backend.counters().power, 13u);
}

TEST(SessionIsolation, DetectorWindowsDoNotBleedBetweenSessions) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    const data::Dataset enrollment = make_enrollment(rng);
    const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                         enrollment);
    OracleService service(backend);
    SessionConfig guarded;
    guarded.detector = &detector;
    guarded.block_flagged = false;
    Session attacker = service.open_session(guarded);
    Session benign = service.open_session(guarded);

    tensor::Vector attack(net.inputs(), 0.2);
    attack[3] = 50.0;
    ASSERT_TRUE(detector.is_adversarial(attack));
    const tensor::Vector clean(net.inputs(), 0.2);

    for (int i = 0; i < 4; ++i) (void)attacker.submit_label(attack).get();
    for (int i = 0; i < 8; ++i) (void)benign.submit_label(clean).get();

    EXPECT_EQ(attacker.screened(), 4u);
    EXPECT_EQ(attacker.flagged(), 4u);
    EXPECT_DOUBLE_EQ(attacker.flagged_fraction(), 1.0);
    EXPECT_EQ(benign.screened(), 8u);   // only its own traffic
    EXPECT_EQ(benign.flagged(), 0u);    // the attacker's flags stayed put
}

TEST(SessionIsolation, BlockingDetectorRefusesOnlyTheOffendingSession) {
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    const data::Dataset enrollment = make_enrollment(rng);
    const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                         enrollment);
    OracleService service(backend);
    SessionConfig blocking;
    blocking.detector = &detector;
    blocking.block_flagged = true;
    Session attacker = service.open_session(blocking);
    Session benign = service.open_session(blocking);

    tensor::Vector attack(net.inputs(), 0.2);
    attack[3] = 50.0;
    EXPECT_THROW(attacker.submit_label(attack), QueryRefused);
    EXPECT_NO_THROW((void)benign.submit_label(tensor::Vector(net.inputs(), 0.2)).get());
    // The refused query never reached the backend and was never counted
    // or charged for the attacker.
    EXPECT_EQ(backend.counters().inference, 1u);
    EXPECT_EQ(attacker.counters().inference, 0u);
}

TEST(SessionIsolation, SharedBlockingDefenseFailsOnlyTheOffendingSubmission) {
    // A blocking DetectorOracle in the *shared* stack below the service:
    // when the coalescer merges tenants' submissions into one backend
    // batch and the shared defense refuses it, the group falls back to
    // per-unit calls — innocent tenants' queries still get answers, as
    // they would under serial issue.
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    const data::Dataset enrollment = make_enrollment(rng);
    const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                         enrollment);
    DetectorOracle guard(backend, detector, /*block_flagged=*/true);

    ServiceConfig config;
    config.max_wait = std::chrono::microseconds(50000);  // let the burst merge
    OracleService service(guard, config);
    Session a = service.open_session();
    Session b = service.open_session();

    tensor::Vector attack(net.inputs(), 0.2);
    attack[3] = 50.0;
    const tensor::Vector clean(net.inputs(), 0.2);

    auto before = a.submit_label(clean);
    auto refused = b.submit_label(attack);
    auto after = a.submit_label(clean);

    EXPECT_NO_THROW((void)before.get());
    EXPECT_THROW((void)refused.get(), QueryRefused);
    EXPECT_NO_THROW((void)after.get());
    // Only the clean queries reached the backend.
    EXPECT_EQ(backend.counters().inference, 2u);
}

TEST(SessionIsolation, NoiseStreamsAreSessionPrivateAndInterleavingInvariant) {
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 12, net.inputs());

    SessionConfig noisy_a;
    noisy_a.power_noise_sigma = 0.5;
    noisy_a.noise_seed = 11;
    SessionConfig noisy_b = noisy_a;
    noisy_b.noise_seed = 22;

    // Reference: A alone on its own service, issued serially.
    CrossbarOracle ref_backend = make_oracle(net);
    OracleService ref_service(ref_backend);
    Session ref_a = ref_service.open_session(noisy_a);
    std::vector<double> alone;
    for (std::size_t r = 0; r < U.rows(); ++r) {
        alone.push_back(ref_a.submit_power(U.row(r)).get());
    }

    // Same stream with B's traffic interleaved between every A query.
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    Session a = service.open_session(noisy_a);
    Session b = service.open_session(noisy_b);
    for (std::size_t r = 0; r < U.rows(); ++r) {
        const double pa = a.submit_power(U.row(r)).get();
        const double pb = b.submit_power(U.row(r)).get();
        EXPECT_DOUBLE_EQ(pa, alone[r]) << "row " << r;
        EXPECT_NE(pa, pb);  // different seeds, same clean reading
    }
}

TEST(SessionIsolation, SessionEntryPointsApplySessionPolicy) {
    // probe_columns(Session&) rides the session's budget.
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    SessionConfig capped;
    capped.budget.max_power = net.inputs() * 2;
    Session session = service.open_session(capped);

    const auto probe = probe_columns(session);  // one basis sweep fits
    EXPECT_EQ(probe.queries, net.inputs());
    EXPECT_EQ(session.budget_spent().power, net.inputs());
    sidechannel::ProbeOptions big;
    big.repeats = 4;  // 4 sweeps would cross the remaining budget
    EXPECT_THROW(probe_columns(session, big), QueryBudgetExceeded);
}

}  // namespace
}  // namespace xbarsec::core
