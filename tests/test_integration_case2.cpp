// End-to-end Case-2 integration: oracle queries → surrogate (Eq. 9) →
// FGSM transfer, asserting the Figure-5 trends at miniature scale.
#include <gtest/gtest.h>

#include "xbarsec/attack/fgsm.hpp"
#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec {
namespace {

class Case2Pipeline : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::SyntheticMnistConfig dc;
        dc.train_count = 1500;
        dc.test_count = 300;
        split_ = new data::DataSplit(data::make_synthetic_mnist(dc));

        core::VictimConfig config =
            core::VictimConfig::defaults(core::OutputConfig::linear_mse());
        config.train.epochs = 12;
        victim_ = new core::TrainedVictim(core::train_victim(*split_, config));
        oracle_ = new core::CrossbarOracle(core::deploy_victim(victim_->net, config));
    }

    static void TearDownTestSuite() {
        delete oracle_;
        delete victim_;
        delete split_;
        oracle_ = nullptr;
        victim_ = nullptr;
        split_ = nullptr;
    }

    static attack::QueryDataset draw_queries(std::size_t count, bool raw, std::uint64_t seed) {
        core::QueryPlan plan;
        plan.count = count;
        plan.raw_outputs = raw;
        plan.seed = seed;
        return core::collect_queries(*oracle_, split_->train, plan);
    }

    static attack::SurrogateTrainResult fit(const attack::QueryDataset& q, double lambda) {
        attack::SurrogateConfig sc;
        sc.power_loss_weight = lambda;
        sc.train.epochs = 120;
        sc.train.batch_size = 32;
        sc.train.learning_rate = 0.05;
        sc.train.momentum = 0.9;
        sc.train.final_lr_fraction = 0.1;
        return attack::train_surrogate(q, sc);
    }

    static data::DataSplit* split_;
    static core::TrainedVictim* victim_;
    static core::CrossbarOracle* oracle_;
};

data::DataSplit* Case2Pipeline::split_ = nullptr;
core::TrainedVictim* Case2Pipeline::victim_ = nullptr;
core::CrossbarOracle* Case2Pipeline::oracle_ = nullptr;

TEST_F(Case2Pipeline, SurrogateAccuracyGrowsWithQueries) {
    const attack::QueryDataset small = draw_queries(20, /*raw=*/true, 1);
    const attack::QueryDataset large = draw_queries(600, /*raw=*/true, 2);
    const double acc_small = nn::accuracy(fit(small, 0.0).surrogate, split_->test);
    const double acc_large = nn::accuracy(fit(large, 0.0).surrogate, split_->test);
    EXPECT_GT(acc_large, acc_small + 0.1);
    EXPECT_GT(acc_large, 0.6);
}

TEST_F(Case2Pipeline, FgsmOnSurrogateTransfersToOracle) {
    const attack::QueryDataset q = draw_queries(600, /*raw=*/true, 3);
    const nn::SingleLayerNet surrogate = fit(q, 0.0).surrogate;
    const data::Dataset eval = split_->test.take(150);
    const double clean = nn::accuracy(victim_->net, eval);
    const tensor::Matrix adv = attack::fgsm_attack_batch(
        surrogate, eval.inputs(), eval.labels(), eval.num_classes(), 0.1);
    const double attacked = nn::accuracy(victim_->net, adv, eval.labels());
    EXPECT_LT(attacked, clean - 0.1) << "transfer attack must bite";
}

TEST_F(Case2Pipeline, PowerInformationHelpsAtModerateQueryCounts) {
    // The paper's central Figure-5 claim, in miniature: with Q ≪ N and
    // raw outputs, λ > 0 yields a stronger transfer attack than λ = 0.
    // Averaged over a few query draws to suppress seed noise.
    const data::Dataset eval = split_->test.take(150);
    double adv_base = 0.0, adv_power = 0.0;
    constexpr int kDraws = 3;
    for (int draw = 0; draw < kDraws; ++draw) {
        const attack::QueryDataset q = draw_queries(60, /*raw=*/true, 10 + draw);
        const nn::SingleLayerNet base = fit(q, 0.0).surrogate;
        const nn::SingleLayerNet power = fit(q, 0.004).surrogate;
        const tensor::Matrix adv_b = attack::fgsm_attack_batch(
            base, eval.inputs(), eval.labels(), eval.num_classes(), 0.1);
        const tensor::Matrix adv_p = attack::fgsm_attack_batch(
            power, eval.inputs(), eval.labels(), eval.num_classes(), 0.1);
        adv_base += nn::accuracy(victim_->net, adv_b, eval.labels());
        adv_power += nn::accuracy(victim_->net, adv_p, eval.labels());
    }
    adv_base /= kDraws;
    adv_power /= kDraws;
    EXPECT_LT(adv_power, adv_base + 0.01)
        << "power-aided surrogate should not be weaker at moderate Q";
}

TEST_F(Case2Pipeline, LabelOnlyQueriesAreNoisierThanRaw) {
    // Label-only supervision amounts to noisy targets (paper, Section IV):
    // the raw-output surrogate must fit the oracle at least as well.
    const attack::QueryDataset raw = draw_queries(300, /*raw=*/true, 20);
    const attack::QueryDataset labels = draw_queries(300, /*raw=*/false, 20);
    const double acc_raw = nn::accuracy(fit(raw, 0.0).surrogate, split_->test);
    const double acc_label = nn::accuracy(fit(labels, 0.0).surrogate, split_->test);
    EXPECT_GE(acc_raw, acc_label - 0.03);
}

TEST_F(Case2Pipeline, QueryBudgetIsAccounted) {
    oracle_->reset_counters();
    draw_queries(25, /*raw=*/true, 30);
    EXPECT_EQ(oracle_->counters().inference, 25u);
    EXPECT_EQ(oracle_->counters().power, 25u);
}

}  // namespace
}  // namespace xbarsec
