// Replica-fleet contracts of OracleService: fleet construction and
// validation, per-replica coalesced-vs-serial bit-identity (each
// replica's answer stream must equal serially issuing those queries
// against that replica alone), routing-policy behaviour (round-robin
// fairness, least-loaded preference under a slowed replica, session
// affinity across flushes), per-replica counters summing to the fleet
// aggregate with monotone snapshots, and the replica variation-seed /
// deploy_victim_fleet helpers. Runs under `ctest -L service` (including
// the ASan/UBSan CI job) and is re-run per kernel variant.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "xbarsec/core/scenario.hpp"
#include "xbarsec/core/service.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 24, std::size_t out = 5) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net, xbar::NonIdealityConfig nonideal = {}) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec(), nonideal), {});
}

/// Replica k's device state: read noise plus stuck cells, seeded through
/// the same helper production fleets use — distinct physical signatures
/// over identical programmed weights.
xbar::NonIdealityConfig replica_device(std::size_t replica) {
    xbar::NonIdealityConfig c;
    c.read_noise_std = 0.05;
    c.stuck_off_fraction = 0.02;
    c.seed = xbar::replica_variation_seed(c.seed, replica);
    return c;
}

ServiceConfig coalescing_config(RoutingPolicy routing = RoutingPolicy::SessionAffine) {
    ServiceConfig c;
    c.max_wait = std::chrono::microseconds(50000);
    c.routing = routing;
    return c;
}

/// A forwarding Oracle that sleeps on every batched call — the
/// deliberately slowed replica for the least-loaded routing test.
class SlowOracle : public Oracle {
public:
    SlowOracle(Oracle& inner, std::chrono::microseconds delay) : inner_(inner), delay_(delay) {}

    std::size_t inputs() const override { return inner_.inputs(); }
    std::size_t outputs() const override { return inner_.outputs(); }
    int query_label(const tensor::Vector& u) override { return inner_.query_label(u); }
    tensor::Vector query_raw(const tensor::Vector& u) override { return inner_.query_raw(u); }
    double query_power(const tensor::Vector& u) override { return inner_.query_power(u); }
    std::vector<int> query_labels(const tensor::Matrix& U) override {
        std::this_thread::sleep_for(delay_);
        return inner_.query_labels(U);
    }
    tensor::Matrix query_raw_batch(const tensor::Matrix& U) override {
        std::this_thread::sleep_for(delay_);
        return inner_.query_raw_batch(U);
    }
    tensor::Vector query_power_batch(const tensor::Matrix& U) override {
        std::this_thread::sleep_for(delay_);
        return inner_.query_power_batch(U);
    }
    QueryCounters counters() const override { return inner_.counters(); }
    void reset_counters() override { inner_.reset_counters(); }

private:
    Oracle& inner_;
    std::chrono::microseconds delay_;
};

// ---- construction & validation ----------------------------------------------

TEST(ServiceReplicas, SingleEntryFleetMatchesSingleBackendService) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle legacy_backend = make_oracle(net, replica_device(0));
    CrossbarOracle fleet_backend = make_oracle(net, replica_device(0));
    OracleService legacy(legacy_backend, coalescing_config());
    OracleService fleet(std::vector<Oracle*>{&fleet_backend}, coalescing_config());
    EXPECT_EQ(fleet.replica_count(), 1u);

    Session a = legacy.open_session();
    Session b = fleet.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 24, net.inputs());
    EXPECT_EQ(a.submit_labels(U).get(), b.submit_labels(U).get());
    const tensor::Vector pa = a.submit_power_batch(U).get();
    const tensor::Vector pb = b.submit_power_batch(U).get();
    for (std::size_t r = 0; r < U.rows(); ++r) EXPECT_DOUBLE_EQ(pa[r], pb[r]);
    EXPECT_EQ(legacy.counters().total(), fleet.counters().total());
    EXPECT_EQ(fleet.replica_counters(0).total(), fleet.counters().total());
}

TEST(ServiceReplicas, FleetConstructorValidatesShape) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    const nn::SingleLayerNet other = make_net(rng, 16, 3);
    CrossbarOracle a = make_oracle(net);
    CrossbarOracle b = make_oracle(other);
    EXPECT_THROW(OracleService(std::vector<Oracle*>{}), ConfigError);
    EXPECT_THROW(OracleService(std::vector<Oracle*>{&a, nullptr}), ConfigError);
    EXPECT_THROW(OracleService(std::vector<Oracle*>{&a, &b}), ConfigError);
}

TEST(ServiceReplicas, RoutingPolicyNamesRoundTrip) {
    for (const RoutingPolicy p : {RoutingPolicy::SessionAffine, RoutingPolicy::RoundRobin,
                                  RoutingPolicy::LeastLoaded}) {
        EXPECT_EQ(parse_routing_policy(to_string(p)), p);
    }
    // Bench/example CLIs pass user input through verbatim: trimmed,
    // case-variant, and separator-variant spellings must all parse.
    EXPECT_EQ(parse_routing_policy("RoundRobin"), RoutingPolicy::RoundRobin);
    EXPECT_EQ(parse_routing_policy(" least-loaded "), RoutingPolicy::LeastLoaded);
    EXPECT_EQ(parse_routing_policy("SESSION_AFFINE"), RoutingPolicy::SessionAffine);
    EXPECT_EQ(parse_routing_policy("Least Loaded"), RoutingPolicy::LeastLoaded);
    EXPECT_EQ(parse_routing_policy("round_robin\t"), RoutingPolicy::RoundRobin);
    EXPECT_THROW(parse_routing_policy("random"), ConfigError);
    EXPECT_THROW(parse_routing_policy(""), ConfigError);
    // The refusal stays helpful: it names the valid spellings.
    try {
        parse_routing_policy("weighted");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("session-affine"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("round-robin"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("least-loaded"), std::string::npos);
    }
}

TEST(ServiceReplicas, VariationSeedIsIdentityAtReplicaZeroAndDistinctBeyond) {
    const std::uint64_t base = 0xBADC0FFEE0DDF00Dull;
    EXPECT_EQ(xbar::replica_variation_seed(base, 0), base);
    EXPECT_NE(xbar::replica_variation_seed(base, 1), base);
    EXPECT_NE(xbar::replica_variation_seed(base, 1), xbar::replica_variation_seed(base, 2));
    EXPECT_NE(xbar::replica_variation_seed(base, 1), xbar::replica_variation_seed(base + 1, 1));
}

TEST(ServiceReplicas, DeployVictimFleetReplicaZeroMatchesSingleDeployment) {
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    VictimConfig config = VictimConfig::defaults(OutputConfig::linear_mse());
    config.device = ideal_spec();
    config.nonideal.stuck_off_fraction = 0.05;
    CrossbarOracle single = deploy_victim(net, config);
    std::vector<CrossbarOracle> fleet = deploy_victim_fleet(net, config, 3);
    ASSERT_EQ(fleet.size(), 3u);

    const tensor::Vector u = tensor::Vector::random_uniform(rng, net.inputs());
    // Replica 0 is the single deployment, bit for bit; replica 1 carries
    // a different fault placement, so the side channel differs.
    EXPECT_DOUBLE_EQ(fleet[0].query_power(u), single.query_power(u));
    EXPECT_NE(fleet[1].query_power(u), fleet[0].query_power(u));
}

// ---- per-replica bit-identity -----------------------------------------------

TEST(ServiceReplicas, CoalescedStreamsBitIdenticalToSerialPerReplica) {
    // Two replicas with distinct noisy-device signatures, session-affine
    // routing: session k's coalesced answers must match serially issuing
    // the same queries against a fresh copy of replica k — labels, raw,
    // and power alike (measurement-counter order is observable through
    // the read noise, so this pins queue order per replica too).
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle replica0 = make_oracle(net, replica_device(0));
    CrossbarOracle replica1 = make_oracle(net, replica_device(1));
    CrossbarOracle reference0 = make_oracle(net, replica_device(0));
    CrossbarOracle reference1 = make_oracle(net, replica_device(1));
    OracleService service(std::vector<Oracle*>{&replica0, &replica1}, coalescing_config());

    Session s0 = service.open_session();  // id 1 -> home replica 0
    Session s1 = service.open_session();  // id 2 -> home replica 1
    ASSERT_EQ(s0.home_replica(), 0u);
    ASSERT_EQ(s1.home_replica(), 1u);

    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 16, net.inputs());
    const struct {
        Session* session;
        CrossbarOracle* reference;
    } lanes[] = {{&s0, &reference0}, {&s1, &reference1}};
    for (const auto& lane : lanes) {
        // Pipelined scalar submissions: the replica's flusher coalesces
        // consecutive same-kind units into batched backend calls.
        std::vector<std::future<int>> labels;
        for (std::size_t r = 0; r < U.rows(); ++r) {
            labels.push_back(lane.session->submit_label(U.row(r)));
        }
        std::vector<std::future<tensor::Vector>> raws;
        for (std::size_t r = 0; r < U.rows(); ++r) {
            raws.push_back(lane.session->submit_raw(U.row(r)));
        }
        std::vector<std::future<double>> powers;
        for (std::size_t r = 0; r < U.rows(); ++r) {
            powers.push_back(lane.session->submit_power(U.row(r)));
        }
        for (std::size_t r = 0; r < U.rows(); ++r) {
            EXPECT_EQ(labels[r].get(), lane.reference->query_label(U.row(r)));
        }
        for (std::size_t r = 0; r < U.rows(); ++r) {
            const tensor::Vector want = lane.reference->query_raw(U.row(r));
            const tensor::Vector got = raws[r].get();
            for (std::size_t c = 0; c < want.size(); ++c) EXPECT_DOUBLE_EQ(got[c], want[c]);
        }
        for (std::size_t r = 0; r < U.rows(); ++r) {
            EXPECT_DOUBLE_EQ(powers[r].get(), lane.reference->query_power(U.row(r)));
        }
    }
    EXPECT_EQ(service.replica_counters(0).total(), 3 * U.rows());
    EXPECT_EQ(service.replica_counters(1).total(), 3 * U.rows());
}

TEST(ServiceReplicas, RoundRobinAssignmentIsDeterministicAndBitIdentical) {
    // Synchronous queries through one session under round-robin: unit i
    // lands on replica i % 2, so interleaving fresh references in the
    // same assignment reproduces every answer exactly (noisy hardware —
    // measurement order matters).
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle replica0 = make_oracle(net, replica_device(0));
    CrossbarOracle replica1 = make_oracle(net, replica_device(1));
    CrossbarOracle reference0 = make_oracle(net, replica_device(0));
    CrossbarOracle reference1 = make_oracle(net, replica_device(1));
    OracleService service(std::vector<Oracle*>{&replica0, &replica1},
                          coalescing_config(RoutingPolicy::RoundRobin));
    Session session = service.open_session();
    Oracle& view = session.oracle();
    CrossbarOracle* references[] = {&reference0, &reference1};

    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 12, net.inputs());
    for (std::size_t i = 0; i < U.rows(); ++i) {
        EXPECT_DOUBLE_EQ(view.query_power(U.row(i)), references[i % 2]->query_power(U.row(i)));
    }
    EXPECT_EQ(service.replica_counters(0).power, U.rows() / 2);
    EXPECT_EQ(service.replica_counters(1).power, U.rows() / 2);
}

// ---- routing policies -------------------------------------------------------

TEST(ServiceReplicas, RoundRobinSpreadsRowsFairly) {
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle r0 = make_oracle(net);
    CrossbarOracle r1 = make_oracle(net);
    CrossbarOracle r2 = make_oracle(net);
    CrossbarOracle r3 = make_oracle(net);
    ServiceConfig config = coalescing_config(RoutingPolicy::RoundRobin);
    config.max_wait = std::chrono::microseconds(100);
    OracleService service(std::vector<Oracle*>{&r0, &r1, &r2, &r3}, config);
    Session session = service.open_session();

    constexpr std::size_t kQueries = 128;  // a multiple of the fleet size
    const tensor::Vector u(net.inputs(), 0.5);
    std::vector<std::future<int>> pending;
    pending.reserve(kQueries);
    for (std::size_t q = 0; q < kQueries; ++q) pending.push_back(session.submit_label(u));
    for (auto& f : pending) (void)f.get();

    // One-row units in a count divisible by the fleet: the rotation gives
    // every replica exactly its share (well within the ±1-batch bound).
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < service.replica_count(); ++k) {
        EXPECT_EQ(service.replica_counters(k).inference, kQueries / 4);
        EXPECT_EQ(service.flushed_rows(k), kQueries / 4);
        total += service.replica_counters(k).inference;
    }
    EXPECT_EQ(total, kQueries);
    EXPECT_EQ(service.counters().inference, kQueries);
}

TEST(ServiceReplicas, LeastLoadedAvoidsSlowedReplica) {
    Rng rng(7);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle fast = make_oracle(net);
    CrossbarOracle slow_inner = make_oracle(net);
    SlowOracle slow(slow_inner, std::chrono::milliseconds(20));
    ServiceConfig config;
    config.max_wait = std::chrono::microseconds(100);
    config.routing = RoutingPolicy::LeastLoaded;
    OracleService service(std::vector<Oracle*>{&fast, &slow}, config);
    Session session = service.open_session();

    // Phase 1: a rapid burst with both replicas idle. Routing sees only
    // enqueued-not-yet-answered rows, so the burst alternates roughly
    // evenly — and parks a coalesced batch on the slowed replica, which
    // then sleeps inside its flush while the fast replica drains in
    // microseconds.
    constexpr std::size_t kBurst = 32;
    const tensor::Vector u(net.inputs(), 0.5);
    std::vector<std::future<int>> pending;
    pending.reserve(2 * kBurst);
    for (std::size_t q = 0; q < kBurst; ++q) pending.push_back(session.submit_label(u));

    // Wait for the imbalance to become visible: fast replica empty, slow
    // replica still holding unanswered rows (it sleeps 20 ms per flush).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    bool imbalanced = false;
    while (std::chrono::steady_clock::now() < deadline) {
        if (service.queue_depth(0) == 0 && service.queue_depth(1) > 0) {
            imbalanced = true;
            break;
        }
        std::this_thread::yield();
    }
    if (!imbalanced) {
        for (auto& f : pending) (void)f.get();
        GTEST_SKIP() << "scheduler never exposed the slowed replica's backlog";
    }

    // Phase 2: a second burst while the slow replica is backed up — the
    // least-loaded scan must steer these rows to the fast replica until
    // its depth catches up with the backlog.
    for (std::size_t q = 0; q < kBurst; ++q) pending.push_back(session.submit_label(u));
    for (auto& f : pending) (void)f.get();

    const std::uint64_t fast_rows = service.replica_counters(0).inference;
    const std::uint64_t slow_rows = service.replica_counters(1).inference;
    EXPECT_EQ(fast_rows + slow_rows, 2 * kBurst);
    EXPECT_GT(fast_rows, slow_rows);
    EXPECT_GE(fast_rows, (2 * kBurst * 6) / 10);
}

TEST(ServiceReplicas, LeastLoadedSteeringHoldsUnderConcurrentFlushes) {
    // The load-snapshot satellite: inflight_rows is charged *before* the
    // queue push and released only after the rows are answered, so a
    // batch migrating queue→flusher mid-snapshot is never double- or
    // zero-counted. Under concurrent submitters racing against active
    // flushes, a zero-count window would let bursts pile onto the
    // backed-up slow replica; steering toward the fast replica must
    // survive the races.
    Rng rng(77);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle fast = make_oracle(net);
    CrossbarOracle slow_inner = make_oracle(net);
    SlowOracle slow(slow_inner, std::chrono::milliseconds(10));
    ServiceConfig config;
    config.max_wait = std::chrono::microseconds(100);
    config.max_batch = 8;  // small batches: many queue→flusher migrations
    config.routing = RoutingPolicy::LeastLoaded;
    OracleService service(std::vector<Oracle*>{&fast, &slow}, config);

    // Park a backlog on the slow replica first (same two-phase setup as
    // above: an even burst, then wait until only the slow side holds
    // unanswered rows).
    Session primer = service.open_session();
    const tensor::Vector u(net.inputs(), 0.5);
    std::vector<std::future<int>> parked;
    for (std::size_t q = 0; q < 32; ++q) parked.push_back(primer.submit_label(u));
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    bool imbalanced = false;
    while (std::chrono::steady_clock::now() < deadline) {
        if (service.queue_depth(0) == 0 && service.queue_depth(1) > 0) {
            imbalanced = true;
            break;
        }
        std::this_thread::yield();
    }
    if (!imbalanced) {
        for (auto& f : parked) (void)f.get();
        GTEST_SKIP() << "scheduler never exposed the slowed replica's backlog";
    }

    // Four submitters race while both flushers churn through small
    // batches — every submission sees a load snapshot taken mid-flush
    // somewhere. Conservation first: every accepted row lands exactly
    // once. Steering second: the fast replica must take the clear
    // majority of the contested rows.
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kPerThread = 32;
    std::vector<Session> sessions;
    for (std::size_t t = 0; t < kThreads; ++t) sessions.push_back(service.open_session());
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::vector<std::future<int>> pending;
            pending.reserve(kPerThread);
            for (std::size_t q = 0; q < kPerThread; ++q) {
                pending.push_back(sessions[t].submit_label(u));
            }
            for (auto& f : pending) (void)f.get();
        });
    }
    for (auto& t : threads) t.join();
    for (auto& f : parked) (void)f.get();

    const std::uint64_t fast_rows = service.replica_counters(0).inference;
    const std::uint64_t slow_rows = service.replica_counters(1).inference;
    EXPECT_EQ(fast_rows + slow_rows, 32 + kThreads * kPerThread);
    EXPECT_GT(fast_rows, slow_rows);
    EXPECT_GE(fast_rows, ((32 + kThreads * kPerThread) * 55) / 100);
}

TEST(ServiceReplicas, SessionAffinityStaysOnHomeReplicaAcrossFlushes) {
    Rng rng(8);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle r0 = make_oracle(net);
    CrossbarOracle r1 = make_oracle(net);
    CrossbarOracle r2 = make_oracle(net);
    CrossbarOracle r3 = make_oracle(net);
    ServiceConfig config;
    config.max_wait = std::chrono::microseconds(100);
    OracleService service(std::vector<Oracle*>{&r0, &r1, &r2, &r3}, config);

    // Session homes are assigned round-robin from the session id.
    Session first = service.open_session();
    Session second = service.open_session();
    EXPECT_EQ(first.home_replica(), 0u);
    EXPECT_EQ(second.home_replica(), 1u);

    // Three separate drained bursts = at least three distinct flushes;
    // every row of this session must land on its home replica each time.
    const tensor::Vector u(net.inputs(), 0.4);
    for (int burst = 0; burst < 3; ++burst) {
        std::vector<std::future<int>> pending;
        for (std::size_t q = 0; q < 16; ++q) pending.push_back(second.submit_label(u));
        for (auto& f : pending) (void)f.get();
    }
    EXPECT_EQ(service.replica_counters(second.home_replica()).inference, 48u);
    EXPECT_GE(service.flushed_batches(second.home_replica()), 3u);
    for (std::size_t k = 0; k < service.replica_count(); ++k) {
        if (k != second.home_replica()) EXPECT_EQ(service.replica_counters(k).total(), 0u);
    }
}

// ---- per-replica counters ---------------------------------------------------

TEST(ServiceReplicas, ReplicaCountersSumToFleetAggregateAndStayMonotone) {
    // The QueryCounters satellite, fleet edition: concurrent snapshots of
    // the fleet aggregate and the per-replica sum must never run
    // backwards between resets, and after the load drains the per-replica
    // counters account for every accepted row exactly.
    Rng rng(9);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle r0 = make_oracle(net);
    CrossbarOracle r1 = make_oracle(net);
    CrossbarOracle r2 = make_oracle(net);
    ServiceConfig config;
    config.max_wait = std::chrono::microseconds(100);
    config.routing = RoutingPolicy::RoundRobin;
    OracleService service(std::vector<Oracle*>{&r0, &r1, &r2}, config);

    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kPerThread = 64;
    std::vector<Session> sessions;
    for (std::size_t t = 0; t < kThreads; ++t) sessions.push_back(service.open_session());
    const tensor::Vector u(net.inputs(), 0.6);

    std::atomic<bool> done{false};
    std::atomic<bool> monotone{true};
    std::thread observer([&] {
        QueryCounters last_fleet, last_sum;
        while (!done.load(std::memory_order_acquire)) {
            const QueryCounters fleet = service.counters();
            QueryCounters sum;
            for (std::size_t k = 0; k < service.replica_count(); ++k) {
                const QueryCounters c = service.replica_counters(k);
                sum.inference += c.inference;
                sum.power += c.power;
            }
            if (fleet.inference < last_fleet.inference || fleet.power < last_fleet.power ||
                sum.inference < last_sum.inference || sum.power < last_sum.power) {
                monotone.store(false, std::memory_order_release);
            }
            last_fleet = fleet;
            last_sum = sum;
        }
    });

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t q = 0; q < kPerThread; ++q) {
                auto fl = sessions[t].submit_label(u);
                auto fp = sessions[t].submit_power(u);
                (void)fl.get();
                (void)fp.get();
            }
        });
    }
    for (auto& t : threads) t.join();
    done.store(true, std::memory_order_release);
    observer.join();

    EXPECT_TRUE(monotone.load());
    QueryCounters sum;
    for (std::size_t k = 0; k < service.replica_count(); ++k) {
        sum.inference += service.replica_counters(k).inference;
        sum.power += service.replica_counters(k).power;
    }
    EXPECT_EQ(sum.inference, kThreads * kPerThread);
    EXPECT_EQ(sum.power, kThreads * kPerThread);
    EXPECT_EQ(service.counters().inference, sum.inference);
    EXPECT_EQ(service.counters().power, sum.power);

    // Service-wide reset clears every replica; sessions keep their own
    // counters (PR-5 semantics), and new traffic counts from zero on
    // exactly one replica.
    service.reset_counters();
    EXPECT_EQ(service.counters().total(), 0u);
    for (std::size_t k = 0; k < service.replica_count(); ++k) {
        EXPECT_EQ(service.replica_counters(k).total(), 0u);
    }
    EXPECT_EQ(sessions[0].counters().inference, kPerThread);
    (void)sessions[0].submit_label(u).get();
    EXPECT_EQ(service.counters().inference, 1u);
}

// ---- scenario integration ---------------------------------------------------

TEST(ServiceReplicas, DeployedScenarioBuildsFleetWithRouting) {
    ScenarioSpec spec = builtin_scenarios().get("service/mnist/hidden-attacker");
    apply_smoke(spec);
    spec.replicas = 2;
    spec.routing = RoutingPolicy::RoundRobin;
    ScenarioRunner runner;
    DeployedScenario d = runner.deploy(spec);
    EXPECT_EQ(d.replica_count(), 2u);
    EXPECT_EQ(d.service().replica_count(), 2u);
    EXPECT_EQ(d.service().config().routing, RoutingPolicy::RoundRobin);
    // Both replica stacks serve the same logical model.
    EXPECT_EQ(d.replica_stack_top(0).inputs(), d.replica_stack_top(1).inputs());
    // Smoke query through the default session still answers.
    const tensor::Vector u(d.service().inputs(), 0.1);
    EXPECT_NO_THROW((void)d.session().submit_label(u).get());
}

}  // namespace
}  // namespace xbarsec::core
