// Tests for the scenario registry and the unified runner: lookup errors,
// built-in coverage, deployment with decorator stacks, and smoke runs of
// the cheap experiment kinds.
#include <gtest/gtest.h>

#include "xbarsec/core/scenario.hpp"

namespace xbarsec::core {
namespace {

/// A spec shrunk far below apply_smoke for unit-test budgets.
ScenarioSpec tiny(const std::string& name) {
    ScenarioSpec spec = builtin_scenarios().get(name);
    apply_smoke(spec);
    spec.load.train_count = 300;
    spec.load.test_count = 100;
    spec.victim.train.epochs = 3;
    spec.fig4.strengths = {0, 5};
    spec.fig4.eval_limit = 60;
    return spec;
}

TEST(ScenarioRegistry, BuiltinsCoverEveryExperimentKind) {
    ScenarioRegistry& registry = builtin_scenarios();
    EXPECT_GE(registry.size(), 20u);
    for (const char* name :
         {"fig3/mnist/softmax", "fig4/mnist/softmax", "fig4/cifar/linear", "fig5/mnist/label",
          "fig5/cifar/raw", "table1/mnist/linear", "probe/mnist/undefended",
          "probe/mnist/defended", "fig4/mnist/softmax-detected"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
    }
    EXPECT_EQ(registry.names("fig5/").size(), 5u);
    EXPECT_EQ(registry.names("probe/").size(), 2u);
}

TEST(ScenarioRegistry, UnknownNameThrowsWithAvailableList) {
    try {
        builtin_scenarios().get("fig9/venus/tanh");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown scenario 'fig9/venus/tanh'"), std::string::npos);
        EXPECT_NE(what.find("fig4/mnist/softmax"), std::string::npos);
    }
}

TEST(ScenarioRegistry, RejectsDuplicatesAndEmptyNames) {
    ScenarioRegistry registry;
    ScenarioSpec spec;
    EXPECT_THROW(registry.add(spec), ConfigError);  // empty name
    spec.name = "x";
    registry.add(spec);
    EXPECT_THROW(registry.add(spec), ConfigError);  // duplicate
    EXPECT_EQ(registry.names().size(), 1u);
}

TEST(ScenarioRegistry, PrefixFilterIsAnchored) {
    ScenarioRegistry registry;
    for (const char* name : {"a/x", "a/y", "b/a/x"}) {
        ScenarioSpec spec;
        spec.name = name;
        registry.add(spec);
    }
    EXPECT_EQ(registry.names("a/").size(), 2u);
    EXPECT_EQ(registry.names("").size(), 3u);
}

TEST(ScenarioRunner, DeploysDecoratorStacks) {
    ScenarioRunner runner;
    DeployedScenario d = runner.deploy(tiny("probe/mnist/defended"));
    EXPECT_EQ(d.spec().defenses.size(), 3u);
    EXPECT_NE(&d.oracle(), static_cast<Oracle*>(&d.backend()));  // stack is non-trivial
    EXPECT_EQ(d.oracle().inputs(), 784u);
    // One query through the top of the stack is counted once.
    (void)d.oracle().query_label(tensor::Vector(784, 0.1));
    EXPECT_EQ(d.backend().counters().inference, 1u);
}

TEST(ScenarioRunner, RunsFig4ScenarioEndToEnd) {
    ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(tiny("fig4/mnist/softmax"));
    EXPECT_EQ(outcome.name, "fig4/mnist/softmax");
    EXPECT_EQ(outcome.label, "MNIST-like/softmax");
    ASSERT_EQ(outcome.tables.size(), 1u);
    EXPECT_EQ(outcome.tables[0].second.rows(), 2u);   // two strengths
    EXPECT_EQ(outcome.tables[0].second.columns(), 6u);
    EXPECT_GT(outcome.metrics.at("clean_accuracy"), 0.5);
    // The probe is the only attacker cost in the direct-evaluation mode.
    EXPECT_EQ(outcome.attacker_cost.power, 784u);
    EXPECT_EQ(outcome.attacker_cost.inference, 0u);
}

TEST(ScenarioRunner, DefendedProbeDegradesRecovery) {
    ScenarioRunner runner;
    const ScenarioOutcome clean = runner.run(tiny("probe/mnist/undefended"));
    const ScenarioOutcome defended = runner.run(tiny("probe/mnist/defended"));
    EXPECT_LT(clean.metrics.at("l1_relative_error"), 1e-9);
    EXPECT_DOUBLE_EQ(clean.metrics.at("topk_agreement"), 1.0);
    EXPECT_GT(defended.metrics.at("l1_relative_error"), 0.1);
    EXPECT_LT(defended.metrics.at("topk_agreement"), 0.9);
}

TEST(ScenarioRunner, DetectorScenarioReportsFlaggedFraction) {
    ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(tiny("fig4/mnist/softmax-detected"));
    ASSERT_EQ(outcome.metrics.count("detector_flagged_fraction"), 1u);
    ASSERT_EQ(outcome.metrics.count("detector_screened"), 1u);
    // Evaluation ran through the oracle: inference queries were counted.
    EXPECT_GT(outcome.attacker_cost.inference, 0u);
}

TEST(ScenarioRunner, Fig3ScenarioEmitsGridsAndNotes) {
    ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(tiny("fig3/mnist/softmax"));
    ASSERT_EQ(outcome.grids.size(), 2u);
    EXPECT_EQ(outcome.grids[0].map.size(), 784u);
    EXPECT_EQ(outcome.notes.size(), 2u);
    EXPECT_GT(outcome.metrics.at("correlation"), 0.2);
}

TEST(ScenarioRunner, RejectsUnsupportedDefenseCombinations) {
    ScenarioRunner runner;
    ScenarioSpec spec = tiny("table1/mnist/softmax");
    DefenseSpec defense;
    defense.kind = DefenseSpec::Kind::NoisyPower;
    spec.defenses.push_back(defense);
    EXPECT_THROW(runner.run(spec), ConfigError);

    ScenarioSpec fig5_spec = tiny("fig5/mnist/label");
    DefenseSpec detector;
    detector.kind = DefenseSpec::Kind::Detector;
    fig5_spec.defenses.push_back(detector);
    EXPECT_THROW(runner.run(fig5_spec), ConfigError);
}

TEST(ScenarioSmoke, ShrinksSweeps) {
    ScenarioSpec spec = builtin_scenarios().get("fig5/mnist/label");
    apply_smoke(spec);
    EXPECT_EQ(spec.load.train_count, 400u);
    EXPECT_EQ(spec.fig5.runs, 2u);
    EXPECT_EQ(spec.fig5.query_counts.size(), 2u);
}

}  // namespace
}  // namespace xbarsec::core
