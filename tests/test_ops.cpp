// Tests for BLAS-1/2 operations, including the crossbar-algebra helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::tensor {
namespace {

TEST(Ops, DotAndAxpy) {
    const Vector a{1, 2, 3};
    const Vector b{4, 5, 6};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    Vector y{1, 1, 1};
    axpy(2.0, a, y);
    EXPECT_DOUBLE_EQ(y[2], 7.0);
    EXPECT_THROW(dot(a, Vector{1, 2}), ContractViolation);
}

TEST(Ops, SumsAndMeans) {
    const Vector v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(sum(v), 10.0);
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_THROW(mean(Vector{}), ContractViolation);
}

TEST(Ops, Norms) {
    const Vector v{3, -4, 0};
    EXPECT_DOUBLE_EQ(norm1(v), 7.0);
    EXPECT_DOUBLE_EQ(norm2(v), 5.0);
    EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

TEST(Ops, ArgmaxArgminMaxMin) {
    const Vector v{1, 9, -3, 9};
    EXPECT_EQ(argmax(v), 1u);  // first of ties
    EXPECT_EQ(argmin(v), 2u);
    EXPECT_DOUBLE_EQ(max(v), 9.0);
    EXPECT_DOUBLE_EQ(min(v), -3.0);
    EXPECT_THROW(argmax(Vector{}), ContractViolation);
}

TEST(Ops, ElementwiseHelpers) {
    const Vector v{-2, 0, 3};
    const Vector a = abs(v);
    EXPECT_DOUBLE_EQ(a[0], 2.0);
    const Vector s = sign(v);
    EXPECT_DOUBLE_EQ(s[0], -1.0);
    EXPECT_DOUBLE_EQ(s[1], 0.0);
    EXPECT_DOUBLE_EQ(s[2], 1.0);
    const Vector c = clamp(v, -1.0, 1.0);
    EXPECT_DOUBLE_EQ(c[0], -1.0);
    EXPECT_DOUBLE_EQ(c[2], 1.0);
    const Vector h = hadamard(Vector{1, 2}, Vector{3, 4});
    EXPECT_DOUBLE_EQ(h[1], 8.0);
}

TEST(Ops, AllFinite) {
    EXPECT_TRUE(all_finite(Vector{1, 2}));
    EXPECT_FALSE(all_finite(Vector{1, std::nan("")}));
    EXPECT_FALSE(all_finite(Vector{1, INFINITY}));
    Matrix m(2, 2, 1.0);
    EXPECT_TRUE(all_finite(m));
    m(1, 1) = std::nan("");
    EXPECT_FALSE(all_finite(m));
}

TEST(Ops, MatvecMatchesManual) {
    const Matrix W{{1, 2, 3}, {4, 5, 6}};
    const Vector u{1, 0, -1};
    const Vector s = matvec(W, u);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], -2.0);
    EXPECT_DOUBLE_EQ(s[1], -2.0);
    EXPECT_THROW(matvec(W, Vector{1, 2}), ContractViolation);
}

TEST(Ops, MatvecTransposedMatchesExplicitTranspose) {
    Rng rng(1);
    const Matrix W = Matrix::random_normal(rng, 7, 5);
    const Vector v = Vector::random_normal(rng, 7);
    const Vector a = matvec_transposed(W, v);
    const Vector b = matvec(W.transposed(), v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Ops, GerAndOuter) {
    Matrix A(2, 3, 1.0);
    ger(2.0, Vector{1, 2}, Vector{1, 0, -1}, A);
    EXPECT_DOUBLE_EQ(A(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(A(1, 2), -3.0);
    const Matrix O = outer(Vector{1, 2}, Vector{3, 4});
    EXPECT_DOUBLE_EQ(O(1, 0), 6.0);
    EXPECT_DOUBLE_EQ(O(0, 1), 4.0);
}

TEST(Ops, ColumnAbsSumsIsThePowerLeak) {
    // Eq. 5-6: the column 1-norms are what the total current reveals.
    const Matrix W{{1, -2, 0}, {-3, 4, 0.5}};
    const Vector l1 = column_abs_sums(W);
    ASSERT_EQ(l1.size(), 3u);
    EXPECT_DOUBLE_EQ(l1[0], 4.0);
    EXPECT_DOUBLE_EQ(l1[1], 6.0);
    EXPECT_DOUBLE_EQ(l1[2], 0.5);
}

TEST(Ops, RowAbsAndColumnSums) {
    const Matrix W{{1, -2}, {-3, 4}};
    const Vector rows = row_abs_sums(W);
    EXPECT_DOUBLE_EQ(rows[0], 3.0);
    EXPECT_DOUBLE_EQ(rows[1], 7.0);
    const Vector cols = column_sums(W);
    EXPECT_DOUBLE_EQ(cols[0], -2.0);
    EXPECT_DOUBLE_EQ(cols[1], 2.0);
}

TEST(Ops, FrobeniusAndMaxAbs) {
    const Matrix W{{3, 0}, {0, 4}};
    EXPECT_DOUBLE_EQ(frobenius_norm(W), 5.0);
    EXPECT_DOUBLE_EQ(max_abs(W), 4.0);
}

// Property sweep: column_abs_sums equals a manual per-column loop for
// random matrices of many shapes.
class ColumnSumsProperty : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ColumnSumsProperty, MatchesManualComputation) {
    const auto [rows, cols] = GetParam();
    Rng rng(rows * 131 + cols);
    const Matrix W = Matrix::random_normal(rng, rows, cols);
    const Vector fast = column_abs_sums(W);
    for (std::size_t j = 0; j < cols; ++j) {
        double manual = 0.0;
        for (std::size_t i = 0; i < rows; ++i) manual += std::abs(W(i, j));
        EXPECT_NEAR(fast[j], manual, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ColumnSumsProperty,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{1, 17},
                                           std::pair<std::size_t, std::size_t>{10, 784},
                                           std::pair<std::size_t, std::size_t>{33, 5},
                                           std::pair<std::size_t, std::size_t>{7, 7}));

}  // namespace
}  // namespace xbarsec::tensor
