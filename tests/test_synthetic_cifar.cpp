// Synthetic CIFAR-10-like generator tests.
#include <gtest/gtest.h>

#include "xbarsec/data/synthetic_cifar10.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::data {
namespace {

TEST(RenderCifarLike, ShapeAndRange) {
    SyntheticCifar10Config config;
    Rng rng(3);
    const tensor::Vector img = render_cifar_like(4, rng, config);
    ASSERT_EQ(img.size(), 3u * 32u * 32u);
    for (const double px : img) {
        EXPECT_GE(px, 0.0);
        EXPECT_LE(px, 1.0);
    }
    EXPECT_THROW(render_cifar_like(10, rng, config), xbarsec::ContractViolation);
}

TEST(RenderCifarLike, Deterministic) {
    SyntheticCifar10Config config;
    Rng r1(5), r2(5);
    EXPECT_EQ(render_cifar_like(2, r1, config), render_cifar_like(2, r2, config));
}

TEST(MakeSyntheticCifar, ShapesAndBalance) {
    SyntheticCifar10Config config;
    config.train_count = 100;
    config.test_count = 50;
    const DataSplit split = make_synthetic_cifar10(config);
    EXPECT_EQ(split.train.size(), 100u);
    EXPECT_EQ(split.train.input_dim(), 3072u);
    EXPECT_EQ(split.train.shape(), (ImageShape{32, 32, 3}));
    for (const auto c : split.train.class_counts()) EXPECT_EQ(c, 10u);
}

TEST(MakeSyntheticCifar, SeedReproducibility) {
    SyntheticCifar10Config config;
    config.train_count = 40;
    config.test_count = 20;
    const DataSplit a = make_synthetic_cifar10(config);
    const DataSplit b = make_synthetic_cifar10(config);
    EXPECT_EQ(a.train.inputs(), b.train.inputs());
    config.seed = 999;
    const DataSplit c = make_synthetic_cifar10(config);
    EXPECT_NE(a.train.inputs(), c.train.inputs());
}

TEST(MakeSyntheticCifar, ColourSignalIsWeakButPresent) {
    // Class mean colours must differ (there IS linearly usable signal) but
    // per-pixel variance must dominate it (the signal is WEAK) — this is
    // what pins single-layer accuracy to the paper's ~0.3-0.4 band.
    SyntheticCifar10Config config;
    config.train_count = 400;
    config.test_count = 10;
    const DataSplit split = make_synthetic_cifar10(config);

    // Mean red-channel value per class.
    std::vector<double> class_mean(10, 0.0), class_n(10, 0.0);
    double global_var = 0.0;
    std::size_t var_n = 0;
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        const auto row = split.train.inputs().row_span(i);
        double r_mean = 0.0;
        for (std::size_t p = 0; p < 1024; ++p) r_mean += row[p];
        r_mean /= 1024.0;
        class_mean[static_cast<std::size_t>(split.train.label(i))] += r_mean;
        class_n[static_cast<std::size_t>(split.train.label(i))] += 1.0;
        // accumulate per-pixel variance proxy from a pixel sample
        for (std::size_t p = 0; p < 1024; p += 64) {
            global_var += (row[p] - 0.5) * (row[p] - 0.5);
            ++var_n;
        }
    }
    double spread = 0.0;
    double grand = 0.0;
    for (int c = 0; c < 10; ++c) {
        class_mean[static_cast<std::size_t>(c)] /= class_n[static_cast<std::size_t>(c)];
        grand += class_mean[static_cast<std::size_t>(c)] / 10.0;
    }
    for (int c = 0; c < 10; ++c) {
        const double d = class_mean[static_cast<std::size_t>(c)] - grand;
        spread += d * d;
    }
    spread = std::sqrt(spread / 10.0);
    const double pixel_std = std::sqrt(global_var / static_cast<double>(var_n));

    EXPECT_GT(spread, 0.01) << "no class colour signal at all";
    EXPECT_GT(pixel_std, 2.0 * spread) << "colour signal too strong; dataset would be too easy";
}

TEST(MakeSyntheticCifar, FirstChannelIsPlanarPrefix) {
    // Figure 3(f,h) visualises "the first color channel": columns [0,1024)
    // must be the red plane (CIFAR binary layout).
    SyntheticCifar10Config config;
    config.train_count = 10;
    config.test_count = 10;
    const DataSplit split = make_synthetic_cifar10(config);
    EXPECT_EQ(split.train.shape().channels, 3u);
    EXPECT_EQ(split.train.shape().height * split.train.shape().width, 1024u);
}

TEST(MakeSyntheticCifar, RejectsEmptyCounts) {
    SyntheticCifar10Config config;
    config.test_count = 0;
    EXPECT_THROW(make_synthetic_cifar10(config), xbarsec::ContractViolation);
}

}  // namespace
}  // namespace xbarsec::data
