// Smoke tests for the experiment runners behind the benches (tiny
// datasets, minimal runs) plus rendering checks.
#include <gtest/gtest.h>

#include <filesystem>

#include "xbarsec/core/fig3.hpp"
#include "xbarsec/core/fig4.hpp"
#include "xbarsec/core/fig5.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/core/table1.hpp"
#include "xbarsec/data/synthetic_mnist.hpp"

namespace xbarsec::core {
namespace {

const data::DataSplit& tiny_split() {
    static const data::DataSplit split = [] {
        data::SyntheticMnistConfig dc;
        dc.train_count = 400;
        dc.test_count = 120;
        return data::make_synthetic_mnist(dc);
    }();
    return split;
}

VictimConfig quick_victim(OutputConfig output) {
    VictimConfig c = VictimConfig::defaults(output);
    c.train.epochs = 6;
    return c;
}

TEST(Table1Runner, ProducesPlausibleCorrelations) {
    Table1Options options;
    options.runs = 2;
    options.victim = quick_victim(OutputConfig::softmax_ce());
    const Table1Row row =
        run_table1_config(tiny_split(), "mnist-like", OutputConfig::softmax_ce(), options);
    EXPECT_EQ(row.dataset, "mnist-like");
    EXPECT_EQ(row.activation, "softmax");
    // Directional expectations from the paper: all positive, and the
    // correlation-of-mean dominates the per-sample mean correlation.
    EXPECT_GT(row.mean_corr_test, 0.0);
    EXPECT_GT(row.corr_of_mean_test, row.mean_corr_test);
    EXPECT_LE(row.corr_of_mean_test, 1.0);
    EXPECT_GT(row.victim_test_accuracy, 0.5);
}

TEST(Table1Runner, RenderHasFourMetricColumns) {
    Table1Row row;
    row.dataset = "d";
    row.activation = "linear";
    row.mean_corr_train = 0.1;
    const Table t = render_table1({row});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 7u);
    EXPECT_NE(t.to_markdown().find("Corr of Mean"), std::string::npos);
}

TEST(Fig3Runner, MapsHaveImageShapeAndCorrelate) {
    const Fig3Panel panel = run_fig3_config(tiny_split(), "mnist-like",
                                            OutputConfig::softmax_ce(),
                                            quick_victim(OutputConfig::softmax_ce()));
    EXPECT_EQ(panel.sensitivity_map.size(), 784u);
    EXPECT_EQ(panel.l1_map.size(), 784u);
    EXPECT_GT(panel.correlation, 0.3);
    EXPECT_EQ(panel.shape.height, 28u);
}

TEST(Fig3Runner, AsciiHeatmapRendersGrid) {
    const Fig3Panel panel = run_fig3_config(tiny_split(), "mnist-like",
                                            OutputConfig::linear_mse(),
                                            quick_victim(OutputConfig::linear_mse()));
    const std::string art = render_ascii_heatmap(panel.l1_map, panel.shape);
    // 28 lines of 28 characters.
    EXPECT_EQ(art.size(), 28u * 29u);
}

TEST(Fig3Runner, GridCsvWrites) {
    const Fig3Panel panel = run_fig3_config(tiny_split(), "mnist-like",
                                            OutputConfig::linear_mse(),
                                            quick_victim(OutputConfig::linear_mse()));
    const auto path = std::filesystem::temp_directory_path() / "xbarsec_fig3_test.csv";
    write_grid_csv(path.string(), panel.l1_map, panel.shape);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_GT(std::filesystem::file_size(path), 784u);  // at least one char/pixel
    std::filesystem::remove(path);
}

TEST(Fig4Runner, SeriesCoverMethodsAndStrengths) {
    Fig4Options options;
    options.strengths = {0.0, 5.0, 10.0};
    options.eval_limit = 80;
    const Fig4Result r = run_fig4_config(tiny_split(), "mnist-like", OutputConfig::softmax_ce(),
                                         quick_victim(OutputConfig::softmax_ce()), options);
    ASSERT_EQ(r.series.size(), 5u);
    for (const auto& s : r.series) {
        ASSERT_EQ(s.accuracy.size(), 3u);
        // Strength 0 must equal the clean accuracy for every method.
        EXPECT_NEAR(s.accuracy[0], r.clean_accuracy, 1e-12);
    }
    const Table t = render_fig4(r);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.columns(), 6u);
}

TEST(Fig5Runner, ScheduleScalesWithQueries) {
    const nn::TrainConfig small = surrogate_schedule(2);
    const nn::TrainConfig large = surrogate_schedule(5000);
    EXPECT_GT(small.epochs, large.epochs);
    EXPECT_EQ(small.batch_size, 2u);
    EXPECT_EQ(large.batch_size, 32u);
}

TEST(Fig5Runner, MiniatureSweepAggregatesAndTests) {
    Fig5Options options;
    options.query_counts = {10, 100};
    options.lambdas = {0.0, 0.005};
    options.runs = 2;
    options.raw_outputs = true;
    options.eval_limit = 60;
    const Fig5Result r = run_fig5(tiny_split(), "mnist-like", OutputConfig::linear_mse(),
                                  quick_victim(OutputConfig::linear_mse()), options);
    EXPECT_EQ(r.cells.size(), 4u);
    const Fig5Cell& cell = r.cell(0.005, 100);
    EXPECT_EQ(cell.oracle_adv_accuracy.count, 2u);
    EXPECT_GE(cell.p_value, 0.0);
    EXPECT_LE(cell.p_value, 1.0);
    // λ=0 cells carry no improvement/test.
    EXPECT_DOUBLE_EQ(r.cell(0.0, 10).improvement, 0.0);
    EXPECT_DOUBLE_EQ(r.cell(0.0, 10).p_value, 1.0);
    // Surrogate accuracy at Q=100 beats Q=10 for the baseline.
    EXPECT_GT(r.cell(0.0, 100).surrogate_accuracy.mean,
              r.cell(0.0, 10).surrogate_accuracy.mean);

    EXPECT_FALSE(render_fig5_surrogate_accuracy(r).to_markdown().empty());
    EXPECT_FALSE(render_fig5_adversarial_accuracy(r).to_markdown().empty());
    const Table imp = render_fig5_improvement(r);
    EXPECT_EQ(imp.rows(), 1u);  // only the λ=0.005 row
    EXPECT_THROW(r.cell(0.42, 10), ConfigError);
}

TEST(Fig5Runner, ValidatesOptions) {
    Fig5Options options;
    options.lambdas = {0.005};  // missing the λ=0 baseline
    options.runs = 2;
    EXPECT_THROW(run_fig5(tiny_split(), "x", OutputConfig::linear_mse(),
                          quick_victim(OutputConfig::linear_mse()), options),
                 ContractViolation);
}

TEST(ReportHelpers, ResultsDirHonoursEnvironment) {
    // Default name without the env var.
    unsetenv("XBARSEC_RESULTS_DIR");
    EXPECT_EQ(results_dir(), "bench_results");
    setenv("XBARSEC_RESULTS_DIR", "/tmp/xbarsec_alt", 1);
    EXPECT_EQ(results_dir(), "/tmp/xbarsec_alt");
    unsetenv("XBARSEC_RESULTS_DIR");
}

}  // namespace
}  // namespace xbarsec::core
