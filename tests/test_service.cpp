// OracleService core contracts: async submission, cross-client query
// coalescing, bit-identity of coalesced vs serial issue for all three
// query kinds (on noisy hardware, where measurement-counter order is
// observable — and re-run per kernel variant via the CMake-registered
// XBARSEC_FORCE_KERNEL environments), per-session policy enforcement at
// submit time, and counter semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <future>

#include "xbarsec/core/service.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 24, std::size_t out = 5) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net, OracleOptions options = {},
                           xbar::NonIdealityConfig nonideal = {}) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec(), nonideal), options);
}

xbar::NonIdealityConfig noisy_device() {
    xbar::NonIdealityConfig c;
    c.read_noise_std = 0.05;
    return c;
}

/// A long coalescing window, so a burst of async submissions from one
/// thread reliably lands in few backend batches.
ServiceConfig coalescing_config() {
    ServiceConfig c;
    c.max_wait = std::chrono::microseconds(50000);
    return c;
}

// ---- async submission -------------------------------------------------------

TEST(Service, FuturesResolveToBackendAnswers) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle reference = make_oracle(net);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    Session session = service.open_session();

    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 8, net.inputs());
    auto labels = session.submit_labels(U);
    auto raw = session.submit_raw_batch(U);
    auto power = session.submit_power_batch(U);

    EXPECT_EQ(labels.get(), reference.query_labels(U));
    const tensor::Matrix want_raw = reference.query_raw_batch(U);
    const tensor::Matrix got_raw = raw.get();
    for (std::size_t r = 0; r < U.rows(); ++r) {
        for (std::size_t c = 0; c < want_raw.cols(); ++c) {
            EXPECT_DOUBLE_EQ(got_raw(r, c), want_raw(r, c));
        }
    }
    const tensor::Vector want_power = reference.query_power_batch(U);
    const tensor::Vector got_power = power.get();
    for (std::size_t r = 0; r < U.rows(); ++r) EXPECT_DOUBLE_EQ(got_power[r], want_power[r]);
}

TEST(Service, ScalarSubmissionsMatchScalarQueries) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle reference = make_oracle(net);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    Session session = service.open_session();
    const tensor::Vector u = tensor::Vector::random_uniform(rng, net.inputs());

    EXPECT_EQ(session.submit_label(u).get(), reference.query_label(u));
    const tensor::Vector want = reference.query_raw(u);
    const tensor::Vector got = session.submit_raw(u).get();
    for (std::size_t c = 0; c < want.size(); ++c) EXPECT_DOUBLE_EQ(got[c], want[c]);
    EXPECT_DOUBLE_EQ(session.submit_power(u).get(), reference.query_power(u));
}

// ---- coalescing & bit-identity ----------------------------------------------

TEST(Service, CoalescedLabelsBitIdenticalToSerialOnNoisyHardware) {
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle serial = make_oracle(net, {}, noisy_device());
    CrossbarOracle backend = make_oracle(net, {}, noisy_device());
    OracleService service(backend, coalescing_config());
    Session session = service.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 64, net.inputs());

    std::vector<std::future<int>> pending;
    pending.reserve(U.rows());
    for (std::size_t r = 0; r < U.rows(); ++r) pending.push_back(session.submit_label(U.row(r)));
    for (std::size_t r = 0; r < U.rows(); ++r) {
        EXPECT_EQ(pending[r].get(), serial.query_label(U.row(r))) << "row " << r;
    }
    // The burst really was coalesced (one pipelined submitter, 50 ms
    // window): far fewer backend batches than submissions.
    EXPECT_EQ(service.flushed_rows(), U.rows());
    EXPECT_LT(service.flushed_batches(), U.rows() / 2);
}

TEST(Service, CoalescedRawAndPowerBitIdenticalToSerialOnNoisyHardware) {
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle serial = make_oracle(net, {}, noisy_device());
    CrossbarOracle backend = make_oracle(net, {}, noisy_device());
    OracleService service(backend, coalescing_config());
    Session session = service.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 32, net.inputs());

    // All raws first, then all powers — same order serially.
    std::vector<std::future<tensor::Vector>> raws;
    for (std::size_t r = 0; r < U.rows(); ++r) raws.push_back(session.submit_raw(U.row(r)));
    std::vector<std::future<double>> powers;
    for (std::size_t r = 0; r < U.rows(); ++r) powers.push_back(session.submit_power(U.row(r)));

    for (std::size_t r = 0; r < U.rows(); ++r) {
        const tensor::Vector got = raws[r].get();
        const tensor::Vector want = serial.query_raw(U.row(r));
        for (std::size_t c = 0; c < want.size(); ++c) {
            EXPECT_DOUBLE_EQ(got[c], want[c]) << "row " << r << " col " << c;
        }
    }
    for (std::size_t r = 0; r < U.rows(); ++r) {
        EXPECT_DOUBLE_EQ(powers[r].get(), serial.query_power(U.row(r))) << "row " << r;
    }
}

TEST(Service, InterleavedKindsPreserveSerialMeasurementOrder) {
    // label, power, raw, label, power, raw, ... — the coalescer may only
    // merge *consecutive* same-kind runs, so the backend's measurement
    // counter advances exactly as under serial issue.
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle serial = make_oracle(net, {}, noisy_device());
    CrossbarOracle backend = make_oracle(net, {}, noisy_device());
    OracleService service(backend, coalescing_config());
    Session session = service.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 18, net.inputs());

    std::vector<std::future<int>> labels;
    std::vector<std::future<double>> powers;
    std::vector<std::future<tensor::Vector>> raws;
    for (std::size_t r = 0; r < U.rows(); r += 3) {
        labels.push_back(session.submit_label(U.row(r)));
        powers.push_back(session.submit_power(U.row(r + 1)));
        raws.push_back(session.submit_raw(U.row(r + 2)));
    }
    std::size_t i = 0;
    for (std::size_t r = 0; r < U.rows(); r += 3, ++i) {
        EXPECT_EQ(labels[i].get(), serial.query_label(U.row(r)));
        EXPECT_DOUBLE_EQ(powers[i].get(), serial.query_power(U.row(r + 1)));
        const tensor::Vector got = raws[i].get();
        const tensor::Vector want = serial.query_raw(U.row(r + 2));
        for (std::size_t c = 0; c < want.size(); ++c) EXPECT_DOUBLE_EQ(got[c], want[c]);
    }
}

TEST(Service, ExplicitBatchSubmissionsAreNeverSplit) {
    // A single submitted batch larger than max_batch passes through to
    // the backend whole (all-or-nothing stack semantics preserved).
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.max_batch = 16;
    OracleService service(backend, config);
    Session session = service.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 64, net.inputs());
    (void)session.submit_labels(U).get();
    EXPECT_EQ(service.flushed_batches(), 1u);
    EXPECT_EQ(service.flushed_rows(), 64u);
}

TEST(Service, SessionOracleViewRunsExistingOracleCode) {
    Rng rng(7);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle reference = make_oracle(net);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    Session session = service.open_session();
    Oracle& oracle = session.oracle();

    EXPECT_EQ(oracle.inputs(), net.inputs());
    EXPECT_EQ(oracle.outputs(), net.outputs());
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 10, net.inputs());
    EXPECT_EQ(oracle.query_labels(U), reference.query_labels(U));
    EXPECT_EQ(oracle.counters().inference, 10u);  // the session's counters
    oracle.reset_counters();
    EXPECT_EQ(session.counters().inference, 0u);
}

// ---- per-session policy at submission ---------------------------------------

TEST(Service, SessionBudgetIsChargedAllOrNothingAtSubmit) {
    Rng rng(8);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    SessionConfig config;
    config.budget.max_inference = 10;
    Session session = service.open_session(config);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 8, net.inputs());

    EXPECT_NO_THROW(session.submit_labels(U).get());                  // 8 of 10
    EXPECT_THROW(session.submit_labels(U), QueryBudgetExceeded);      // would cross
    EXPECT_EQ(session.budget_spent().inference, 8u);                  // not charged
    EXPECT_EQ(session.counters().inference, 8u);                      // not counted
    EXPECT_EQ(backend.counters().inference, 8u);                      // never reached backend
}

TEST(Service, SessionExposureOptionsDenyAtSubmit) {
    Rng rng(9);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    SessionConfig config;
    config.expose_raw_outputs = false;
    config.expose_power = false;
    Session session = service.open_session(config);
    const tensor::Vector u(net.inputs(), 0.5);

    EXPECT_THROW(session.submit_raw(u), AccessDenied);
    EXPECT_THROW(session.submit_power(u), AccessDenied);
    EXPECT_NO_THROW(session.submit_label(u).get());
    EXPECT_EQ(backend.counters().power, 0u);
}

TEST(Service, SessionNoiseIsDeterministicInTheSessionOrdinal) {
    Rng rng(10);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    SessionConfig config;
    config.power_noise_sigma = 0.25;
    config.noise_seed = 77;
    Session session = service.open_session(config);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 6, net.inputs());

    const tensor::Vector clean = backend.query_power_batch(U);
    const tensor::Vector noisy = session.submit_power_batch(U).get();
    for (std::size_t r = 0; r < U.rows(); ++r) {
        EXPECT_DOUBLE_EQ(noisy[r], clean[r] + 0.25 * Rng::normal_at(77, r, 0)) << "row " << r;
    }
    // Scalar follow-up continues the same ordinal stream.
    const double p = session.submit_power(U.row(0)).get();
    EXPECT_DOUBLE_EQ(p, clean[0] + 0.25 * Rng::normal_at(77, U.rows(), 0));
}

// ---- counters ---------------------------------------------------------------

TEST(Service, CountersAggregateAcrossSessionsAndReset) {
    Rng rng(11);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    Session a = service.open_session();
    Session b = service.open_session();
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 5, net.inputs());

    (void)a.submit_labels(U).get();
    (void)b.submit_power_batch(U).get();
    EXPECT_EQ(a.counters().inference, 5u);
    EXPECT_EQ(a.counters().power, 0u);
    EXPECT_EQ(b.counters().power, 5u);
    EXPECT_EQ(service.counters().inference, 5u);
    EXPECT_EQ(service.counters().power, 5u);
    EXPECT_EQ(service.counters().total(), 10u);

    service.reset_counters();
    EXPECT_EQ(service.counters().total(), 0u);
    EXPECT_EQ(a.counters().inference, 5u);  // per-tenant state survives service reset
    a.reset_counters();
    EXPECT_EQ(a.counters().inference, 0u);
    // An unlimited session has no ledger to keep (the fast path skips
    // it); counters() is the telemetry for such sessions.
    EXPECT_EQ(a.budget_spent().inference, 0u);
}

TEST(QueryCountersTotal, SaturatesInsteadOfWrapping) {
    QueryCounters c;
    c.inference = ~std::uint64_t{0} - 3;
    c.power = 10;
    EXPECT_EQ(c.total(), ~std::uint64_t{0});
    c.power = 3;
    EXPECT_EQ(c.total(), ~std::uint64_t{0});
    c.inference = 7;
    EXPECT_EQ(c.total(), 10u);
}

TEST(QueryCountersTotal, FleetAggregateSaturatesNearMax) {
    // The fleet aggregate (OracleService::counters()) accumulates
    // per-replica buckets with add_saturating: near-max replicas must
    // clamp, not wrap — a wrapped aggregate would break total()'s
    // monotonicity contract.
    const std::uint64_t max = ~std::uint64_t{0};
    QueryCounters fleet;
    QueryCounters replica;
    replica.inference = max - 5;
    replica.power = max - 2;
    fleet.add_saturating(replica);
    EXPECT_EQ(fleet.inference, max - 5);
    EXPECT_EQ(fleet.power, max - 2);
    QueryCounters more;
    more.inference = 3;  // fits: no clamp
    more.power = 7;      // would wrap: clamps to max
    fleet.add_saturating(more);
    EXPECT_EQ(fleet.inference, max - 2);
    EXPECT_EQ(fleet.power, max);
    EXPECT_EQ(fleet.total(), max);
    // Saturated buckets stay pinned under further accumulation.
    fleet.add_saturating(more);
    EXPECT_EQ(fleet.inference, max);
    EXPECT_EQ(fleet.power, max);
    EXPECT_EQ(QueryCounters::saturating_add(max, max), max);
}

// ---- lifecycle --------------------------------------------------------------

TEST(Service, ClosedSessionRejectsNewSubmissions) {
    Rng rng(12);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    Session session = service.open_session();
    const tensor::Vector u(net.inputs(), 0.5);
    (void)session.submit_label(u).get();
    session.close();
    EXPECT_FALSE(session.open());
    EXPECT_THROW(session.submit_label(u), SessionClosed);
    EXPECT_EQ(session.counters().inference, 1u);  // state survives close
}

TEST(Service, DestructionDrainsPendingSubmissions) {
    Rng rng(13);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    std::future<std::vector<int>> pending;
    tensor::Matrix U = tensor::Matrix::random_uniform(rng, 12, net.inputs());
    {
        OracleService service(backend, coalescing_config());
        Session session = service.open_session();
        pending = session.submit_labels(U);
        // The service destructor must flush the queue before joining.
    }
    EXPECT_EQ(pending.get().size(), 12u);
    EXPECT_EQ(backend.counters().inference, 12u);
}

TEST(Service, MoveAssignClosesDisplacedSessionAndRebindsOracleView) {
    Rng rng(14);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    const tensor::Vector u(net.inputs(), 0.5);

    Session session = service.open_session();
    Oracle& view = session.oracle();  // reference taken BEFORE the move
    (void)view.query_label(u);
    const std::uint64_t displaced_id = session.id();

    session = service.open_session();
    EXPECT_NE(session.id(), displaced_id);
    EXPECT_TRUE(session.open());

    // Both the handle and the pre-move Oracle& must drive the NEW
    // session: the old view state is gone, not dangling.
    (void)session.submit_label(u).get();
    (void)view.query_label(u);
    EXPECT_EQ(session.counters().inference, 2u);

    // Move-assigning an empty session over an open one closes it and
    // invalidates the view path cleanly.
    session = Session();
    EXPECT_FALSE(session.open());
    EXPECT_THROW(session.oracle(), SessionClosed);
}

TEST(Service, MoveAssignedOverSessionIsClosedOnTheService) {
    Rng rng(15);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);

    Session a = service.open_session();
    Session b = service.open_session();
    const std::uint64_t open_before = service.sessions_opened();
    a = std::move(b);  // the session a held must be closed, not leaked open
    EXPECT_TRUE(a.open());
    EXPECT_EQ(service.sessions_opened(), open_before);
    (void)a.submit_label(tensor::Vector(net.inputs(), 0.5)).get();
}

TEST(Service, ConfigValidationThrowsConfigErrorAtConstruction) {
    Rng rng(16);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    {
        ServiceConfig config;
        config.max_batch = 0;
        EXPECT_THROW(OracleService(backend, config), ConfigError);
    }
    {
        ServiceConfig config;
        config.max_wait = std::chrono::microseconds(-1);
        EXPECT_THROW(OracleService(backend, config), ConfigError);
    }
    {
        ServiceConfig config;
        config.cache.enabled = true;
        config.cache.capacity = 0;
        EXPECT_THROW(OracleService(backend, config), ConfigError);
    }
}

TEST(Service, ZeroMaxWaitFlushesImmediately) {
    // max_wait{0} is explicit flush-immediately semantics: every pending
    // group flushes without a coalescing window (and the flusher must
    // not spin hot while idle — the submissions below would hang or
    // starve if zero-wait were treated as a 0 us timed wait loop).
    Rng rng(17);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.max_wait = std::chrono::microseconds(0);
    OracleService service(backend, config);
    Session session = service.open_session();
    const tensor::Vector u(net.inputs(), 0.5);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(session.submit_label(u).get(), backend.query_label(u));
}

TEST(Service, ReplicaTelemetryAccessorsBoundsCheck) {
    Rng rng(18);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle r0 = make_oracle(net);
    CrossbarOracle r1 = make_oracle(net);
    OracleService service(std::vector<Oracle*>{&r0, &r1});
    (void)service.replica_counters(1);
    (void)service.flushed_batches(1);
    (void)service.flushed_rows(1);
    (void)service.queue_depth(1);
    EXPECT_THROW(service.replica_counters(2), ConfigError);
    EXPECT_THROW(service.flushed_batches(2), ConfigError);
    EXPECT_THROW(service.flushed_rows(2), ConfigError);
    EXPECT_THROW(service.queue_depth(2), ConfigError);
}

}  // namespace
}  // namespace xbarsec::core
