// Failure injection: malformed inputs, degenerate configurations, and
// misuse at module boundaries must fail loudly (typed exceptions), never
// silently corrupt results.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/cifar_io.hpp"
#include "xbarsec/data/idx_io.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/sidechannel/obfuscation.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/stats/aggregate.hpp"
#include "xbarsec/tensor/linalg.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/crossbar.hpp"

namespace xbarsec {
namespace {

namespace fs = std::filesystem;

// ---- NaN / Inf propagation is visible, not silent -------------------------

TEST(FailureInjection, NanInputsAreDetectableViaAllFinite) {
    Rng rng(1);
    tensor::Vector u = tensor::Vector::random_uniform(rng, 8);
    u[3] = std::nan("");
    EXPECT_FALSE(tensor::all_finite(u));
    // The crossbar happily computes with NaN (it is an analog model, not a
    // validator) — the result is NaN, not a wrong-but-plausible number.
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 4, 8);
    xbar::DeviceSpec spec;
    const xbar::Crossbar xb(map_weights(W, spec));
    EXPECT_TRUE(std::isnan(xb.total_current(u)));
}

TEST(FailureInjection, TrainingWithNanTargetsPoisonsTheLossVisibly) {
    Rng rng(2);
    const tensor::Matrix X = tensor::Matrix::random_uniform(rng, 16, 4);
    tensor::Matrix Y(16, 2, 0.0);
    Y(3, 1) = std::nan("");
    nn::SingleLayerNet net(rng, 4, 2, nn::Activation::Linear, nn::Loss::Mse);
    nn::TrainConfig tc;
    tc.epochs = 2;
    const nn::TrainHistory h = nn::train_regression(net, X, Y, tc);
    EXPECT_TRUE(std::isnan(h.final_loss()));
    EXPECT_FALSE(tensor::all_finite(net.weights()));
}

// ---- malformed binary data --------------------------------------------------

class MalformedFiles : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "xbarsec_failure_test";
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string write_bytes(const char* name, const std::string& bytes) {
        const auto path = (dir_ / name).string();
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        return path;
    }

    fs::path dir_;
};

TEST_F(MalformedFiles, EmptyIdxFile) {
    EXPECT_THROW(data::idx::read_images(write_bytes("empty", "")), ParseError);
}

TEST_F(MalformedFiles, IdxHeaderOnlyNoDims) {
    EXPECT_THROW(data::idx::read_images(write_bytes("hdr", std::string("\0\0\x08\x03", 4))),
                 ParseError);
}

TEST_F(MalformedFiles, IdxZeroExtentImages) {
    // count=1, rows=0, cols=5 — zero extent must be rejected, not divide.
    std::string bytes("\0\0\x08\x03", 4);
    const unsigned char dims[] = {0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 5};
    bytes.append(reinterpret_cast<const char*>(dims), sizeof dims);
    EXPECT_THROW(data::idx::read_images(write_bytes("zero", bytes)), ParseError);
}

TEST_F(MalformedFiles, CifarEmptyFile) {
    EXPECT_THROW(data::cifar::read_batch(write_bytes("e.bin", "")), ParseError);
}

TEST_F(MalformedFiles, DirectoryAsFileIsIoError) {
    EXPECT_THROW(data::idx::read_images(dir_.string()), Error);
}

// ---- degenerate experiment configurations -----------------------------------

TEST(FailureInjection, SurrogateOnSingleQueryStillRuns) {
    // Q = 1 is a legal (if useless) attacker budget; it must not crash.
    attack::QueryDataset q;
    q.inputs = tensor::Matrix(1, 6, 0.5);
    q.outputs = tensor::Matrix(1, 2, 1.0);
    q.power = tensor::Vector(1, 3.0);
    attack::SurrogateConfig sc;
    sc.power_loss_weight = 0.01;
    sc.train.epochs = 5;
    sc.train.batch_size = 8;  // larger than Q: clamped by the batch loop
    const attack::SurrogateTrainResult fit = attack::train_surrogate(q, sc);
    EXPECT_TRUE(tensor::all_finite(fit.surrogate.weights()));
}

TEST(FailureInjection, ProbeOnZeroWidthIsRejected) {
    EXPECT_THROW(
        sidechannel::probe_columns([](const tensor::Vector&) { return 0.0; }, 0),
        ContractViolation);
}

TEST(FailureInjection, VictimTrainingRequiresNonEmptySplits) {
    data::DataSplit empty;
    const core::VictimConfig config =
        core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
    EXPECT_THROW(core::train_victim(empty, config), ContractViolation);
}

TEST(FailureInjection, QueryPlanAgainstMismatchedPoolThrows) {
    Rng rng(3);
    nn::SingleLayerNet net(rng, 8, 3, nn::Activation::Linear, nn::Loss::Mse);
    xbar::DeviceSpec spec;
    core::CrossbarOracle oracle{xbar::CrossbarNetwork(net, spec), {}};
    tensor::Matrix inputs(4, 5);  // wrong input dim (5 != 8)
    const data::Dataset pool(std::move(inputs), {0, 1, 2, 0}, 3, data::ImageShape{1, 5, 1});
    core::QueryPlan plan;
    EXPECT_THROW(core::collect_queries(oracle, pool, plan), ContractViolation);
}

TEST(FailureInjection, RunAggregatorUnknownKeyThrows) {
    stats::RunAggregator agg;
    agg.add("a", 1.0);
    EXPECT_THROW(agg.values("b"), ContractViolation);
    EXPECT_EQ(agg.count("b"), 0u);
    EXPECT_TRUE(agg.contains("a"));
}

TEST(FailureInjection, LstsqOnDuplicatedRowsThrowsCleanly) {
    // The exact situation the pinv bench guards against: with-replacement
    // query draws duplicate rows and the system loses rank.
    Rng rng(4);
    const tensor::Matrix row = tensor::Matrix::random_uniform(rng, 1, 6);
    tensor::Matrix U(8, 6);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 6; ++j) U(i, j) = row(0, j);
    }
    EXPECT_THROW(tensor::lstsq(U, tensor::Matrix(8, 2, 1.0)), Error);
    // Ridge shoulders the same system without throwing.
    EXPECT_NO_THROW(tensor::ridge_solve(U, tensor::Matrix(8, 2, 1.0), 1e-6));
}

TEST(FailureInjection, CrossbarRejectsInsaneDeviceSpecsAtConstruction) {
    Rng rng(5);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 3, 3);
    xbar::DeviceSpec bad;
    bad.g_on_max = -1.0;
    EXPECT_THROW(map_weights(W, bad), ConfigError);
    xbar::DeviceSpec spec;
    xbar::NonIdealityConfig bad_cfg;
    bad_cfg.stuck_on_fraction = 2.0;
    EXPECT_THROW(xbar::Crossbar(map_weights(W, spec), bad_cfg), ConfigError);
}

TEST(FailureInjection, ObfuscationCannotMaskContractViolations) {
    // A defended measurement channel still surfaces dimension errors from
    // the wrapped oracle rather than fabricating numbers.
    Rng rng(6);
    nn::SingleLayerNet net(rng, 6, 2, nn::Activation::Linear, nn::Loss::Mse);
    xbar::DeviceSpec spec;
    core::CrossbarOracle oracle{xbar::CrossbarNetwork(net, spec), {}};
    auto defended = sidechannel::make_dithered_measure(oracle.power_measure_fn(), 1e-9, 1);
    EXPECT_THROW(defended(tensor::Vector(3, 1.0)), ContractViolation);
}

TEST(FailureInjection, DeniedOracleChannelsAbortQueryCollection) {
    Rng rng(7);
    nn::SingleLayerNet net(rng, 6, 2, nn::Activation::Linear, nn::Loss::Mse);
    xbar::DeviceSpec spec;
    core::OracleOptions closed;
    closed.expose_power = false;
    core::CrossbarOracle oracle{xbar::CrossbarNetwork(net, spec), closed};
    tensor::Matrix inputs(4, 6, 0.5);
    const data::Dataset pool(std::move(inputs), {0, 1, 0, 1}, 2, data::ImageShape{1, 6, 1});
    core::QueryPlan plan;
    plan.count = 2;
    plan.record_power = true;  // needs the denied channel
    EXPECT_THROW(core::collect_queries(oracle, pool, plan), core::AccessDenied);
}

}  // namespace
}  // namespace xbarsec
