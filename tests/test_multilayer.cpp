// MLP trainer and multi-layer crossbar deployment tests (the paper's
// future-work direction, implemented as a library extension).
#include <gtest/gtest.h>

#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/nn/mlp_trainer.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/multilayer.hpp"

namespace xbarsec {
namespace {

nn::MlpConfig small_config(bool bias = false) {
    nn::MlpConfig c;
    c.layer_sizes = {784, 32, 10};
    c.hidden_activation = nn::Activation::Relu;
    c.output_activation = nn::Activation::Softmax;
    c.loss = nn::Loss::CategoricalCrossentropy;
    c.with_bias = bias;
    return c;
}

class MultiLayerFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::SyntheticMnistConfig dc;
        dc.train_count = 900;
        dc.test_count = 250;
        split_ = new data::DataSplit(data::make_synthetic_mnist(dc));

        Rng rng(21);
        mlp_ = new nn::Mlp(rng, small_config());
        nn::TrainConfig tc;
        tc.epochs = 6;
        tc.batch_size = 32;
        tc.learning_rate = 0.05;
        tc.momentum = 0.9;
        history_ = new nn::TrainHistory(nn::train_mlp(*mlp_, split_->train, tc));
    }

    static void TearDownTestSuite() {
        delete history_;
        delete mlp_;
        delete split_;
        history_ = nullptr;
        mlp_ = nullptr;
        split_ = nullptr;
    }

    static data::DataSplit* split_;
    static nn::Mlp* mlp_;
    static nn::TrainHistory* history_;
};

data::DataSplit* MultiLayerFixture::split_ = nullptr;
nn::Mlp* MultiLayerFixture::mlp_ = nullptr;
nn::TrainHistory* MultiLayerFixture::history_ = nullptr;

TEST_F(MultiLayerFixture, TrainerReducesLossAndLearns) {
    ASSERT_EQ(history_->epoch_loss.size(), 6u);
    EXPECT_LT(history_->epoch_loss.back(), 0.7 * history_->epoch_loss.front());
    EXPECT_GT(nn::accuracy(*mlp_, split_->test), 0.6);
}

TEST_F(MultiLayerFixture, AnalogDeploymentMatchesSoftwareOnIdealDevices) {
    xbar::DeviceSpec spec;
    const xbar::MultiLayerCrossbarNetwork hw(*mlp_, spec);
    EXPECT_EQ(hw.depth(), 2u);
    EXPECT_EQ(hw.inputs(), 784u);
    EXPECT_EQ(hw.outputs(), 10u);
    for (std::size_t i = 0; i < 30; ++i) {
        const tensor::Vector u = split_->test.input(i);
        const tensor::Vector sw = mlp_->predict(u);
        const tensor::Vector analog = hw.predict(u);
        for (std::size_t c = 0; c < sw.size(); ++c) EXPECT_NEAR(analog[c], sw[c], 1e-8);
        EXPECT_EQ(hw.classify(u), mlp_->classify(u));
    }
    EXPECT_NEAR(hw.accuracy(split_->test.take(100)),
                nn::accuracy(*mlp_, split_->test.take(100)), 1e-12);
}

TEST_F(MultiLayerFixture, FirstLayerPowerChannelLeaksItsColumnL1) {
    // The external side channel (layer 0) obeys the same Eq. 5-6 identity
    // as the single-layer case.
    xbar::DeviceSpec spec;
    const xbar::MultiLayerCrossbarNetwork hw(*mlp_, spec);
    const tensor::Vector truth = tensor::column_abs_sums(mlp_->layers()[0].weights());
    const double scale = hw.layer(0).program().weight_scale;
    for (std::size_t j = 0; j < 784; j += 97) {
        const double current = hw.layer_total_current(0, tensor::Vector::basis(784, j));
        EXPECT_NEAR(current / scale, truth[j], 1e-9);
    }
}

TEST_F(MultiLayerFixture, DeeperLayerChannelsAreReachable) {
    xbar::DeviceSpec spec;
    const xbar::MultiLayerCrossbarNetwork hw(*mlp_, spec);
    const tensor::Vector u = split_->test.input(0);
    EXPECT_GE(hw.layer_total_current(1, u), 0.0);
    EXPECT_THROW(hw.layer_total_current(2, u), ContractViolation);
}

TEST_F(MultiLayerFixture, BiasedMlpIsRejected) {
    Rng rng(22);
    const nn::Mlp biased(rng, small_config(/*bias=*/true));
    xbar::DeviceSpec spec;
    EXPECT_THROW(xbar::MultiLayerCrossbarNetwork(biased, spec), ContractViolation);
}

TEST_F(MultiLayerFixture, NonIdealDeploymentDegradesGracefully) {
    xbar::DeviceSpec coarse;
    coarse.conductance_levels = 16;
    xbar::NonIdealityConfig nonideal;
    nonideal.stuck_off_fraction = 0.01;
    const xbar::MultiLayerCrossbarNetwork hw(*mlp_, coarse, nonideal);
    const double sw_acc = nn::accuracy(*mlp_, split_->test.take(100));
    const double hw_acc = hw.accuracy(split_->test.take(100));
    EXPECT_GT(hw_acc, sw_acc - 0.25);
}

TEST(MlpTrainerStandalone, ValidatesShapes) {
    Rng rng(23);
    nn::MlpConfig c;
    c.layer_sizes = {4, 3, 2};
    nn::Mlp mlp(rng, c);
    tensor::Matrix inputs(6, 5);  // wrong input dim
    const data::Dataset bad(std::move(inputs), {0, 1, 0, 1, 0, 1}, 2, data::ImageShape{1, 5, 1});
    nn::TrainConfig tc;
    EXPECT_THROW(nn::train_mlp(mlp, bad, tc), ContractViolation);
}

}  // namespace
}  // namespace xbarsec
