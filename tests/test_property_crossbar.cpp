// Parameterized property suites for the crossbar algebra: the Eq. 3-6
// identities must hold across array shapes, device configurations, and
// seeds — not just the handful of cases the unit tests pin.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/crossbar.hpp"

namespace xbarsec::xbar {
namespace {

// (rows, cols, g_off, conductance_levels, seed)
using CrossbarCase = std::tuple<std::size_t, std::size_t, double, int, std::uint64_t>;

class CrossbarAlgebra : public ::testing::TestWithParam<CrossbarCase> {
protected:
    DeviceSpec spec() const {
        DeviceSpec s;
        s.g_on_max = 100e-6;
        s.g_off = std::get<2>(GetParam());
        s.conductance_levels = std::get<3>(GetParam());
        return s;
    }

    tensor::Matrix weights() const {
        Rng rng(std::get<4>(GetParam()));
        return tensor::Matrix::random_normal(rng, std::get<0>(GetParam()),
                                             std::get<1>(GetParam()));
    }
};

TEST_P(CrossbarAlgebra, Eq5TotalCurrentIsInnerProductWithColumnSums) {
    const tensor::Matrix W = weights();
    const Crossbar xbar(map_weights(W, spec()));
    Rng rng(std::get<4>(GetParam()) + 1);
    for (int trial = 0; trial < 5; ++trial) {
        const tensor::Vector u = tensor::Vector::random_uniform(rng, W.cols());
        const double expected = tensor::dot(u, xbar.column_conductances());
        EXPECT_NEAR(xbar.total_current(u), expected, 1e-12 * std::abs(expected) + 1e-20);
    }
}

TEST_P(CrossbarAlgebra, InputLineCurrentsSumToTotal) {
    const tensor::Matrix W = weights();
    const Crossbar xbar(map_weights(W, spec()));
    Rng rng(std::get<4>(GetParam()) + 2);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, W.cols());
    const double total = xbar.total_current(u);
    EXPECT_NEAR(tensor::sum(xbar.input_line_currents(u)), total,
                1e-12 * std::abs(total) + 1e-20);
}

TEST_P(CrossbarAlgebra, MvmIsLinear) {
    // Superposition: the ideal crossbar is a linear operator, whatever the
    // programmed state (quantisation changes W-hat, not linearity).
    const tensor::Matrix W = weights();
    const Crossbar xbar(map_weights(W, spec()));
    Rng rng(std::get<4>(GetParam()) + 3);
    const tensor::Vector a = tensor::Vector::random_uniform(rng, W.cols());
    const tensor::Vector b = tensor::Vector::random_uniform(rng, W.cols());
    tensor::Vector sum_input = a;
    sum_input += b;
    const tensor::Vector lhs = xbar.mvm(sum_input);
    tensor::Vector rhs = xbar.mvm(a);
    rhs += xbar.mvm(b);
    const double scale = tensor::norm_inf(rhs) + 1e-20;
    for (std::size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-9 * scale);
}

TEST_P(CrossbarAlgebra, MvmMatchesEffectiveWeights) {
    // Whatever quantisation/g_off did to the programmed state, the analog
    // MVM must agree with the decoded effective weight matrix.
    const tensor::Matrix W = weights();
    const Crossbar xbar(map_weights(W, spec()));
    const tensor::Matrix W_eff = xbar.effective_weights();
    Rng rng(std::get<4>(GetParam()) + 4);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, W.cols());
    const tensor::Vector analog = xbar.mvm(u);
    const tensor::Vector digital = tensor::matvec(W_eff, u);
    const double scale = tensor::norm_inf(digital) + 1e-20;
    for (std::size_t i = 0; i < analog.size(); ++i) {
        EXPECT_NEAR(analog[i], digital[i], 1e-9 * scale);
    }
}

TEST_P(CrossbarAlgebra, ProbeRecoversColumnConductances) {
    const tensor::Matrix W = weights();
    const Crossbar xbar(map_weights(W, spec()));
    const sidechannel::ProbeResult probe = sidechannel::probe_columns(xbar);
    const tensor::Vector truth = xbar.column_conductances();
    for (std::size_t j = 0; j < truth.size(); ++j) {
        EXPECT_NEAR(probe.conductance_sums[j], truth[j], 1e-12 * truth[j] + 1e-20);
    }
}

TEST_P(CrossbarAlgebra, ContinuousIdealMappingRoundTripsWeights) {
    // Only meaningful for the continuous, zero-leak configuration.
    if (std::get<2>(GetParam()) != 0.0 || std::get<3>(GetParam()) != 0) GTEST_SKIP();
    const tensor::Matrix W = weights();
    const Crossbar xbar(map_weights(W, spec()));
    const tensor::Matrix W_eff = xbar.effective_weights();
    for (std::size_t i = 0; i < W.rows(); ++i)
        for (std::size_t j = 0; j < W.cols(); ++j)
            EXPECT_NEAR(W_eff(i, j), W(i, j), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDevices, CrossbarAlgebra,
    ::testing::Values(CrossbarCase{1, 1, 0.0, 0, 1},
                      CrossbarCase{10, 784, 0.0, 0, 2},
                      CrossbarCase{10, 784, 2e-6, 0, 3},
                      CrossbarCase{7, 33, 0.0, 16, 4},
                      CrossbarCase{7, 33, 1e-6, 4, 5},
                      CrossbarCase{64, 8, 0.0, 0, 6},
                      CrossbarCase{3, 3, 5e-6, 256, 7}));

// Read-noise statistics should scale correctly across noise levels.
class ReadNoiseProperty : public ::testing::TestWithParam<double> {};

TEST_P(ReadNoiseProperty, RelativeSpreadMatchesConfiguration) {
    const double noise = GetParam();
    Rng rng(11);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 8, 8);
    DeviceSpec spec;
    spec.g_on_max = 100e-6;
    NonIdealityConfig nonideal;
    nonideal.read_noise_std = noise;
    nonideal.seed = 13;
    const Crossbar xbar(map_weights(W, spec), nonideal);
    const tensor::Vector u(8, 1.0);
    std::vector<double> readings(600);
    for (auto& r : readings) r = xbar.total_current(u);
    double mean = 0.0;
    for (const double r : readings) mean += r;
    mean /= static_cast<double>(readings.size());
    double var = 0.0;
    for (const double r : readings) var += (r - mean) * (r - mean);
    var /= static_cast<double>(readings.size() - 1);
    EXPECT_NEAR(std::sqrt(var) / std::abs(mean), noise, 0.25 * noise + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, ReadNoiseProperty,
                         ::testing::Values(0.01, 0.05, 0.2));

}  // namespace
}  // namespace xbarsec::xbar
