// Descriptive statistics tests.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/stats/descriptive.hpp"

namespace xbarsec::stats {
namespace {

TEST(Descriptive, SummaryKnownValues) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_NEAR(s.sem, s.stddev / std::sqrt(8.0), 1e-12);
}

TEST(Descriptive, SingleElementSummary) {
    const std::vector<double> xs{3.0};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.variance, 0.0);
    EXPECT_DOUBLE_EQ(s.sem, 0.0);
}

TEST(Descriptive, EmptySampleThrows) {
    const std::vector<double> xs;
    EXPECT_THROW(summarize(xs), ContractViolation);
    EXPECT_THROW(mean(xs), ContractViolation);
}

TEST(Descriptive, MeanAndVariance) {
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_DOUBLE_EQ(sample_variance(xs), 1.0);
    EXPECT_DOUBLE_EQ(sample_stddev(xs), 1.0);
    const std::vector<double> one{1.0};
    EXPECT_THROW(sample_variance(one), ContractViolation);
}

TEST(Descriptive, WelfordMatchesTwoPass) {
    std::vector<double> xs;
    // Large offset stresses numerical stability; Welford should not lose
    // precision where the naive two-pass E[x²]−E[x]² would.
    for (int i = 0; i < 1000; ++i) xs.push_back(1e6 + i * 0.001);
    const Summary s = summarize(xs);
    double m = 0.0;
    for (const double x : xs) m += x;
    m /= static_cast<double>(xs.size());
    double v = 0.0;
    for (const double x : xs) v += (x - m) * (x - m);
    v /= static_cast<double>(xs.size() - 1);
    EXPECT_NEAR(s.variance, v, v * 1e-6);
}

TEST(Descriptive, MedianAndQuantiles) {
    const std::vector<double> odd{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(median(odd), 3.0);
    const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(median(even), 2.5);
    EXPECT_DOUBLE_EQ(quantile(even, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(even, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(even, 0.25), 1.75);
    EXPECT_THROW(quantile(even, 1.5), ContractViolation);
}

TEST(RunningStats, MatchesBatchSummary) {
    const std::vector<double> xs{1.0, 4.0, 9.0, 16.0, 25.0};
    RunningStats rs;
    for (const double x : xs) rs.push(x);
    const Summary s = summarize(xs);
    EXPECT_EQ(rs.count(), s.count);
    EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
    EXPECT_NEAR(rs.variance(), s.variance, 1e-12);
    EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
}

TEST(RunningStats, ZeroAndOneElements) {
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    rs.push(7.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace xbarsec::stats
