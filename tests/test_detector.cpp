// Current-signature detector tests (the DetectX-style defense baseline).
#include <gtest/gtest.h>

#include "xbarsec/attack/fgsm.hpp"
#include "xbarsec/attack/single_pixel.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/sidechannel/detector.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::sidechannel {
namespace {

class DetectorFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::SyntheticMnistConfig dc;
        dc.train_count = 1200;
        dc.test_count = 400;
        split_ = new data::DataSplit(data::make_synthetic_mnist(dc));
        core::VictimConfig config =
            core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = 10;
        victim_ = new core::TrainedVictim(core::train_victim(*split_, config));
        hardware_ = new xbar::CrossbarNetwork(victim_->net, config.device, config.nonideal);
        detector_ = new CurrentSignatureDetector(*hardware_, split_->train.take(600));
    }

    static void TearDownTestSuite() {
        delete detector_;
        delete hardware_;
        delete victim_;
        delete split_;
        detector_ = nullptr;
        hardware_ = nullptr;
        victim_ = nullptr;
        split_ = nullptr;
    }

    static data::DataSplit* split_;
    static core::TrainedVictim* victim_;
    static xbar::CrossbarNetwork* hardware_;
    static CurrentSignatureDetector* detector_;
};

data::DataSplit* DetectorFixture::split_ = nullptr;
core::TrainedVictim* DetectorFixture::victim_ = nullptr;
xbar::CrossbarNetwork* DetectorFixture::hardware_ = nullptr;
CurrentSignatureDetector* DetectorFixture::detector_ = nullptr;

TEST_F(DetectorFixture, LowFalsePositiveRateOnCleanData) {
    const double fpr = detector_->flagged_fraction(split_->test.inputs());
    EXPECT_LT(fpr, 0.05) << "clean held-out inputs should rarely be flagged";
}

TEST_F(DetectorFixture, CatchesStrongSinglePixelAttacks) {
    // A strength-8 single-pixel hit moves i_total by ~8·G_j — far outside
    // the clean class-conditional band.
    const tensor::Vector l1 =
        probe_columns([this_hw = hardware_](const tensor::Vector& v) {
            return this_hw->total_current(v);
        }, hardware_->inputs()).conductance_sums;
    Rng rng(3);
    std::size_t caught = 0;
    const std::size_t n = 150;
    for (std::size_t i = 0; i < n; ++i) {
        const tensor::Vector adv = attack::attack_single_pixel(
            attack::SinglePixelMethod::PowerAdd, split_->test.input(i), split_->test.target(i),
            8.0, &l1, nullptr, rng);
        if (detector_->is_adversarial(adv)) ++caught;
    }
    EXPECT_GT(static_cast<double>(caught) / static_cast<double>(n), 0.9);
}

TEST_F(DetectorFixture, SmallFgsmPerturbationsMostlyEvade) {
    // ±0.03 FGSM noise barely moves the aggregate current: the detector is
    // a narrow defense, which is exactly what the DetectX line observes.
    const data::Dataset eval = split_->test.take(150);
    const nn::SingleLayerNet& net = victim_->net;
    const tensor::Matrix adv = attack::fgsm_attack_batch(
        net, eval.inputs(), eval.labels(), eval.num_classes(), 0.03);
    const double flagged = detector_->flagged_fraction(adv);
    EXPECT_LT(flagged, 0.5);
}

TEST_F(DetectorFixture, StrongPerturbationRaisesAnomalyScores) {
    // Per-sample scores are not strictly monotone in strength (the attack
    // can flip the predicted class and change the profile being compared
    // against), but in aggregate a strength-8 hit must stand far outside
    // the clean band.
    const tensor::Vector l1 = tensor::column_abs_sums(victim_->net.weights());
    Rng rng(4);
    double clean_score = 0.0, adv_score = 0.0;
    const std::size_t n = 60;
    for (std::size_t i = 0; i < n; ++i) {
        const tensor::Vector u = split_->test.input(i);
        const tensor::Vector t = split_->test.target(i);
        clean_score += detector_->anomaly_score(u);
        const tensor::Vector adv = attack::attack_single_pixel(
            attack::SinglePixelMethod::PowerAdd, u, t, 8.0, &l1, nullptr, rng);
        adv_score += detector_->anomaly_score(adv);
    }
    EXPECT_GT(adv_score, 3.0 * clean_score);
}

TEST_F(DetectorFixture, ScalarTotalCurrentModeIsMuchWeaker) {
    // Negative result worth pinning: the scalar supply-current signature
    // barely sees a single-pixel hit (~1-2 sigma of the clean ink-amount
    // spread), while the per-line mode catches it. This is why DetectX
    // uses fine-grained signatures.
    DetectorConfig scalar;
    scalar.mode = SignatureMode::TotalCurrent;
    const CurrentSignatureDetector weak(*hardware_, split_->train.take(600), scalar);
    const tensor::Vector l1 = tensor::column_abs_sums(victim_->net.weights());
    Rng rng(5);
    const std::size_t n = 100;
    tensor::Matrix adv(n, split_->test.input_dim());
    for (std::size_t i = 0; i < n; ++i) {
        const tensor::Vector a = attack::attack_single_pixel(
            attack::SinglePixelMethod::PowerAdd, split_->test.input(i), split_->test.target(i),
            8.0, &l1, nullptr, rng);
        auto dst = adv.row_span(i);
        std::copy(a.begin(), a.end(), dst.begin());
    }
    const double weak_rate = weak.flagged_fraction(adv);
    const double strong_rate = detector_->flagged_fraction(adv);
    EXPECT_LT(weak_rate, strong_rate);
    EXPECT_LT(weak_rate, 0.5);
}

TEST_F(DetectorFixture, ThresholdTradesFalsePositivesForDetection) {
    DetectorConfig loose;
    loose.z_threshold = 1e6;  // manual override, effectively never flags
    DetectorConfig tight;
    tight.z_threshold = 1e-9;  // flag any envelope exceedance at all
    const CurrentSignatureDetector detector_loose(*hardware_, split_->train.take(600), loose);
    const CurrentSignatureDetector detector_tight(*hardware_, split_->train.take(600), tight);
    const double fpr_loose = detector_loose.flagged_fraction(split_->test.inputs());
    const double fpr_tight = detector_tight.flagged_fraction(split_->test.inputs());
    EXPECT_LE(fpr_loose, fpr_tight);
    EXPECT_GT(fpr_tight, 0.05) << "flagging any exceedance must hit many clean inputs";
    EXPECT_DOUBLE_EQ(detector_loose.threshold(), 1e6);
}

TEST_F(DetectorFixture, AutoCalibrationMeetsTheFprBudget) {
    DetectorConfig config;
    config.target_false_positive_rate = 0.10;
    const CurrentSignatureDetector d(*hardware_, split_->train.take(600), config);
    // Held-out clean FPR within a loose band around the budget.
    const double fpr = d.flagged_fraction(split_->test.inputs());
    EXPECT_LT(fpr, 0.25);
    EXPECT_GT(d.threshold(), 0.0);
}

TEST_F(DetectorFixture, Validation) {
    EXPECT_THROW(CurrentSignatureDetector(*hardware_, split_->train.take(1)),
                 ContractViolation);
    DetectorConfig bad;
    bad.z_threshold = -1.0;
    EXPECT_THROW(CurrentSignatureDetector(*hardware_, split_->train.take(100), bad),
                 ContractViolation);
    bad = {};
    bad.target_false_positive_rate = 0.0;
    EXPECT_THROW(CurrentSignatureDetector(*hardware_, split_->train.take(100), bad),
                 ContractViolation);
    EXPECT_THROW(detector_->anomaly_score(tensor::Vector(3, 0.0)), ContractViolation);
}

}  // namespace
}  // namespace xbarsec::sidechannel
