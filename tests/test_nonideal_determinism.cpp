// Determinism suite for the batched crossbar measurement paths (PR 3).
//
// The counter-based read-noise stream and the row-stable kernels promise:
// same seed + same batch ⇒ bit-identical outputs, regardless of
//   * the ThreadPool size (none, 1, 4 workers),
//   * how the batch is split into sub-batches (processed in order), and
//   * whether rows are issued as scalar calls or one batched call,
// for noisy and noiseless configurations alike, ideal and non-ideal.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/crossbar.hpp"

namespace xbarsec::xbar {
namespace {

struct Shape {
    std::size_t rows;
    std::size_t cols;
};

DeviceSpec spec() {
    DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

Crossbar make(const Shape& shape, const NonIdealityConfig& nonideal, std::uint64_t seed) {
    Rng rng(seed);
    return Crossbar(map_weights(tensor::Matrix::random_normal(rng, shape.rows, shape.cols),
                                spec()),
                    nonideal);
}

tensor::Matrix batch_for(const Shape& shape, std::uint64_t seed, std::size_t rows = 100) {
    Rng rng(seed);
    return tensor::Matrix::random_uniform(rng, rows, shape.cols);
}

tensor::Matrix take_rows(const tensor::Matrix& V, std::size_t lo, std::size_t hi) {
    tensor::Matrix out(hi - lo, V.cols());
    for (std::size_t r = lo; r < hi; ++r) {
        const auto src = V.row_span(r);
        auto dst = out.row_span(r - lo);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    return out;
}

/// The configurations the suite sweeps: noiseless and noisy, ideal and
/// with every fabric non-ideality engaged.
std::vector<NonIdealityConfig> configs() {
    std::vector<NonIdealityConfig> out;
    out.emplace_back();  // ideal, noiseless
    {
        NonIdealityConfig c;  // non-ideal, noiseless
        c.line_resistance = 50.0;
        c.stuck_on_fraction = 0.02;
        c.stuck_off_fraction = 0.02;
        out.push_back(c);
    }
    {
        NonIdealityConfig c;  // noisy ideal fabric
        c.read_noise_std = 0.05;
        out.push_back(c);
    }
    {
        NonIdealityConfig c;  // everything at once
        c.read_noise_std = 0.05;
        c.line_resistance = 50.0;
        c.stuck_on_fraction = 0.02;
        c.stuck_off_fraction = 0.02;
        out.push_back(c);
    }
    return out;
}

const Shape kShapes[] = {{10, 784}, {64, 8}};

TEST(NonIdealDeterminism, PoolSizeNeverChangesABit) {
    ThreadPool pool1(1);
    ThreadPool pool4(4);
    std::uint64_t seed = 1000;
    for (const Shape& shape : kShapes) {
        for (const NonIdealityConfig& c : configs()) {
            const tensor::Matrix V = batch_for(shape, seed + 1);
            const Crossbar serial = make(shape, c, seed);
            const Crossbar one = make(shape, c, seed);
            const Crossbar four = make(shape, c, seed);

            const tensor::Matrix out_serial = serial.output_currents_batch(V, nullptr);
            ASSERT_EQ(out_serial, one.output_currents_batch(V, &pool1));
            ASSERT_EQ(out_serial, four.output_currents_batch(V, &pool4));

            const tensor::Vector tot_serial = serial.total_current_batch(V, nullptr);
            ASSERT_EQ(tot_serial, one.total_current_batch(V, &pool1));
            ASSERT_EQ(tot_serial, four.total_current_batch(V, &pool4));
            ++seed;
        }
    }
}

TEST(NonIdealDeterminism, BatchSplitsReproduceTheUnsplitBatch) {
    std::uint64_t seed = 2000;
    for (const Shape& shape : kShapes) {
        for (const NonIdealityConfig& c : configs()) {
            const tensor::Matrix V = batch_for(shape, seed + 1);
            const Crossbar whole = make(shape, c, seed);
            const tensor::Matrix full = whole.output_currents_batch(V);
            const tensor::Vector full_tot = make(shape, c, seed).total_current_batch(V);

            for (const std::size_t step : {std::size_t{1}, std::size_t{3}, std::size_t{37},
                                           std::size_t{64}}) {
                const Crossbar split = make(shape, c, seed);
                const Crossbar split_tot = make(shape, c, seed);
                for (std::size_t lo = 0; lo < V.rows(); lo += step) {
                    const std::size_t hi = std::min(lo + step, V.rows());
                    const tensor::Matrix sub = take_rows(V, lo, hi);
                    const tensor::Matrix part = split.output_currents_batch(sub);
                    const tensor::Vector part_tot = split_tot.total_current_batch(sub);
                    for (std::size_t r = lo; r < hi; ++r) {
                        ASSERT_EQ(0, std::memcmp(part.row_span(r - lo).data(),
                                                 full.row_span(r).data(),
                                                 shape.rows * sizeof(double)))
                            << "split " << step << " row " << r;
                        const double a = part_tot[r - lo], b = full_tot[r];
                        ASSERT_EQ(0, std::memcmp(&a, &b, sizeof(double)))
                            << "split " << step << " row " << r;
                    }
                }
            }
            ++seed;
        }
    }
}

TEST(NonIdealDeterminism, ScalarCallsEqualBatchRows) {
    std::uint64_t seed = 3000;
    for (const Shape& shape : kShapes) {
        for (const NonIdealityConfig& c : configs()) {
            const tensor::Matrix V = batch_for(shape, seed + 1, 17);
            const Crossbar batched = make(shape, c, seed);
            const Crossbar scalar = make(shape, c, seed);
            const Crossbar batched_tot = make(shape, c, seed);
            const Crossbar scalar_tot = make(shape, c, seed);

            const tensor::Matrix out = batched.output_currents_batch(V);
            const tensor::Vector tot = batched_tot.total_current_batch(V);
            for (std::size_t r = 0; r < V.rows(); ++r) {
                const tensor::Vector row = scalar.output_currents(V.row(r));
                ASSERT_EQ(0, std::memcmp(row.data(), out.row_span(r).data(),
                                         shape.rows * sizeof(double)))
                    << "row " << r;
                const double t = scalar_tot.total_current(V.row(r));
                const double b = tot[r];
                ASSERT_EQ(0, std::memcmp(&t, &b, sizeof(double))) << "row " << r;
            }
            ++seed;
        }
    }
}

TEST(NonIdealDeterminism, RepeatedMeasurementsDrawFreshNoise) {
    // Freshness survives the counter-based redesign: the measurement index
    // advances, so re-reading an input gives a different (but replayable)
    // value.
    NonIdealityConfig c;
    c.read_noise_std = 0.05;
    const Crossbar xbar = make({10, 784}, c, 42);
    const tensor::Matrix V = batch_for({10, 784}, 43, 4);
    const tensor::Vector first = xbar.total_current_batch(V);
    const tensor::Vector second = xbar.total_current_batch(V);
    for (std::size_t r = 0; r < V.rows(); ++r) EXPECT_NE(first[r], second[r]);

    // ...and a rebuilt crossbar replays the stream from the start.
    const Crossbar replay = make({10, 784}, c, 42);
    ASSERT_EQ(first, replay.total_current_batch(V));
}

TEST(NonIdealDeterminism, RowwiseDotIsRowStable) {
    // The batched power kernel's contract, checked directly: per-row dots
    // equal scalar dot() bitwise for any batch subdivision and pool size.
    ThreadPool pool(4);
    Rng rng(9);
    const tensor::Matrix V = tensor::Matrix::random_normal(rng, 257, 784);
    const tensor::Vector g = tensor::Vector::random_uniform(rng, 784);
    const tensor::Vector full = tensor::rowwise_dot(V, g);
    ASSERT_EQ(full, tensor::rowwise_dot(V, g, &pool));
    for (std::size_t r = 0; r < V.rows(); ++r) {
        const double d = tensor::dot(V.row(r), g);
        const double b = full[r];
        ASSERT_EQ(0, std::memcmp(&d, &b, sizeof(double))) << "row " << r;
    }
}

}  // namespace
}  // namespace xbarsec::xbar
