// Multi-layer perceptron (future-work extension) tests: backprop
// gradient checks and basic learning.
#include <gtest/gtest.h>

#include "xbarsec/common/error.hpp"
#include "xbarsec/nn/mlp.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {
namespace {

MlpConfig small_config() {
    MlpConfig c;
    c.layer_sizes = {6, 8, 4};
    c.hidden_activation = Activation::Tanh;  // smooth ⇒ clean finite differences
    c.output_activation = Activation::Softmax;
    c.loss = Loss::CategoricalCrossentropy;
    c.with_bias = true;
    return c;
}

TEST(Mlp, ConfigValidation) {
    Rng rng(1);
    MlpConfig bad = small_config();
    bad.layer_sizes = {4};
    EXPECT_THROW(Mlp(rng, bad), ContractViolation);
    MlpConfig bad2 = small_config();
    bad2.output_activation = Activation::Softmax;
    bad2.loss = Loss::Mse;
    EXPECT_THROW(Mlp(rng, bad2), ConfigError);
    MlpConfig bad3 = small_config();
    bad3.hidden_activation = Activation::Softmax;
    EXPECT_THROW(Mlp(rng, bad3), ConfigError);
}

TEST(Mlp, ShapesAndDepth) {
    Rng rng(2);
    const Mlp mlp(rng, small_config());
    EXPECT_EQ(mlp.inputs(), 6u);
    EXPECT_EQ(mlp.outputs(), 4u);
    EXPECT_EQ(mlp.depth(), 2u);
}

TEST(Mlp, PredictIsADistributionWithSoftmaxHead) {
    Rng rng(3);
    const Mlp mlp(rng, small_config());
    const tensor::Vector y = mlp.predict(tensor::Vector{0.1, 0.2, 0.3, 0.4, 0.5, 0.6});
    EXPECT_NEAR(tensor::sum(y), 1.0, 1e-12);
    EXPECT_GE(mlp.classify(tensor::Vector(6, 0.3)), 0);
}

TEST(Mlp, WeightGradientsMatchFiniteDifferences) {
    Rng rng(4);
    Mlp mlp(rng, small_config());
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 6);
    tensor::Vector t(4, 0.0);
    t[2] = 1.0;
    const Mlp::Gradients g = mlp.backprop(u, t);
    const double h = 1e-6;
    for (std::size_t l = 0; l < mlp.depth(); ++l) {
        tensor::Matrix& W = mlp.layers()[l].weights();
        // Spot-check a grid of entries (full check is O(params²) slow).
        for (std::size_t i = 0; i < W.rows(); i += 2) {
            for (std::size_t j = 0; j < W.cols(); j += 3) {
                const double save = W(i, j);
                W(i, j) = save + h;
                const double lp = mlp.loss(u, t);
                W(i, j) = save - h;
                const double lm = mlp.loss(u, t);
                W(i, j) = save;
                EXPECT_NEAR(g.weights[l](i, j), (lp - lm) / (2 * h), 1e-5)
                    << "layer " << l << " (" << i << "," << j << ")";
            }
        }
    }
}

TEST(Mlp, BiasGradientsMatchFiniteDifferences) {
    Rng rng(5);
    Mlp mlp(rng, small_config());
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 6);
    tensor::Vector t(4, 0.0);
    t[0] = 1.0;
    const Mlp::Gradients g = mlp.backprop(u, t);
    const double h = 1e-6;
    for (std::size_t l = 0; l < mlp.depth(); ++l) {
        tensor::Vector& b = mlp.layers()[l].bias();
        for (std::size_t i = 0; i < b.size(); ++i) {
            const double save = b[i];
            b[i] = save + h;
            const double lp = mlp.loss(u, t);
            b[i] = save - h;
            const double lm = mlp.loss(u, t);
            b[i] = save;
            EXPECT_NEAR(g.biases[l][i], (lp - lm) / (2 * h), 1e-5) << "layer " << l << " i=" << i;
        }
    }
}

TEST(Mlp, InputGradientMatchesFiniteDifferences) {
    Rng rng(6);
    const Mlp mlp(rng, small_config());
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 6);
    tensor::Vector t(4, 0.0);
    t[3] = 1.0;
    const tensor::Vector g = mlp.input_gradient(u, t);
    const double h = 1e-6;
    for (std::size_t j = 0; j < u.size(); ++j) {
        tensor::Vector up = u, um = u;
        up[j] += h;
        um[j] -= h;
        EXPECT_NEAR(g[j], (mlp.loss(up, t) - mlp.loss(um, t)) / (2 * h), 1e-5);
    }
}

TEST(Mlp, ManualSgdStepsReduceLossOnTinyProblem) {
    // Two well-separated classes in 2-D; a 2-4-2 MLP should fit quickly
    // with plain per-sample gradient steps.
    Rng rng(7);
    MlpConfig c;
    c.layer_sizes = {2, 4, 2};
    c.hidden_activation = Activation::Tanh;
    c.output_activation = Activation::Softmax;
    c.loss = Loss::CategoricalCrossentropy;
    Mlp mlp(rng, c);

    const std::vector<tensor::Vector> xs{{0.0, 0.0}, {1.0, 1.0}, {0.1, 0.1}, {0.9, 0.9}};
    const std::vector<tensor::Vector> ts{{1, 0}, {0, 1}, {1, 0}, {0, 1}};

    auto total_loss = [&] {
        double acc = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i) acc += mlp.loss(xs[i], ts[i]);
        return acc;
    };
    const double before = total_loss();
    for (int epoch = 0; epoch < 200; ++epoch) {
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const Mlp::Gradients g = mlp.backprop(xs[i], ts[i]);
            for (std::size_t l = 0; l < mlp.depth(); ++l) {
                tensor::Matrix& W = mlp.layers()[l].weights();
                for (std::size_t e = 0; e < W.size(); ++e) W.data()[e] -= 0.2 * g.weights[l].data()[e];
                tensor::Vector& b = mlp.layers()[l].bias();
                for (std::size_t e = 0; e < b.size(); ++e) b[e] -= 0.2 * g.biases[l][e];
            }
        }
    }
    EXPECT_LT(total_loss(), 0.25 * before);
    EXPECT_EQ(mlp.classify(tensor::Vector{0.05, 0.05}), 0);
    EXPECT_EQ(mlp.classify(tensor::Vector{0.95, 0.95}), 1);
}


TEST(Mlp, BatchedForwardMatchesPerSample) {
    Rng rng(9);
    const Mlp mlp(rng, small_config());
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 5, 6);
    const tensor::Matrix Y = mlp.predict_batch(U);
    const std::vector<int> labels = mlp.classify_batch(U);
    for (std::size_t r = 0; r < U.rows(); ++r) {
        const tensor::Vector y = mlp.predict(U.row(r));
        for (std::size_t c = 0; c < y.size(); ++c) EXPECT_NEAR(Y(r, c), y[c], 1e-12);
        EXPECT_EQ(labels[r], mlp.classify(U.row(r)));
    }
}

}  // namespace
}  // namespace xbarsec::nn
