// Tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "xbarsec/common/rng.hpp"

namespace xbarsec {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
    // Golden values pin the algorithm: any change to the constants or the
    // mixing would silently change every experiment in the repo.
    SplitMix64 sm(0);
    const auto a = sm.next();
    const auto b = sm.next();
    SplitMix64 sm2(0);
    EXPECT_EQ(a, sm2.next());
    EXPECT_EQ(b, sm2.next());
    EXPECT_NE(a, b);
}

TEST(Rng, SameSeedSameStream) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
    Rng a(1), b(2);
    int differences = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() != b.next()) ++differences;
    }
    EXPECT_GT(differences, 60);
}

TEST(Rng, ReseedRestartsStream) {
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(first, a.next());
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 7.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 7.5);
    }
}

TEST(Rng, UniformMeanIsCentered) {
    Rng rng(5);
    double acc = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(6);
    constexpr int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
    Rng rng(7);
    constexpr int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, NormalRejectsNegativeStddev) {
    Rng rng(8);
    EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, BelowStaysInRange) {
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, BelowOneIsAlwaysZero) {
    Rng rng(10);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
    Rng rng(11);
    EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BelowIsRoughlyUniform) {
    Rng rng(12);
    constexpr std::uint64_t buckets = 8;
    constexpr int n = 80000;
    int counts[buckets] = {};
    for (int i = 0; i < n; ++i) ++counts[rng.below(buckets)];
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), n / static_cast<double>(buckets), 0.05 * n / buckets);
    }
}

TEST(Rng, IntegerInclusiveBounds) {
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.integer(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(14);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, SignIsBalanced) {
    Rng rng(15);
    int pos = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double s = rng.sign();
        EXPECT_TRUE(s == 1.0 || s == -1.0);
        if (s > 0) ++pos;
    }
    EXPECT_NEAR(pos / static_cast<double>(n), 0.5, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
    Rng rng(16);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto shuffled = v;
    rng.shuffle(shuffled);
    auto sorted = shuffled;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, v);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent(17);
    Rng child = parent.split();
    // The child stream must not replay the parent's continuation.
    Rng parent_copy(17);
    parent_copy.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (child.next() == parent.next()) ++equal;
    }
    EXPECT_LT(equal, 4);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
    Rng rng(18);
    const auto sample = sample_without_replacement(rng, 100, 30);
    ASSERT_EQ(sample.size(), 30u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (const auto i : sample) EXPECT_LT(i, 100u);
}

TEST(SampleWithoutReplacement, FullDrawIsPermutation) {
    Rng rng(19);
    const auto perm = random_permutation(rng, 50);
    std::set<std::size_t> unique(perm.begin(), perm.end());
    EXPECT_EQ(unique.size(), 50u);
}

TEST(SampleWithoutReplacement, RejectsOverdraw) {
    Rng rng(20);
    EXPECT_THROW(sample_without_replacement(rng, 5, 6), ContractViolation);
}

}  // namespace
}  // namespace xbarsec
