// Activation and loss tests, including finite-difference checks on the
// fused pre-activation gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/nn/activation.hpp"
#include "xbarsec/nn/loss.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {
namespace {

TEST(Activation, NamesRoundTrip) {
    for (const Activation a : {Activation::Linear, Activation::Softmax, Activation::Sigmoid,
                               Activation::Relu, Activation::Tanh}) {
        EXPECT_EQ(activation_from_string(to_string(a)), a);
    }
    EXPECT_THROW(activation_from_string("bogus"), ConfigError);
}

TEST(Activation, SoftmaxIsADistribution) {
    const tensor::Vector s{1.0, 2.0, 3.0};
    const tensor::Vector y = softmax(s);
    EXPECT_NEAR(tensor::sum(y), 1.0, 1e-12);
    for (const double v : y) EXPECT_GT(v, 0.0);
    EXPECT_GT(y[2], y[1]);
    EXPECT_GT(y[1], y[0]);
}

TEST(Activation, SoftmaxShiftInvariance) {
    const tensor::Vector s{0.5, -1.0, 2.0};
    tensor::Vector shifted = s;
    for (auto& x : shifted) x += 1000.0;  // also exercises overflow safety
    const tensor::Vector a = softmax(s);
    const tensor::Vector b = softmax(shifted);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Activation, ElementwiseValues) {
    const tensor::Vector s{-1.0, 0.0, 2.0};
    const tensor::Vector relu = apply_activation(Activation::Relu, s);
    EXPECT_DOUBLE_EQ(relu[0], 0.0);
    EXPECT_DOUBLE_EQ(relu[2], 2.0);
    const tensor::Vector sig = apply_activation(Activation::Sigmoid, s);
    EXPECT_NEAR(sig[1], 0.5, 1e-12);
    const tensor::Vector th = apply_activation(Activation::Tanh, s);
    EXPECT_NEAR(th[2], std::tanh(2.0), 1e-12);
    EXPECT_EQ(apply_activation(Activation::Linear, s), s);
}

TEST(Activation, DerivativesMatchFiniteDifferences) {
    const tensor::Vector s{-0.7, 0.3, 1.9};
    const double h = 1e-6;
    for (const Activation a : {Activation::Sigmoid, Activation::Relu, Activation::Tanh,
                               Activation::Linear}) {
        const tensor::Vector d = activation_derivative(a, s);
        for (std::size_t i = 0; i < s.size(); ++i) {
            tensor::Vector sp = s, sm = s;
            sp[i] += h;
            sm[i] -= h;
            const double fd = (apply_activation(a, sp)[i] - apply_activation(a, sm)[i]) / (2 * h);
            EXPECT_NEAR(d[i], fd, 1e-5) << to_string(a) << " at i=" << i;
        }
    }
}

TEST(Activation, SoftmaxDerivativeIsRejected) {
    EXPECT_THROW(activation_derivative(Activation::Softmax, tensor::Vector{1, 2}), ConfigError);
}

TEST(Activation, RowwiseMatchesPerRow) {
    Rng rng(1);
    const tensor::Matrix S = tensor::Matrix::random_normal(rng, 4, 3);
    const tensor::Matrix Y = apply_activation_rows(Activation::Softmax, S);
    for (std::size_t r = 0; r < S.rows(); ++r) {
        const tensor::Vector expect = softmax(S.row(r));
        for (std::size_t c = 0; c < S.cols(); ++c) EXPECT_NEAR(Y(r, c), expect[c], 1e-12);
    }
}

TEST(Loss, NamesRoundTrip) {
    EXPECT_EQ(loss_from_string(to_string(Loss::Mse)), Loss::Mse);
    EXPECT_EQ(loss_from_string("crossentropy"), Loss::CategoricalCrossentropy);
    EXPECT_THROW(loss_from_string("l7"), ConfigError);
}

TEST(Loss, MseKnownValue) {
    // Mean over outputs: ((1-0)² + (0-2)²)/2 = 2.5.
    EXPECT_DOUBLE_EQ(loss_value(Loss::Mse, tensor::Vector{1, 0}, tensor::Vector{0, 2}), 2.5);
}

TEST(Loss, CrossentropyKnownValue) {
    const tensor::Vector y{0.7, 0.2, 0.1};
    const tensor::Vector t{0, 1, 0};
    EXPECT_NEAR(loss_value(Loss::CategoricalCrossentropy, y, t), -std::log(0.2), 1e-12);
}

TEST(Loss, CrossentropyClampsZeroPrediction) {
    const tensor::Vector y{1.0, 0.0};
    const tensor::Vector t{0.0, 1.0};
    const double l = loss_value(Loss::CategoricalCrossentropy, y, t);
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(l, 20.0);  // -log(eps) is large but finite
}

TEST(Loss, PairingSupport) {
    EXPECT_TRUE(pairing_supported(Activation::Linear, Loss::Mse));
    EXPECT_TRUE(pairing_supported(Activation::Softmax, Loss::CategoricalCrossentropy));
    EXPECT_FALSE(pairing_supported(Activation::Softmax, Loss::Mse));
    EXPECT_FALSE(pairing_supported(Activation::Linear, Loss::CategoricalCrossentropy));
    EXPECT_THROW(
        loss_gradient_preactivation(Activation::Softmax, Loss::Mse, tensor::Vector{1},
                                    tensor::Vector{1}),
        ConfigError);
}

// Finite-difference validation of the fused gradient for both of the
// paper's pairings plus sigmoid+MSE.
struct GradCase {
    Activation activation;
    Loss loss;
};

class PreactivationGradient : public ::testing::TestWithParam<GradCase> {};

TEST_P(PreactivationGradient, MatchesFiniteDifferences) {
    const auto [activation, loss] = GetParam();
    Rng rng(17);
    const tensor::Vector s = tensor::Vector::random_normal(rng, 5);
    tensor::Vector t(5, 0.0);
    t[2] = 1.0;  // one-hot target
    const tensor::Vector grad = loss_gradient_preactivation(activation, loss, s, t);
    const double h = 1e-6;
    for (std::size_t i = 0; i < s.size(); ++i) {
        tensor::Vector sp = s, sm = s;
        sp[i] += h;
        sm[i] -= h;
        const double lp = loss_value(loss, apply_activation(activation, sp), t);
        const double lm = loss_value(loss, apply_activation(activation, sm), t);
        EXPECT_NEAR(grad[i], (lp - lm) / (2 * h), 1e-5)
            << to_string(activation) << "+" << to_string(loss) << " at i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperPairings, PreactivationGradient,
    ::testing::Values(GradCase{Activation::Linear, Loss::Mse},
                      GradCase{Activation::Softmax, Loss::CategoricalCrossentropy},
                      GradCase{Activation::Sigmoid, Loss::Mse},
                      GradCase{Activation::Tanh, Loss::Mse}));

}  // namespace
}  // namespace xbarsec::nn
