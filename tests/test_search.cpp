// Argmax search strategy tests: exactness of the full scan, budget
// behaviour of the cheap strategies, and the smooth-vs-rough field
// contrast the paper predicts.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/sidechannel/search.hpp"

namespace xbarsec::sidechannel {
namespace {

// Smooth unimodal field over a 28×28 grid (MNIST-like 1-norm surface).
double smooth_field(std::size_t j) {
    const double y = static_cast<double>(j / 28), x = static_cast<double>(j % 28);
    const double dy = y - 13.0, dx = x - 17.0;
    return std::exp(-(dx * dx + dy * dy) / 60.0);
}

// Rough field (CIFAR-like): deterministic hash noise with a planted max.
double rough_field(std::size_t j) {
    if (j == 431) return 2.0;  // planted global max
    SplitMix64 sm(j * 0x9E3779B97F4A7C15ull + 1);
    return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

const data::ImageShape kGrid{28, 28, 1};

TEST(Search, FullScanFindsTheExactMax) {
    const SearchResult r = find_argmax(smooth_field, kGrid, SearchStrategy::FullScan);
    EXPECT_EQ(r.best_index, 13u * 28u + 17u);
    EXPECT_EQ(r.queries, 784u);
}

TEST(Search, FullScanOnRoughFieldFindsPlantedMax) {
    const SearchResult r = find_argmax(rough_field, kGrid, SearchStrategy::FullScan);
    EXPECT_EQ(r.best_index, 431u);
}

TEST(Search, RandomSubsetRespectsBudget) {
    SearchOptions o;
    o.budget = 50;
    const SearchResult r = find_argmax(smooth_field, kGrid, SearchStrategy::RandomSubset, o);
    EXPECT_LE(r.queries, 50u);
    EXPECT_GT(r.best_value, 0.0);
}

TEST(Search, HillClimbFindsSmoothMaxWithFarFewerQueries) {
    SearchOptions o;
    o.budget = 300;
    o.restarts = 6;
    o.seed = 3;
    const SearchResult r = find_argmax(smooth_field, kGrid, SearchStrategy::HillClimb, o);
    EXPECT_EQ(r.best_index, 13u * 28u + 17u) << "greedy ascent should find the unimodal max";
    EXPECT_LT(r.queries, 784u / 2);
}

TEST(Search, CoarseToFineFindsSmoothMax) {
    SearchOptions o;
    o.stride = 4;
    const SearchResult r = find_argmax(smooth_field, kGrid, SearchStrategy::CoarseToFine, o);
    // Must land within the refinement radius of the true max and use far
    // fewer queries than the full scan.
    const double y = static_cast<double>(r.best_index / 28), x = static_cast<double>(r.best_index % 28);
    EXPECT_NEAR(y, 13.0, 2.0);
    EXPECT_NEAR(x, 17.0, 2.0);
    EXPECT_LT(r.queries, 784u / 2);
}

TEST(Search, RoughFieldDefeatsCheapStrategies) {
    // The paper's prediction: on rapidly varying fields, budgeted search
    // rarely finds the max. With a single planted spike in 784 cells and a
    // ~100-query budget the hit probability is ≈ budget/784.
    SearchOptions o;
    o.budget = 100;
    int hits = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        o.seed = seed;
        const SearchResult r = find_argmax(rough_field, kGrid, SearchStrategy::HillClimb, o);
        if (r.best_index == 431u) ++hits;
    }
    EXPECT_LT(hits, 12) << "rough fields should not be reliably searchable";
}

TEST(Search, CachedProbesAreNotRecounted) {
    // Hill climbing revisits neighbours; the query counter must count
    // distinct indices only (the attacker memoises measurements).
    SearchOptions o;
    o.budget = 2000;
    o.restarts = 8;
    o.seed = 11;
    const SearchResult r = find_argmax(smooth_field, kGrid, SearchStrategy::HillClimb, o);
    EXPECT_LE(r.queries, 784u);
}

TEST(Search, MultiChannelNeighboursStayInPlane) {
    // On a 2×2×2 field, hill climbing from any start must only ever probe
    // the 4 cells of the start channel plane (neighbourhood is per-plane).
    const data::ImageShape shape{2, 2, 2};
    std::vector<int> probed(8, 0);
    auto field = [&probed](std::size_t j) {
        ++probed[j];
        return static_cast<double>(j % 4);  // max at plane-local index 3
    };
    SearchOptions o;
    o.budget = 100;
    o.restarts = 1;
    o.seed = 0;
    find_argmax(field, shape, SearchStrategy::HillClimb, o);
    const bool plane0 = probed[0] + probed[1] + probed[2] + probed[3] > 0;
    const bool plane1 = probed[4] + probed[5] + probed[6] + probed[7] > 0;
    EXPECT_NE(plane0, plane1) << "one restart must stay within one channel plane";
}

TEST(Search, StrategyNames) {
    EXPECT_EQ(to_string(SearchStrategy::FullScan), "full-scan");
    EXPECT_EQ(to_string(SearchStrategy::HillClimb), "hill-climb");
}

TEST(Search, Validation) {
    EXPECT_THROW(find_argmax(FieldFn{}, kGrid, SearchStrategy::FullScan),
                 xbarsec::ContractViolation);
    SearchOptions bad;
    bad.budget = 0;
    EXPECT_THROW(find_argmax(smooth_field, kGrid, SearchStrategy::RandomSubset, bad),
                 xbarsec::ContractViolation);
}

}  // namespace
}  // namespace xbarsec::sidechannel
