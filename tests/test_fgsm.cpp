// Perturbation budget and fast-gradient attack tests (Eq. 2).
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/attack/fgsm.hpp"
#include "xbarsec/attack/perturbation.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {
namespace {

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 10, std::size_t out = 4) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Softmax,
                              nn::Loss::CategoricalCrossentropy);
}

TEST(Perturbation, LinfProjection) {
    const tensor::Vector r{0.5, -2.0, 0.05};
    const tensor::Vector p = project_linf(r, 0.1);
    EXPECT_DOUBLE_EQ(p[0], 0.1);
    EXPECT_DOUBLE_EQ(p[1], -0.1);
    EXPECT_DOUBLE_EQ(p[2], 0.05);
    EXPECT_EQ(project_linf(r, 0.0), r);  // 0 = unconstrained
}

TEST(Perturbation, BoxClamping) {
    PerturbationBudget budget;
    budget.clip_to_box = true;
    const tensor::Vector u{0.9, 0.1};
    const tensor::Vector r{0.5, -0.5};
    const tensor::Vector adv = apply_perturbation(u, r, budget);
    EXPECT_DOUBLE_EQ(adv[0], 1.0);
    EXPECT_DOUBLE_EQ(adv[1], 0.0);
}

TEST(Perturbation, DefaultIsUnclamped) {
    // The paper's Figure-4 sweep runs strengths up to 10 with no clamp.
    const tensor::Vector u{0.5};
    const tensor::Vector r{10.0};
    const tensor::Vector adv = apply_perturbation(u, r, {});
    EXPECT_DOUBLE_EQ(adv[0], 10.5);
}

TEST(Fgsm, PerturbationIsSignedEpsilon) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 10);
    tensor::Vector t(4, 0.0);
    t[0] = 1.0;
    const tensor::Vector r = fgsm_perturbation(net, u, t, 0.25);
    const tensor::Vector g = net.input_gradient(u, t);
    for (std::size_t j = 0; j < r.size(); ++j) {
        if (g[j] != 0.0) {
            EXPECT_DOUBLE_EQ(std::abs(r[j]), 0.25);
            EXPECT_EQ(r[j] > 0.0, g[j] > 0.0);
        } else {
            EXPECT_DOUBLE_EQ(r[j], 0.0);
        }
    }
}

TEST(Fgsm, IncreasesTheLoss) {
    // The definitional property: one FGSM step ascends the loss.
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng, 20, 5);
    int increased = 0;
    for (int trial = 0; trial < 20; ++trial) {
        const tensor::Vector u = tensor::Vector::random_uniform(rng, 20);
        tensor::Vector t(5, 0.0);
        t[static_cast<std::size_t>(rng.below(5))] = 1.0;
        const tensor::Vector r = fgsm_perturbation(net, u, t, 0.05);
        tensor::Vector adv = u;
        adv += r;
        if (net.loss(adv, t) > net.loss(u, t)) ++increased;
    }
    EXPECT_GE(increased, 19);  // tiny steps can stall exactly at optima
}

TEST(Fgsm, ZeroEpsilonIsIdentity) {
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 10);
    tensor::Vector t(4, 0.0);
    t[1] = 1.0;
    const tensor::Vector r = fgsm_perturbation(net, u, t, 0.0);
    EXPECT_DOUBLE_EQ(tensor::norm_inf(r), 0.0);
}

TEST(Fgv, PreservesGradientShape) {
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 10);
    tensor::Vector t(4, 0.0);
    t[2] = 1.0;
    const tensor::Vector r = fgv_perturbation(net, u, t, 0.5);
    const tensor::Vector g = net.input_gradient(u, t);
    EXPECT_NEAR(tensor::norm_inf(r), 0.5, 1e-12);
    // Proportionality: r = 0.5·g/‖g‖∞.
    const double scale = 0.5 / tensor::norm_inf(g);
    for (std::size_t j = 0; j < r.size(); ++j) EXPECT_NEAR(r[j], g[j] * scale, 1e-12);
}

TEST(FgsmBatch, MatchesPerSampleAttack) {
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng, 8, 3);
    const tensor::Matrix X = tensor::Matrix::random_uniform(rng, 6, 8);
    const std::vector<int> labels{0, 1, 2, 0, 1, 2};
    const tensor::Matrix adv = fgsm_attack_batch(net, X, labels, 3, 0.1);
    for (std::size_t i = 0; i < X.rows(); ++i) {
        tensor::Vector t(3, 0.0);
        t[static_cast<std::size_t>(labels[i])] = 1.0;
        const tensor::Vector r = fgsm_perturbation(net, X.row(i), t, 0.1);
        for (std::size_t j = 0; j < 8; ++j) EXPECT_NEAR(adv(i, j), X(i, j) + r[j], 1e-12);
    }
}

TEST(FgsmBatch, RespectsBoxBudget) {
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng, 5, 2);
    const tensor::Matrix X = tensor::Matrix::random_uniform(rng, 4, 5);
    PerturbationBudget budget;
    budget.clip_to_box = true;
    const tensor::Matrix adv = fgsm_attack_batch(net, X, {0, 1, 0, 1}, 2, 0.5, budget);
    for (std::size_t i = 0; i < adv.rows(); ++i)
        for (std::size_t j = 0; j < adv.cols(); ++j) {
            EXPECT_GE(adv(i, j), 0.0);
            EXPECT_LE(adv(i, j), 1.0);
        }
}

TEST(FgsmBatch, ValidatesShapes) {
    Rng rng(7);
    const nn::SingleLayerNet net = make_net(rng, 5, 2);
    const tensor::Matrix X = tensor::Matrix::random_uniform(rng, 2, 5);
    EXPECT_THROW(fgsm_attack_batch(net, X, {0}, 2, 0.1), ContractViolation);
    EXPECT_THROW(fgsm_attack_batch(net, X, {0, 5}, 2, 0.1), ContractViolation);
    EXPECT_THROW(fgsm_perturbation(net, tensor::Vector(5, 0.1), tensor::Vector(2, 0.0), -1.0),
                 ContractViolation);
}

}  // namespace
}  // namespace xbarsec::attack
