// CrossbarOracle and query-collection tests: access control, counters,
// and the normalisation of the power channel.
#include <gtest/gtest.h>

#include "xbarsec/core/oracle.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 8, std::size_t out = 3) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net, OracleOptions options = {}) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec()), options);
}

TEST(Oracle, LabelQueryMatchesSoftwareNet) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    for (int trial = 0; trial < 10; ++trial) {
        const tensor::Vector u = tensor::Vector::random_uniform(rng, 8);
        EXPECT_EQ(oracle.query_label(u), net.classify(u));
    }
}

TEST(Oracle, RawQueryMatchesSoftwareNet) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 8);
    const tensor::Vector y = oracle.query_raw(u);
    const tensor::Vector expected = net.predict(u);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], expected[i], 1e-9);
}

TEST(Oracle, PowerQueryIsInWeightUnits) {
    // For a basis input the normalised power reading equals the column
    // 1-norm of the oracle's weights (ideal devices, g_off = 0).
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const tensor::Vector l1 = tensor::column_abs_sums(net.weights());
    for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_NEAR(oracle.query_power(tensor::Vector::basis(8, j)), l1[j], 1e-9);
    }
}

TEST(Oracle, AccessControlIsEnforced) {
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    OracleOptions closed;
    closed.expose_raw_outputs = false;
    closed.expose_power = false;
    CrossbarOracle oracle = make_oracle(net, closed);
    const tensor::Vector u(8, 0.5);
    EXPECT_NO_THROW(oracle.query_label(u));
    EXPECT_THROW(oracle.query_raw(u), AccessDenied);
    EXPECT_THROW(oracle.query_power(u), AccessDenied);
}

TEST(Oracle, CountersTrackQueries) {
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const tensor::Vector u(8, 0.5);
    oracle.query_label(u);
    oracle.query_raw(u);
    oracle.query_power(u);
    oracle.query_power(u);
    EXPECT_EQ(oracle.counters().inference, 2u);
    EXPECT_EQ(oracle.counters().power, 2u);
    oracle.reset_counters();
    EXPECT_EQ(oracle.counters().inference, 0u);
}

TEST(Oracle, PowerMeasureFnWorksWithProbe) {
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const auto probe = sidechannel::probe_columns(oracle.power_measure_fn(), 8);
    const tensor::Vector l1 = tensor::column_abs_sums(net.weights());
    for (std::size_t j = 0; j < 8; ++j) EXPECT_NEAR(probe.conductance_sums[j], l1[j], 1e-9);
    EXPECT_EQ(oracle.counters().power, 8u);
}

TEST(Oracle, InputSizeValidated) {
    Rng rng(7);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    EXPECT_THROW(oracle.query_label(tensor::Vector(5, 0.1)), ContractViolation);
}

data::Dataset small_pool(Rng& rng, std::size_t n = 20, std::size_t dim = 8) {
    tensor::Matrix inputs = tensor::Matrix::random_uniform(rng, n, dim);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 3);
    return data::Dataset(std::move(inputs), std::move(labels), 3, data::ImageShape{1, dim, 1});
}

TEST(CollectQueries, RawOutputsRecordOracleVectors) {
    Rng rng(8);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const data::Dataset pool = small_pool(rng);
    QueryPlan plan;
    plan.count = 10;
    plan.raw_outputs = true;
    const attack::QueryDataset q = collect_queries(oracle, pool, plan);
    EXPECT_EQ(q.size(), 10u);
    EXPECT_EQ(q.outputs.cols(), 3u);
    EXPECT_EQ(oracle.counters().inference, 10u);
    EXPECT_EQ(oracle.counters().power, 10u);
    // Outputs are the oracle's raw responses for the recorded inputs.
    for (std::size_t r = 0; r < 3; ++r) {
        const tensor::Vector y = net.predict(q.inputs.row(r));
        for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(q.outputs(r, c), y[c], 1e-9);
    }
}

TEST(CollectQueries, LabelOnlyRecordsOneHot) {
    Rng rng(9);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const data::Dataset pool = small_pool(rng);
    QueryPlan plan;
    plan.count = 12;
    plan.raw_outputs = false;
    const attack::QueryDataset q = collect_queries(oracle, pool, plan);
    for (std::size_t r = 0; r < q.size(); ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_TRUE(q.outputs(r, c) == 0.0 || q.outputs(r, c) == 1.0);
            sum += q.outputs(r, c);
        }
        EXPECT_DOUBLE_EQ(sum, 1.0);
        // The hot entry is the oracle's label for that input.
        EXPECT_DOUBLE_EQ(
            q.outputs(r, static_cast<std::size_t>(net.classify(q.inputs.row(r)))), 1.0);
    }
}

TEST(CollectQueries, PowerChannelMatchesSurrogateIdentity) {
    // q.power for an ideal oracle equals Σ_j u_j·‖W[:,j]‖₁, i.e. the same
    // functional form the surrogate's power model uses — Eq. 9's two
    // sides are in the same units.
    Rng rng(10);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const data::Dataset pool = small_pool(rng);
    QueryPlan plan;
    plan.count = 6;
    const attack::QueryDataset q = collect_queries(oracle, pool, plan);
    const tensor::Vector expected = attack::surrogate_power_batch(net.weights(), q.inputs);
    for (std::size_t r = 0; r < q.size(); ++r) EXPECT_NEAR(q.power[r], expected[r], 1e-9);
}

TEST(CollectQueries, OversizedDrawsReuseThePool) {
    Rng rng(11);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const data::Dataset pool = small_pool(rng, 5);
    QueryPlan plan;
    plan.count = 40;  // > pool size ⇒ with-replacement tail
    const attack::QueryDataset q = collect_queries(oracle, pool, plan);
    EXPECT_EQ(q.size(), 40u);
}

TEST(CollectQueries, DeterministicPerSeed) {
    Rng rng(12);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle o1 = make_oracle(net);
    CrossbarOracle o2 = make_oracle(net);
    const data::Dataset pool = small_pool(rng);
    QueryPlan plan;
    plan.count = 7;
    plan.seed = 5;
    const attack::QueryDataset a = collect_queries(o1, pool, plan);
    const attack::QueryDataset b = collect_queries(o2, pool, plan);
    EXPECT_EQ(a.inputs, b.inputs);
    plan.seed = 6;
    const attack::QueryDataset c = collect_queries(o2, pool, plan);
    EXPECT_NE(a.inputs, c.inputs);
}

}  // namespace
}  // namespace xbarsec::core
