// GEMM correctness against a reference triple loop, across shapes,
// transpose combinations, and alpha/beta cases — plus bit-for-bit
// equivalence of the ThreadPool-sharded kernel with the serial one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <tuple>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/tensor/gemm.hpp"

namespace xbarsec::tensor {
namespace {

Matrix reference_matmul(const Matrix& A, const Matrix& B) {
    Matrix C(A.rows(), B.cols(), 0.0);
    for (std::size_t i = 0; i < A.rows(); ++i)
        for (std::size_t k = 0; k < A.cols(); ++k)
            for (std::size_t j = 0; j < B.cols(); ++j) C(i, j) += A(i, k) * B(k, j);
    return C;
}

void expect_near(const Matrix& a, const Matrix& b, double tol = 1e-10) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_NEAR(a(i, j), b(i, j), tol);
}

TEST(Gemm, SmallKnownProduct) {
    const Matrix A{{1, 2}, {3, 4}};
    const Matrix B{{5, 6}, {7, 8}};
    const Matrix C = matmul(A, B);
    EXPECT_DOUBLE_EQ(C(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(C(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(C(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(C(1, 1), 50.0);
}

TEST(Gemm, AlphaBetaSemantics) {
    const Matrix A{{1, 0}, {0, 1}};
    const Matrix B{{2, 0}, {0, 2}};
    Matrix C(2, 2, 1.0);
    gemm(3.0, A, Op::None, B, Op::None, 0.5, C);
    // C = 3·(A·B) + 0.5·ones = 6·I + 0.5.
    EXPECT_DOUBLE_EQ(C(0, 0), 6.5);
    EXPECT_DOUBLE_EQ(C(0, 1), 0.5);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
    const Matrix A{{1}}, B{{1}};
    Matrix C(1, 1, std::nan(""));
    gemm(1.0, A, Op::None, B, Op::None, 0.0, C);
    EXPECT_DOUBLE_EQ(C(0, 0), 1.0);
}

TEST(Gemm, ShapeMismatchThrows) {
    const Matrix A(2, 3), B(2, 2);
    Matrix C(2, 2);
    EXPECT_THROW(gemm(1.0, A, Op::None, B, Op::None, 0.0, C), ContractViolation);
    Matrix D(3, 3);
    const Matrix B2(3, 2);
    EXPECT_THROW(gemm(1.0, A, Op::None, B2, Op::None, 0.0, D), ContractViolation);
}

using GemmCase = std::tuple<std::size_t, std::size_t, std::size_t, Op, Op>;

class GemmProperty : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmProperty, MatchesReferenceForAllTransposeCombos) {
    const auto [m, k, n, opA, opB] = GetParam();
    Rng rng(m * 7919 + k * 131 + n + static_cast<std::size_t>(opA) * 17 +
            static_cast<std::size_t>(opB));
    // Build operands so op(A) is m×k, op(B) is k×n.
    const Matrix A = opA == Op::None ? Matrix::random_normal(rng, m, k)
                                     : Matrix::random_normal(rng, k, m);
    const Matrix B = opB == Op::None ? Matrix::random_normal(rng, k, n)
                                     : Matrix::random_normal(rng, n, k);
    const Matrix got = matmul(A, opA, B, opB);
    const Matrix Aeff = opA == Op::None ? A : A.transposed();
    const Matrix Beff = opB == Op::None ? B : B.transposed();
    expect_near(got, reference_matmul(Aeff, Beff));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndOps, GemmProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 5, 32, 65),
                       ::testing::Values<std::size_t>(1, 7, 64, 300),
                       ::testing::Values<std::size_t>(1, 10, 33),
                       ::testing::Values(Op::None, Op::Transpose),
                       ::testing::Values(Op::None, Op::Transpose)));

TEST(Gemm, AccumulatesWithBetaOne) {
    Rng rng(3);
    const Matrix A = Matrix::random_normal(rng, 4, 6);
    const Matrix B = Matrix::random_normal(rng, 6, 5);
    Matrix C(4, 5, 0.0);
    gemm(1.0, A, Op::None, B, Op::None, 0.0, C);
    gemm(1.0, A, Op::None, B, Op::None, 1.0, C);  // C = 2·A·B
    Matrix expected = reference_matmul(A, B);
    expected *= 2.0;
    expect_near(C, expected);
}

// ---- alpha/beta property sweep across every transpose combination ----------

class GemmAlphaBetaProperty : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmAlphaBetaProperty, GeneralUpdateMatchesReference) {
    const auto [m, k, n, opA, opB] = GetParam();
    Rng rng(m * 131 + k * 17 + n * 3 + static_cast<std::size_t>(opA) * 7 +
            static_cast<std::size_t>(opB));
    const Matrix A = opA == Op::None ? Matrix::random_normal(rng, m, k)
                                     : Matrix::random_normal(rng, k, m);
    const Matrix B = opB == Op::None ? Matrix::random_normal(rng, k, n)
                                     : Matrix::random_normal(rng, n, k);
    const Matrix C0 = Matrix::random_normal(rng, m, n);

    for (const auto& [alpha, beta] :
         {std::pair{1.0, 0.0}, {-1.0, 1.0}, {0.75, 0.5}, {2.5, -0.25}, {0.0, 0.5}}) {
        Matrix C = C0;
        gemm(alpha, A, opA, B, opB, beta, C);

        const Matrix Aeff = opA == Op::None ? A : A.transposed();
        const Matrix Beff = opB == Op::None ? B : B.transposed();
        Matrix expected = reference_matmul(Aeff, Beff);
        expected *= alpha;
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < n; ++j) expected(i, j) += beta * C0(i, j);
        expect_near(C, expected, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndOps, GemmAlphaBetaProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 6, 10, 70),
                       ::testing::Values<std::size_t>(1, 13, 256),
                       ::testing::Values<std::size_t>(1, 10, 97),
                       ::testing::Values(Op::None, Op::Transpose),
                       ::testing::Values(Op::None, Op::Transpose)));

// ---- parallel kernel: bit-for-bit with serial -------------------------------

TEST(Gemm, ParallelMatchesSerialBitForBit) {
    ThreadPool pool(3);
    Rng rng(17);
    // Shapes chosen to exercise every dispatch path: the sharded row-panel
    // path (large m), the transpose-swapped wide-and-flat path, tail
    // panels (m % panel != 0), and every transpose combination.
    const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
        {256, 300, 100},  // sharded, multiple k-blocks
        {197, 64, 129},   // sharded with ragged row/strip tails
        {10, 256, 784},   // wide-and-flat: transpose-swapped, shard inside
        {512, 784, 10},   // the batched-inference shape
    };
    for (const auto& [m, k, n] : shapes) {
        for (const Op opA : {Op::None, Op::Transpose}) {
            for (const Op opB : {Op::None, Op::Transpose}) {
                const Matrix A = opA == Op::None ? Matrix::random_normal(rng, m, k)
                                                 : Matrix::random_normal(rng, k, m);
                const Matrix B = opB == Op::None ? Matrix::random_normal(rng, k, n)
                                                 : Matrix::random_normal(rng, n, k);
                Matrix serial(m, n, 0.0), pooled(m, n, 0.0);
                gemm(1.25, A, opA, B, opB, 0.0, serial);
                gemm(1.25, A, opA, B, opB, 0.0, pooled, &pool);
                ASSERT_EQ(serial, pooled) << "m=" << m << " k=" << k << " n=" << n;
            }
        }
    }
}

TEST(Gemm, RowStableVariantIsBitExactAcrossRowPartitions) {
    // gemm_rowstable's contract: a row of C depends only on (k, n) and
    // that row of A — so computing any sub-range of rows reproduces the
    // full product's bits. Shapes include n >= 64 outputs, where plain
    // gemm() would transpose-swap small batches and break this.
    ThreadPool pool(4);
    Rng rng(31);
    const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
        {256, 784, 10},   // the batched-inference shape
        {256, 8, 64},     // many outputs: swap territory for small m
        {100, 3072, 10},  // CIFAR-width inputs
        {97, 33, 100},    // ragged everything
    };
    for (const auto& [m, k, n] : shapes) {
        const Matrix A = Matrix::random_normal(rng, m, k);
        const Matrix B = Matrix::random_normal(rng, k, n);
        Matrix full(m, n, 0.0);
        gemm_rowstable(1.0, A, Op::None, B, Op::None, 0.0, full);
        Matrix pooled(m, n, 0.0);
        gemm_rowstable(1.0, A, Op::None, B, Op::None, 0.0, pooled, &pool);
        ASSERT_EQ(full, pooled) << "m=" << m << " k=" << k << " n=" << n;

        for (const std::size_t step : {std::size_t{1}, std::size_t{3}, std::size_t{37}}) {
            for (std::size_t lo = 0; lo < m; lo += step) {
                const std::size_t hi = std::min(lo + step, m);
                Matrix sub(hi - lo, k);
                for (std::size_t r = lo; r < hi; ++r) {
                    const auto src = A.row_span(r);
                    auto dst = sub.row_span(r - lo);
                    std::copy(src.begin(), src.end(), dst.begin());
                }
                Matrix part(hi - lo, n, 0.0);
                gemm_rowstable(1.0, sub, Op::None, B, Op::None, 0.0, part);
                for (std::size_t r = lo; r < hi; ++r) {
                    for (std::size_t j = 0; j < n; ++j) {
                        ASSERT_EQ(part(r - lo, j), full(r, j))
                            << "m=" << m << " n=" << n << " step=" << step << " row " << r;
                    }
                }
            }
        }
    }
}

TEST(Gemm, RowStableMatchesGemmNumerically) {
    // Same arithmetic, different dispatch: values agree to rounding.
    Rng rng(37);
    const Matrix A = Matrix::random_normal(rng, 8, 100);
    const Matrix B = Matrix::random_normal(rng, 100, 96);
    Matrix swapped(8, 96, 0.0), stable(8, 96, 0.0);
    gemm(1.0, A, Op::None, B, Op::None, 0.0, swapped);
    gemm_rowstable(1.0, A, Op::None, B, Op::None, 0.0, stable);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 96; ++j) {
            EXPECT_NEAR(swapped(i, j), stable(i, j), 1e-10);
        }
    }
}

TEST(Gemm, ForcedVariantEnvIsHonored) {
    // CMake registers this whole binary once per available kernel variant
    // with XBARSEC_FORCE_KERNEL set (ctest -L kernel). When the variable
    // is present, the dispatcher must actually be running that arm — so a
    // mislabelled CI job can't silently test the wrong kernel.
    const char* forced = std::getenv("XBARSEC_FORCE_KERNEL");
    if (forced == nullptr || *forced == '\0') {
        GTEST_SKIP() << "XBARSEC_FORCE_KERNEL not set";
    }
    EXPECT_EQ(forced_kernel_variant(), parse_kernel_variant(forced));
    EXPECT_TRUE(kernel_variant_available(forced_kernel_variant()));
}

TEST(Gemm, ParallelRepeatsAreDeterministic) {
    ThreadPool pool(4);
    Rng rng(23);
    const Matrix A = Matrix::random_normal(rng, 300, 200);
    const Matrix B = Matrix::random_normal(rng, 200, 40);
    Matrix first(300, 40, 0.0);
    gemm(1.0, A, Op::None, B, Op::None, 0.0, first, &pool);
    for (int rep = 0; rep < 5; ++rep) {
        Matrix again(300, 40, 0.0);
        gemm(1.0, A, Op::None, B, Op::None, 0.0, again, &pool);
        ASSERT_EQ(first, again);
    }
}

}  // namespace
}  // namespace xbarsec::tensor
