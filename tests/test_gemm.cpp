// GEMM correctness against a reference triple loop, across shapes and
// transpose combinations.
#include <gtest/gtest.h>

#include <cmath>

#include <tuple>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/tensor/gemm.hpp"

namespace xbarsec::tensor {
namespace {

Matrix reference_matmul(const Matrix& A, const Matrix& B) {
    Matrix C(A.rows(), B.cols(), 0.0);
    for (std::size_t i = 0; i < A.rows(); ++i)
        for (std::size_t k = 0; k < A.cols(); ++k)
            for (std::size_t j = 0; j < B.cols(); ++j) C(i, j) += A(i, k) * B(k, j);
    return C;
}

void expect_near(const Matrix& a, const Matrix& b, double tol = 1e-10) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_NEAR(a(i, j), b(i, j), tol);
}

TEST(Gemm, SmallKnownProduct) {
    const Matrix A{{1, 2}, {3, 4}};
    const Matrix B{{5, 6}, {7, 8}};
    const Matrix C = matmul(A, B);
    EXPECT_DOUBLE_EQ(C(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(C(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(C(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(C(1, 1), 50.0);
}

TEST(Gemm, AlphaBetaSemantics) {
    const Matrix A{{1, 0}, {0, 1}};
    const Matrix B{{2, 0}, {0, 2}};
    Matrix C(2, 2, 1.0);
    gemm(3.0, A, Op::None, B, Op::None, 0.5, C);
    // C = 3·(A·B) + 0.5·ones = 6·I + 0.5.
    EXPECT_DOUBLE_EQ(C(0, 0), 6.5);
    EXPECT_DOUBLE_EQ(C(0, 1), 0.5);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
    const Matrix A{{1}}, B{{1}};
    Matrix C(1, 1, std::nan(""));
    gemm(1.0, A, Op::None, B, Op::None, 0.0, C);
    EXPECT_DOUBLE_EQ(C(0, 0), 1.0);
}

TEST(Gemm, ShapeMismatchThrows) {
    const Matrix A(2, 3), B(2, 2);
    Matrix C(2, 2);
    EXPECT_THROW(gemm(1.0, A, Op::None, B, Op::None, 0.0, C), ContractViolation);
    Matrix D(3, 3);
    const Matrix B2(3, 2);
    EXPECT_THROW(gemm(1.0, A, Op::None, B2, Op::None, 0.0, D), ContractViolation);
}

using GemmCase = std::tuple<std::size_t, std::size_t, std::size_t, Op, Op>;

class GemmProperty : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmProperty, MatchesReferenceForAllTransposeCombos) {
    const auto [m, k, n, opA, opB] = GetParam();
    Rng rng(m * 7919 + k * 131 + n + static_cast<std::size_t>(opA) * 17 +
            static_cast<std::size_t>(opB));
    // Build operands so op(A) is m×k, op(B) is k×n.
    const Matrix A = opA == Op::None ? Matrix::random_normal(rng, m, k)
                                     : Matrix::random_normal(rng, k, m);
    const Matrix B = opB == Op::None ? Matrix::random_normal(rng, k, n)
                                     : Matrix::random_normal(rng, n, k);
    const Matrix got = matmul(A, opA, B, opB);
    const Matrix Aeff = opA == Op::None ? A : A.transposed();
    const Matrix Beff = opB == Op::None ? B : B.transposed();
    expect_near(got, reference_matmul(Aeff, Beff));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndOps, GemmProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 5, 32, 65),
                       ::testing::Values<std::size_t>(1, 7, 64, 300),
                       ::testing::Values<std::size_t>(1, 10, 33),
                       ::testing::Values(Op::None, Op::Transpose),
                       ::testing::Values(Op::None, Op::Transpose)));

TEST(Gemm, AccumulatesWithBetaOne) {
    Rng rng(3);
    const Matrix A = Matrix::random_normal(rng, 4, 6);
    const Matrix B = Matrix::random_normal(rng, 6, 5);
    Matrix C(4, 5, 0.0);
    gemm(1.0, A, Op::None, B, Op::None, 0.0, C);
    gemm(1.0, A, Op::None, B, Op::None, 1.0, C);  // C = 2·A·B
    Matrix expected = reference_matmul(A, B);
    expected *= 2.0;
    expect_near(C, expected);
}

}  // namespace
}  // namespace xbarsec::tensor
