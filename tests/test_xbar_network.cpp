// Crossbar-deployed network tests: analog inference equals the software
// network under ideal devices, degrades gracefully otherwise.
#include <gtest/gtest.h>

#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/xbar_network.hpp"

namespace xbarsec::xbar {
namespace {

DeviceSpec ideal_spec() {
    DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet random_net(Rng& rng, std::size_t in, std::size_t out) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Softmax,
                              nn::Loss::CategoricalCrossentropy);
}

TEST(CrossbarNetwork, IdealPredictMatchesSoftware) {
    Rng rng(1);
    const nn::SingleLayerNet net = random_net(rng, 12, 4);
    const CrossbarNetwork hw(net, ideal_spec());
    for (int trial = 0; trial < 10; ++trial) {
        const tensor::Vector u = tensor::Vector::random_uniform(rng, 12);
        const tensor::Vector sw = net.predict(u);
        const tensor::Vector analog = hw.predict(u);
        for (std::size_t i = 0; i < sw.size(); ++i) EXPECT_NEAR(analog[i], sw[i], 1e-9);
        EXPECT_EQ(hw.classify(u), net.classify(u));
    }
}

TEST(CrossbarNetwork, EffectiveNetworkRoundTripsWeights) {
    Rng rng(2);
    const nn::SingleLayerNet net = random_net(rng, 8, 3);
    const CrossbarNetwork hw(net, ideal_spec());
    const nn::SingleLayerNet eff = hw.effective_network();
    EXPECT_EQ(eff.activation(), net.activation());
    EXPECT_EQ(eff.loss_kind(), net.loss_kind());
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            EXPECT_NEAR(eff.weights()(i, j), net.weights()(i, j), 1e-12);
}

TEST(CrossbarNetwork, RejectsBiasedNetworks) {
    Rng rng(3);
    nn::DenseLayer biased = nn::DenseLayer::glorot(rng, 3, 8, /*with_bias=*/true);
    const nn::SingleLayerNet net(std::move(biased), nn::Activation::Linear, nn::Loss::Mse);
    EXPECT_THROW(CrossbarNetwork(net, ideal_spec()), ContractViolation);
}

TEST(CrossbarNetwork, PowerChannelExposed) {
    Rng rng(4);
    const nn::SingleLayerNet net = random_net(rng, 6, 2);
    const CrossbarNetwork hw(net, ideal_spec());
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 6);
    EXPECT_GT(hw.total_current(u), 0.0);
    EXPECT_GT(hw.static_power(u), 0.0);
}

TEST(CrossbarNetwork, IdealAccuracyMatchesSoftwareAccuracy) {
    data::SyntheticMnistConfig dc;
    dc.train_count = 400;
    dc.test_count = 150;
    const data::DataSplit split = data::make_synthetic_mnist(dc);
    Rng rng(5);
    nn::SingleLayerNet net(rng, 784, 10, nn::Activation::Softmax,
                           nn::Loss::CategoricalCrossentropy);
    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.learning_rate = 0.1;
    tc.momentum = 0.9;
    nn::train(net, split.train, tc);

    const CrossbarNetwork hw(net, ideal_spec());
    EXPECT_NEAR(hw.accuracy(split.test), nn::accuracy(net, split.test), 1e-12);
}

TEST(CrossbarNetwork, QuantisationDegradesButDoesNotDestroyAccuracy) {
    data::SyntheticMnistConfig dc;
    dc.train_count = 400;
    dc.test_count = 150;
    const data::DataSplit split = data::make_synthetic_mnist(dc);
    Rng rng(6);
    nn::SingleLayerNet net(rng, 784, 10, nn::Activation::Softmax,
                           nn::Loss::CategoricalCrossentropy);
    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.learning_rate = 0.1;
    tc.momentum = 0.9;
    nn::train(net, split.train, tc);
    const double sw_acc = nn::accuracy(net, split.test);

    DeviceSpec coarse = ideal_spec();
    coarse.conductance_levels = 16;  // 4-bit devices
    const CrossbarNetwork hw(net, coarse);
    const double hw_acc = hw.accuracy(split.test);
    EXPECT_GT(hw_acc, sw_acc - 0.15) << "4-bit quantisation should not crater accuracy";
}

TEST(CrossbarNetwork, WriteNoisePerturbsDeployedAccuracyDeterministically) {
    Rng rng(7);
    const nn::SingleLayerNet net = random_net(rng, 10, 3);
    DeviceSpec noisy = ideal_spec();
    noisy.write_noise_std = 0.2;
    MappingOptions mo;
    mo.noise_seed = 42;
    const CrossbarNetwork a(net, noisy, {}, mo);
    const CrossbarNetwork b(net, noisy, {}, mo);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 10);
    const tensor::Vector ya = a.predict(u);
    const tensor::Vector yb = b.predict(u);
    for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya[i], yb[i]);
}

}  // namespace
}  // namespace xbarsec::xbar
