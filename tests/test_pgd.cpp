// PGD attack tests (extension beyond the paper's one-step FGSM).
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/attack/fgsm.hpp"
#include "xbarsec/attack/pgd.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {
namespace {

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 12, std::size_t out = 4) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Softmax,
                              nn::Loss::CategoricalCrossentropy);
}

TEST(Pgd, StaysInsideTheEpsilonBall) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 12);
    tensor::Vector t(4, 0.0);
    t[1] = 1.0;
    PgdConfig config;
    config.epsilon = 0.08;
    config.step_size = 0.03;
    config.steps = 20;
    config.random_start = true;
    const tensor::Vector adv = pgd_attack(net, u, t, config);
    for (std::size_t j = 0; j < u.size(); ++j) {
        EXPECT_LE(std::abs(adv[j] - u[j]), config.epsilon + 1e-12);
    }
}

TEST(Pgd, RespectsBoxConstraint) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 12);
    tensor::Vector t(4, 0.0);
    t[0] = 1.0;
    PgdConfig config;
    config.epsilon = 0.5;
    config.step_size = 0.2;
    config.steps = 10;
    config.clip_to_box = true;
    const tensor::Vector adv = pgd_attack(net, u, t, config);
    for (const double x : adv) {
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
    }
}

TEST(Pgd, IncreasesLossAtLeastAsMuchAsFgsmOnAverage) {
    // Multi-step projected ascent within the same ball dominates the
    // single step in aggregate (the reason PGD is the standard bound).
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng, 20, 5);
    double pgd_loss = 0.0, fgsm_loss = 0.0;
    for (int trial = 0; trial < 25; ++trial) {
        const tensor::Vector u = tensor::Vector::random_uniform(rng, 20);
        tensor::Vector t(5, 0.0);
        t[static_cast<std::size_t>(rng.below(5))] = 1.0;
        PgdConfig config;
        config.epsilon = 0.1;
        config.step_size = 0.025;
        config.steps = 12;
        pgd_loss += net.loss(pgd_attack(net, u, t, config), t);
        tensor::Vector fgsm = u;
        fgsm += fgsm_perturbation(net, u, t, 0.1);
        fgsm_loss += net.loss(fgsm, t);
    }
    EXPECT_GE(pgd_loss, fgsm_loss - 1e-9);
}

TEST(Pgd, SingleStepAtFullEpsilonEqualsFgsmWithoutRandomStart) {
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 12);
    tensor::Vector t(4, 0.0);
    t[2] = 1.0;
    PgdConfig config;
    config.epsilon = 0.07;
    config.step_size = 0.07;  // one full-radius step
    config.steps = 1;
    config.random_start = false;
    const tensor::Vector pgd = pgd_attack(net, u, t, config);
    tensor::Vector fgsm = u;
    fgsm += fgsm_perturbation(net, u, t, 0.07);
    for (std::size_t j = 0; j < u.size(); ++j) EXPECT_NEAR(pgd[j], fgsm[j], 1e-12);
}

TEST(Pgd, RandomStartIsSeedDeterministic) {
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 12);
    tensor::Vector t(4, 0.0);
    t[3] = 1.0;
    PgdConfig config;
    config.random_start = true;
    config.seed = 99;
    EXPECT_EQ(pgd_attack(net, u, t, config), pgd_attack(net, u, t, config));
    config.seed = 100;
    const tensor::Vector other = pgd_attack(net, u, t, config);
    EXPECT_NE(pgd_attack(net, u, t, {}), other);
}

TEST(Pgd, BatchMatchesPerSample) {
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng, 8, 3);
    const tensor::Matrix X = tensor::Matrix::random_uniform(rng, 5, 8);
    const std::vector<int> labels{0, 1, 2, 1, 0};
    PgdConfig config;
    config.epsilon = 0.1;
    config.step_size = 0.05;
    config.steps = 4;
    const tensor::Matrix adv = pgd_attack_batch(net, X, labels, 3, config);
    for (std::size_t i = 0; i < X.rows(); ++i) {
        tensor::Vector t(3, 0.0);
        t[static_cast<std::size_t>(labels[i])] = 1.0;
        PgdConfig per_sample = config;
        per_sample.seed = config.seed + i;
        const tensor::Vector expected = pgd_attack(net, X.row(i), t, per_sample);
        for (std::size_t j = 0; j < 8; ++j) EXPECT_NEAR(adv(i, j), expected[j], 1e-12);
    }
}

TEST(Pgd, ValidatesConfig) {
    Rng rng(7);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u(12, 0.5);
    const tensor::Vector t(4, 0.25);
    PgdConfig bad;
    bad.steps = 0;
    EXPECT_THROW(pgd_attack(net, u, t, bad), ContractViolation);
    bad = {};
    bad.step_size = 0.0;
    EXPECT_THROW(pgd_attack(net, u, t, bad), ContractViolation);
    bad = {};
    bad.epsilon = -0.1;
    EXPECT_THROW(pgd_attack(net, u, t, bad), ContractViolation);
}

}  // namespace
}  // namespace xbarsec::attack
