// IDX and CIFAR-10 binary IO tests: round trips and malformed input.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "xbarsec/common/error.hpp"
#include "xbarsec/data/cifar_io.hpp"
#include "xbarsec/data/idx_io.hpp"
#include "xbarsec/data/loaders.hpp"
#include "xbarsec/data/synthetic_cifar10.hpp"

namespace xbarsec::data {
namespace {

namespace fs = std::filesystem;

class DataIoTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "xbarsec_io_test";
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const char* name) const { return (dir_ / name).string(); }

    fs::path dir_;
};

TEST_F(DataIoTest, IdxImageRoundTrip) {
    Rng rng(1);
    const tensor::Matrix pixels = tensor::Matrix::random_uniform(rng, 5, 12, 0.0, 1.0);
    idx::write_images(path("imgs"), pixels, 3, 4);
    const idx::Images back = idx::read_images(path("imgs"));
    EXPECT_EQ(back.rows, 3u);
    EXPECT_EQ(back.cols, 4u);
    ASSERT_EQ(back.pixels.rows(), 5u);
    ASSERT_EQ(back.pixels.cols(), 12u);
    // Quantisation to bytes: within 1/255 per pixel.
    for (std::size_t i = 0; i < pixels.rows(); ++i)
        for (std::size_t j = 0; j < pixels.cols(); ++j)
            EXPECT_NEAR(back.pixels(i, j), pixels(i, j), 0.5 / 255.0 + 1e-9);
}

TEST_F(DataIoTest, IdxLabelRoundTrip) {
    const std::vector<int> labels{0, 3, 9, 1, 7};
    idx::write_labels(path("labels"), labels);
    EXPECT_EQ(idx::read_labels(path("labels")), labels);
}

TEST_F(DataIoTest, IdxMissingFileThrowsIoError) {
    EXPECT_THROW(idx::read_images(path("does-not-exist")), IoError);
    EXPECT_THROW(idx::read_labels(path("does-not-exist")), IoError);
}

TEST_F(DataIoTest, IdxBadMagicThrowsParseError) {
    std::ofstream out(path("bad"), std::ios::binary);
    out.write("\xFF\xFF\x08\x03", 4);
    out.close();
    EXPECT_THROW(idx::read_images(path("bad")), ParseError);
}

TEST_F(DataIoTest, IdxWrongRankThrowsParseError) {
    const std::vector<int> labels{1, 2};
    idx::write_labels(path("labels"), labels);
    // A label file (rank 1) read as images (rank 3) must fail cleanly.
    EXPECT_THROW(idx::read_images(path("labels")), ParseError);
}

TEST_F(DataIoTest, IdxTruncatedDataThrowsParseError) {
    // Valid header claiming 2 images of 2x2, but only 3 data bytes.
    std::ofstream out(path("trunc"), std::ios::binary);
    const unsigned char header[] = {0, 0, 0x08, 3, 0, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0, 2};
    out.write(reinterpret_cast<const char*>(header), sizeof header);
    out.write("abc", 3);
    out.close();
    EXPECT_THROW(idx::read_images(path("trunc")), ParseError);
}

TEST_F(DataIoTest, CifarRoundTrip) {
    SyntheticCifar10Config config;
    config.train_count = 12;
    config.test_count = 10;
    const DataSplit split = make_synthetic_cifar10(config);
    cifar::write_batch(path("batch.bin"), split.train);
    const Dataset back = cifar::read_batch(path("batch.bin"));
    ASSERT_EQ(back.size(), split.train.size());
    EXPECT_EQ(back.labels(), split.train.labels());
    for (std::size_t i = 0; i < back.size(); ++i) {
        const auto a = back.inputs().row_span(i);
        const auto b = split.train.inputs().row_span(i);
        for (std::size_t p = 0; p < a.size(); ++p) EXPECT_NEAR(a[p], b[p], 0.5 / 255.0 + 1e-9);
    }
}

TEST_F(DataIoTest, CifarPartialRecordThrows) {
    std::ofstream out(path("bad.bin"), std::ios::binary);
    std::vector<char> bytes(cifar::kRecordBytes + 7, 0);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    EXPECT_THROW(cifar::read_batch(path("bad.bin")), ParseError);
}

TEST_F(DataIoTest, CifarBadLabelThrows) {
    std::ofstream out(path("badlabel.bin"), std::ios::binary);
    std::vector<char> record(cifar::kRecordBytes, 0);
    record[0] = 11;  // labels are 0..9
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
    out.close();
    EXPECT_THROW(cifar::read_batch(path("badlabel.bin")), ParseError);
}

TEST_F(DataIoTest, CifarReadBatchesConcatenates) {
    SyntheticCifar10Config config;
    config.train_count = 10;
    config.test_count = 10;
    const DataSplit split = make_synthetic_cifar10(config);
    cifar::write_batch(path("b1.bin"), split.train);
    cifar::write_batch(path("b2.bin"), split.test);
    const Dataset all = cifar::read_batches({path("b1.bin"), path("b2.bin")}, "joined");
    EXPECT_EQ(all.size(), 20u);
    EXPECT_EQ(all.name(), "joined");
    EXPECT_EQ(all.label(0), split.train.label(0));
    EXPECT_EQ(all.label(10), split.test.label(0));
}

TEST_F(DataIoTest, LoaderFallsBackToSyntheticWhenFilesAbsent) {
    LoadOptions options;
    options.data_dir = dir_.string();  // exists but has no dataset files
    options.train_count = 30;
    options.test_count = 10;
    EXPECT_FALSE(mnist_files_present(options.data_dir));
    EXPECT_FALSE(cifar10_files_present(options.data_dir));
    const DataSplit mnist = load_mnist_like(options);
    EXPECT_EQ(mnist.train.size(), 30u);
    EXPECT_EQ(mnist.train.input_dim(), 784u);
    const DataSplit cifar = load_cifar10_like(options);
    EXPECT_EQ(cifar.test.size(), 10u);
    EXPECT_EQ(cifar.train.input_dim(), 3072u);
}

TEST_F(DataIoTest, LoaderUsesRealMnistFilesWhenPresent) {
    // Write tiny IDX files in the MNIST naming scheme and confirm the
    // loader picks them up (and truncates to the requested counts).
    Rng rng(2);
    const tensor::Matrix imgs = tensor::Matrix::random_uniform(rng, 20, 784, 0.0, 1.0);
    std::vector<int> labels(20);
    for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 10);
    idx::write_images((dir_ / "train-images-idx3-ubyte").string(), imgs, 28, 28);
    idx::write_labels((dir_ / "train-labels-idx1-ubyte").string(), labels);
    idx::write_images((dir_ / "t10k-images-idx3-ubyte").string(), imgs, 28, 28);
    idx::write_labels((dir_ / "t10k-labels-idx1-ubyte").string(), labels);

    LoadOptions options;
    options.data_dir = dir_.string();
    options.train_count = 10;
    options.test_count = 5;
    EXPECT_TRUE(mnist_files_present(options.data_dir));
    const DataSplit split = load_mnist_like(options);
    EXPECT_EQ(split.train.size(), 10u);
    EXPECT_EQ(split.test.size(), 5u);
    EXPECT_EQ(split.train.name(), "mnist-train");
}

}  // namespace
}  // namespace xbarsec::data
