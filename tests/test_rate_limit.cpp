// TokenBucket + AdaptivePolicy semantics and their wiring into the
// OracleService admission path: deterministic refill under an injectable
// clock, all-or-nothing admission that charges nothing on refusal,
// token refund when a downstream stage refuses, suspicion-scaled noise
// and raw-output cutoffs, and the coalesced == serial bit-identity
// contract extended to rate-limited sessions (re-run per kernel variant
// via the CMake-registered XBARSEC_FORCE_KERNEL environments).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <vector>

#include "xbarsec/core/service.hpp"
#include "xbarsec/sidechannel/detector.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

// Manually advanced time source. TokenBucket::ClockFn is a plain
// function pointer (SessionConfig must stay trivially copyable), so the
// test clock lives in globals.
std::atomic<std::int64_t> g_now_ns{0};

std::chrono::nanoseconds test_clock() { return std::chrono::nanoseconds(g_now_ns.load()); }

void set_clock_ms(std::int64_t ms) { g_now_ns.store(ms * 1'000'000); }

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 16, std::size_t out = 3) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net, xbar::NonIdealityConfig nonideal = {}) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec(), nonideal), {});
}

xbar::NonIdealityConfig noisy_device() {
    xbar::NonIdealityConfig c;
    c.read_noise_std = 0.05;
    return c;
}

data::Dataset make_enrollment(Rng& rng, std::size_t n = 120, std::size_t dim = 16) {
    tensor::Matrix clean = tensor::Matrix::random_uniform(rng, n, dim);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 3);
    return data::Dataset(std::move(clean), std::move(labels), 3, data::ImageShape{4, 4, 1});
}

// ---- TokenBucket ------------------------------------------------------------

TEST(TokenBucket, StartsFullAndRefillsDeterministically) {
    set_clock_ms(0);
    TokenBucket bucket(RateLimit{100.0, 10.0}, &test_clock);
    EXPECT_DOUBLE_EQ(bucket.capacity(), 10.0);
    EXPECT_TRUE(bucket.try_acquire(10));  // the full burst, at once
    EXPECT_FALSE(bucket.try_acquire(1));

    set_clock_ms(50);  // 50 ms at 100/s = 5 tokens
    EXPECT_TRUE(bucket.try_acquire(5));
    EXPECT_FALSE(bucket.try_acquire(1));

    set_clock_ms(1'000'000);  // refill is capped at burst capacity
    EXPECT_NEAR(bucket.available(), 10.0, 1e-9);
    EXPECT_FALSE(bucket.try_acquire(11));
    EXPECT_TRUE(bucket.try_acquire(10));
}

TEST(TokenBucket, AcquireIsAllOrNothing) {
    set_clock_ms(0);
    TokenBucket bucket(RateLimit{100.0, 4.0}, &test_clock);
    EXPECT_TRUE(bucket.try_acquire(3));
    // 1 token left; a 2-row acquire must not drain the remaining one.
    EXPECT_FALSE(bucket.try_acquire(2));
    EXPECT_TRUE(bucket.try_acquire(1));
    EXPECT_THROW(bucket.acquire(1), RateLimited);
}

TEST(TokenBucket, RefundIsCappedAtCapacity) {
    set_clock_ms(0);
    TokenBucket bucket(RateLimit{100.0, 8.0}, &test_clock);
    EXPECT_TRUE(bucket.try_acquire(3));
    bucket.refund(100);  // cannot mint tokens beyond the burst
    EXPECT_NEAR(bucket.available(), 8.0, 1e-9);
}

TEST(TokenBucket, ExactBoundaryAdmitsUnderTestClock) {
    set_clock_ms(0);
    TokenBucket bucket(RateLimit{100.0, 100.0}, &test_clock);
    EXPECT_TRUE(bucket.try_acquire(100));
    set_clock_ms(1000);  // exactly 1 s at 100/s: exactly 100 tokens
    EXPECT_TRUE(bucket.try_acquire(100));
}

TEST(TokenBucket, UnlimitedRateIsRejected) {
    EXPECT_THROW(TokenBucket(RateLimit{}, &test_clock), ContractViolation);
}

// ---- AdaptivePolicy ---------------------------------------------------------

TEST(AdaptivePolicy, BandSelectionAndWarmup) {
    AdaptivePolicy policy;
    policy.min_screened = 10;
    policy.bands.push_back({0.1, 2.0, true});
    policy.bands.push_back({0.5, 8.0, false});

    // Below the warm-up window no band applies, whatever the suspicion.
    EXPECT_EQ(policy.band_for(0.9, 9), nullptr);
    // Below every band's threshold: no band.
    EXPECT_EQ(policy.band_for(0.05, 100), nullptr);
    // The last (highest) matching band wins.
    const AdaptivePolicy::Band* mild = policy.band_for(0.3, 100);
    ASSERT_NE(mild, nullptr);
    EXPECT_DOUBLE_EQ(mild->sigma_multiplier, 2.0);
    EXPECT_TRUE(mild->expose_raw_outputs);
    const AdaptivePolicy::Band* hot = policy.band_for(0.7, 100);
    ASSERT_NE(hot, nullptr);
    EXPECT_DOUBLE_EQ(hot->sigma_multiplier, 8.0);
    EXPECT_FALSE(hot->expose_raw_outputs);

    EXPECT_FALSE(AdaptivePolicy{}.enabled());
    const AdaptivePolicy escalated = AdaptivePolicy::escalate_at(0.25, 4.0);
    EXPECT_TRUE(escalated.enabled());
    EXPECT_FALSE(escalated.band_for(0.5, 100)->expose_raw_outputs);
}

TEST(AdaptivePolicy, EmptyWindowNeverSelectsABand) {
    // Regression: screened == 0 is a 0/0 suspicion. A policy configured
    // with min_screened = 0 (no warm-up) must still not pick a band off
    // an entirely empty window — the first screened query used to admit
    // under whatever band suspicion 0.0 selected.
    AdaptivePolicy policy = AdaptivePolicy::escalate_at(0.0, 4.0);
    policy.min_screened = 0;
    EXPECT_EQ(policy.band_for(0.0, 0), nullptr);
    EXPECT_EQ(policy.band_for(1.0, 0), nullptr);
    ASSERT_NE(policy.band_for(0.0, 1), nullptr);
}

// ---- rate-limited sessions --------------------------------------------------

TEST(RateLimitedSession, RefusalChargesAndCountsNothing) {
    set_clock_ms(0);
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);

    SessionConfig limited;
    limited.rate = RateLimit{100.0, 4.0};
    limited.rate_clock = &test_clock;
    limited.budget.max_inference = 100;
    Session session = service.open_session(limited);
    const tensor::Vector u(net.inputs(), 0.5);

    for (int i = 0; i < 4; ++i) (void)session.submit_label(u).get();
    EXPECT_THROW(session.submit_label(u), RateLimited);
    // The refused submission neither counted nor charged.
    EXPECT_EQ(session.counters().inference, 4u);
    EXPECT_EQ(session.budget_spent().inference, 4u);

    set_clock_ms(20);  // 2 tokens back
    (void)session.submit_label(u).get();
    (void)session.submit_label(u).get();
    EXPECT_THROW(session.submit_label(u), RateLimited);
    EXPECT_EQ(session.counters().inference, 6u);
}

TEST(RateLimitedSession, BatchedSubmissionIsAllOrNothing) {
    set_clock_ms(0);
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);

    SessionConfig limited;
    limited.rate = RateLimit{100.0, 8.0};
    limited.rate_clock = &test_clock;
    Session session = service.open_session(limited);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 9, net.inputs());

    EXPECT_THROW(session.submit_labels(U), RateLimited);  // 9 rows > 8 tokens
    // The refusal consumed nothing: an 8-row batch still fits.
    (void)session.submit_labels(tensor::Matrix::random_uniform(rng, 8, net.inputs())).get();
    EXPECT_EQ(session.counters().inference, 8u);
}

TEST(RateLimitedSession, DownstreamBudgetRefusalRefundsTokens) {
    set_clock_ms(0);
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);

    SessionConfig limited;
    limited.rate = RateLimit{100.0, 10.0};
    limited.rate_clock = &test_clock;
    limited.budget.max_inference = 2;
    Session session = service.open_session(limited);
    const tensor::Vector u(net.inputs(), 0.5);

    (void)session.submit_label(u).get();
    (void)session.submit_label(u).get();
    // Budget refuses after rate admission: the tokens must come back.
    for (int i = 0; i < 8; ++i) EXPECT_THROW(session.submit_label(u), QueryBudgetExceeded);
    // If any of those 8 refusals had leaked its token, this power query
    // (8 remaining tokens after the two charged labels) would be refused.
    for (int i = 0; i < 8; ++i) (void)session.submit_power(u).get();
    EXPECT_EQ(session.budget_spent().inference, 2u);
}

TEST(RateLimitedSession, DefaultConfigIsUnlimited) {
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);
    Session session = service.open_session();
    const tensor::Vector u(net.inputs(), 0.5);
    for (int i = 0; i < 200; ++i) (void)session.submit_label(u).get();
    EXPECT_EQ(session.counters().inference, 200u);
}

TEST(RateLimitedSession, CoalescedMatchesSerialBitIdentical) {
    // The bit-identity contract extended to rate-limited sessions: a
    // rate-limited tenant's answers on noisy hardware (with per-session
    // sensing noise, where ordinal order is observable) must not depend
    // on whether its submissions coalesced into shared batches.
    set_clock_ms(0);
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend_serial = make_oracle(net, noisy_device());
    CrossbarOracle backend_coalesced = make_oracle(net, noisy_device());
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 24, net.inputs());

    SessionConfig limited;
    limited.rate = RateLimit{1000.0, 64.0};
    limited.rate_clock = &test_clock;
    limited.power_noise_sigma = 0.05;

    std::vector<double> serial;
    {
        OracleService service(backend_serial);
        Session session = service.open_session(limited);
        for (std::size_t r = 0; r < U.rows(); ++r) {
            serial.push_back(session.submit_power(U.row(r)).get());
        }
    }
    std::vector<double> coalesced;
    {
        ServiceConfig config;
        config.max_wait = std::chrono::microseconds(50000);
        OracleService service(backend_coalesced, config);
        Session session = service.open_session(limited);
        std::vector<std::future<double>> pending;
        for (std::size_t r = 0; r < U.rows(); ++r) pending.push_back(session.submit_power(U.row(r)));
        for (auto& f : pending) coalesced.push_back(f.get());
    }
    ASSERT_EQ(serial.size(), coalesced.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], coalesced[i]) << "power answer " << i << " diverged";
    }
}

// ---- per-source buckets (attribution) ---------------------------------------

TEST(PerSourceBucket, SessionRotationRecoversThePerSessionBurst) {
    // The PR 8 benign-loss / rotation loophole, pinned as the "before"
    // numbers: under the arms race's per-session bucket {400/s, burst
    // 48}, a benign client firing its whole 192-query workload at once
    // gets exactly the 48-token burst (75% refused) — while an attacker
    // rotating sessions collects a *fresh* burst per rotation.
    set_clock_ms(0);
    Rng rng(8);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    OracleService service(backend);

    SessionConfig limited;
    limited.rate = RateLimit{400.0, 48.0};
    limited.rate_clock = &test_clock;
    const tensor::Vector u(net.inputs(), 0.5);

    auto burst_through = [&](Session& session, std::size_t attempts) {
        std::size_t answered = 0;
        for (std::size_t q = 0; q < attempts; ++q) {
            try {
                (void)session.submit_label(u).get();
                ++answered;
            } catch (const RateLimited&) {
            }
        }
        return answered;
    };

    Session benign = service.open_session(limited);
    EXPECT_EQ(burst_through(benign, 192), 48u);  // 144 of 192 lost

    Session rotation_a = service.open_session(limited);
    EXPECT_EQ(burst_through(rotation_a, 48), 48u);
    rotation_a = service.open_session(limited);  // rotate: fresh bucket
    EXPECT_EQ(burst_through(rotation_a, 48), 48u);
}

TEST(PerSourceBucket, AllowanceFollowsTheSourceAcrossRotation) {
    // The attribution fix, pinned as the "after" numbers: the per-source
    // bucket {400/s, burst 256} admits the same benign 192-query
    // workload in full — and rotation draws from the *same* bucket, so
    // a rotating attacker no longer collects fresh bursts.
    set_clock_ms(0);
    Rng rng(9);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    config.attribution.source_rate = RateLimit{400.0, 256.0};
    config.attribution.source_clock = &test_clock;
    OracleService service(backend, config);

    SessionConfig tenant;  // no per-session bucket: the source owns the allowance
    tenant.source = 7;
    const tensor::Vector u(net.inputs(), 0.5);

    Session benign = service.open_session(tenant);
    for (int q = 0; q < 192; ++q) (void)benign.submit_label(u).get();
    EXPECT_EQ(benign.counters().inference, 192u);  // all answered (48 before)

    // Rotation inherits the drained bucket: 64 tokens remain of the
    // 256-token burst, frozen clock, so the 65th query is refused.
    Session rotated = service.open_session(tenant);
    for (int q = 0; q < 64; ++q) (void)rotated.submit_label(u).get();
    EXPECT_THROW(rotated.submit_label(u), RateLimited);

    // A different principal has its own allowance.
    SessionConfig other = tenant;
    other.source = 8;
    Session fresh = service.open_session(other);
    for (int q = 0; q < 256; ++q) (void)fresh.submit_label(u).get();
    EXPECT_THROW(fresh.submit_label(u), RateLimited);
}

TEST(PerSourceBucket, RefusalDownstreamRefundsTheSourceBucket) {
    set_clock_ms(0);
    Rng rng(10);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ServiceConfig config;
    config.attribution.enabled = true;
    config.attribution.source_rate = RateLimit{400.0, 10.0};
    config.attribution.source_clock = &test_clock;
    OracleService service(backend, config);

    SessionConfig tenant;
    tenant.source = 3;
    tenant.budget.max_inference = 2;
    Session session = service.open_session(tenant);
    const tensor::Vector u(net.inputs(), 0.5);

    (void)session.submit_label(u).get();
    (void)session.submit_label(u).get();
    // Budget refuses after source-rate admission: tokens must come back.
    for (int i = 0; i < 8; ++i) EXPECT_THROW(session.submit_label(u), QueryBudgetExceeded);
    for (int i = 0; i < 8; ++i) (void)session.submit_power(u).get();
    EXPECT_THROW(session.submit_power(u), RateLimited);  // 10 spent exactly
}

// ---- suspicion-scaled defenses ----------------------------------------------

TEST(SuspicionScaled, EscalationWithholdsRawOutputs) {
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    const data::Dataset enrollment = make_enrollment(rng);
    const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                         enrollment, {});
    OracleService service(backend);

    SessionConfig scaled;
    scaled.detector = &detector;
    scaled.block_flagged = false;
    scaled.adaptive = AdaptivePolicy::escalate_at(0.5, 1.0);
    scaled.adaptive.min_screened = 8;
    Session session = service.open_session(scaled);

    const tensor::Vector attack(net.inputs(), 50.0);  // far beyond the clean envelope
    ASSERT_TRUE(detector.is_adversarial(attack));
    // Below the warm-up window raw outputs flow, even for flagged inputs.
    for (int i = 0; i < 8; ++i) (void)session.submit_raw(attack).get();
    EXPECT_GE(session.flagged_fraction(), 0.5);
    // Past it, the escalated band withholds raw; labels still answer.
    EXPECT_THROW(session.submit_raw(attack), AccessDenied);
    (void)session.submit_label(attack).get();

    // A clean co-tenant under the same policy keeps raw access: the
    // suspicion that escalates is per-session, not global.
    Session benign = service.open_session(scaled);
    const tensor::Vector clean = enrollment.input(0);
    for (int i = 0; i < 12; ++i) (void)benign.submit_raw(clean).get();
}

TEST(SuspicionScaled, SigmaMultiplierScalesSessionNoise) {
    Rng rng(7);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend_a = make_oracle(net);
    CrossbarOracle backend_b = make_oracle(net);
    const data::Dataset enrollment = make_enrollment(rng);
    const sidechannel::CurrentSignatureDetector detector(backend_a.hardware_for_evaluation(),
                                                         enrollment, {});
    const tensor::Vector attack(net.inputs(), 50.0);
    const tensor::Vector probe(net.inputs(), 0.5);
    constexpr double kMult = 64.0;

    // Same noise seed, same query order; the only difference is the
    // sigma multiplier of the escalated band. The noise stream is
    // counter-based, so the deltas must scale by exactly kMult.
    auto run = [&](CrossbarOracle& backend, double multiplier) {
        OracleService service(backend);
        SessionConfig scaled;
        scaled.detector = &detector;
        scaled.power_noise_sigma = 0.01;
        scaled.noise_seed = 99;
        scaled.adaptive = AdaptivePolicy::escalate_at(0.5, multiplier, /*withhold_raw=*/false);
        scaled.adaptive.min_screened = 4;
        Session session = service.open_session(scaled);
        for (int i = 0; i < 4; ++i) (void)session.submit_label(attack).get();  // raise suspicion
        std::vector<double> readings;
        for (int i = 0; i < 6; ++i) readings.push_back(session.submit_power(probe).get());
        return readings;
    };
    const std::vector<double> base = run(backend_a, 1.0);
    const std::vector<double> scaled = run(backend_b, kMult);

    // Identical ideal hardware: the clean reading is the same, so the
    // per-query noise delta is recoverable by differencing.
    CrossbarOracle reference = make_oracle(net);
    const double clean = reference.query_power(probe);
    for (std::size_t i = 0; i < base.size(); ++i) {
        const double noise_base = base[i] - clean;
        const double noise_scaled = scaled[i] - clean;
        EXPECT_NEAR(noise_scaled, kMult * noise_base, 1e-9 + std::abs(noise_base) * 1e-6)
            << "reading " << i;
    }
}

}  // namespace
}  // namespace xbarsec::core
