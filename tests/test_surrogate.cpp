// Surrogate-training tests (Eq. 9): the power term's math, its pull on
// the surrogate's column 1-norms, and the closed-form Q ≥ N baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/stats/correlation.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {
namespace {

/// Builds query data from a known linear oracle W: outputs = U·Wᵀ and
/// power = U·colabs(W) (the ideal crossbar's normalised total current).
QueryDataset make_queries(const tensor::Matrix& W, const tensor::Matrix& U) {
    QueryDataset q;
    q.inputs = U;
    q.outputs = tensor::Matrix(U.rows(), W.rows(), 0.0);
    tensor::gemm(1.0, U, tensor::Op::None, W, tensor::Op::Transpose, 0.0, q.outputs);
    q.power = surrogate_power_batch(W, U);
    return q;
}

TEST(SurrogatePower, SingleAndBatchAgree) {
    Rng rng(1);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 4, 6);
    nn::DenseLayer layer(4, 6);
    layer.weights() = W;
    const nn::SingleLayerNet net(std::move(layer), nn::Activation::Linear, nn::Loss::Mse);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 5, 6);
    const tensor::Vector batch = surrogate_power_batch(W, U);
    for (std::size_t r = 0; r < 5; ++r) {
        EXPECT_NEAR(batch[r], surrogate_power(net, U.row(r)), 1e-12);
    }
}

TEST(SurrogatePower, EqualsDotWithColumnL1) {
    Rng rng(2);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 3, 5);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 5);
    nn::DenseLayer layer(3, 5);
    layer.weights() = W;
    const nn::SingleLayerNet net(std::move(layer), nn::Activation::Linear, nn::Loss::Mse);
    EXPECT_NEAR(surrogate_power(net, u), tensor::dot(tensor::column_abs_sums(W), u), 1e-12);
}

SurrogateConfig quick_config(double lambda, std::size_t epochs = 150) {
    SurrogateConfig c;
    c.power_loss_weight = lambda;
    c.train.epochs = epochs;
    c.train.batch_size = 16;
    c.train.learning_rate = 0.05;
    c.train.momentum = 0.9;
    c.train.final_lr_fraction = 0.1;
    return c;
}

TEST(TrainSurrogate, OutputLossDecreases) {
    Rng rng(3);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 3, 8);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 64, 8);
    const QueryDataset q = make_queries(W, U);
    const SurrogateTrainResult fit = train_surrogate(q, quick_config(0.0));
    ASSERT_FALSE(fit.epoch_output_loss.empty());
    EXPECT_LT(fit.epoch_output_loss.back(), 0.2 * fit.epoch_output_loss.front());
}

TEST(TrainSurrogate, LambdaZeroIgnoresPowerChannel) {
    Rng rng(4);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 3, 8);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 32, 8);
    QueryDataset q = make_queries(W, U);
    const SurrogateTrainResult a = train_surrogate(q, quick_config(0.0));
    // Corrupt the power channel; with λ=0 the fit must be identical.
    for (std::size_t i = 0; i < q.power.size(); ++i) q.power[i] = 1e9;
    const SurrogateTrainResult b = train_surrogate(q, quick_config(0.0));
    EXPECT_EQ(a.surrogate.weights(), b.surrogate.weights());
    EXPECT_DOUBLE_EQ(a.epoch_power_loss.back(), 0.0);
}

TEST(TrainSurrogate, PowerTermPullsColumnNormsTowardOracle) {
    // Few queries (Q << N): outputs underdetermine W, and the power term
    // is what drags the surrogate's column 1-norm profile toward the
    // oracle's. Compare λ=0 vs λ>0 on the 1-norm correlation.
    Rng rng(5);
    const std::size_t N = 40, M = 3, Q = 8;
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, M, N);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, Q, N);
    const QueryDataset q = make_queries(W, U);

    const SurrogateTrainResult base = train_surrogate(q, quick_config(0.0, 400));
    const SurrogateTrainResult power = train_surrogate(q, quick_config(0.02, 400));

    const tensor::Vector truth = tensor::column_abs_sums(W);
    const double corr_base =
        stats::pearson(tensor::column_abs_sums(base.surrogate.weights()), truth);
    const double corr_power =
        stats::pearson(tensor::column_abs_sums(power.surrogate.weights()), truth);
    EXPECT_GT(corr_power, corr_base)
        << "power-aware surrogate should match the oracle's 1-norm profile better";
    // And the power loss itself must have dropped substantially.
    EXPECT_LT(power.epoch_power_loss.back(), 0.5 * power.epoch_power_loss.front());
}

TEST(TrainSurrogate, ValidatesShapes) {
    QueryDataset q;
    q.inputs = tensor::Matrix(4, 3);
    q.outputs = tensor::Matrix(3, 2);  // row mismatch
    q.power = tensor::Vector(4);
    EXPECT_THROW(train_surrogate(q, quick_config(0.0)), ConfigError);
    q.outputs = tensor::Matrix(4, 2);
    q.power = tensor::Vector(2);  // power mismatch
    EXPECT_THROW(train_surrogate(q, quick_config(0.0)), ConfigError);
    q.power = tensor::Vector(4);
    SurrogateConfig bad = quick_config(-0.1);
    EXPECT_THROW(train_surrogate(q, bad), ContractViolation);
}

TEST(LeastSquaresSurrogate, RecoversOracleExactlyWhenQAtLeastN) {
    // Section IV: W = U†·Ŷ when Q ≥ N — power information is redundant.
    Rng rng(6);
    const std::size_t N = 15, M = 4, Q = 25;
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, M, N);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, Q, N);
    const QueryDataset q = make_queries(W, U);
    const nn::SingleLayerNet surrogate = fit_least_squares_surrogate(q);
    for (std::size_t i = 0; i < M; ++i)
        for (std::size_t j = 0; j < N; ++j)
            EXPECT_NEAR(surrogate.weights()(i, j), W(i, j), 1e-8);
}

TEST(LeastSquaresSurrogate, RidgePathHandlesQBelowN) {
    Rng rng(7);
    const std::size_t N = 20, M = 3, Q = 6;
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, M, N);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, Q, N);
    const QueryDataset q = make_queries(W, U);
    const nn::SingleLayerNet surrogate = fit_least_squares_surrogate(q, 1e-6);
    // Underdetermined: cannot equal W, but must fit the queries well.
    const tensor::Matrix pred = surrogate.layer().forward_batch(U);
    for (std::size_t r = 0; r < Q; ++r)
        for (std::size_t c = 0; c < M; ++c) EXPECT_NEAR(pred(r, c), q.outputs(r, c), 1e-3);
}

TEST(TrainSurrogate, DeterministicGivenSeeds) {
    Rng rng(8);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 2, 6);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 16, 6);
    const QueryDataset q = make_queries(W, U);
    const SurrogateTrainResult a = train_surrogate(q, quick_config(0.01, 50));
    const SurrogateTrainResult b = train_surrogate(q, quick_config(0.01, 50));
    EXPECT_EQ(a.surrogate.weights(), b.surrogate.weights());
}

TEST(TrainSurrogate, MinibatchIterationOrderUnchangedByWorkspaceReuse) {
    // Regression guard for the workspace-arena refactor: replay one epoch
    // by hand — explicit row gathers in the documented shuffle order,
    // ragged final batch included — and demand bit-identical weights. If
    // the trainer's gather/batch iteration order ever drifted (e.g. a
    // stale workspace row leaking into a batch), this breaks.
    Rng rng(9);
    const std::size_t N = 7, M = 3, Q = 23;  // 23 % 8 != 0: ragged tail
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, M, N);
    const tensor::Matrix U = tensor::Matrix::random_uniform(rng, Q, N);
    const QueryDataset q = make_queries(W, U);

    SurrogateConfig c;
    c.power_loss_weight = 0.0;
    c.train.epochs = 1;
    c.train.batch_size = 8;
    c.train.learning_rate = 0.1;
    c.train.momentum = 0.0;
    c.train.optimizer = nn::OptimizerKind::Sgd;
    const SurrogateTrainResult got = train_surrogate(q, c);

    Rng init(c.init_seed);
    nn::SingleLayerNet ref(init, N, M, nn::Activation::Linear, nn::Loss::Mse);
    auto opt = nn::make_optimizer(c.train.optimizer, c.train.learning_rate, c.train.momentum);
    const std::size_t slot = opt->register_parameter(ref.weights().size());

    Rng shuffle(c.train.shuffle_seed);
    std::vector<std::size_t> order(Q);
    for (std::size_t i = 0; i < Q; ++i) order[i] = i;
    shuffle.shuffle(order);

    tensor::Matrix grad(M, N, 0.0);
    for (std::size_t lo = 0; lo < Q; lo += c.train.batch_size) {
        const std::size_t hi = std::min(lo + c.train.batch_size, Q);
        const std::size_t b = hi - lo;
        tensor::Matrix xb(b, N), tb(b, M);
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t j = 0; j < N; ++j) xb(r, j) = q.inputs(order[lo + r], j);
            for (std::size_t j = 0; j < M; ++j) tb(r, j) = q.outputs(order[lo + r], j);
        }
        tensor::Matrix sb(b, M, 0.0);
        tensor::gemm(1.0, xb, tensor::Op::None, ref.weights(), tensor::Op::Transpose, 0.0, sb);
        tensor::Matrix delta(b, M);
        const double out_scale = 2.0 / static_cast<double>(M);
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t j = 0; j < M; ++j) delta(r, j) = out_scale * (sb(r, j) - tb(r, j));
        }
        tensor::gemm(1.0 / static_cast<double>(b), delta, tensor::Op::Transpose, xb,
                     tensor::Op::None, 0.0, grad);
        opt->step(slot, {ref.weights().data(), ref.weights().size()},
                  {grad.data(), grad.size()});
    }
    EXPECT_EQ(got.surrogate.weights(), ref.weights());
}

TEST(LeastSquaresSurrogate, CallerProvidedWorkspaceIsBitIdenticalAcrossFits) {
    // fit_least_squares_surrogate with a shared Workspace must reproduce
    // the workspace-free fit exactly, including when consecutive fits
    // reshape the normal-equations temporaries (different N between fits).
    Rng rng(21);
    tensor::Workspace ws;
    // A slot the caller still holds must survive the callee's borrowing
    // of the same workspace (ridge_solve uses a Workspace::Scope).
    tensor::Matrix& held = ws.matrix(2, 2);
    held.fill(7.0);
    for (const std::size_t N : {12ul, 20ul, 12ul}) {
        const tensor::Matrix W = tensor::Matrix::random_normal(rng, 3, N);
        const tensor::Matrix U = tensor::Matrix::random_uniform(rng, 40, N);
        const QueryDataset q = make_queries(W, U);
        const nn::SingleLayerNet plain = fit_least_squares_surrogate(q, 1e-6);
        const nn::SingleLayerNet pooled = fit_least_squares_surrogate(q, 1e-6, nullptr, &ws);
        EXPECT_EQ(plain.weights(), pooled.weights()) << "N=" << N;
    }
    EXPECT_EQ(held.rows(), 2u);
    EXPECT_EQ(held(1, 1), 7.0);
}

}  // namespace
}  // namespace xbarsec::attack
