// Tests for contracts, errors, logging plumbing, CLI parsing, table
// rendering, and the thread pool.
#include <gtest/gtest.h>

#include <cmath>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "xbarsec/common/cli.hpp"
#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/common/timer.hpp"

namespace xbarsec {
namespace {

// ---- contracts --------------------------------------------------------------

TEST(Contracts, ExpectsThrowsWithLocation) {
    try {
        XS_EXPECTS(1 == 2);
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("Precondition"), std::string::npos);
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
    }
}

TEST(Contracts, ExpectsMsgCarriesMessage) {
    try {
        XS_EXPECTS_MSG(false, "helpful context");
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("helpful context"), std::string::npos);
    }
}

TEST(Contracts, EnsuresThrows) { EXPECT_THROW(XS_ENSURES(false), ContractViolation); }

TEST(Contracts, PassingChecksDoNotThrow) {
    EXPECT_NO_THROW(XS_EXPECTS(true));
    EXPECT_NO_THROW(XS_ENSURES(2 > 1));
    EXPECT_NO_THROW(XS_ASSERT(true));
}

// ---- errors -----------------------------------------------------------------

TEST(Errors, HierarchyAndMessages) {
    const IoError io("boom");
    EXPECT_NE(std::string(io.what()).find("IO error"), std::string::npos);
    const ParseError parse("bad byte");
    EXPECT_NE(std::string(parse.what()).find("parse error"), std::string::npos);
    const ConfigError config("bad flag");
    EXPECT_NE(std::string(config.what()).find("config error"), std::string::npos);
    // All are catchable as Error.
    EXPECT_THROW(throw IoError("x"), Error);
    EXPECT_THROW(throw ParseError("x"), Error);
    EXPECT_THROW(throw ConfigError("x"), Error);
}

// ---- log --------------------------------------------------------------------

TEST(Log, LevelGateIsRespected) {
    const LogLevel prior = log::level();
    log::set_level(LogLevel::Error);
    EXPECT_EQ(log::level(), LogLevel::Error);
    // No crash writing below/above threshold.
    log::debug("hidden ", 1);
    log::error("visible ", 2);
    log::set_level(prior);
}

// ---- cli --------------------------------------------------------------------

TEST(Cli, ParsesEqualsAndSpaceForms) {
    Cli cli("test");
    cli.flag("alpha", "1", "a");
    cli.flag("name", "x", "n");
    const char* argv[] = {"prog", "--alpha=3", "--name", "hello"};
    ASSERT_TRUE(cli.parse(4, argv));
    EXPECT_EQ(cli.integer("alpha"), 3);
    EXPECT_EQ(cli.str("name"), "hello");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
    Cli cli("test");
    cli.flag("runs", "5", "r");
    const char* argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.integer("runs"), 5);
    EXPECT_FALSE(cli.provided("runs"));
}

TEST(Cli, BareFlagIsBooleanTrue) {
    Cli cli("test");
    cli.flag("full", "false", "f");
    const char* argv[] = {"prog", "--full"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_TRUE(cli.boolean("full"));
}

TEST(Cli, UnknownFlagThrows) {
    Cli cli("test");
    const char* argv[] = {"prog", "--nope=1"};
    EXPECT_THROW(cli.parse(2, argv), ConfigError);
}

TEST(Cli, MalformedNumberThrows) {
    Cli cli("test");
    cli.flag("eps", "0.1", "e");
    const char* argv[] = {"prog", "--eps=zzz"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_THROW(cli.real("eps"), ConfigError);
}

TEST(Cli, ListsParse) {
    Cli cli("test");
    cli.flag("lambdas", "0,0.002,0.01", "l");
    cli.flag("queries", "2,10,50", "q");
    const char* argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    const auto ls = cli.real_list("lambdas");
    ASSERT_EQ(ls.size(), 3u);
    EXPECT_DOUBLE_EQ(ls[1], 0.002);
    const auto qs = cli.integer_list("queries");
    ASSERT_EQ(qs.size(), 3u);
    EXPECT_EQ(qs[2], 50);
}

TEST(Cli, HelpReturnsFalse) {
    Cli cli("test");
    cli.flag("x", "1", "x flag");
    const char* argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, NegativeNumericValueViaEquals) {
    Cli cli("test");
    cli.flag("shift", "0", "s");
    const char* argv[] = {"prog", "--shift=-3"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_EQ(cli.integer("shift"), -3);
}

// ---- table ------------------------------------------------------------------

TEST(Table, MarkdownLayout) {
    Table t({"a", "bb"});
    t.begin_row();
    t.add("x");
    t.add(1.5, 1);
    const std::string md = t.to_markdown();
    EXPECT_NE(md.find("| a"), std::string::npos);
    EXPECT_NE(md.find("1.5"), std::string::npos);
    EXPECT_NE(md.find("|---"), std::string::npos) << md;
}

TEST(Table, CsvEscaping) {
    Table t({"k"});
    t.begin_row();
    t.add("a,b \"quoted\"");
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"a,b \"\"quoted\"\"\""), std::string::npos) << csv;
}

TEST(Table, WriteCsvRoundTrip) {
    const auto path = std::filesystem::temp_directory_path() / "xbarsec_table_test.csv";
    Table t({"h1", "h2"});
    t.begin_row();
    t.add(1ll);
    t.add(2ll);
    t.write_csv(path.string());
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "h1,h2");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "1,2");
    std::filesystem::remove(path);
}

TEST(Table, AddWithoutRowThrows) {
    Table t({"h"});
    EXPECT_THROW(t.add("cell"), ContractViolation);
}

TEST(Table, FormatNumberHandlesNan) {
    EXPECT_EQ(Table::format_number(std::nan(""), 3), "nan");
    EXPECT_EQ(Table::format_number(1.23456, 2), "1.23");
}

// ---- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(2);
    std::vector<std::atomic<int>> hits(257);
    parallel_for(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
    ThreadPool pool(2);
    EXPECT_THROW(parallel_for(pool, 8,
                              [](std::size_t i) {
                                  if (i == 3) throw std::runtime_error("task failed");
                              }),
                 std::runtime_error);
}

TEST(ParallelFor, ZeroAndOneCounts) {
    ThreadPool pool(2);
    int calls = 0;
    parallel_for(pool, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallel_for(pool, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

// ---- timer ------------------------------------------------------------------

TEST(WallTimer, MeasuresForwardTime) {
    WallTimer t;
    EXPECT_GE(t.seconds(), 0.0);
    t.reset();
    EXPECT_GE(t.milliseconds(), 0.0);
}

}  // namespace
}  // namespace xbarsec
