// Special functions and t-tests (the Figure-5 significance machinery).
// Reference values computed with an independent Python implementation
// (continued fraction cross-checked against numeric integration).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/stats/special.hpp"
#include "xbarsec/stats/ttest.hpp"

namespace xbarsec::stats {
namespace {

TEST(IncompleteBeta, BoundaryValues) {
    EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase) {
    // I_x(a, a) at x = 1/2 is exactly 1/2.
    for (const double a : {0.5, 1.0, 2.0, 7.5}) {
        EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-12);
    }
}

TEST(IncompleteBeta, UniformSpecialCase) {
    // I_x(1, 1) = x (Beta(1,1) is uniform).
    for (const double x : {0.1, 0.25, 0.9}) {
        EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
    }
}

TEST(IncompleteBeta, ClosedFormAgainstPolynomial) {
    // I_x(2, 2) = 3x² − 2x³.
    for (const double x : {0.2, 0.5, 0.8}) {
        EXPECT_NEAR(incomplete_beta(2.0, 2.0, x), 3 * x * x - 2 * x * x * x, 1e-12);
    }
    // I_x(1, b) = 1 − (1−x)^b.
    EXPECT_NEAR(incomplete_beta(1.0, 4.0, 0.3), 1.0 - std::pow(0.7, 4.0), 1e-12);
}

TEST(IncompleteBeta, ComplementIdentity) {
    // I_x(a,b) + I_{1-x}(b,a) = 1.
    EXPECT_NEAR(incomplete_beta(3.2, 1.7, 0.4) + incomplete_beta(1.7, 3.2, 0.6), 1.0, 1e-12);
}

TEST(IncompleteBeta, InvalidArgumentsThrow) {
    EXPECT_THROW(incomplete_beta(0.0, 1.0, 0.5), xbarsec::ContractViolation);
    EXPECT_THROW(incomplete_beta(1.0, 1.0, -0.1), xbarsec::ContractViolation);
    EXPECT_THROW(incomplete_beta(1.0, 1.0, 1.1), xbarsec::ContractViolation);
}

TEST(StudentT, CdfSymmetry) {
    for (const double df : {1.0, 5.0, 30.0}) {
        EXPECT_NEAR(student_t_cdf(0.0, df), 0.5, 1e-12);
        EXPECT_NEAR(student_t_cdf(1.7, df) + student_t_cdf(-1.7, df), 1.0, 1e-12);
    }
}

TEST(StudentT, KnownQuantiles) {
    // t = 2.0, df = 10: CDF = 0.963306 (scipy t.cdf(2, 10)).
    EXPECT_NEAR(student_t_cdf(2.0, 10.0), 0.9633059826146297, 1e-10);
    // df = 1 is the Cauchy distribution: CDF(1) = 0.75.
    EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
    // Large df approaches the normal: CDF(1.96, 1e6) ≈ 0.975.
    EXPECT_NEAR(student_t_cdf(1.96, 1e6), 0.975, 1e-3);
}

TEST(StudentT, TwoTailedPValues) {
    // scipy: 2*(1 - t.cdf(2.228, 10)) = 0.0500 (the classic 5% cutoff).
    EXPECT_NEAR(student_t_two_tailed_p(2.228, 10.0), 0.05, 1e-3);
    EXPECT_NEAR(student_t_two_tailed_p(0.0, 10.0), 1.0, 1e-12);
    // Symmetric in the sign of t.
    EXPECT_NEAR(student_t_two_tailed_p(-1.3, 7.0), student_t_two_tailed_p(1.3, 7.0), 1e-12);
}

TEST(WelchTTest, ScipyReferenceCase) {
    // Reference values cross-checked against an independent Python
    // implementation (continued fraction AND numeric integration of the
    // t pdf agree to 1e-13):
    //   a = [1, 2, 3, 4, 5], b = [2, 4, 6, 8, 10]
    //   t = -1.8973665961010275, df = 5.882352941, p = 0.10753119493062714
    const std::vector<double> a{1, 2, 3, 4, 5};
    const std::vector<double> b{2, 4, 6, 8, 10};
    const TTestResult r = welch_t_test(a, b);
    EXPECT_NEAR(r.t, -1.8973665961010275, 1e-10);
    EXPECT_NEAR(r.df, 5.882352941176471, 1e-9);
    EXPECT_NEAR(r.p_value, 0.10753119493062714, 1e-8);
    EXPECT_FALSE(r.significant());
}

TEST(PooledTTest, ScipyReferenceCase) {
    // Independent reference: pooled variance gives the same t here
    // (equal sample sizes), df = 8, p = 0.09434977284243774
    const std::vector<double> a{1, 2, 3, 4, 5};
    const std::vector<double> b{2, 4, 6, 8, 10};
    const TTestResult r = pooled_t_test(a, b);
    EXPECT_NEAR(r.t, -1.8973665961010275, 1e-10);
    EXPECT_DOUBLE_EQ(r.df, 8.0);
    EXPECT_NEAR(r.p_value, 0.09434977284243774, 1e-8);
}

TEST(WelchTTest, ClearlySeparatedSamplesAreSignificant) {
    const std::vector<double> a{10.0, 10.1, 9.9, 10.05, 9.95};
    const std::vector<double> b{12.0, 12.1, 11.9, 12.05, 11.95};
    const TTestResult r = welch_t_test(a, b);
    EXPECT_TRUE(r.significant(0.001));
    EXPECT_LT(r.t, 0.0);  // mean_a < mean_b
    EXPECT_NEAR(r.mean_a, 10.0, 1e-9);
    EXPECT_NEAR(r.mean_b, 12.0, 1e-9);
}

TEST(WelchTTest, IdenticalConstantSamplesNotSignificant) {
    const std::vector<double> a{3, 3, 3};
    const std::vector<double> b{3, 3, 3};
    const TTestResult r = welch_t_test(a, b);
    EXPECT_DOUBLE_EQ(r.t, 0.0);
    EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WelchTTest, DistinctConstantSamplesAreCertain) {
    const std::vector<double> a{3, 3, 3};
    const std::vector<double> b{4, 4, 4};
    const TTestResult r = welch_t_test(a, b);
    EXPECT_TRUE(std::isinf(r.t));
    EXPECT_DOUBLE_EQ(r.p_value, 0.0);
    EXPECT_TRUE(r.significant());
}

TEST(WelchTTest, RequiresTwoSamplesEach) {
    const std::vector<double> a{1.0};
    const std::vector<double> b{1.0, 2.0};
    EXPECT_THROW(welch_t_test(a, b), xbarsec::ContractViolation);
}

TEST(PairedTTest, DetectsConsistentShift) {
    const std::vector<double> before{10, 11, 12, 13};
    const std::vector<double> after{11, 12, 13, 14};  // +1 everywhere
    const TTestResult r = paired_t_test(before, after);
    EXPECT_TRUE(std::isinf(r.t));  // zero-variance differences
    EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(PairedTTest, ScipyReferenceCase) {
    // Independent reference (t = -sqrt(6), df = 4):
    //   t = -2.449489742783178, p = 0.07048399691021996
    const std::vector<double> a{1, 2, 3, 4, 5};
    const std::vector<double> b{2, 2, 4, 4, 6};
    const TTestResult r = paired_t_test(a, b);
    EXPECT_NEAR(r.t, -2.449489742783178, 1e-10);
    EXPECT_NEAR(r.p_value, 0.07048399691021996, 1e-8);
}

TEST(PairedTTest, SizeMismatchThrows) {
    const std::vector<double> a{1, 2, 3};
    const std::vector<double> b{1, 2};
    EXPECT_THROW(paired_t_test(a, b), xbarsec::ContractViolation);
}

}  // namespace
}  // namespace xbarsec::stats
