// Sensitivity analysis tests (Section III machinery: Eq. 7 maps, Table-I
// correlations, Eq. 8 bound).
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/nn/sensitivity.hpp"
#include "xbarsec/stats/correlation.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {
namespace {

data::Dataset tiny_data(Rng& rng, std::size_t n, std::size_t dim, std::size_t classes) {
    tensor::Matrix inputs = tensor::Matrix::random_uniform(rng, n, dim);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % classes);
    return data::Dataset(std::move(inputs), std::move(labels), classes,
                         data::ImageShape{1, dim, 1});
}

TEST(Sensitivity, MeanAbsGradientMatchesPerSampleLoop) {
    Rng rng(1);
    const data::Dataset d = tiny_data(rng, 40, 9, 3);
    SingleLayerNet net(rng, 9, 3, Activation::Softmax, Loss::CategoricalCrossentropy);

    const tensor::Vector batched = mean_abs_input_gradient(net, d);
    tensor::Vector manual(9, 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) {
        const tensor::Vector g = net.input_gradient(d.input(i), d.target(i));
        manual += tensor::abs(g);
    }
    manual /= static_cast<double>(d.size());
    ASSERT_EQ(batched.size(), manual.size());
    for (std::size_t j = 0; j < 9; ++j) EXPECT_NEAR(batched[j], manual[j], 1e-10);
}

TEST(Sensitivity, StreamingVisitSeesEverySample) {
    Rng rng(2);
    const data::Dataset d = tiny_data(rng, 23, 5, 2);
    SingleLayerNet net(rng, 5, 2, Activation::Linear, Loss::Mse);
    std::size_t visits = 0;
    for_each_abs_input_gradient(net, d, [&](const tensor::Vector& g) {
        EXPECT_EQ(g.size(), 5u);
        for (const double x : g) EXPECT_GE(x, 0.0);
        ++visits;
    });
    EXPECT_EQ(visits, d.size());
}

TEST(Sensitivity, MeanPerSampleCorrelationMatchesManual) {
    Rng rng(3);
    const data::Dataset d = tiny_data(rng, 30, 8, 2);
    SingleLayerNet net(rng, 8, 2, Activation::Linear, Loss::Mse);
    const tensor::Vector ref = tensor::column_abs_sums(net.weights());

    const double fast = mean_per_sample_correlation(net, d, ref);
    double manual = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        const tensor::Vector g = tensor::abs(net.input_gradient(d.input(i), d.target(i)));
        manual += stats::pearson(g, ref);
    }
    manual /= static_cast<double>(d.size());
    EXPECT_NEAR(fast, manual, 1e-10);
}

TEST(Sensitivity, CorrelationOfMeanIsPearsonOfTheMap) {
    Rng rng(4);
    const data::Dataset d = tiny_data(rng, 30, 8, 2);
    SingleLayerNet net(rng, 8, 2, Activation::Linear, Loss::Mse);
    const tensor::Vector ref = tensor::column_abs_sums(net.weights());
    const double got = correlation_of_mean(net, d, ref);
    const double expected = stats::pearson(mean_abs_input_gradient(net, d), ref);
    EXPECT_NEAR(got, expected, 1e-12);
}

TEST(Sensitivity, Eq8BoundHoldsForBothPaperConfigs) {
    Rng rng(5);
    for (const auto& [act, loss] :
         {std::pair{Activation::Linear, Loss::Mse},
          std::pair{Activation::Softmax, Loss::CategoricalCrossentropy}}) {
        SingleLayerNet net(rng, 12, 4, act, loss);
        for (int trial = 0; trial < 20; ++trial) {
            const tensor::Vector u = tensor::Vector::random_uniform(rng, 12);
            tensor::Vector t(4, 0.0);
            t[static_cast<std::size_t>(rng.below(4))] = 1.0;
            const tensor::Vector grad = tensor::abs(net.input_gradient(u, t));
            const tensor::Vector bound = sensitivity_upper_bound(net, u, t);
            for (std::size_t j = 0; j < 12; ++j) {
                EXPECT_LE(grad[j], bound[j] + 1e-12) << "Eq.8 bound violated at j=" << j;
            }
        }
    }
}

TEST(Sensitivity, Eq8BoundIsTightUnderSignAlignment) {
    // Equality holds when every term δ_i·w_ij has the same sign — e.g. a
    // single-output network (M = 1): |δ·w_j| == |δ|·|w_j| always.
    Rng rng(6);
    SingleLayerNet net(rng, 6, 1, Activation::Linear, Loss::Mse);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 6);
    const tensor::Vector t{0.3};
    const tensor::Vector grad = tensor::abs(net.input_gradient(u, t));
    const tensor::Vector bound = sensitivity_upper_bound(net, u, t);
    for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(grad[j], bound[j], 1e-12);
}

TEST(Sensitivity, TrainedMnistSensitivityCorrelatesWithL1) {
    // Mini Table-I: after training on MNIST-like data the correlation of
    // the mean sensitivity with the column 1-norms must be strongly
    // positive (the paper reports 0.92-0.99 at full scale).
    data::SyntheticMnistConfig dc;
    dc.train_count = 1500;
    dc.test_count = 300;
    const data::DataSplit split = data::make_synthetic_mnist(dc);
    Rng rng(7);
    SingleLayerNet net(rng, 784, 10, Activation::Softmax, Loss::CategoricalCrossentropy);
    TrainConfig tc;
    tc.epochs = 12;
    tc.learning_rate = 0.1;
    tc.momentum = 0.9;
    train(net, split.train, tc);

    const tensor::Vector l1 = tensor::column_abs_sums(net.weights());
    const double corr_mean = correlation_of_mean(net, split.test, l1);
    EXPECT_GT(corr_mean, 0.6);
    // And per-sample correlation is positive but weaker — the paper's
    // central observation about what the 1-norms can and cannot reveal.
    const double mean_corr = mean_per_sample_correlation(net, split.test, l1);
    EXPECT_GT(mean_corr, 0.1);
    EXPECT_LT(mean_corr, corr_mean);
}

}  // namespace
}  // namespace xbarsec::nn
