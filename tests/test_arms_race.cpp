// Arms-race layer: AdaptiveAttacker strategy behaviour against live
// OracleService deployments, and the registry wiring for the
// strategy × policy sweep ("service/mnist/arms-race"). Kept at toy
// scale — the full matrix runs in bench_arms.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "xbarsec/attack/adaptive.hpp"
#include "xbarsec/core/scenario.hpp"
#include "xbarsec/core/service.hpp"

namespace xbarsec::attack {
namespace {

using core::OracleService;
using core::RateLimit;
using core::SessionConfig;

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

struct Fixture {
    Rng rng{11};
    nn::SingleLayerNet net{rng, 10, 3, nn::Activation::Linear, nn::Loss::Mse};
    core::CrossbarOracle backend{xbar::CrossbarNetwork(net, ideal_spec()), {}};
    OracleService service{backend};
    tensor::Matrix probes{tensor::Matrix::random_uniform(rng, 48, 10)};
    tensor::Matrix camouflage{tensor::Matrix::random_uniform(rng, 16, 10)};
};

AdaptiveAttackerConfig campaign(AttackerStrategy strategy, std::size_t planned) {
    AdaptiveAttackerConfig c;
    c.strategy = strategy;
    c.planned_queries = planned;
    c.seed = 17;
    return c;
}

TEST(AdaptiveAttacker, StrategyNamesRoundTrip) {
    EXPECT_STREQ(to_string(AttackerStrategy::Fixed), "fixed");
    EXPECT_STREQ(to_string(AttackerStrategy::Throttle), "throttle");
    EXPECT_STREQ(to_string(AttackerStrategy::Rotate), "rotate");
    EXPECT_STREQ(to_string(AttackerStrategy::Spread), "spread");
    EXPECT_STREQ(to_string(AttackerStrategy::Forge), "forge");
}

TEST(AdaptiveAttacker, FixedCollectsEverythingOnAnOpenService) {
    Fixture f;
    AdaptiveAttackerOutcome out =
        AdaptiveAttacker(f.service, SessionConfig{}, campaign(AttackerStrategy::Fixed, 32))
            .run(f.probes, f.camouflage);
    EXPECT_EQ(out.collected, 32u);
    EXPECT_EQ(out.refused, 0u);
    EXPECT_EQ(out.sessions_used, 1u);
    EXPECT_EQ(out.data.size(), out.collected);
    EXPECT_EQ(out.data.power.size(), out.collected);
}

TEST(AdaptiveAttacker, FixedLosesSamplesUnderATightBucket) {
    Fixture f;
    SessionConfig tenant;
    // A few tokens of burst and a slow refill: the blasting attacker
    // drains the bucket almost immediately and every later query is a
    // lost sample (the bench's fixed/rate cell, at toy scale).
    tenant.rate = RateLimit{50.0, 6.0};
    AdaptiveAttackerOutcome out =
        AdaptiveAttacker(f.service, tenant, campaign(AttackerStrategy::Fixed, 64))
            .run(f.probes, f.camouflage);
    EXPECT_LT(out.collected, 64u);
    EXPECT_GT(out.refused, 0u);
    EXPECT_GT(out.rate_hits, 0u);
    EXPECT_EQ(out.collected + out.refused, 64u);
}

TEST(AdaptiveAttacker, ThrottleRecoversEverySampleBelowTheRefillRate) {
    Fixture f;
    SessionConfig tenant;
    tenant.rate = RateLimit{2000.0, 4.0};
    AdaptiveAttackerConfig config = campaign(AttackerStrategy::Throttle, 24);
    config.backoff = std::chrono::microseconds(200);
    AdaptiveAttackerOutcome out =
        AdaptiveAttacker(f.service, tenant, config).run(f.probes, f.camouflage);
    EXPECT_EQ(out.collected, 24u);
    EXPECT_EQ(out.refused, 0u);
    EXPECT_GT(out.rate_hits, 0u) << "a 4-token burst cannot cover 24 samples without waiting";
}

TEST(AdaptiveAttacker, RotateOpensAFreshSessionEveryWindow) {
    Fixture f;
    AdaptiveAttackerConfig config = campaign(AttackerStrategy::Rotate, 33);
    config.rotate_after = 8;
    AdaptiveAttackerOutcome out =
        AdaptiveAttacker(f.service, SessionConfig{}, config).run(f.probes, f.camouflage);
    EXPECT_EQ(out.collected, 33u);
    EXPECT_GE(out.sessions_used, 4u);
    EXPECT_GE(f.service.sessions_opened(), out.sessions_used);
}

TEST(AdaptiveAttacker, SpreadTracksSuspicionAndKeepsCollecting) {
    Fixture f;
    AdaptiveAttackerConfig config = campaign(AttackerStrategy::Spread, 24);
    config.rotate_after = 8;
    config.camouflage = 0.5;
    AdaptiveAttackerOutcome out =
        AdaptiveAttacker(f.service, SessionConfig{}, config).run(f.probes, f.camouflage);
    EXPECT_EQ(out.collected, 24u);
    EXPECT_GE(out.sessions_used, 2u);
    EXPECT_GE(out.max_flagged_fraction, 0.0);
    EXPECT_LE(out.max_flagged_fraction, 1.0);
}

TEST(ArmsRaceScenario, RegistryEntryAndDefaultsAreWellFormed) {
    core::ScenarioSpec spec = core::builtin_scenarios().get("service/mnist/arms-race");
    EXPECT_EQ(spec.experiment, core::ExperimentKind::ArmsRace);
    EXPECT_EQ(core::to_string(spec.experiment), "arms-race");

    const core::ArmsRaceOptions& ar = spec.arms_race;
    EXPECT_EQ(ar.strategies.size(), 4u);
    ASSERT_EQ(ar.defenses.size(), 3u);
    EXPECT_EQ(ar.defenses[0].name, "open");
    EXPECT_TRUE(ar.defenses[0].rate.unlimited());
    EXPECT_FALSE(ar.defenses[0].suspicion_scaled);
    EXPECT_FALSE(ar.defenses[1].rate.unlimited());
    EXPECT_TRUE(ar.defenses[2].suspicion_scaled);
    EXPECT_GT(ar.probe_strength, 1.0) << "probes must escape the detector's clean envelope";
    EXPECT_GT(ar.attacker.planned_queries, 0u);
    EXPECT_FALSE(ar.adaptive.bands.empty());
}

}  // namespace
}  // namespace xbarsec::attack
