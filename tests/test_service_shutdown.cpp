// Shutdown-path accounting: a submission that charges the session's
// BudgetLedger and then fails to hand off to a replica queue (service
// destroyed between charge and enqueue) must refund its charge. The
// ledger invariant under concurrent load racing a shutdown is exact:
// spent == rows of submissions that were accepted (returned a future),
// whatever the interleaving. TSan-friendly: bounded loops, atomics,
// every thread joined before the asserts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "xbarsec/core/service.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 12, std::size_t out = 3) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec()), {});
}

TEST(ServiceShutdown, SubmissionAfterDestructionChargesNothing) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    SessionConfig budgeted;
    budgeted.budget.max_inference = 100;
    Session session;
    {
        OracleService service(backend);
        session = service.open_session(budgeted);
        (void)session.submit_label(tensor::Vector(net.inputs(), 0.5)).get();
    }
    // The service is gone; the handle outlives it and must refuse
    // cleanly without touching the ledger.
    EXPECT_THROW(session.submit_label(tensor::Vector(net.inputs(), 0.5)), SessionClosed);
    EXPECT_EQ(session.budget_spent().inference, 1u);
}

TEST(ServiceShutdown, BudgetRefundsExactlyUnderShutdownRace) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    const tensor::Vector u(net.inputs(), 0.5);
    constexpr int kRounds = 8;
    constexpr int kThreads = 2;
    constexpr int kPerThread = 400;

    for (int round = 0; round < kRounds; ++round) {
        CrossbarOracle backend = make_oracle(net);
        auto service = std::make_unique<OracleService>(backend);
        SessionConfig budgeted;
        budgeted.budget.max_inference = static_cast<std::uint64_t>(kThreads) * kPerThread + 1;
        Session session = service->open_session(budgeted);

        std::atomic<std::uint64_t> accepted{0};
        std::vector<std::thread> submitters;
        submitters.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            submitters.emplace_back([&] {
                std::vector<std::future<int>> pending;
                pending.reserve(kPerThread);
                for (int q = 0; q < kPerThread; ++q) {
                    try {
                        pending.push_back(session.submit_label(u));
                    } catch (const SessionClosed&) {
                        break;  // service shut down under us — expected
                    }
                }
                accepted.fetch_add(pending.size(), std::memory_order_relaxed);
                // Accepted submissions complete normally through the
                // drain, even when the service died mid-stream.
                for (auto& f : pending) (void)f.get();
            });
        }
        // Tear the service down while the submitters race: some
        // submissions hit the closed-session check up front, and some
        // land in the charge-then-enqueue window, which must refund.
        std::this_thread::sleep_for(std::chrono::microseconds(50 + 150 * (round % 4)));
        service.reset();
        for (std::thread& t : submitters) t.join();

        // Exactness is the whole point: one leaked charge (a refused
        // submission that kept its budget row) breaks the equality.
        EXPECT_EQ(session.budget_spent().inference, accepted.load())
            << "round " << round << ": ledger out of sync with accepted submissions";
    }
}

}  // namespace
}  // namespace xbarsec::core
