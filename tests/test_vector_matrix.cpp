// Tests for the Vector and Matrix containers.
#include <gtest/gtest.h>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::tensor {
namespace {

TEST(Vector, ConstructionAndFill) {
    Vector v(4, 2.5);
    ASSERT_EQ(v.size(), 4u);
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(v[i], 2.5);
    v.fill(-1.0);
    EXPECT_DOUBLE_EQ(v[3], -1.0);
}

TEST(Vector, InitializerList) {
    const Vector v{1.0, 2.0, 3.0};
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(Vector, BasisVector) {
    const Vector e = Vector::basis(5, 2, 3.0);
    EXPECT_DOUBLE_EQ(e[2], 3.0);
    EXPECT_DOUBLE_EQ(e[0], 0.0);
    EXPECT_DOUBLE_EQ(e[4], 0.0);
    EXPECT_THROW(Vector::basis(5, 5), ContractViolation);
}

TEST(Vector, Arithmetic) {
    Vector a{1, 2, 3};
    const Vector b{4, 5, 6};
    a += b;
    EXPECT_DOUBLE_EQ(a[0], 5.0);
    a -= b;
    EXPECT_DOUBLE_EQ(a[2], 3.0);
    a *= 2.0;
    EXPECT_DOUBLE_EQ(a[1], 4.0);
    a /= 4.0;
    EXPECT_DOUBLE_EQ(a[1], 1.0);
    const Vector c = Vector{1, 1, 1} + Vector{2, 2, 2};
    EXPECT_DOUBLE_EQ(c[0], 3.0);
    const Vector d = 2.0 * Vector{1, 2, 3};
    EXPECT_DOUBLE_EQ(d[2], 6.0);
}

TEST(Vector, SizeMismatchThrows) {
    Vector a{1, 2};
    const Vector b{1, 2, 3};
    EXPECT_THROW(a += b, ContractViolation);
    EXPECT_THROW(a -= b, ContractViolation);
}

TEST(Vector, AtChecksBounds) {
    Vector v(3, 0.0);
    EXPECT_NO_THROW(v.at(2));
    EXPECT_THROW(v.at(3), ContractViolation);
}

TEST(Vector, RandomFactoriesDeterministic) {
    Rng r1(5), r2(5);
    const Vector a = Vector::random_uniform(r1, 10, -1, 1);
    const Vector b = Vector::random_uniform(r2, 10, -1, 1);
    EXPECT_EQ(a, b);
    for (const double x : a) {
        EXPECT_GE(x, -1.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Matrix, ConstructionAndIndexing) {
    Matrix m(2, 3, 0.0);
    m(1, 2) = 7.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
}

TEST(Matrix, InitializerList) {
    const Matrix m{{1, 2}, {3, 4}, {5, 6}};
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1, 2}, {3}}), ContractViolation);
}

TEST(Matrix, Identity) {
    const Matrix eye = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
}

TEST(Matrix, RowColAccessors) {
    const Matrix m{{1, 2, 3}, {4, 5, 6}};
    const Vector r = m.row(1);
    EXPECT_DOUBLE_EQ(r[0], 4.0);
    EXPECT_DOUBLE_EQ(r[2], 6.0);
    const Vector c = m.col(2);
    EXPECT_DOUBLE_EQ(c[0], 3.0);
    EXPECT_DOUBLE_EQ(c[1], 6.0);
}

TEST(Matrix, SetRowAndCol) {
    Matrix m(2, 2, 0.0);
    m.set_row(0, Vector{1, 2});
    m.set_col(1, Vector{9, 8});
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
    EXPECT_THROW(m.set_row(0, Vector{1, 2, 3}), ContractViolation);
}

TEST(Matrix, Transposed) {
    const Matrix m{{1, 2, 3}, {4, 5, 6}};
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, Reshaped) {
    const Matrix m{{1, 2, 3}, {4, 5, 6}};
    const Matrix r = m.reshaped(3, 2);
    EXPECT_DOUBLE_EQ(r(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(r(2, 1), 6.0);
    EXPECT_THROW(m.reshaped(4, 2), ContractViolation);
}

TEST(Matrix, Arithmetic) {
    Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{1, 1}, {1, 1}};
    a += b;
    EXPECT_DOUBLE_EQ(a(1, 1), 5.0);
    a -= b;
    EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
    a *= 0.5;
    EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
    EXPECT_THROW(a += Matrix(3, 3), ContractViolation);
}

TEST(Matrix, FromRows) {
    const Matrix m = Matrix::from_rows({Vector{1, 2}, Vector{3, 4}});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW(Matrix::from_rows({Vector{1, 2}, Vector{3}}), ContractViolation);
}

TEST(Matrix, RowSpanWritesThrough) {
    Matrix m(2, 2, 0.0);
    auto row = m.row_span(1);
    row[0] = 42.0;
    EXPECT_DOUBLE_EQ(m(1, 0), 42.0);
}

TEST(Matrix, AtChecksBounds) {
    Matrix m(2, 2, 0.0);
    EXPECT_NO_THROW(m.at(1, 1));
    EXPECT_THROW(m.at(2, 0), ContractViolation);
    EXPECT_THROW(m.at(0, 2), ContractViolation);
}

TEST(Matrix, RandomFactoriesDeterministic) {
    Rng r1(9), r2(9);
    EXPECT_EQ(Matrix::random_normal(r1, 3, 4), Matrix::random_normal(r2, 3, 4));
}

}  // namespace
}  // namespace xbarsec::tensor
