// QR / least-squares / pseudoinverse / Cholesky tests, including the
// Section-IV observation that Q ≥ N queries recover W exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/linalg.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::tensor {
namespace {

void expect_near(const Matrix& a, const Matrix& b, double tol) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_NEAR(a(i, j), b(i, j), tol);
}

TEST(Qr, RFactorIsUpperTriangularWithReconstruction) {
    Rng rng(1);
    const Matrix A = Matrix::random_normal(rng, 8, 5);
    const QrFactorization f = qr_decompose(A);
    // Verify via least squares instead of forming Q: solve A·x = A·e_k and
    // expect e_k back for every k (A has full column rank a.s.).
    const Matrix X = lstsq(A, matmul(A, Matrix::identity(5)));
    expect_near(X, Matrix::identity(5), 1e-9);
    // R's strict lower part must be Householder storage, not used by the
    // solve; nothing to assert directly beyond the solve correctness.
    EXPECT_EQ(f.rows(), 8u);
    EXPECT_EQ(f.cols(), 5u);
}

TEST(Qr, RequiresTallMatrix) {
    EXPECT_THROW(qr_decompose(Matrix(2, 3)), ContractViolation);
}

TEST(Lstsq, ExactSolveSquareSystem) {
    const Matrix A{{2, 0}, {0, 4}};
    const Vector b{6, 8};
    const Vector x = lstsq(A, b);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lstsq, OverdeterminedProjects) {
    // Fit y = c over observations {1, 2, 3}: least squares gives the mean.
    const Matrix A{{1}, {1}, {1}};
    const Vector b{1, 2, 3};
    const Vector x = lstsq(A, b);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(Lstsq, RankDeficientThrows) {
    const Matrix A{{1, 1}, {1, 1}, {1, 1}};  // rank 1
    const Matrix B(3, 1, 1.0);
    EXPECT_THROW(lstsq(A, B), Error);
}

TEST(Pinv, MoorePenroseIdentitiesTallAndWide) {
    Rng rng(2);
    for (const auto [m, n] : {std::pair<std::size_t, std::size_t>{9, 4},
                              std::pair<std::size_t, std::size_t>{4, 9}}) {
        const Matrix A = Matrix::random_normal(rng, m, n);
        const Matrix Ap = pinv(A);
        ASSERT_EQ(Ap.rows(), n);
        ASSERT_EQ(Ap.cols(), m);
        // A·A†·A = A and A†·A·A† = A†.
        expect_near(matmul(matmul(A, Ap), A), A, 1e-8);
        expect_near(matmul(matmul(Ap, A), Ap), Ap, 1e-8);
    }
}

TEST(Pinv, SectionIvWeightRecovery) {
    // The paper's Case-2 boundary: with Q >= N independent queries U and
    // linear outputs Y = U·Wᵀ, the attacker recovers W = (U†·Y)ᵀ exactly.
    Rng rng(3);
    const std::size_t N = 12, M = 4, Q = 20;
    const Matrix W = Matrix::random_normal(rng, M, N);
    const Matrix U = Matrix::random_uniform(rng, Q, N);
    const Matrix Y = matmul(U, W.transposed());
    const Matrix W_hat = matmul(pinv(U), Y).transposed();
    expect_near(W_hat, W, 1e-8);
}

TEST(Cholesky, FactorizesSpdAndRejectsIndefinite) {
    const Matrix A{{4, 2}, {2, 3}};
    const Matrix L = cholesky(A);
    expect_near(matmul(L, L.transposed()), A, 1e-12);
    const Matrix Indef{{1, 2}, {2, 1}};
    EXPECT_THROW(cholesky(Indef), Error);
}

TEST(SolveSpd, RoundTrips) {
    Rng rng(4);
    const Matrix G = Matrix::random_normal(rng, 6, 6);
    Matrix A = matmul(G, G.transposed());
    for (std::size_t i = 0; i < 6; ++i) A(i, i) += 1.0;  // well-conditioned SPD
    const Matrix X_true = Matrix::random_normal(rng, 6, 2);
    const Matrix B = matmul(A, X_true);
    expect_near(solve_spd(A, B), X_true, 1e-8);
}

TEST(Ridge, ZeroLambdaMatchesLstsqOnFullRank) {
    Rng rng(5);
    const Matrix A = Matrix::random_normal(rng, 10, 4);
    const Matrix B = Matrix::random_normal(rng, 10, 2);
    expect_near(ridge_solve(A, B, 0.0), lstsq(A, B), 1e-7);
}

TEST(Ridge, HandlesUnderdeterminedSystems) {
    Rng rng(6);
    const Matrix A = Matrix::random_normal(rng, 3, 8);  // Q < N
    const Matrix B = Matrix::random_normal(rng, 3, 2);
    const Matrix X = ridge_solve(A, B, 1e-3);
    // Solution exists and roughly fits the observations.
    const Matrix fit = matmul(A, X);
    for (std::size_t i = 0; i < fit.rows(); ++i)
        for (std::size_t j = 0; j < fit.cols(); ++j) EXPECT_NEAR(fit(i, j), B(i, j), 0.2);
}

TEST(Ridge, LargerLambdaShrinksSolution) {
    Rng rng(7);
    const Matrix A = Matrix::random_normal(rng, 20, 5);
    const Matrix B = Matrix::random_normal(rng, 20, 1);
    const double small = frobenius_norm(ridge_solve(A, B, 1e-6));
    const double large = frobenius_norm(ridge_solve(A, B, 1e3));
    EXPECT_LT(large, small);
}

}  // namespace
}  // namespace xbarsec::tensor
