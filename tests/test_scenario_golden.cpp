// Golden reproducibility for the defended / non-ideal scenarios (PR 3).
//
// The five registry entries that exercise decorator stacks and device
// non-idealities are run end to end at fixed seeds in a CI-sized
// configuration. The serial runner's outcome is the snapshot; a runner
// sharing one 4-worker ThreadPool must reproduce every metric — attack
// success rates included — exactly, because the batched kernels are
// bit-identical under any pool partition and read noise is a pure
// counter stream. A drift in any metric means a kernel or RNG contract
// regression, not tolerable noise.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "xbarsec/core/scenario.hpp"

namespace xbarsec::core {
namespace {

/// The defended / non-ideal builtin scenarios under test.
const char* kScenarios[] = {
    "fig4/mnist/softmax-noisy-device",  // read noise + stuck faults
    "fig4/mnist/softmax-detected",      // detector-guarded deployment
    "fig5/mnist/label-defended",        // noisy-power defense
    "probe/mnist/undefended",           // bare side channel baseline
    "probe/mnist/defended",             // dummies + noise + query budget
};

/// Far below apply_smoke: these train victims, so keep CI budgets tiny.
ScenarioSpec tiny(const std::string& name) {
    ScenarioSpec spec = builtin_scenarios().get(name);
    apply_smoke(spec);
    spec.load.train_count = 300;
    spec.load.test_count = 100;
    spec.victim.train.epochs = 3;
    spec.fig4.strengths = {0, 5};
    spec.fig4.eval_limit = 60;
    spec.fig5.runs = 2;
    spec.fig5.query_counts = {10, 40};
    spec.fig5.eval_limit = 50;
    return spec;
}

class ScenarioGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioGolden, PooledRunnerReproducesSerialSnapshot) {
    const ScenarioSpec spec = tiny(GetParam());

    const ScenarioRunner serial_runner(nullptr);
    const ScenarioOutcome snapshot = serial_runner.run(spec);
    ASSERT_FALSE(snapshot.metrics.empty()) << GetParam();

    ThreadPool pool(4);
    const ScenarioRunner pooled_runner(&pool);
    const ScenarioOutcome pooled = pooled_runner.run(spec);

    ASSERT_EQ(snapshot.metrics.size(), pooled.metrics.size()) << GetParam();
    for (const auto& [key, value] : snapshot.metrics) {
        const auto it = pooled.metrics.find(key);
        ASSERT_NE(it, pooled.metrics.end()) << GetParam() << " lost metric " << key;
        // Bit-exact, not approximately equal: the pooled path must not
        // perturb a single rounding.
        EXPECT_EQ(value, it->second) << GetParam() << " metric " << key;
    }

    // The rendered tables carry the attack-success-rate sweeps; they must
    // agree cell for cell too.
    ASSERT_EQ(snapshot.tables.size(), pooled.tables.size()) << GetParam();
    for (std::size_t t = 0; t < snapshot.tables.size(); ++t) {
        EXPECT_EQ(snapshot.tables[t].first, pooled.tables[t].first);
        EXPECT_EQ(snapshot.tables[t].second.to_csv(), pooled.tables[t].second.to_csv())
            << GetParam() << " table " << snapshot.tables[t].first;
    }
}

TEST_P(ScenarioGolden, RepeatedSerialRunsAreIdentical) {
    // The snapshot itself must be stable run-to-run at a fixed seed —
    // otherwise the pooled comparison above would be vacuous.
    const ScenarioSpec spec = tiny(GetParam());
    const ScenarioRunner runner(nullptr);
    const ScenarioOutcome a = runner.run(spec);
    const ScenarioOutcome b = runner.run(spec);
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (const auto& [key, value] : a.metrics) {
        EXPECT_EQ(value, b.metrics.at(key)) << GetParam() << " metric " << key;
    }
}

INSTANTIATE_TEST_SUITE_P(DefendedAndNonIdeal, ScenarioGolden, ::testing::ValuesIn(kScenarios),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                             std::string name = info.param;
                             for (char& c : name) {
                                 if (c == '/' || c == '-') c = '_';
                             }
                             return name;
                         });

}  // namespace
}  // namespace xbarsec::core
