// Golden reproducibility for the defended / non-ideal scenarios.
//
// Two layers of protection:
//
//  * In-process (PR 3): the serial runner's outcome is the snapshot; a
//    runner sharing one 4-worker ThreadPool must reproduce every metric —
//    attack success rates included — exactly, because the batched kernels
//    are bit-identical under any pool partition and read noise is a pure
//    counter stream. A drift in any metric means a kernel or RNG contract
//    regression, not tolerable noise.
//
//  * Committed JSON (this PR): the same five scenarios are pinned to
//    golden files under tests/golden/, compared with a small numeric
//    tolerance. Bit-exactness is deliberately NOT demanded here — the
//    committed values come from one platform and libm rounding differs
//    across implementations — but anything beyond ~1e-7 relative is a
//    real regression. Regenerate after an intentional contract change:
//        ./test_scenario_golden --update-golden
//    (or set XBARSEC_UPDATE_GOLDEN=1). --golden-dir=PATH overrides the
//    compiled-in tests/golden location.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "xbarsec/core/scenario.hpp"

namespace xbarsec::core {
namespace {

std::string g_golden_dir = XBARSEC_GOLDEN_DIR;
bool g_update_golden = false;

/// The defended / non-ideal builtin scenarios under test.
const char* kScenarios[] = {
    "fig4/mnist/softmax-noisy-device",  // read noise + stuck faults
    "fig4/mnist/softmax-detected",      // detector-guarded deployment
    "fig5/mnist/label-defended",        // noisy-power defense
    "probe/mnist/undefended",           // bare side channel baseline
    "probe/mnist/defended",             // dummies + noise + query budget
};

std::string sanitized(std::string name) {
    for (char& c : name) {
        if (c == '/' || c == '-') c = '_';
    }
    return name;
}

/// Far below apply_smoke: these train victims, so keep CI budgets tiny.
ScenarioSpec tiny(const std::string& name) {
    ScenarioSpec spec = builtin_scenarios().get(name);
    apply_smoke(spec);
    spec.load.train_count = 300;
    spec.load.test_count = 100;
    spec.victim.train.epochs = 3;
    spec.fig4.strengths = {0, 5};
    spec.fig4.eval_limit = 60;
    spec.fig5.runs = 2;
    spec.fig5.query_counts = {10, 40};
    spec.fig5.eval_limit = 50;
    return spec;
}

// ---- minimal JSON (exactly the subset the golden writer emits) -------------

struct JsonValue {
    enum class Kind { Null, Number, String, Array, Object } kind = Kind::Null;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

    const JsonValue* find(const std::string& key) const {
        for (const auto& [k, v] : object) {
            if (k == key) return &v;
        }
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonValue parse() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("golden JSON parse error at byte " + std::to_string(pos_) +
                                 ": " + what);
    }
    void skip_ws() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    char peek() {
        skip_ws();
        if (pos_ >= s_.size()) fail("unexpected end");
        return s_[pos_];
    }
    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue value() {
        const char c = peek();
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = string();
            return v;
        }
        return number();
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') break;
            if (c == '\\') {
                if (pos_ >= s_.size()) fail("dangling escape");
                const char e = s_[pos_++];
                switch (e) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case 'n': out.push_back('\n'); break;
                    case 't': out.push_back('\t'); break;
                    case 'r': out.push_back('\r'); break;
                    default: fail("unsupported escape");
                }
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    JsonValue number() {
        skip_ws();
        const char* start = s_.c_str() + pos_;
        char* end = nullptr;
        const double d = std::strtod(start, &end);
        if (end == start) fail("expected a number");
        pos_ += static_cast<std::size_t>(end - start);
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        return v;
    }

    JsonValue array() {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            const char c = peek();
            ++pos_;
            if (c == ']') break;
            if (c != ',') fail("expected ',' or ']'");
        }
        return v;
    }

    JsonValue object() {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            std::string key = string();
            expect(':');
            v.object.emplace_back(std::move(key), value());
            const char c = peek();
            ++pos_;
            if (c == '}') break;
            if (c != ',') fail("expected ',' or '}'");
        }
        return v;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

std::string json_escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default: out.push_back(c);
        }
    }
    return out;
}

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/// Serializes the comparable slice of an outcome: every metric plus every
/// rendered table (the attack-success-rate sweeps) as CSV text.
std::string to_golden_json(const ScenarioOutcome& outcome, const std::string& scenario) {
    std::ostringstream out;
    out << "{\n  \"scenario\": \"" << json_escaped(scenario) << "\",\n  \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : outcome.metrics) {
        out << (first ? "\n" : ",\n") << "    \"" << json_escaped(key)
            << "\": " << format_double(value);
        first = false;
    }
    out << "\n  },\n  \"tables\": [";
    for (std::size_t t = 0; t < outcome.tables.size(); ++t) {
        out << (t == 0 ? "\n" : ",\n") << "    {\"title\": \""
            << json_escaped(outcome.tables[t].first) << "\", \"csv\": \""
            << json_escaped(outcome.tables[t].second.to_csv()) << "\"}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

std::string golden_path(const std::string& scenario) {
    return g_golden_dir + "/" + sanitized(scenario) + ".json";
}

/// Numeric closeness for committed goldens: tight enough that any kernel
/// or RNG contract change trips it, loose enough to absorb cross-platform
/// libm rounding differences amplified by a few training epochs.
bool close_enough(double a, double b) {
    if (a == b) return true;
    const double tol = 1e-9 + 1e-7 * std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= tol;
}

/// Compares two CSV texts cell by cell: numeric cells with tolerance,
/// everything else exactly.
void expect_csv_near(const std::string& expected, const std::string& got,
                     const std::string& context) {
    std::istringstream es(expected), gs(got);
    std::string eline, gline;
    std::size_t lineno = 0;
    while (true) {
        const bool e_ok = static_cast<bool>(std::getline(es, eline));
        const bool g_ok = static_cast<bool>(std::getline(gs, gline));
        ASSERT_EQ(e_ok, g_ok) << context << ": row count differs at line " << lineno;
        if (!e_ok) break;
        ++lineno;
        std::istringstream ecell(eline), gcell(gline);
        std::string ec, gc;
        std::size_t col = 0;
        while (true) {
            const bool ec_ok = static_cast<bool>(std::getline(ecell, ec, ','));
            const bool gc_ok = static_cast<bool>(std::getline(gcell, gc, ','));
            ASSERT_EQ(ec_ok, gc_ok)
                << context << ": column count differs at line " << lineno << " col " << col;
            if (!ec_ok) break;
            ++col;
            char* eend = nullptr;
            char* gend = nullptr;
            const double ev = std::strtod(ec.c_str(), &eend);
            const double gv = std::strtod(gc.c_str(), &gend);
            const bool e_num = eend == ec.c_str() + ec.size() && !ec.empty();
            const bool g_num = gend == gc.c_str() + gc.size() && !gc.empty();
            if (e_num && g_num) {
                EXPECT_TRUE(close_enough(ev, gv))
                    << context << " line " << lineno << " col " << col << ": " << ec << " vs "
                    << gc;
            } else {
                EXPECT_EQ(ec, gc) << context << " line " << lineno << " col " << col;
            }
        }
    }
}

class ScenarioGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioGolden, PooledRunnerReproducesSerialSnapshot) {
    const ScenarioSpec spec = tiny(GetParam());

    const ScenarioRunner serial_runner(nullptr);
    const ScenarioOutcome snapshot = serial_runner.run(spec);
    ASSERT_FALSE(snapshot.metrics.empty()) << GetParam();

    ThreadPool pool(4);
    const ScenarioRunner pooled_runner(&pool);
    const ScenarioOutcome pooled = pooled_runner.run(spec);

    ASSERT_EQ(snapshot.metrics.size(), pooled.metrics.size()) << GetParam();
    for (const auto& [key, value] : snapshot.metrics) {
        const auto it = pooled.metrics.find(key);
        ASSERT_NE(it, pooled.metrics.end()) << GetParam() << " lost metric " << key;
        // Bit-exact, not approximately equal: the pooled path must not
        // perturb a single rounding.
        EXPECT_EQ(value, it->second) << GetParam() << " metric " << key;
    }

    // The rendered tables carry the attack-success-rate sweeps; they must
    // agree cell for cell too.
    ASSERT_EQ(snapshot.tables.size(), pooled.tables.size()) << GetParam();
    for (std::size_t t = 0; t < snapshot.tables.size(); ++t) {
        EXPECT_EQ(snapshot.tables[t].first, pooled.tables[t].first);
        EXPECT_EQ(snapshot.tables[t].second.to_csv(), pooled.tables[t].second.to_csv())
            << GetParam() << " table " << snapshot.tables[t].first;
    }
}

TEST_P(ScenarioGolden, RepeatedSerialRunsAreIdentical) {
    // The snapshot itself must be stable run-to-run at a fixed seed —
    // otherwise the pooled comparison above would be vacuous.
    const ScenarioSpec spec = tiny(GetParam());
    const ScenarioRunner runner(nullptr);
    const ScenarioOutcome a = runner.run(spec);
    const ScenarioOutcome b = runner.run(spec);
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (const auto& [key, value] : a.metrics) {
        EXPECT_EQ(value, b.metrics.at(key)) << GetParam() << " metric " << key;
    }
}

TEST_P(ScenarioGolden, MatchesCommittedGoldenJson) {
    const std::string scenario = GetParam();
    const ScenarioRunner runner(nullptr);
    const ScenarioOutcome outcome = runner.run(tiny(scenario));
    const std::string path = golden_path(scenario);

    if (g_update_golden) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << to_golden_json(outcome, scenario);
        ASSERT_TRUE(static_cast<bool>(out)) << "short write to " << path;
        std::printf("[  golden  ] refreshed %s\n", path.c_str());
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run ./test_scenario_golden --update-golden to create it";
    std::stringstream buf;
    buf << in.rdbuf();
    const JsonValue golden = JsonParser(buf.str()).parse();

    const JsonValue* metrics = golden.find("metrics");
    ASSERT_NE(metrics, nullptr) << path;
    std::map<std::string, double> expected;
    for (const auto& [key, v] : metrics->object) {
        ASSERT_EQ(v.kind, JsonValue::Kind::Number) << path << " metric " << key;
        expected[key] = v.number;
    }
    ASSERT_EQ(expected.size(), outcome.metrics.size()) << scenario << ": metric set changed — "
        << "intentional? refresh with --update-golden";
    for (const auto& [key, value] : outcome.metrics) {
        const auto it = expected.find(key);
        ASSERT_NE(it, expected.end()) << scenario << " gained metric " << key;
        EXPECT_TRUE(close_enough(it->second, value))
            << scenario << " metric " << key << ": golden " << format_double(it->second)
            << " vs " << format_double(value);
    }

    const JsonValue* tables = golden.find("tables");
    ASSERT_NE(tables, nullptr) << path;
    ASSERT_EQ(tables->array.size(), outcome.tables.size()) << scenario;
    for (std::size_t t = 0; t < outcome.tables.size(); ++t) {
        const JsonValue* title = tables->array[t].find("title");
        const JsonValue* csv = tables->array[t].find("csv");
        ASSERT_NE(title, nullptr);
        ASSERT_NE(csv, nullptr);
        EXPECT_EQ(title->string, outcome.tables[t].first) << scenario << " table " << t;
        expect_csv_near(csv->string, outcome.tables[t].second.to_csv(),
                        scenario + " table " + outcome.tables[t].first);
    }
}

INSTANTIATE_TEST_SUITE_P(DefendedAndNonIdeal, ScenarioGolden, ::testing::ValuesIn(kScenarios),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                             return sanitized(info.param);
                         });

}  // namespace
}  // namespace xbarsec::core

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    // InitGoogleTest strips the flags it owns; ours remain.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--update-golden") {
            xbarsec::core::g_update_golden = true;
        } else if (arg.rfind("--golden-dir=", 0) == 0) {
            xbarsec::core::g_golden_dir = arg.substr(std::string("--golden-dir=").size());
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 2;
        }
    }
    if (const char* env = std::getenv("XBARSEC_UPDATE_GOLDEN");
        env != nullptr && *env != '\0' && std::string(env) != "0") {
        xbarsec::core::g_update_golden = true;
    }
    return RUN_ALL_TESTS();
}
