// Power-obfuscation counter-measure tests.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/sidechannel/obfuscation.hpp"
#include "xbarsec/stats/descriptive.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::sidechannel {
namespace {

xbar::Crossbar make_crossbar(Rng& rng, std::size_t rows, std::size_t cols) {
    xbar::DeviceSpec spec;
    spec.g_on_max = 100e-6;
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, rows, cols);
    return xbar::Crossbar(map_weights(W, spec));
}

TotalCurrentFn raw_measure(const xbar::Crossbar& xbar) {
    return [&xbar](const tensor::Vector& v) { return xbar.total_current(v); };
}

TEST(Dither, AddsZeroMeanNoiseOfConfiguredScale) {
    Rng rng(1);
    const xbar::Crossbar xbar = make_crossbar(rng, 6, 4);
    const tensor::Vector u(4, 1.0);
    const double truth = xbar.total_current(u);
    const double sigma = 0.2 * std::abs(truth);
    const TotalCurrentFn dithered = make_dithered_measure(raw_measure(xbar), sigma, 7);
    std::vector<double> readings(500);
    for (auto& r : readings) r = dithered(u);
    const stats::Summary s = stats::summarize(readings);
    EXPECT_NEAR(s.mean, truth, 0.05 * std::abs(truth));
    EXPECT_NEAR(s.stddev, sigma, 0.2 * sigma);
}

TEST(Dither, DegradesSingleProbeButAveragingRecovers) {
    Rng rng(2);
    const xbar::Crossbar xbar = make_crossbar(rng, 8, 10);
    const tensor::Vector truth = xbar.column_conductances();
    const double scale = tensor::max(truth);
    const TotalCurrentFn dithered =
        make_dithered_measure(raw_measure(xbar), 0.3 * scale, 11);
    ProbeOptions one;
    one.repeats = 1;
    ProbeOptions many;
    many.repeats = 100;
    const double err_one = relative_error(probe_columns(dithered, 10, one).conductance_sums, truth);
    const double err_many =
        relative_error(probe_columns(dithered, 10, many).conductance_sums, truth);
    EXPECT_GT(err_one, err_many);
    EXPECT_LT(err_many, 0.1) << "dithering alone is defeated by averaging";
}

TEST(UniformDummy, ShiftsEstimatesButPreservesRanking) {
    // The key negative result: identical dummies on every line cannot hide
    // the 1-norm *ranking* — basis probes all gain the same offset.
    Rng rng(3);
    const xbar::Crossbar xbar = make_crossbar(rng, 6, 12);
    const tensor::Vector truth = xbar.column_conductances();
    const TotalCurrentFn defended = make_uniform_dummy_measure(raw_measure(xbar), 50e-6);
    const ProbeResult r = probe_columns(defended, 12);
    for (std::size_t j = 0; j < 12; ++j) {
        EXPECT_NEAR(r.conductance_sums[j] - truth[j], 50e-6, 1e-12) << "uniform offset expected";
    }
    EXPECT_EQ(tensor::argmax(r.conductance_sums), tensor::argmax(truth));
    EXPECT_DOUBLE_EQ(topk_agreement(r.conductance_sums, truth, 6), 1.0);
}

TEST(RandomDummy, CorruptsPerColumnEstimates) {
    Rng rng(4);
    const xbar::Crossbar xbar = make_crossbar(rng, 6, 12);
    const tensor::Vector truth = xbar.column_conductances();
    const double spread = tensor::max(truth);  // dummies comparable to signal
    const TotalCurrentFn defended =
        make_random_dummy_measure(raw_measure(xbar), 12, spread, 13);
    const ProbeResult r = probe_columns(defended, 12);
    // Estimates deviate column-dependently...
    double min_dev = 1e300, max_dev = 0.0;
    for (std::size_t j = 0; j < 12; ++j) {
        const double dev = r.conductance_sums[j] - truth[j];
        min_dev = std::min(min_dev, dev);
        max_dev = std::max(max_dev, dev);
        EXPECT_GE(dev, -1e-15);  // dummy loads only add current
    }
    EXPECT_GT(max_dev - min_dev, 0.1 * spread) << "random dummies must vary per line";
    // ...and averaging does NOT remove them (they are static, not noise).
    ProbeOptions many;
    many.repeats = 50;
    const ProbeResult averaged = probe_columns(defended, 12, many);
    EXPECT_GT(relative_error(averaged.conductance_sums, truth), 0.05);
}

TEST(DummyLoad, ExplicitVectorForm) {
    Rng rng(5);
    const xbar::Crossbar xbar = make_crossbar(rng, 3, 3);
    tensor::Vector g_line{10e-6, 0.0, 5e-6};
    const TotalCurrentFn defended = make_dummy_load_measure(raw_measure(xbar), g_line);
    const tensor::Vector probe = tensor::Vector::basis(3, 0, 1.0);
    EXPECT_NEAR(defended(probe) - xbar.total_current(probe), 10e-6, 1e-15);
}

TEST(Obfuscation, Validation) {
    EXPECT_THROW(make_dithered_measure(TotalCurrentFn{}, 1.0, 0), ContractViolation);
    Rng rng(6);
    const xbar::Crossbar xbar = make_crossbar(rng, 2, 2);
    EXPECT_THROW(make_dithered_measure(raw_measure(xbar), -1.0, 0), ContractViolation);
    EXPECT_THROW(make_uniform_dummy_measure(raw_measure(xbar), -1e-6), ContractViolation);
}

}  // namespace
}  // namespace xbarsec::sidechannel
