// Optimizer and trainer tests: update math, convergence, and the
// headline "single layer reaches ≈90% on the MNIST-like data" check.
#include <gtest/gtest.h>

#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/nn/optimizer.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/tensor/gemm.hpp"

namespace xbarsec::nn {
namespace {

TEST(Sgd, PlainStepMath) {
    Sgd opt(0.1);
    const auto slot = opt.register_parameter(2);
    std::vector<double> param{1.0, -1.0};
    const std::vector<double> grad{2.0, -4.0};
    opt.step(slot, param, grad);
    EXPECT_DOUBLE_EQ(param[0], 0.8);
    EXPECT_DOUBLE_EQ(param[1], -0.6);
}

TEST(Sgd, MomentumAccumulates) {
    Sgd opt(0.1, 0.9);
    const auto slot = opt.register_parameter(1);
    std::vector<double> param{0.0};
    const std::vector<double> grad{1.0};
    opt.step(slot, param, grad);  // v = -0.1, p = -0.1
    EXPECT_NEAR(param[0], -0.1, 1e-12);
    opt.step(slot, param, grad);  // v = -0.19, p = -0.29
    EXPECT_NEAR(param[0], -0.29, 1e-12);
}

TEST(Sgd, ValidationAndLearningRateUpdates) {
    EXPECT_THROW(Sgd(0.0), ContractViolation);
    EXPECT_THROW(Sgd(0.1, 1.0), ContractViolation);
    Sgd opt(0.1);
    EXPECT_THROW(opt.set_learning_rate(-0.1), ContractViolation);
    opt.set_learning_rate(0.2);
    EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.2);
}

TEST(Adam, FirstStepIsLearningRateSized) {
    Adam opt(0.001);
    const auto slot = opt.register_parameter(1);
    std::vector<double> param{0.0};
    const std::vector<double> grad{123.0};
    opt.step(slot, param, grad);
    // Bias-corrected first step ≈ lr·sign(grad) regardless of magnitude.
    EXPECT_NEAR(param[0], -0.001, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
    // min (x-3)²: gradient 2(x-3).
    Adam opt(0.1);
    const auto slot = opt.register_parameter(1);
    std::vector<double> x{0.0};
    for (int i = 0; i < 500; ++i) {
        const std::vector<double> grad{2.0 * (x[0] - 3.0)};
        opt.step(slot, x, grad);
    }
    EXPECT_NEAR(x[0], 3.0, 1e-2);
}

TEST(Optimizer, FactoryBuildsBothKinds) {
    EXPECT_NE(make_optimizer(OptimizerKind::Sgd, 0.1, 0.0), nullptr);
    EXPECT_NE(make_optimizer(OptimizerKind::Adam, 0.001, 0.0), nullptr);
}

data::Dataset linearly_separable(std::size_t n, Rng& rng) {
    // 3 classes in 2-D on distinct ray directions, so they are separable
    // by a linear score function *through the origin* (the nets carry no
    // bias, matching the crossbar constraint).
    tensor::Matrix inputs(n, 2);
    std::vector<int> labels(n);
    const double cx[3] = {1.0, -0.2, -0.8};
    const double cy[3] = {0.1, 1.0, -0.8};
    for (std::size_t i = 0; i < n; ++i) {
        const int c = static_cast<int>(i % 3);
        inputs(i, 0) = cx[c] + rng.normal(0.0, 0.08);
        inputs(i, 1) = cy[c] + rng.normal(0.0, 0.08);
        labels[i] = c;
    }
    return data::Dataset(std::move(inputs), std::move(labels), 3, data::ImageShape{1, 2, 1});
}

TEST(Trainer, LossDecreasesAndSeparableProblemIsLearned) {
    Rng rng(1);
    const data::Dataset train_set = linearly_separable(300, rng);
    SingleLayerNet net(rng, 2, 3, Activation::Softmax, Loss::CategoricalCrossentropy);
    TrainConfig config;
    config.epochs = 40;
    config.batch_size = 16;
    config.learning_rate = 0.5;
    config.momentum = 0.9;
    const TrainHistory h = train(net, train_set, config);
    ASSERT_EQ(h.epoch_loss.size(), 40u);
    EXPECT_LT(h.epoch_loss.back(), 0.5 * h.epoch_loss.front());
    EXPECT_GT(accuracy(net, train_set), 0.95);
}

TEST(Trainer, LinearMseConfigurationAlsoLearns) {
    Rng rng(2);
    const data::Dataset train_set = linearly_separable(300, rng);
    SingleLayerNet net(rng, 2, 3, Activation::Linear, Loss::Mse);
    TrainConfig config;
    config.epochs = 60;
    config.batch_size = 16;
    config.learning_rate = 0.5;
    config.momentum = 0.9;
    train(net, train_set, config);
    EXPECT_GT(accuracy(net, train_set), 0.9);
}

TEST(Trainer, RegressionFitsLinearMap) {
    Rng rng(3);
    const tensor::Matrix W_true = tensor::Matrix::random_normal(rng, 3, 5);
    const tensor::Matrix X = tensor::Matrix::random_uniform(rng, 200, 5);
    tensor::Matrix Y(200, 3, 0.0);
    tensor::gemm(1.0, X, tensor::Op::None, W_true, tensor::Op::Transpose, 0.0, Y);

    SingleLayerNet net(rng, 5, 3, Activation::Linear, Loss::Mse);
    TrainConfig config;
    config.epochs = 150;
    config.batch_size = 20;
    config.learning_rate = 0.3;
    config.momentum = 0.9;
    const TrainHistory h = train_regression(net, X, Y, config);
    EXPECT_LT(h.final_loss(), 1e-3);
    EXPECT_LT(mean_loss_regression(net, X, Y), 1e-3);
}

TEST(Trainer, EpochLossHistoryIsMonotoneOnEasyProblem) {
    Rng rng(4);
    const data::Dataset train_set = linearly_separable(150, rng);
    SingleLayerNet net(rng, 2, 3, Activation::Softmax, Loss::CategoricalCrossentropy);
    TrainConfig config;
    config.epochs = 10;
    config.learning_rate = 0.3;
    const TrainHistory h = xbarsec::nn::train(net, train_set, config);
    // Not strictly monotone in general, but the first epoch must beat the
    // last by a wide margin on this trivial problem.
    EXPECT_LT(h.epoch_loss.back(), h.epoch_loss.front());
}

TEST(Trainer, ValidatesConfiguration) {
    Rng rng(5);
    const data::Dataset train_set = linearly_separable(30, rng);
    SingleLayerNet net(rng, 2, 3, Activation::Softmax, Loss::CategoricalCrossentropy);
    TrainConfig config;
    config.epochs = 0;
    EXPECT_THROW(xbarsec::nn::train(net, train_set, config), ContractViolation);
}

TEST(Trainer, SyntheticMnistReachesPaperAccuracyBand) {
    // The headline calibration check: a single softmax layer on the
    // synthetic MNIST stand-in must land in the paper's ~0.85+ band.
    data::SyntheticMnistConfig dc;
    dc.train_count = 2000;
    dc.test_count = 500;
    const data::DataSplit split = data::make_synthetic_mnist(dc);
    Rng rng(6);
    SingleLayerNet net(rng, 784, 10, Activation::Softmax, Loss::CategoricalCrossentropy);
    TrainConfig config;
    config.epochs = 15;
    config.batch_size = 32;
    config.learning_rate = 0.1;
    config.momentum = 0.9;
    config.final_lr_fraction = 0.1;
    train(net, split.train, config);
    const double acc = accuracy(net, split.test);
    EXPECT_GT(acc, 0.8) << "synthetic MNIST single-layer accuracy out of band";
}

TEST(Metrics, ConfusionMatrixRowsSumToClassCounts) {
    Rng rng(7);
    const data::Dataset d = linearly_separable(90, rng);
    SingleLayerNet net(rng, 2, 3, Activation::Softmax, Loss::CategoricalCrossentropy);
    const tensor::Matrix cm = confusion_matrix(net, d);
    const auto counts = d.class_counts();
    for (std::size_t c = 0; c < 3; ++c) {
        double row_sum = 0.0;
        for (std::size_t p = 0; p < 3; ++p) row_sum += cm(c, p);
        EXPECT_DOUBLE_EQ(row_sum, static_cast<double>(counts[c]));
    }
}

TEST(Metrics, AccuracyOnExplicitMatrix) {
    SingleLayerNet net(DenseLayer(2, 2), Activation::Linear, Loss::Mse);
    net.weights() = tensor::Matrix{{1, 0}, {0, 1}};
    tensor::Matrix X{{3, 1}, {1, 3}};
    EXPECT_DOUBLE_EQ(accuracy(net, X, {0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(accuracy(net, X, {1, 0}), 0.0);
}

}  // namespace
}  // namespace xbarsec::nn
