// Power-probe tests: exact recovery, noisy averaging, unit conversion,
// and the ranking metrics the attacks consume.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::sidechannel {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

TEST(Probe, ExactRecoveryOnIdealCrossbar) {
    Rng rng(1);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 10, 23);
    const xbar::Crossbar xbar(map_weights(W, ideal_spec()));
    const ProbeResult r = probe_columns(xbar);
    ASSERT_EQ(r.conductance_sums.size(), 23u);
    EXPECT_EQ(r.queries, 23u);
    const tensor::Vector truth = xbar.column_conductances();
    for (std::size_t j = 0; j < 23; ++j) EXPECT_NEAR(r.conductance_sums[j], truth[j], 1e-15);
}

TEST(Probe, ProbeVoltageCancels) {
    Rng rng(2);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 4, 7);
    const xbar::Crossbar xbar(map_weights(W, ideal_spec()));
    ProbeOptions lo, hi;
    lo.probe_voltage = 0.1;
    hi.probe_voltage = 1.0;
    const ProbeResult a = probe_columns(xbar, lo);
    const ProbeResult b = probe_columns(xbar, hi);
    for (std::size_t j = 0; j < 7; ++j)
        EXPECT_NEAR(a.conductance_sums[j], b.conductance_sums[j], 1e-12);
}

TEST(Probe, RepeatsAverageDownNoise) {
    Rng rng(3);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 8, 5);
    xbar::NonIdealityConfig nonideal;
    nonideal.read_noise_std = 0.1;
    const xbar::Crossbar xbar(map_weights(W, ideal_spec()), nonideal);
    const tensor::Vector truth = xbar.column_conductances();

    ProbeOptions one, many;
    one.repeats = 1;
    many.repeats = 64;
    const double err_one = relative_error(probe_columns(xbar, one).conductance_sums, truth);
    const double err_many = relative_error(probe_columns(xbar, many).conductance_sums, truth);
    EXPECT_LT(err_many, err_one);
    EXPECT_LT(err_many, 0.05);  // 64 repeats: σ/8 ≈ 1.2% per column
}

TEST(Probe, QueryAccountingIncludesRepeats) {
    Rng rng(4);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 3, 6);
    const xbar::Crossbar xbar(map_weights(W, ideal_spec()));
    ProbeOptions o;
    o.repeats = 5;
    const ProbeResult r = probe_columns(xbar, o);
    EXPECT_EQ(r.queries, 30u);
    EXPECT_EQ(xbar.measurement_count(), 30u);
}

TEST(Probe, CallbackFormMatchesDirectForm) {
    Rng rng(5);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 6, 4);
    const xbar::Crossbar xbar(map_weights(W, ideal_spec()));
    const ProbeResult direct = probe_columns(xbar);
    const ProbeResult indirect = probe_columns(
        [&xbar](const tensor::Vector& v) { return xbar.total_current(v); }, 4);
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(direct.conductance_sums[j], indirect.conductance_sums[j], 1e-15);
    }
}

TEST(Probe, ConductanceToL1UndoesTheMapping) {
    Rng rng(6);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 9, 12);
    xbar::DeviceSpec spec = ideal_spec();
    spec.g_off = 3e-6;  // non-trivial affine offset
    const xbar::CrossbarProgram program = map_weights(W, spec);
    const xbar::Crossbar xbar(program);
    const ProbeResult r = probe_columns(xbar);
    const tensor::Vector l1 =
        conductance_to_l1(r.conductance_sums, 9, spec.g_off, program.weight_scale);
    const tensor::Vector truth = tensor::column_abs_sums(W);
    for (std::size_t j = 0; j < 12; ++j) EXPECT_NEAR(l1[j], truth[j], 1e-9);
}

TEST(Probe, GoffOffsetPreservesRanking) {
    // Even without knowing g_off, the raw conductance sums rank columns
    // identically to the true 1-norms (the offset is j-independent) —
    // which is all the Figure-4 attacks need.
    Rng rng(7);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 6, 15);
    xbar::DeviceSpec spec = ideal_spec();
    spec.g_off = 8e-6;
    const xbar::Crossbar xbar(map_weights(W, spec));
    const ProbeResult r = probe_columns(xbar);
    const tensor::Vector truth = tensor::column_abs_sums(W);
    EXPECT_EQ(tensor::argmax(r.conductance_sums), tensor::argmax(truth));
    EXPECT_DOUBLE_EQ(topk_agreement(r.conductance_sums, truth, 5), 1.0);
}

TEST(Probe, RelativeErrorBasics) {
    const tensor::Vector truth{3.0, 4.0};
    EXPECT_DOUBLE_EQ(relative_error(truth, truth), 0.0);
    EXPECT_NEAR(relative_error(tensor::Vector{3.0, 4.0 + 5.0}, truth), 1.0, 1e-12);
    EXPECT_THROW(relative_error(truth, tensor::Vector{0.0, 0.0}), ContractViolation);
}

TEST(Probe, TopkAgreementCountsOverlap) {
    const tensor::Vector est{1.0, 9.0, 2.0, 8.0};
    const tensor::Vector truth{9.0, 8.0, 1.0, 2.0};
    // top-2(est) = {1, 3}; top-2(truth) = {0, 1} → overlap {1} → 0.5.
    EXPECT_DOUBLE_EQ(topk_agreement(est, truth, 2), 0.5);
    EXPECT_DOUBLE_EQ(topk_agreement(truth, truth, 4), 1.0);
    EXPECT_THROW(topk_agreement(est, truth, 0), ContractViolation);
    EXPECT_THROW(topk_agreement(est, truth, 5), ContractViolation);
}

TEST(Probe, OptionValidation) {
    Rng rng(8);
    const tensor::Matrix W = tensor::Matrix::random_normal(rng, 2, 2);
    const xbar::Crossbar xbar(map_weights(W, ideal_spec()));
    ProbeOptions bad;
    bad.repeats = 0;
    EXPECT_THROW(probe_columns(xbar, bad), ContractViolation);
    bad = {};
    bad.probe_voltage = 0.0;
    EXPECT_THROW(probe_columns(xbar, bad), ContractViolation);
    EXPECT_THROW(probe_columns(TotalCurrentFn{}, 2), ContractViolation);
}

}  // namespace
}  // namespace xbarsec::sidechannel
