// Kernel-variant conformance: every ISA arm of the GEMM dispatcher obeys
// the same contracts.
//
// The dispatcher compiles a portable 4×4 tile plus AVX2 (6×8/6×4) and
// AVX-512 (12×8/8×8) arms and picks at runtime. This suite forces each
// variant the host supports via set_kernel_variant() and re-asserts the
// kernel-layer contracts per variant:
//   * correctness against the reference triple loop, all transpose
//     combinations, alpha/beta cases;
//   * pool-sharded == serial, bit for bit;
//   * gemm_rowstable's scalar-vs-batch agreement — any row sub-batch
//     (down to single rows) reproduces the full product's bits;
//   * cross-variant agreement to rounding tolerance.
// ctest runs this as part of the `kernel` label; the full test_gemm suite
// additionally runs once per variant via XBARSEC_FORCE_KERNEL (see
// CMakeLists.txt).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "xbarsec/common/error.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::tensor {
namespace {

/// Restores the entry state on scope exit so a forced variant never leaks
/// into other tests in this binary.
class VariantGuard {
public:
    VariantGuard() : saved_(forced_kernel_variant()) {}
    ~VariantGuard() { set_kernel_variant(saved_); }

private:
    KernelVariant saved_;
};

std::vector<KernelVariant> available_variants() {
    std::vector<KernelVariant> out{KernelVariant::Portable};
    if (kernel_variant_available(KernelVariant::Avx2)) out.push_back(KernelVariant::Avx2);
    if (kernel_variant_available(KernelVariant::Avx512)) out.push_back(KernelVariant::Avx512);
    return out;
}

Matrix reference_matmul(const Matrix& A, const Matrix& B) {
    Matrix C(A.rows(), B.cols(), 0.0);
    for (std::size_t i = 0; i < A.rows(); ++i)
        for (std::size_t k = 0; k < A.cols(); ++k)
            for (std::size_t j = 0; j < B.cols(); ++j) C(i, j) += A(i, k) * B(k, j);
    return C;
}

TEST(KernelVariants, NamesRoundTripAndParseRejectsUnknown) {
    for (const KernelVariant v : {KernelVariant::Auto, KernelVariant::Portable,
                                  KernelVariant::Avx2, KernelVariant::Avx512}) {
        EXPECT_EQ(parse_kernel_variant(to_string(v)), v);
    }
    EXPECT_THROW(parse_kernel_variant("sse9"), ConfigError);
    EXPECT_THROW(parse_kernel_variant(""), ConfigError);
}

TEST(KernelVariants, ForcingAnUnavailableVariantThrows) {
    VariantGuard guard;
    for (const KernelVariant v : {KernelVariant::Avx2, KernelVariant::Avx512}) {
        if (!kernel_variant_available(v)) {
            EXPECT_THROW(set_kernel_variant(v), ConfigError) << to_string(v);
        }
    }
    // Portable and Auto are always forceable.
    set_kernel_variant(KernelVariant::Portable);
    EXPECT_EQ(forced_kernel_variant(), KernelVariant::Portable);
    set_kernel_variant(KernelVariant::Auto);
    EXPECT_EQ(forced_kernel_variant(), KernelVariant::Auto);
}

TEST(KernelVariants, EveryVariantMatchesReferenceAcrossShapesAndOps) {
    VariantGuard guard;
    for (const KernelVariant v : available_variants()) {
        set_kernel_variant(v);
        Rng rng(41);
        // Shapes spanning every dispatch path: sub-tile, single full tile,
        // multiple k-blocks, ragged tails, the paper's 10-class heads, and
        // rows past every MR geometry (4/6/8/12).
        const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
            {1, 1, 1}, {3, 5, 7},  {13, 300, 10}, {33, 64, 33},
            {12, 7, 8}, {65, 257, 19}, {10, 784, 12},
        };
        for (const auto& [m, k, n] : shapes) {
            for (const Op opA : {Op::None, Op::Transpose}) {
                for (const Op opB : {Op::None, Op::Transpose}) {
                    const Matrix A = opA == Op::None ? Matrix::random_normal(rng, m, k)
                                                     : Matrix::random_normal(rng, k, m);
                    const Matrix B = opB == Op::None ? Matrix::random_normal(rng, k, n)
                                                     : Matrix::random_normal(rng, n, k);
                    const Matrix C0 = Matrix::random_normal(rng, m, n);
                    for (const auto& [alpha, beta] :
                         {std::pair{1.0, 0.0}, {2.0, 1.0}, {-0.5, 0.25}}) {
                        Matrix C = C0;
                        gemm(alpha, A, opA, B, opB, beta, C);
                        const Matrix Aeff = opA == Op::None ? A : A.transposed();
                        const Matrix Beff = opB == Op::None ? B : B.transposed();
                        Matrix expected = reference_matmul(Aeff, Beff);
                        for (std::size_t i = 0; i < m; ++i) {
                            for (std::size_t j = 0; j < n; ++j) {
                                ASSERT_NEAR(C(i, j), alpha * expected(i, j) + beta * C0(i, j),
                                            1e-9)
                                    << to_string(v) << " m=" << m << " k=" << k << " n=" << n;
                            }
                        }
                    }
                }
            }
        }
    }
}

TEST(KernelVariants, EveryVariantIsPoolPartitionBitExact) {
    VariantGuard guard;
    ThreadPool pool(3);
    for (const KernelVariant v : available_variants()) {
        set_kernel_variant(v);
        Rng rng(43);
        const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
            {256, 300, 100}, {197, 64, 129}, {512, 784, 10},
        };
        for (const auto& [m, k, n] : shapes) {
            const Matrix A = Matrix::random_normal(rng, m, k);
            const Matrix B = Matrix::random_normal(rng, k, n);
            Matrix serial(m, n, 0.0), pooled(m, n, 0.0);
            gemm(1.0, A, Op::None, B, Op::None, 0.0, serial);
            gemm(1.0, A, Op::None, B, Op::None, 0.0, pooled, &pool);
            ASSERT_EQ(serial, pooled) << to_string(v) << " m=" << m << " k=" << k << " n=" << n;
        }
    }
}

TEST(KernelVariants, ScalarVsBatchAgreementPerVariant) {
    // The crossbar's reproducibility contract: querying row-by-row (the
    // scalar path) must reproduce the batched product bit for bit under
    // every variant. gemm_rowstable carries that contract; single-row
    // sub-batches are exactly the scalar case.
    VariantGuard guard;
    for (const KernelVariant v : available_variants()) {
        set_kernel_variant(v);
        Rng rng(47);
        const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
            {64, 784, 10},  // batched-inference shape
            {37, 33, 100},  // ragged, wide outputs
            {25, 8, 8},     // one full AVX-512 strip
        };
        for (const auto& [m, k, n] : shapes) {
            const Matrix A = Matrix::random_normal(rng, m, k);
            const Matrix B = Matrix::random_normal(rng, k, n);
            Matrix full(m, n, 0.0);
            gemm_rowstable(1.0, A, Op::None, B, Op::None, 0.0, full);
            for (std::size_t r = 0; r < m; ++r) {
                Matrix row(1, k);
                for (std::size_t c = 0; c < k; ++c) row(0, c) = A(r, c);
                Matrix out(1, n, 0.0);
                gemm_rowstable(1.0, row, Op::None, B, Op::None, 0.0, out);
                for (std::size_t j = 0; j < n; ++j) {
                    ASSERT_EQ(out(0, j), full(r, j))
                        << to_string(v) << " row " << r << " m=" << m << " n=" << n;
                }
            }
        }
    }
}

TEST(KernelVariants, VariantsAgreeWithEachOtherToRounding) {
    VariantGuard guard;
    const auto variants = available_variants();
    Rng rng(53);
    const Matrix A = Matrix::random_normal(rng, 40, 120);
    const Matrix B = Matrix::random_normal(rng, 120, 35);
    std::vector<Matrix> results;
    for (const KernelVariant v : variants) {
        set_kernel_variant(v);
        Matrix C(40, 35, 0.0);
        gemm(1.0, A, Op::None, B, Op::None, 0.0, C);
        results.push_back(std::move(C));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        for (std::size_t r = 0; r < 40; ++r) {
            for (std::size_t j = 0; j < 35; ++j) {
                ASSERT_NEAR(results[0](r, j), results[i](r, j), 1e-10)
                    << to_string(variants[i]) << " vs " << to_string(variants[0]);
            }
        }
    }
}

TEST(KernelVariants, MatvecAgreesWithGemmPerVariant) {
    // The BLAS-2 layer is a separate code path from the GEMM tiles; the
    // two must stay numerically interchangeable under every variant.
    VariantGuard guard;
    for (const KernelVariant v : available_variants()) {
        set_kernel_variant(v);
        Rng rng(59);
        const Matrix W = Matrix::random_normal(rng, 30, 90);
        const Matrix U = Matrix::random_normal(rng, 1, 90);
        Vector u(90);
        for (std::size_t i = 0; i < 90; ++i) u[i] = U(0, i);
        const Vector s = matvec(W, u);
        Matrix S(1, 30, 0.0);
        gemm(1.0, U, Op::None, W, Op::Transpose, 0.0, S);
        for (std::size_t i = 0; i < 30; ++i) {
            ASSERT_NEAR(s[i], S(0, i), 1e-10) << to_string(v) << " i=" << i;
        }
    }
}

}  // namespace
}  // namespace xbarsec::tensor
