// Synthetic MNIST generator tests: determinism, geometry, and the
// statistical properties the paper's phenomena rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::data {
namespace {

TEST(DigitStrokes, AllDigitsHaveInkInsideTheCanvas) {
    for (int d = 0; d <= 9; ++d) {
        const StrokeSet& strokes = digit_strokes(d);
        ASSERT_FALSE(strokes.empty()) << "digit " << d;
        for (const Stroke& s : strokes) {
            ASSERT_GE(s.size(), 2u);
            for (const Point& p : s) {
                EXPECT_GE(p.x, -0.05);
                EXPECT_LE(p.x, 1.05);
                EXPECT_GE(p.y, -0.05);
                EXPECT_LE(p.y, 1.05);
            }
        }
    }
    EXPECT_THROW(digit_strokes(10), xbarsec::ContractViolation);
    EXPECT_THROW(digit_strokes(-1), xbarsec::ContractViolation);
}

TEST(RenderDigit, PixelRangeAndInkPresence) {
    SyntheticMnistConfig config;
    Rng rng(7);
    for (int d = 0; d <= 9; ++d) {
        const tensor::Vector img = render_digit(d, rng, config);
        ASSERT_EQ(img.size(), 28u * 28u);
        for (const double px : img) {
            EXPECT_GE(px, 0.0);
            EXPECT_LE(px, 1.0);
        }
        // A digit must actually contain ink.
        EXPECT_GT(tensor::sum(img), 10.0) << "digit " << d;
    }
}

TEST(RenderDigit, DeterministicGivenRngState) {
    SyntheticMnistConfig config;
    Rng r1(11), r2(11);
    EXPECT_EQ(render_digit(3, r1, config), render_digit(3, r2, config));
}

TEST(RenderDigit, JitterProducesVariation) {
    SyntheticMnistConfig config;
    Rng rng(13);
    const tensor::Vector a = render_digit(5, rng, config);
    const tensor::Vector b = render_digit(5, rng, config);
    tensor::Vector diff = a;
    diff -= b;
    EXPECT_GT(tensor::norm2(diff), 0.5);  // same class, visibly different sample
}

TEST(MakeSyntheticMnist, ShapesAndBalance) {
    SyntheticMnistConfig config;
    config.train_count = 200;
    config.test_count = 100;
    const DataSplit split = make_synthetic_mnist(config);
    EXPECT_EQ(split.train.size(), 200u);
    EXPECT_EQ(split.test.size(), 100u);
    EXPECT_EQ(split.train.input_dim(), 784u);
    EXPECT_EQ(split.train.num_classes(), 10u);
    EXPECT_EQ(split.train.shape(), (ImageShape{28, 28, 1}));
    for (const auto count : split.train.class_counts()) EXPECT_EQ(count, 20u);
    for (const auto count : split.test.class_counts()) EXPECT_EQ(count, 10u);
}

TEST(MakeSyntheticMnist, SeedReproducibility) {
    SyntheticMnistConfig config;
    config.train_count = 50;
    config.test_count = 20;
    const DataSplit a = make_synthetic_mnist(config);
    const DataSplit b = make_synthetic_mnist(config);
    EXPECT_EQ(a.train.inputs(), b.train.inputs());
    EXPECT_EQ(a.test.labels(), b.test.labels());
    config.seed = 43;
    const DataSplit c = make_synthetic_mnist(config);
    EXPECT_NE(a.train.inputs(), c.train.inputs());
}

TEST(MakeSyntheticMnist, TrainAndTestAreIndependentDraws) {
    SyntheticMnistConfig config;
    config.train_count = 30;
    config.test_count = 30;
    const DataSplit split = make_synthetic_mnist(config);
    // No identical rows between train and test (vanishingly unlikely with
    // independent jitter + noise unless the streams alias).
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        for (std::size_t j = 0; j < split.test.size(); ++j) {
            EXPECT_NE(split.train.input(i), split.test.input(j));
        }
    }
}

TEST(MakeSyntheticMnist, NearestClassMeanIsInformative) {
    // Classifiability probe without training a network: nearest class-mean
    // classification should be far above the 10% chance level. (The full
    // "single layer reaches ≈90%" check lives in the trainer tests.)
    SyntheticMnistConfig config;
    config.train_count = 600;
    config.test_count = 200;
    const DataSplit split = make_synthetic_mnist(config);

    std::vector<tensor::Vector> means(10, tensor::Vector(784, 0.0));
    std::vector<double> counts(10, 0.0);
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        means[static_cast<std::size_t>(split.train.label(i))] += split.train.input(i);
        counts[static_cast<std::size_t>(split.train.label(i))] += 1.0;
    }
    for (int c = 0; c < 10; ++c) means[static_cast<std::size_t>(c)] /= counts[static_cast<std::size_t>(c)];

    std::size_t hits = 0;
    for (std::size_t i = 0; i < split.test.size(); ++i) {
        const tensor::Vector u = split.test.input(i);
        int best = -1;
        double best_d = 1e300;
        for (int c = 0; c < 10; ++c) {
            tensor::Vector diff = u;
            diff -= means[static_cast<std::size_t>(c)];
            const double d = tensor::norm2(diff);
            if (d < best_d) {
                best_d = d;
                best = c;
            }
        }
        if (best == split.test.label(i)) ++hits;
    }
    const double acc = static_cast<double>(hits) / static_cast<double>(split.test.size());
    EXPECT_GT(acc, 0.6) << "digit classes are not distinguishable enough";
}

TEST(MakeSyntheticMnist, InkIsCentreConcentrated) {
    // The paper's Figure-3 smoothness discussion depends on MNIST-like
    // centre-weighted pixel statistics: border pixels carry almost no ink.
    SyntheticMnistConfig config;
    config.train_count = 300;
    config.test_count = 10;
    const DataSplit split = make_synthetic_mnist(config);
    tensor::Vector mean_img(784, 0.0);
    for (std::size_t i = 0; i < split.train.size(); ++i) mean_img += split.train.input(i);
    mean_img /= static_cast<double>(split.train.size());

    double border = 0.0, centre = 0.0;
    std::size_t border_n = 0, centre_n = 0;
    for (std::size_t y = 0; y < 28; ++y) {
        for (std::size_t x = 0; x < 28; ++x) {
            const double v = mean_img[y * 28 + x];
            if (y < 2 || y >= 26 || x < 2 || x >= 26) {
                border += v;
                ++border_n;
            } else if (y >= 10 && y < 18 && x >= 10 && x < 18) {
                centre += v;
                ++centre_n;
            }
        }
    }
    border /= static_cast<double>(border_n);
    centre /= static_cast<double>(centre_n);
    EXPECT_GT(centre, 4.0 * border);
}

TEST(MakeSyntheticMnist, RejectsEmptyCounts) {
    SyntheticMnistConfig config;
    config.train_count = 0;
    EXPECT_THROW(make_synthetic_mnist(config), xbarsec::ContractViolation);
}

}  // namespace
}  // namespace xbarsec::data
