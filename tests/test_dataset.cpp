// Dataset container tests.
#include <gtest/gtest.h>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/data/dataset.hpp"

namespace xbarsec::data {
namespace {

Dataset tiny_dataset() {
    tensor::Matrix inputs{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}, {0.7, 0.8}};
    return Dataset(std::move(inputs), {0, 1, 0, 1}, 2, ImageShape{1, 2, 1}, "tiny");
}

TEST(Dataset, BasicAccessors) {
    const Dataset d = tiny_dataset();
    EXPECT_EQ(d.size(), 4u);
    EXPECT_EQ(d.input_dim(), 2u);
    EXPECT_EQ(d.num_classes(), 2u);
    EXPECT_EQ(d.label(3), 1);
    EXPECT_EQ(d.name(), "tiny");
    const tensor::Vector u = d.input(1);
    EXPECT_DOUBLE_EQ(u[0], 0.3);
    EXPECT_DOUBLE_EQ(u[1], 0.4);
}

TEST(Dataset, OneHotTargets) {
    const Dataset d = tiny_dataset();
    const tensor::Matrix& t = d.targets();
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(t(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(t(1, 1), 1.0);
    const tensor::Vector tv = d.target(2);
    EXPECT_DOUBLE_EQ(tv[0], 1.0);
}

TEST(Dataset, ShapeMismatchThrows) {
    tensor::Matrix inputs(2, 3);
    EXPECT_THROW(Dataset(std::move(inputs), {0, 1}, 2, ImageShape{1, 2, 1}),
                 xbarsec::ContractViolation);
}

TEST(Dataset, LabelRangeValidated) {
    tensor::Matrix inputs(2, 2);
    EXPECT_THROW(Dataset(std::move(inputs), {0, 5}, 2, ImageShape{1, 2, 1}),
                 xbarsec::ContractViolation);
    tensor::Matrix inputs2(2, 2);
    EXPECT_THROW(Dataset(std::move(inputs2), {0, -1}, 2, ImageShape{1, 2, 1}),
                 xbarsec::ContractViolation);
}

TEST(Dataset, RowCountMismatchThrows) {
    tensor::Matrix inputs(3, 2);
    EXPECT_THROW(Dataset(std::move(inputs), {0, 1}, 2, ImageShape{1, 2, 1}),
                 xbarsec::ContractViolation);
}

TEST(Dataset, SubsetPreservesRowsAndLabels) {
    const Dataset d = tiny_dataset();
    const Dataset s = d.subset({2, 0});
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.label(0), 0);
    EXPECT_DOUBLE_EQ(s.input(0)[0], 0.5);
    EXPECT_DOUBLE_EQ(s.input(1)[0], 0.1);
    EXPECT_THROW(d.subset({7}), xbarsec::ContractViolation);
}

TEST(Dataset, TakeClampsToSize) {
    const Dataset d = tiny_dataset();
    EXPECT_EQ(d.take(2).size(), 2u);
    EXPECT_EQ(d.take(99).size(), 4u);
}

TEST(Dataset, ShuffleIsAPermutation) {
    Dataset d = tiny_dataset();
    Rng rng(3);
    d.shuffle(rng);
    EXPECT_EQ(d.size(), 4u);
    auto counts = d.class_counts();
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    // Every original row is still present somewhere.
    double total = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) total += d.input(i)[0];
    EXPECT_NEAR(total, 0.1 + 0.3 + 0.5 + 0.7, 1e-12);
}

TEST(Dataset, ClassCounts) {
    const Dataset d = tiny_dataset();
    const auto counts = d.class_counts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
}

TEST(OneHot, BuildsAndValidates) {
    const tensor::Matrix t = one_hot({1, 0, 2}, 3);
    EXPECT_DOUBLE_EQ(t(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(t(2, 2), 1.0);
    EXPECT_DOUBLE_EQ(t(1, 1), 0.0);
    EXPECT_THROW(one_hot({3}, 3), xbarsec::ContractViolation);
}

TEST(ImageShape, PixelsProduct) {
    const ImageShape s{32, 32, 3};
    EXPECT_EQ(s.pixels(), 3072u);
}

}  // namespace
}  // namespace xbarsec::data
