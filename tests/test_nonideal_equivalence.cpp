// Equivalence suite for the vectorized non-ideal crossbar paths (PR 3).
//
// The batched kernels fold line-resistance attenuation and stuck-cell
// faults into the programmed-conductance caches and draw read noise from
// the counter-based stream. These tests pin them to the retained per-cell
// reference simulation (output_currents_reference & friends): exact — up
// to floating-point summation reordering — for the line-resistance and
// stuck-cell paths, and exact at fixed seed for read noise too, because
// reference and fast paths consume identical (seed, measurement, element)
// noise coordinates. A separate statistical check bounds the realised
// noise spread. Runs across all four paper array shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "xbarsec/core/oracle.hpp"
#include "xbarsec/stats/descriptive.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/xbar/crossbar.hpp"
#include "xbarsec/xbar/xbar_network.hpp"

namespace xbarsec::xbar {
namespace {

struct Shape {
    std::size_t rows;
    std::size_t cols;
};

/// The four deployed-array shapes of the paper's experiments: the MNIST
/// and CIFAR heads, a ragged small array, and a many-output array (which
/// exercises the row-stable GEMM where the plain kernel would
/// transpose-swap small batches).
const Shape kPaperShapes[] = {{10, 784}, {10, 3072}, {7, 33}, {64, 8}};

DeviceSpec spec() {
    DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

tensor::Matrix weights(const Shape& shape, std::uint64_t seed) {
    Rng rng(seed);
    return tensor::Matrix::random_normal(rng, shape.rows, shape.cols);
}

/// Query batch with awkward structure: a zero row, zeroed entries, and
/// otherwise random voltages — the reference loop's v==0 skips must not
/// matter.
tensor::Matrix query_batch(std::size_t batch, std::size_t cols, std::uint64_t seed) {
    Rng rng(seed);
    tensor::Matrix V = tensor::Matrix::random_uniform(rng, batch, cols);
    for (std::size_t j = 0; j < cols; ++j) V(0, j) = 0.0;
    for (std::size_t r = 0; r < batch; ++r) V(r, r % cols) = 0.0;
    return V;
}

void expect_close(double actual, double expected, const char* what) {
    EXPECT_NEAR(actual, expected, 1e-9 * std::abs(expected) + 1e-16) << what;
}

/// Drives a fresh crossbar through the batched paths and an identically
/// configured fresh crossbar through the per-vector reference paths, and
/// requires matching outputs. Both sides consume identical measurement
/// counters, so this is exact under read noise too.
void check_equivalence(const Shape& shape, const NonIdealityConfig& nonideal,
                       std::uint64_t seed) {
    const tensor::Matrix W = weights(shape, seed);
    const Crossbar fast(map_weights(W, spec()), nonideal);
    const Crossbar reference(map_weights(W, spec()), nonideal);
    const tensor::Matrix V = query_batch(9, shape.cols, seed + 1);

    const tensor::Matrix batched = fast.output_currents_batch(V);
    for (std::size_t r = 0; r < V.rows(); ++r) {
        const tensor::Vector ref = reference.output_currents_reference(V.row(r));
        for (std::size_t i = 0; i < shape.rows; ++i) {
            expect_close(batched(r, i), ref[i], "output_currents_batch");
        }
    }

    const tensor::Vector totals = fast.total_current_batch(V);
    for (std::size_t r = 0; r < V.rows(); ++r) {
        expect_close(totals[r], reference.total_current_reference(V.row(r)),
                     "total_current_batch");
    }

    for (std::size_t r = 0; r < 3; ++r) {
        expect_close(fast.static_power(V.row(r)), reference.static_power_reference(V.row(r)),
                     "static_power");
    }
}

NonIdealityConfig with_line_resistance(double r) {
    NonIdealityConfig c;
    c.line_resistance = r;
    return c;
}

TEST(NonIdealEquivalence, LineResistanceMatchesReference) {
    std::uint64_t seed = 100;
    for (const Shape& shape : kPaperShapes) {
        for (const double r_line : {10.0, 50.0, 500.0}) {
            check_equivalence(shape, with_line_resistance(r_line), seed++);
        }
    }
}

TEST(NonIdealEquivalence, StuckCellsMatchReference) {
    std::uint64_t seed = 200;
    for (const Shape& shape : kPaperShapes) {
        NonIdealityConfig c;
        c.stuck_on_fraction = 0.03;
        c.stuck_off_fraction = 0.05;
        c.seed = 77 + seed;
        check_equivalence(shape, c, seed++);
    }
}

TEST(NonIdealEquivalence, LineResistancePlusStuckCellsMatchReference) {
    std::uint64_t seed = 300;
    for (const Shape& shape : kPaperShapes) {
        NonIdealityConfig c;
        c.line_resistance = 50.0;
        c.stuck_on_fraction = 0.02;
        c.stuck_off_fraction = 0.02;
        c.seed = 9 + seed;
        check_equivalence(shape, c, seed++);
    }
}

TEST(NonIdealEquivalence, ReadNoiseAtFixedSeedIsExact) {
    // Same (seed, measurement, element) coordinates on both sides ⇒ the
    // noise factors cancel and the comparison stays exact.
    std::uint64_t seed = 400;
    for (const Shape& shape : kPaperShapes) {
        NonIdealityConfig c;
        c.read_noise_std = 0.05;
        c.seed = 1234 + seed;
        check_equivalence(shape, c, seed++);
    }
}

TEST(NonIdealEquivalence, AllNonIdealitiesCombinedMatchReference) {
    std::uint64_t seed = 500;
    for (const Shape& shape : kPaperShapes) {
        NonIdealityConfig c;
        c.read_noise_std = 0.1;
        c.line_resistance = 100.0;
        c.stuck_on_fraction = 0.02;
        c.stuck_off_fraction = 0.03;
        c.seed = 4321 + seed;
        check_equivalence(shape, c, seed++);
    }
}

TEST(NonIdealEquivalence, BatchedReadNoiseSpreadIsStatisticallyBounded) {
    // The counter stream must still realise the configured relative
    // spread: 4096 batched readings of one input behave like independent
    // N(1, std) scalings.
    const tensor::Matrix W = weights({10, 64}, 42);
    NonIdealityConfig c;
    c.read_noise_std = 0.05;
    c.seed = 99;
    const Crossbar xbar(map_weights(W, spec()), c);
    const Crossbar clean(map_weights(W, spec()));

    const std::size_t reps = 4096;
    tensor::Matrix V(reps, 64);
    Rng rng(5);
    const tensor::Vector u = tensor::Vector::random_uniform(rng, 64);
    for (std::size_t r = 0; r < reps; ++r) {
        auto row = V.row_span(r);
        for (std::size_t j = 0; j < 64; ++j) row[j] = u[j];
    }
    const tensor::Vector readings = xbar.total_current_batch(V);
    const double truth = clean.total_current(u);
    std::vector<double> values(readings.begin(), readings.end());
    const stats::Summary s = stats::summarize(values);
    EXPECT_NEAR(s.mean, truth, 0.01 * std::abs(truth));
    EXPECT_NEAR(s.stddev / std::abs(truth), c.read_noise_std, 0.2 * c.read_noise_std);
}

TEST(NonIdealEquivalence, OraclePowerBatchMatchesReferenceUnderLineResistance) {
    // End-to-end through the attacker-facing API: query_power_batch on a
    // non-ideal deployment equals the per-cell reference divided by the
    // weight scale.
    Rng rng(7);
    nn::SingleLayerNet net(rng, 33, 7, nn::Activation::Linear, nn::Loss::Mse);
    NonIdealityConfig c;
    c.line_resistance = 50.0;
    c.stuck_off_fraction = 0.01;
    core::CrossbarOracle oracle(CrossbarNetwork(net, spec(), c));
    const CrossbarNetwork reference_hw(net, spec(), c);

    const tensor::Matrix U = query_batch(9, 33, 11);
    const tensor::Vector p = oracle.query_power_batch(U);
    const double scale = reference_hw.crossbar().program().weight_scale;
    for (std::size_t r = 0; r < U.rows(); ++r) {
        const double ref = reference_hw.crossbar().total_current_reference(U.row(r)) / scale;
        expect_close(p[r], ref, "query_power_batch");
    }
}

TEST(NonIdealEquivalence, OracleRawBatchMatchesReferenceUnderLineResistance) {
    Rng rng(8);
    nn::SingleLayerNet net(rng, 33, 7, nn::Activation::Linear, nn::Loss::Mse);
    NonIdealityConfig c;
    c.line_resistance = 25.0;
    core::CrossbarOracle oracle(CrossbarNetwork(net, spec(), c));
    const CrossbarNetwork reference_hw(net, spec(), c);

    const tensor::Matrix U = query_batch(6, 33, 12);
    const tensor::Matrix Y = oracle.query_raw_batch(U);
    const double scale = reference_hw.crossbar().program().weight_scale;
    for (std::size_t r = 0; r < U.rows(); ++r) {
        tensor::Vector ref = reference_hw.crossbar().output_currents_reference(U.row(r));
        ref /= scale;  // linear activation: prediction == scaled currents
        for (std::size_t i = 0; i < ref.size(); ++i) {
            expect_close(Y(r, i), ref[i], "query_raw_batch");
        }
    }
}

}  // namespace
}  // namespace xbarsec::xbar
