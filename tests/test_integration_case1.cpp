// End-to-end Case-1 integration: train → deploy → probe → single-pixel
// attack, asserting the orderings the paper's Figure 4 shows.
#include <gtest/gtest.h>

#include "xbarsec/attack/single_pixel.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/nn/sensitivity.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec {
namespace {

class Case1Pipeline : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::SyntheticMnistConfig dc;
        dc.train_count = 1200;
        dc.test_count = 300;
        split_ = new data::DataSplit(data::make_synthetic_mnist(dc));

        core::VictimConfig config =
            core::VictimConfig::defaults(core::OutputConfig::softmax_ce());
        config.train.epochs = 12;
        victim_ = new core::TrainedVictim(core::train_victim(*split_, config));
        oracle_ = new core::CrossbarOracle(core::deploy_victim(victim_->net, config));
        l1_ = new tensor::Vector(
            sidechannel::probe_columns(oracle_->power_measure_fn(), oracle_->inputs())
                .conductance_sums);
    }

    static void TearDownTestSuite() {
        delete l1_;
        delete oracle_;
        delete victim_;
        delete split_;
        l1_ = nullptr;
        oracle_ = nullptr;
        victim_ = nullptr;
        split_ = nullptr;
    }

    static data::DataSplit* split_;
    static core::TrainedVictim* victim_;
    static core::CrossbarOracle* oracle_;
    static tensor::Vector* l1_;
};

data::DataSplit* Case1Pipeline::split_ = nullptr;
core::TrainedVictim* Case1Pipeline::victim_ = nullptr;
core::CrossbarOracle* Case1Pipeline::oracle_ = nullptr;
tensor::Vector* Case1Pipeline::l1_ = nullptr;

TEST_F(Case1Pipeline, VictimReachesAccuracyBand) {
    EXPECT_GT(victim_->test_accuracy, 0.75);
    EXPECT_GE(victim_->train_accuracy, victim_->test_accuracy - 0.05);
}

TEST_F(Case1Pipeline, ProbedL1MatchesWeights) {
    const tensor::Vector truth = tensor::column_abs_sums(victim_->net.weights());
    ASSERT_EQ(l1_->size(), truth.size());
    for (std::size_t j = 0; j < truth.size(); ++j) EXPECT_NEAR((*l1_)[j], truth[j], 1e-8);
}

TEST_F(Case1Pipeline, PowerGuidedAttackBeatsRandomPixel) {
    // The Figure-4 ordering at a strong attack point: power-guided "+"
    // must degrade accuracy more than the blind random-pixel baseline,
    // and the white-box worst case must be the strongest of all.
    const double strength = 6.0;
    Rng rng(1);
    const nn::SingleLayerNet& net = victim_->net;
    const double rp = attack::evaluate_single_pixel_attack(
        net, split_->test, attack::SinglePixelMethod::RandomPixel, strength, l1_, rng);
    const double add = attack::evaluate_single_pixel_attack(
        net, split_->test, attack::SinglePixelMethod::PowerAdd, strength, l1_, rng);
    const double worst = attack::evaluate_single_pixel_attack(
        net, split_->test, attack::SinglePixelMethod::WorstCase, strength, l1_, rng);
    EXPECT_LT(add, rp - 0.02) << "power info must help (Fig. 4)";
    EXPECT_LE(worst, add + 0.02) << "white-box bound must be strongest";
}

TEST_F(Case1Pipeline, AttackDegradationGrowsWithStrength) {
    Rng rng(2);
    const nn::SingleLayerNet& net = victim_->net;
    double prev = 1.0;
    for (const double strength : {0.0, 4.0, 10.0}) {
        const double acc = attack::evaluate_single_pixel_attack(
            net, split_->test, attack::SinglePixelMethod::WorstCase, strength, l1_, rng);
        EXPECT_LE(acc, prev + 0.02) << "strength " << strength;
        prev = acc;
    }
}

TEST_F(Case1Pipeline, RandomDirectionSitsBetweenAddAndSub) {
    // "RD" averages the "+" and "−" outcomes, so it must land between
    // them (with slack for sampling noise).
    const double strength = 8.0;
    Rng rng(3);
    const nn::SingleLayerNet& net = victim_->net;
    const double add = attack::evaluate_single_pixel_attack(
        net, split_->test, attack::SinglePixelMethod::PowerAdd, strength, l1_, rng);
    const double sub = attack::evaluate_single_pixel_attack(
        net, split_->test, attack::SinglePixelMethod::PowerSub, strength, l1_, rng);
    const double rd = attack::evaluate_single_pixel_attack(
        net, split_->test, attack::SinglePixelMethod::PowerRandomDir, strength, l1_, rng);
    const double lo = std::min(add, sub), hi = std::max(add, sub);
    EXPECT_GE(rd, lo - 0.05);
    EXPECT_LE(rd, hi + 0.05);
}

TEST_F(Case1Pipeline, MeanSensitivityCorrelatesWithProbedL1) {
    // Mini Table-I on the deployed pipeline (probed 1-norms, not weights).
    const double corr = nn::correlation_of_mean(victim_->net, split_->test, *l1_);
    EXPECT_GT(corr, 0.5);
}

}  // namespace
}  // namespace xbarsec
