// Tests for the polymorphic Oracle API: batched-vs-scalar equivalence,
// SoftwareOracle/CrossbarOracle agreement, thread-pool batching, atomic
// counter accounting, and the composable defense decorators.
#include <gtest/gtest.h>

#include <cmath>

#include "xbarsec/core/decorators.hpp"
#include "xbarsec/core/oracle.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/data/synthetic_mnist.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {
namespace {

xbar::DeviceSpec ideal_spec() {
    xbar::DeviceSpec s;
    s.g_on_max = 100e-6;
    return s;
}

nn::SingleLayerNet make_net(Rng& rng, std::size_t in = 24, std::size_t out = 5) {
    return nn::SingleLayerNet(rng, in, out, nn::Activation::Linear, nn::Loss::Mse);
}

CrossbarOracle make_oracle(const nn::SingleLayerNet& net, OracleOptions options = {},
                           xbar::NonIdealityConfig nonideal = {}) {
    return CrossbarOracle(xbar::CrossbarNetwork(net, ideal_spec(), nonideal), options);
}

tensor::Matrix random_batch(Rng& rng, std::size_t rows, std::size_t cols) {
    return tensor::Matrix::random_uniform(rng, rows, cols);
}

// ---- batched vs scalar equivalence ------------------------------------------

TEST(OracleBatch, LabelsMatchScalarQueries) {
    Rng rng(1);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle batched = make_oracle(net);
    CrossbarOracle scalar = make_oracle(net);
    const tensor::Matrix U = random_batch(rng, 50, net.inputs());

    const std::vector<int> batch_labels = batched.query_labels(U);
    for (std::size_t r = 0; r < U.rows(); ++r) {
        EXPECT_EQ(batch_labels[r], scalar.query_label(U.row(r)));
    }
}

TEST(OracleBatch, RawAndPowerMatchScalarWithin1e12) {
    Rng rng(2);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const tensor::Matrix U = random_batch(rng, 40, net.inputs());

    const tensor::Matrix raw = oracle.query_raw_batch(U);
    const tensor::Vector power = oracle.query_power_batch(U);
    for (std::size_t r = 0; r < U.rows(); ++r) {
        const tensor::Vector y = oracle.query_raw(U.row(r));
        for (std::size_t c = 0; c < y.size(); ++c) EXPECT_NEAR(raw(r, c), y[c], 1e-12);
        EXPECT_NEAR(power[r], oracle.query_power(U.row(r)), 1e-12);
    }
}

TEST(OracleBatch, NoisyHardwareConsumesTheSameStreamBatchedOrScalar) {
    Rng rng(3);
    const nn::SingleLayerNet net = make_net(rng);
    xbar::NonIdealityConfig noisy;
    noisy.read_noise_std = 0.05;
    CrossbarOracle batched = make_oracle(net, {}, noisy);
    CrossbarOracle scalar = make_oracle(net, {}, noisy);
    const tensor::Matrix U = random_batch(rng, 16, net.inputs());

    const tensor::Vector batch_power = batched.query_power_batch(U);
    for (std::size_t r = 0; r < U.rows(); ++r) {
        // Same seed, same draw order: readings agree to FP re-association.
        const double rel = std::abs(batch_power[r] - scalar.query_power(U.row(r))) /
                           std::abs(batch_power[r]);
        EXPECT_LT(rel, 1e-10);
    }
}

TEST(OracleBatch, ThreadPoolBatchingIsDeterministic) {
    Rng rng(4);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle serial = make_oracle(net);
    CrossbarOracle pooled = make_oracle(net);
    ThreadPool pool(2);
    pooled.set_thread_pool(&pool);
    const tensor::Matrix U = random_batch(rng, 300, net.inputs());

    EXPECT_EQ(serial.query_labels(U), pooled.query_labels(U));
    const tensor::Vector a = serial.query_power_batch(U);
    const tensor::Vector b = pooled.query_power_batch(U);
    for (std::size_t r = 0; r < a.size(); ++r) EXPECT_DOUBLE_EQ(a[r], b[r]);
}

TEST(OracleBatch, IrDropFallbackMatchesScalarPath) {
    Rng rng(5);
    const nn::SingleLayerNet net = make_net(rng);
    xbar::NonIdealityConfig nonideal;
    nonideal.line_resistance = 10.0;
    CrossbarOracle batched = make_oracle(net, {}, nonideal);
    CrossbarOracle scalar = make_oracle(net, {}, nonideal);
    const tensor::Matrix U = random_batch(rng, 8, net.inputs());

    const std::vector<int> labels = batched.query_labels(U);
    const tensor::Vector power = batched.query_power_batch(U);
    for (std::size_t r = 0; r < U.rows(); ++r) {
        EXPECT_EQ(labels[r], scalar.query_label(U.row(r)));
        EXPECT_NEAR(power[r], scalar.query_power(U.row(r)), 1e-12);
    }
}

// ---- SoftwareOracle ---------------------------------------------------------

TEST(SoftwareOracle, AgreesWithIdealCrossbarOracle) {
    Rng rng(6);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle hw = make_oracle(net);
    SoftwareOracle sw(net);
    const tensor::Matrix U = random_batch(rng, 30, net.inputs());

    EXPECT_EQ(sw.query_labels(U), hw.query_labels(U));
    const tensor::Vector hw_power = hw.query_power_batch(U);
    const tensor::Vector sw_power = sw.query_power_batch(U);
    for (std::size_t r = 0; r < U.rows(); ++r) EXPECT_NEAR(sw_power[r], hw_power[r], 1e-9);
}

TEST(SoftwareOracle, CountsAndEnforcesAccess) {
    Rng rng(7);
    OracleOptions closed;
    closed.expose_power = false;
    SoftwareOracle oracle(make_net(rng), closed);
    const tensor::Matrix U = random_batch(rng, 4, oracle.inputs());
    EXPECT_EQ(oracle.query_labels(U).size(), 4u);
    EXPECT_THROW(oracle.query_power_batch(U), AccessDenied);
    EXPECT_EQ(oracle.counters().inference, 4u);
    EXPECT_EQ(oracle.counters().power, 0u);
}

// ---- counters ---------------------------------------------------------------

TEST(OracleCounters, BatchedQueriesCountPerRow) {
    Rng rng(8);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle oracle = make_oracle(net);
    const tensor::Matrix U = random_batch(rng, 17, net.inputs());
    oracle.query_labels(U);
    oracle.query_raw_batch(U);
    oracle.query_power_batch(U);
    EXPECT_EQ(oracle.counters().inference, 34u);
    EXPECT_EQ(oracle.counters().power, 17u);
    EXPECT_EQ(oracle.counters().total(), 51u);
}

TEST(OracleCounters, ConcurrentQueriesAreCountedExactly) {
    Rng rng(9);
    SoftwareOracle software(make_net(rng));
    const tensor::Vector u(software.inputs(), 0.25);
    ThreadPool pool(4);
    parallel_for(pool, 200, [&](std::size_t i) {
        // SoftwareOracle inference is stateless, so concurrent label
        // queries are safe; the counter must still be exact.
        (void)software.query_label(u);
        if (i % 2 == 0) (void)software.query_power(u);
    });
    EXPECT_EQ(software.counters().inference, 200u);
    EXPECT_EQ(software.counters().power, 100u);
}

TEST(OracleCounters, DecoratedPowerReadsCountExactlyOnce) {
    Rng rng(10);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);

    ObfuscationConfig dummies;
    dummies.kind = ObfuscationConfig::Kind::UniformDummy;
    dummies.magnitude = 1e-6;
    ObfuscatedOracle obfuscated(backend, dummies);
    NoisyPowerOracle noisy(obfuscated, 0.0);

    // A probe through a two-layer stack's power_measure_fn: one physical
    // measurement per column, counted once at the backend.
    const auto probe = probe_columns(noisy);
    EXPECT_EQ(probe.queries, backend.inputs());
    EXPECT_EQ(backend.counters().power, backend.inputs());
    EXPECT_EQ(noisy.counters().power, backend.inputs());  // delegates inward
}

// ---- decorators -------------------------------------------------------------

TEST(Decorators, UniformDummyShiftsPowerByLoadTimesInputSum) {
    Rng rng(11);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    ObfuscationConfig config;
    config.kind = ObfuscationConfig::Kind::UniformDummy;
    config.magnitude = 0.125;
    ObfuscatedOracle defended(backend, config);

    const tensor::Vector u = tensor::Vector::random_uniform(rng, net.inputs());
    const double clean = backend.query_power(u);
    EXPECT_NEAR(defended.query_power(u), clean + 0.125 * tensor::sum(u), 1e-9);
}

TEST(Decorators, NoisyPowerWithZeroSigmaIsTransparent) {
    Rng rng(12);
    const nn::SingleLayerNet net = make_net(rng);
    CrossbarOracle backend = make_oracle(net);
    NoisyPowerOracle defended(backend, 0.0);
    const tensor::Vector u(net.inputs(), 0.5);
    EXPECT_DOUBLE_EQ(defended.query_power(u), backend.query_power(u));
    EXPECT_EQ(defended.query_label(u), backend.query_label(u));
    EXPECT_EQ(defended.inputs(), backend.inputs());
    EXPECT_EQ(defended.outputs(), backend.outputs());
}

TEST(Decorators, AccessControlPropagatesThroughTheStack) {
    Rng rng(13);
    OracleOptions closed;
    closed.expose_raw_outputs = false;
    CrossbarOracle backend = make_oracle(make_net(rng), closed);
    NoisyPowerOracle defended(backend, 0.0);
    EXPECT_THROW(defended.query_raw(tensor::Vector(backend.inputs(), 0.1)), AccessDenied);
}

TEST(QueryBudgetOracle, ThrowsOnExhaustionAndDoesNotChargeRefusals) {
    Rng rng(14);
    CrossbarOracle backend = make_oracle(make_net(rng));
    QueryBudget budget;
    budget.max_power = 5;
    QueryBudgetOracle capped(backend, budget);
    const tensor::Vector u(backend.inputs(), 0.5);

    for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(capped.query_power(u));
    EXPECT_THROW(capped.query_power(u), QueryBudgetExceeded);
    EXPECT_EQ(capped.spent().power, 5u);
    EXPECT_EQ(backend.counters().power, 5u);  // the refused query never ran

    // Inference budget is independent of the power budget.
    EXPECT_NO_THROW(capped.query_label(u));
}

TEST(QueryBudgetOracle, BatchChargingIsAllOrNothing) {
    Rng rng(15);
    CrossbarOracle backend = make_oracle(make_net(rng));
    QueryBudget budget;
    budget.max_inference = 10;
    QueryBudgetOracle capped(backend, budget);
    const tensor::Matrix U = random_batch(rng, 8, backend.inputs());

    EXPECT_NO_THROW(capped.query_labels(U));        // 8 of 10 spent
    EXPECT_THROW(capped.query_labels(U), QueryBudgetExceeded);  // 8 more would cross
    EXPECT_EQ(capped.spent().inference, 8u);        // refused batch not charged
    EXPECT_EQ(backend.counters().inference, 8u);    // and never reached the backend
}

TEST(QueryBudgetOracle, TotalBudgetSpansBothKinds) {
    Rng rng(16);
    CrossbarOracle backend = make_oracle(make_net(rng));
    QueryBudget budget;
    budget.max_total = 3;
    QueryBudgetOracle capped(backend, budget);
    const tensor::Vector u(backend.inputs(), 0.5);
    EXPECT_NO_THROW(capped.query_label(u));
    EXPECT_NO_THROW(capped.query_power(u));
    EXPECT_NO_THROW(capped.query_raw(u));
    EXPECT_THROW(capped.query_label(u), QueryBudgetExceeded);
    EXPECT_THROW(capped.query_power(u), QueryBudgetExceeded);
}

TEST(Decorators, CompositionOrderGovernsBudgetCharging) {
    // Detector-inside-budget charges refused queries; budget-inside-
    // detector does not (the refusal happens before the budget sees it).
    Rng rng(17);
    const nn::SingleLayerNet net = make_net(rng, 16, 3);

    // Enrolment data: modest-intensity inputs in [0, 1).
    tensor::Matrix clean = tensor::Matrix::random_uniform(rng, 120, 16);
    std::vector<int> labels(120);
    for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 3);
    const data::Dataset enrollment(std::move(clean), std::move(labels), 3,
                                   data::ImageShape{4, 4, 1});

    CrossbarOracle backend_a = make_oracle(net);
    CrossbarOracle backend_b = make_oracle(net);
    const sidechannel::CurrentSignatureDetector detector_a(
        backend_a.hardware_for_evaluation(), enrollment);
    const sidechannel::CurrentSignatureDetector detector_b(
        backend_b.hardware_for_evaluation(), enrollment);

    // An unmistakably adversarial input: one pixel at 50x the clean max.
    tensor::Vector attack(16, 0.2);
    attack[3] = 50.0;
    ASSERT_TRUE(detector_a.is_adversarial(attack));

    QueryBudget budget;
    budget.max_inference = 10;

    // Stack A: DetectorOracle(QueryBudgetOracle(backend)) — the budget is
    // charged first, then the detector refuses.
    QueryBudgetOracle budget_a(backend_a, budget);
    DetectorOracle stack_a(budget_a, detector_a, /*block_flagged=*/true);
    EXPECT_THROW(stack_a.query_label(attack), QueryRefused);
    EXPECT_EQ(budget_a.spent().inference, 0u);  // refusal happened above the budget

    // Stack B: QueryBudgetOracle(DetectorOracle(backend)) — the budget
    // wraps the detector, so charging precedes screening.
    DetectorOracle detector_layer_b(backend_b, detector_b, /*block_flagged=*/true);
    QueryBudgetOracle stack_b(detector_layer_b, budget);
    EXPECT_THROW(stack_b.query_label(attack), QueryRefused);
    EXPECT_EQ(stack_b.spent().inference, 1u);  // charged before the refusal

    // Either way the backend never saw the flagged query.
    EXPECT_EQ(backend_a.counters().inference, 0u);
    EXPECT_EQ(backend_b.counters().inference, 0u);
}

TEST(Decorators, DetectorLogOnlyCountsButAnswers) {
    Rng rng(18);
    const nn::SingleLayerNet net = make_net(rng, 16, 3);
    tensor::Matrix clean = tensor::Matrix::random_uniform(rng, 120, 16);
    std::vector<int> labels(120);
    for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 3);
    const data::Dataset enrollment(std::move(clean), std::move(labels), 3,
                                   data::ImageShape{4, 4, 1});

    CrossbarOracle backend = make_oracle(net);
    const sidechannel::CurrentSignatureDetector detector(backend.hardware_for_evaluation(),
                                                         enrollment);
    DetectorOracle guarded(backend, detector, /*block_flagged=*/false);

    tensor::Vector attack(16, 0.2);
    attack[3] = 50.0;
    EXPECT_NO_THROW(guarded.query_label(attack));
    EXPECT_EQ(guarded.screened(), 1u);
    EXPECT_EQ(guarded.flagged(), 1u);
    EXPECT_DOUBLE_EQ(guarded.flagged_fraction(), 1.0);
}

TEST(DecoratorStack, BuildsOwnedChains) {
    Rng rng(19);
    CrossbarOracle backend = make_oracle(make_net(rng));
    DecoratorStack stack(backend);
    EXPECT_EQ(&stack.top(), &backend);

    stack.push<NoisyPowerOracle>(0.0);
    QueryBudget budget;
    budget.max_power = 2;
    stack.push<QueryBudgetOracle>(budget);
    EXPECT_EQ(stack.depth(), 2u);

    const tensor::Vector u(backend.inputs(), 0.5);
    EXPECT_NO_THROW(stack.top().query_power(u));
    EXPECT_NO_THROW(stack.top().query_power(u));
    EXPECT_THROW(stack.top().query_power(u), QueryBudgetExceeded);
    EXPECT_EQ(backend.counters().power, 2u);
}

// ---- oracle-driven sidechannel entry points ---------------------------------

TEST(OracleBridges, FindArgmaxLocatesTheTopColumnThroughTheOracle) {
    Rng rng(20);
    const nn::SingleLayerNet net = make_net(rng, 16, 3);
    CrossbarOracle oracle = make_oracle(net);
    const tensor::Vector l1 = tensor::column_abs_sums(net.weights());
    const auto result = find_argmax(oracle, data::ImageShape{4, 4, 1},
                                    sidechannel::SearchStrategy::FullScan);
    EXPECT_EQ(result.best_index, tensor::argmax(l1));
    EXPECT_EQ(oracle.counters().power, 16u);
}

}  // namespace
}  // namespace xbarsec::core
