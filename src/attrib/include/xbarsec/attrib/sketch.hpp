// Content addressing + bottom-k (KMV) MinHash sketches — the
// query-overlap primitives behind cross-session attribution.
//
// The serving layer's result cache already content-addresses query rows
// (FNV-1a over the row's double bit patterns, finished with the
// counter-rng avalanche). Attribution reuses exactly that machinery:
// `hash_row` is the shared recipe, factored here so the cache keys and
// the attribution sketches agree bit-for-bit on what "the same input"
// means (service.cpp builds its cache keys from these helpers).
//
// A MinHashSketch summarises the *set* of content hashes a session has
// queried as the k numerically smallest distinct hashes (a bottom-k /
// k-minimum-values sketch). Properties the attribution layer leans on:
//
//   * insertion-order independence — the sketch of a set is a pure
//     function of the set, so a pooled (sharded, coalesced) feed builds
//     bit-identically the same sketch as a serial one;
//   * merge(a, b) = sketch of the union — associative, commutative and
//     idempotent, so campaign sketches can be folded in any order;
//   * when a set has <= k distinct hashes the sketch IS the set, so
//     similarity() is the exact Jaccard index there and an unbiased
//     estimate beyond it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace xbarsec::attrib {

/// FNV-1a accumulator seed/prime (the result cache's constants).
inline constexpr std::uint64_t kContentHashOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kContentHashPrime = 1099511628211ull;

/// One FNV-1a mix step over a 64-bit word.
constexpr std::uint64_t content_hash_mix(std::uint64_t h, std::uint64_t bits) {
    return (h ^ bits) * kContentHashPrime;
}

/// Folds a row of doubles (their exact bit patterns: -0.0 != 0.0, NaN
/// hashes as itself) into an FNV-1a accumulator.
std::uint64_t content_hash_doubles(std::uint64_t h, std::span<const double> row);

/// Final avalanche (counter_rng::hash_at) so low-entropy inputs still
/// spread over the whole 64-bit space.
std::uint64_t content_hash_finish(std::uint64_t h);

/// The content address of one query row: mix + finish over its doubles.
std::uint64_t hash_row(std::span<const double> row);

/// Bottom-k MinHash sketch over 64-bit content hashes. Not thread-safe;
/// the attribution engine serialises access.
class MinHashSketch {
public:
    /// `k` = sketch capacity; must be > 0.
    explicit MinHashSketch(std::size_t k = 256);

    /// Inserts one content hash (duplicates are no-ops).
    void insert(std::uint64_t hash);

    /// Union: after the call this sketch is the sketch of A ∪ B (at this
    /// sketch's k). Associative / commutative / idempotent.
    void merge(const MinHashSketch& other);

    /// Jaccard similarity estimate in [0, 1]: exact when both underlying
    /// sets fit in k, a bottom-k estimate beyond. Two empty sketches
    /// (and any comparison against one) report 0 — an idle session never
    /// clusters with anything.
    double similarity(const MinHashSketch& other) const;

    /// Fraction of *this sketch's* hashes present in `other` — the
    /// containment estimate used to absorb a small session into a large
    /// campaign (Jaccard alone under-scores subset relations). 0 when
    /// this sketch is empty.
    double containment_in(const MinHashSketch& other) const;

    std::size_t k() const { return k_; }
    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    /// The retained hashes, sorted ascending (the canonical form —
    /// bit-identity of two sketches is values() equality).
    const std::vector<std::uint64_t>& values() const { return values_; }

    bool operator==(const MinHashSketch& other) const {
        return k_ == other.k_ && values_ == other.values_;
    }

private:
    std::size_t k_;
    std::vector<std::uint64_t> values_;  ///< sorted ascending, <= k entries
};

}  // namespace xbarsec::attrib
