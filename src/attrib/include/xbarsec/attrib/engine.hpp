// Cross-session attribution: the service-level memory that outlives
// sessions (the defense the PR 8 arms race showed was missing — the
// `spread` attacker held fidelity ~0.79 by rotating through ~287
// sessions that each stayed under the per-session detector warm-up).
//
// Three cooperating signals, all fed from the admission path:
//
//   1. **Per-source windows.** Sessions carry a SourceId admission
//      identity (SessionConfig::source). Screened/flagged/suspicious
//      counts accumulate per source and survive session close, so
//      rotating sessions no longer resets the defender's statistics —
//      and sessions of one source are auto-clustered into one campaign.
//
//   2. **Global probe-population window.** A sliding event-count window
//      over the whole deployment's screened traffic (flagged fraction
//      and suspicious-input-shape fraction). When it trips, the engine
//      raises a deployment-level alert no rotation cadence can duck
//      under: admission suspends per-session warm-up and escalates
//      suspicious queries per-query.
//
//   3. **Query-overlap campaign clustering.** Each session keeps a
//      bottom-k MinHash sketch over the content hashes of its
//      *suspicious-or-flagged* query rows (clean traffic never enters a
//      sketch, which is what keeps benign false-merges at zero). A
//      bounded inverted index maps those hashes to the campaign that
//      first issued them: a session replaying enough of another
//      campaign's probe set is union-found into it — so an attacker
//      forging a fresh SourceId per rotation still collapses into one
//      attributed campaign, whose pooled suspicion feeds AdaptivePolicy.
//
// The engine is pure bookkeeping over (session id, source, content
// hash, flags) — it holds no oracle or service references, takes no
// clocks (windows slide by event count, keeping admission decisions
// deterministic), and is internally synchronised. Enforcement (token
// buckets, band selection, raw cutoffs) stays in core::OracleService.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "xbarsec/attrib/sketch.hpp"

namespace xbarsec::attrib {

/// Admission identity of a session's principal (API key, account,
/// network principal — whatever the deployment authenticates). 0 means
/// anonymous: anonymous sessions get no per-source pooling and are never
/// clustered by identity (only by query overlap).
using SourceId = std::uint64_t;

/// Detection/clustering parameters. Defaults are the ones the
/// service/mnist/attribution scenario ships with.
struct EngineConfig {
    /// Global sliding window length, in screened rows (event count, not
    /// wall clock — admission decisions stay deterministic).
    std::size_t window_events = 4096;

    /// Deployment alert: trips when the window holds at least
    /// `alert_min_screened` rows and its flagged or suspicious fraction
    /// reaches the respective threshold. Latched while the window stays
    /// hot; clears when the window cools back below both thresholds.
    std::size_t alert_min_screened = 128;
    double alert_flagged_fraction = 0.25;
    double alert_suspicious_fraction = 0.25;

    /// Input-shape heuristics (service-wide probe-population statistics).
    /// A row is *suspicious* when its per-element magnitude exceeds
    /// `suspicious_amplitude` (clean inputs live in [0, 1]; extraction
    /// probes are driven harder for SNR and leverage), and *basis-like*
    /// when it has at most max(1, cols / basis_nnz_divisor) non-zeros
    /// (single-line power probes). Basis-likeness counts toward the
    /// alert window only — it never enters sketches or the index, so a
    /// sparse-but-clean tenant cannot be clustered into a campaign.
    double suspicious_amplitude = 1.5;
    std::size_t basis_nnz_divisor = 32;

    /// Campaign clustering. Sketches hold up to `sketch_k` hashes of
    /// suspicious-or-flagged rows. A session union-finds into a campaign
    /// when it has replayed `repeat_overlap` distinct indexed hashes of
    /// that campaign, or (at session close) when sketch similarity /
    /// containment reaches `merge_similarity` with both sketches holding
    /// at least `merge_min_hashes`.
    std::size_t sketch_k = 256;
    std::size_t repeat_overlap = 3;
    double merge_similarity = 0.5;
    std::size_t merge_min_hashes = 16;

    /// Bound on the inverted hash → campaign index (oldest-insertion
    /// entries are dropped beyond it; attribution degrades gracefully
    /// instead of growing without bound).
    std::size_t index_capacity = 1 << 16;

    /// Alert-time probation: a non-anonymous source whose *first* session
    /// opens while the deployment alert is active is marked, and
    /// probation(source) reports true for it whenever the alert is hot —
    /// the admission layer refuses such sources for the duration (a
    /// registration freeze under active attack, the rotation tax that
    /// makes forging a fresh SourceId per session useless). Sources
    /// established before the alert are never marked; anonymous sessions
    /// (source 0) are exempt and rely on per-query escalation and
    /// overlap clustering instead.
    bool probation = true;

    /// Identity-churn alert: minting a fresh SourceId per session is
    /// itself a fingerprint no per-query heuristic needs to see.
    /// Tracks the last `churn_window_opens` non-anonymous session opens;
    /// when at least `churn_fresh_sources` of them were some source's
    /// *first* session, the churn alert trips, and sources first seen
    /// from then on are put on probation exactly like alert-time
    /// probation (the two alerts OR together for both marking and
    /// enforcement). An identity-forging attacker rotating hundreds of
    /// fresh sources through a short campaign trips this within a
    /// handful of rotations — independent of whether its per-row traffic
    /// has tripped the detector window yet — while a benign deployment
    /// onboarding tenants at a sane pace never accumulates that many
    /// first-time sources inside the window. churn_fresh_sources = 0
    /// disables churn tracking.
    std::size_t churn_window_opens = 64;
    std::size_t churn_fresh_sources = 16;
};

/// One screened row, as the admission path saw it.
struct Observation {
    std::uint64_t session = 0;
    SourceId source = 0;
    std::uint64_t input_hash = 0;  ///< attrib::hash_row of the row
    bool flagged = false;          ///< the session's detector flagged it
    bool suspicious = false;       ///< amplitude heuristic (see EngineConfig)
    bool basis_like = false;       ///< sparsity heuristic (alert window only)
};

/// Telemetry: one source's cross-session window.
struct SourceCounters {
    SourceId source = 0;
    std::size_t sessions = 0;  ///< sessions opened under this source
    std::uint64_t screened = 0;
    std::uint64_t flagged = 0;
    std::uint64_t suspicious = 0;

    double flagged_fraction() const {
        return screened == 0 ? 0.0 : static_cast<double>(flagged) / static_cast<double>(screened);
    }
};

/// Telemetry: one campaign (union-find cluster of sessions).
struct CampaignCounters {
    std::uint64_t id = 0;       ///< current cluster root (a session id)
    std::size_t sessions = 0;   ///< cluster size
    std::size_t sources = 0;    ///< distinct non-anonymous sources inside
    std::uint64_t screened = 0;
    std::uint64_t flagged = 0;
    std::uint64_t suspicious = 0;
    std::size_t sketch_hashes = 0;  ///< merged campaign sketch population

    double flagged_fraction() const {
        return screened == 0 ? 0.0 : static_cast<double>(flagged) / static_cast<double>(screened);
    }
};

/// The attribution state machine. Thread-safe; every entry point takes
/// one internal mutex (admission already serialises per submission, and
/// the work per row is a few hash-map touches).
class AttributionEngine {
public:
    explicit AttributionEngine(EngineConfig config = {});

    const EngineConfig& config() const { return config_; }

    /// Session lifecycle. Opening under a non-zero source auto-clusters
    /// the session with that source's previous sessions. Closing runs
    /// the sketch-similarity merge pass and keeps all statistics (that
    /// is the point: the window survives the session).
    void note_session_open(std::uint64_t session, SourceId source);
    void note_session_close(std::uint64_t session);

    /// Feeds one screened row. Unknown sessions are adopted on first
    /// observation (an engine wired mid-flight still attributes).
    void observe(const Observation& obs);

    /// Pooled (campaign-level) suspicion for admission: the screened /
    /// flagged window of the session's whole campaign — same-source
    /// siblings and overlap-merged sessions included. Unknown sessions
    /// pool as empty (0 screened, 0.0 fraction).
    std::uint64_t pooled_screened(std::uint64_t session) const;
    double pooled_flagged_fraction(std::uint64_t session) const;

    /// Campaign suspicion for band selection: the larger of the
    /// campaign's detector-flagged and probe-shaped (amplitude) row
    /// fractions. Extraction probes driven hard for SNR are caught by
    /// shape even where the enrolled detector's coverage is partial.
    double pooled_suspicion_fraction(std::uint64_t session) const;

    /// Deployment-level alert (see EngineConfig).
    bool alert() const;

    /// True while either alert is hot for a source first seen during
    /// one (see EngineConfig::probation). Always false for source 0.
    bool probation(SourceId source) const;

    /// Identity-churn alert (see EngineConfig::churn_fresh_sources).
    bool churn_alert() const;

    /// Global window statistics.
    std::uint64_t window_screened() const;
    double window_flagged_fraction() const;
    double window_suspicious_fraction() const;

    // ---- telemetry ----------------------------------------------------------

    std::size_t source_count() const;
    std::vector<SourceId> sources() const;  ///< sorted ascending

    /// Throws ConfigError for a source the engine has never seen (the
    /// per-replica accessor convention).
    SourceCounters source_counters(SourceId source) const;

    std::size_t campaign_count() const;
    std::vector<CampaignCounters> campaigns() const;  ///< sorted by id

    /// The campaign of a session; throws ConfigError for an unknown
    /// session id.
    CampaignCounters campaign_of(std::uint64_t session) const;

    /// Compact JSON object (alert state, window stats, per-source and
    /// per-campaign counters) — the snapshot bench_attrib embeds in
    /// BENCH_attrib.json.
    std::string json_snapshot() const;

    /// The amplitude heuristic, exposed so admission can classify a row
    /// once and reuse the verdict (escalation + observation).
    static bool suspicious_row(std::span<const double> row, const EngineConfig& config);

    /// The sparsity heuristic (alert statistics only).
    static bool basis_like_row(std::span<const double> row, const EngineConfig& config);

private:
    struct SessionRec {
        SourceId source = 0;
        std::uint64_t parent = 0;  ///< union-find parent (self at root)
        std::uint64_t screened = 0;
        std::uint64_t flagged = 0;
        std::uint64_t suspicious = 0;
        /// Replayed indexed hashes per foreign campaign root, counted
        /// toward config_.repeat_overlap (cleared once merged).
        std::map<std::uint64_t, std::size_t> overlap;
    };

    /// Aggregates held at each union-find root.
    struct CampaignRec {
        std::size_t sessions = 0;
        std::set<SourceId> source_set;  ///< non-anonymous sources inside
        std::uint64_t screened = 0;
        std::uint64_t flagged = 0;
        std::uint64_t suspicious = 0;
        MinHashSketch sketch{256};
    };

    std::uint64_t find_root(std::uint64_t session) const;  ///< path-halving
    bool alert_locked() const;  ///< the alert predicate, mutex already held
    bool churn_hot_locked() const;  ///< the churn predicate, mutex already held
    SessionRec& ensure_session_locked(std::uint64_t session, SourceId source);
    void merge_campaigns(std::uint64_t a, std::uint64_t b);
    void push_window_event(bool flagged, bool suspicious);
    CampaignCounters campaign_counters_locked(std::uint64_t root) const;

    EngineConfig config_;
    mutable std::mutex mutex_;

    mutable std::unordered_map<std::uint64_t, SessionRec> sessions_;
    std::unordered_map<std::uint64_t, CampaignRec> campaigns_;  ///< keyed by root
    std::map<SourceId, SourceCounters> sources_;
    std::unordered_map<SourceId, std::uint64_t> source_anchor_;  ///< source → a member session
    std::set<SourceId> probation_;  ///< sources first seen during an alert

    /// Inverted index: suspicious/flagged content hash → the session
    /// that first issued it (resolved to its current root on use).
    /// Insertion-ordered ring for the capacity bound.
    std::unordered_map<std::uint64_t, std::uint64_t> index_;
    std::vector<std::uint64_t> index_order_;  ///< ring of inserted hashes
    std::size_t index_cursor_ = 0;

    /// Global sliding window: ring of per-event flag bits.
    std::vector<std::uint8_t> window_;
    std::size_t window_pos_ = 0;
    std::size_t window_filled_ = 0;
    std::uint64_t window_flagged_ = 0;
    std::uint64_t window_suspicious_ = 0;

    /// Identity-churn window: ring over non-anonymous session opens,
    /// 1 = that open was the source's first session.
    std::vector<std::uint8_t> churn_;
    std::size_t churn_pos_ = 0;
    std::size_t churn_filled_ = 0;
    std::size_t churn_fresh_ = 0;
};

}  // namespace xbarsec::attrib
