#include "xbarsec/attrib/sketch.hpp"

#include <algorithm>
#include <cstring>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/rng.hpp"

namespace xbarsec::attrib {

std::uint64_t content_hash_doubles(std::uint64_t h, std::span<const double> row) {
    for (const double v : row) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        h = content_hash_mix(h, bits);
    }
    return h;
}

std::uint64_t content_hash_finish(std::uint64_t h) { return counter_rng::hash_at(h, 0, 0); }

std::uint64_t hash_row(std::span<const double> row) {
    return content_hash_finish(content_hash_doubles(kContentHashOffset, row));
}

MinHashSketch::MinHashSketch(std::size_t k) : k_(k) {
    XS_EXPECTS(k > 0);
    values_.reserve(std::min<std::size_t>(k, 256));
}

void MinHashSketch::insert(std::uint64_t hash) {
    const auto it = std::lower_bound(values_.begin(), values_.end(), hash);
    if (it != values_.end() && *it == hash) return;  // already present
    if (values_.size() < k_) {
        values_.insert(it, hash);
        return;
    }
    // Full: the hash only belongs if it beats the current k-th minimum.
    if (hash >= values_.back()) return;
    values_.insert(it, hash);
    values_.pop_back();
}

void MinHashSketch::merge(const MinHashSketch& other) {
    // Inserting other's retained hashes is exactly the bottom-k of the
    // union: any union element neither sketch retained is larger than
    // both k-th minima, so it cannot be in the union's bottom k.
    for (const std::uint64_t hash : other.values_) insert(hash);
}

double MinHashSketch::similarity(const MinHashSketch& other) const {
    if (values_.empty() || other.values_.empty()) return 0.0;
    // Bottom-k over the union, evaluated without materialising it: walk
    // both sorted vectors, counting union elements seen in both, and stop
    // after min(k) union elements — the estimator's sample.
    const std::size_t budget = std::min(k_, other.k_);
    std::size_t taken = 0;
    std::size_t both = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (taken < budget && (i < values_.size() || j < other.values_.size())) {
        if (j >= other.values_.size() || (i < values_.size() && values_[i] < other.values_[j])) {
            ++i;
        } else if (i >= values_.size() || other.values_[j] < values_[i]) {
            ++j;
        } else {
            ++both;
            ++i;
            ++j;
        }
        ++taken;
    }
    return taken > 0 ? static_cast<double>(both) / static_cast<double>(taken) : 0.0;
}

double MinHashSketch::containment_in(const MinHashSketch& other) const {
    if (values_.empty()) return 0.0;
    std::size_t shared = 0;
    std::size_t j = 0;
    for (const std::uint64_t hash : values_) {
        while (j < other.values_.size() && other.values_[j] < hash) ++j;
        if (j < other.values_.size() && other.values_[j] == hash) ++shared;
    }
    return static_cast<double>(shared) / static_cast<double>(values_.size());
}

}  // namespace xbarsec::attrib
