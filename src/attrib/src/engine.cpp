#include "xbarsec/attrib/engine.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"

namespace xbarsec::attrib {

AttributionEngine::AttributionEngine(EngineConfig config) : config_(config) {
    XS_EXPECTS(config_.window_events > 0);
    XS_EXPECTS(config_.sketch_k > 0);
    XS_EXPECTS(config_.repeat_overlap > 0);
    XS_EXPECTS(config_.index_capacity > 0);
    XS_EXPECTS(config_.churn_fresh_sources == 0 || config_.churn_window_opens > 0);
    window_.assign(config_.window_events, 0);
    if (config_.churn_fresh_sources > 0) churn_.assign(config_.churn_window_opens, 0);
}

bool AttributionEngine::suspicious_row(std::span<const double> row, const EngineConfig& config) {
    for (const double v : row) {
        if (std::abs(v) > config.suspicious_amplitude) return true;
    }
    return false;
}

bool AttributionEngine::basis_like_row(std::span<const double> row, const EngineConfig& config) {
    const std::size_t divisor = std::max<std::size_t>(config.basis_nnz_divisor, 1);
    const std::size_t budget = std::max<std::size_t>(row.size() / divisor, 1);
    std::size_t nnz = 0;
    for (const double v : row) {
        if (v != 0.0 && ++nnz > budget) return false;
    }
    return true;
}

// ---- union-find over session ids --------------------------------------------

std::uint64_t AttributionEngine::find_root(std::uint64_t session) const {
    std::uint64_t node = session;
    for (;;) {
        const auto it = sessions_.find(node);
        if (it == sessions_.end() || it->second.parent == node) return node;
        const auto gp = sessions_.find(it->second.parent);
        if (gp != sessions_.end() && gp->second.parent != it->second.parent) {
            it->second.parent = gp->second.parent;  // path halving
        }
        node = it->second.parent;
    }
}

void AttributionEngine::merge_campaigns(std::uint64_t a, std::uint64_t b) {
    std::uint64_t ra = find_root(a);
    std::uint64_t rb = find_root(b);
    if (ra == rb) return;
    // Union by cluster size: the larger campaign keeps its root, so the
    // inverted index and overlap counters keyed by it stay mostly live.
    if (campaigns_.at(ra).sessions < campaigns_.at(rb).sessions) std::swap(ra, rb);
    CampaignRec& keep = campaigns_.at(ra);
    CampaignRec& gone = campaigns_.at(rb);
    keep.sessions += gone.sessions;
    keep.screened += gone.screened;
    keep.flagged += gone.flagged;
    keep.suspicious += gone.suspicious;
    keep.source_set.insert(gone.source_set.begin(), gone.source_set.end());
    keep.sketch.merge(gone.sketch);
    campaigns_.erase(rb);
    sessions_[rb].parent = ra;
}

// ---- session lifecycle ------------------------------------------------------

void AttributionEngine::note_session_open(std::uint64_t session, SourceId source) {
    std::lock_guard lock(mutex_);
    ensure_session_locked(session, source);
}

AttributionEngine::SessionRec& AttributionEngine::ensure_session_locked(std::uint64_t session,
                                                                        SourceId source) {
    const auto existing = sessions_.find(session);
    if (existing != sessions_.end()) return existing->second;  // idempotent
    SessionRec rec;
    rec.source = source;
    rec.parent = session;
    sessions_.emplace(session, std::move(rec));

    CampaignRec camp;
    camp.sessions = 1;
    if (source != 0) camp.source_set.insert(source);
    camp.sketch = MinHashSketch(config_.sketch_k);
    campaigns_.emplace(session, std::move(camp));

    // Identity-churn window: record whether this non-anonymous open was
    // the source's first session *before* the probation check, so the
    // open that trips the churn threshold is itself caught by it.
    const bool fresh_source = source != 0 && sources_.count(source) == 0;
    if (source != 0 && !churn_.empty()) {
        if (churn_filled_ == churn_.size()) {
            if (churn_[churn_pos_] != 0) --churn_fresh_;
        } else {
            ++churn_filled_;
        }
        churn_[churn_pos_] = fresh_source ? 1 : 0;
        churn_pos_ = (churn_pos_ + 1) % churn_.size();
        if (fresh_source) ++churn_fresh_;
    }

    // Probation: a principal whose very first session arrives while the
    // deployment is under active probing (detector-window alert) or
    // while identities are being minted at attack pace (churn alert) is
    // marked; admission refuses marked sources for as long as either
    // alert stays hot. The mark is permanent, the enforcement
    // alert-gated — if the attack resumes and re-trips an alert, the
    // freeze resumes with it.
    if (config_.probation && fresh_source && (alert_locked() || churn_hot_locked())) {
        probation_.insert(source);
    }

    SourceCounters& src = sources_[source];
    src.source = source;
    ++src.sessions;

    // Identity clustering: every session of one non-anonymous source is
    // the same principal, so they share one campaign from the start —
    // rotation under an honest source buys nothing. Anonymous sessions
    // (source 0) are never identity-clustered; only query overlap can
    // merge them.
    if (source != 0) {
        const auto anchor = source_anchor_.find(source);
        if (anchor == source_anchor_.end()) {
            source_anchor_.emplace(source, session);
        } else {
            merge_campaigns(session, anchor->second);
        }
    }
    return sessions_.at(session);
}

void AttributionEngine::note_session_close(std::uint64_t session) {
    std::lock_guard lock(mutex_);
    if (sessions_.count(session) == 0) return;
    const std::uint64_t root = find_root(session);
    const auto self = campaigns_.find(root);
    if (self == campaigns_.end()) return;
    // Sketch-overlap merge pass: absorb this campaign into any campaign
    // whose suspicious-probe set it substantially shares. Jaccard
    // similarity catches comparable sketches; containment catches a
    // short campaign replaying a slice of a long one. Clean sessions
    // have (near-)empty sketches and never reach merge_min_hashes.
    if (self->second.sketch.size() < config_.merge_min_hashes) return;
    std::vector<std::uint64_t> candidates;
    for (const auto& [other_root, camp] : campaigns_) {
        if (other_root == root) continue;
        if (camp.sketch.size() < config_.merge_min_hashes) continue;
        if (self->second.sketch.similarity(camp.sketch) >= config_.merge_similarity ||
            self->second.sketch.containment_in(camp.sketch) >= config_.merge_similarity) {
            candidates.push_back(other_root);
        }
    }
    for (const std::uint64_t other : candidates) merge_campaigns(root, other);
}

// ---- observation feed -------------------------------------------------------

void AttributionEngine::push_window_event(bool flagged, bool suspicious) {
    const std::uint8_t bits =
        static_cast<std::uint8_t>((flagged ? 1u : 0u) | (suspicious ? 2u : 0u));
    if (window_filled_ == window_.size()) {
        const std::uint8_t old = window_[window_pos_];
        if ((old & 1u) != 0) --window_flagged_;
        if ((old & 2u) != 0) --window_suspicious_;
    } else {
        ++window_filled_;
    }
    window_[window_pos_] = bits;
    window_pos_ = (window_pos_ + 1) % window_.size();
    if (flagged) ++window_flagged_;
    if (suspicious) ++window_suspicious_;
}

void AttributionEngine::observe(const Observation& obs) {
    std::lock_guard lock(mutex_);
    // Adopts sessions the engine never saw open (wired mid-flight).
    SessionRec& rec = ensure_session_locked(obs.session, obs.source);
    ++rec.screened;
    if (obs.flagged) ++rec.flagged;
    if (obs.suspicious) ++rec.suspicious;

    const std::uint64_t root = find_root(obs.session);
    CampaignRec& camp = campaigns_.at(root);
    ++camp.screened;
    if (obs.flagged) ++camp.flagged;
    if (obs.suspicious) ++camp.suspicious;

    SourceCounters& src = sources_[rec.source];
    src.source = rec.source;
    ++src.screened;
    if (obs.flagged) ++src.flagged;
    if (obs.suspicious) ++src.suspicious;

    // Basis-likeness feeds the deployment alert only; amplitude and
    // detector flags additionally drive clustering.
    push_window_event(obs.flagged, obs.suspicious || obs.basis_like);

    if (!obs.flagged && !obs.suspicious) return;  // clean rows never cluster
    camp.sketch.insert(obs.input_hash);

    const auto owner = index_.find(obs.input_hash);
    if (owner == index_.end()) {
        if (index_order_.size() < config_.index_capacity) {
            index_order_.push_back(obs.input_hash);
        } else {
            // Ring replacement: the oldest indexed hash makes room.
            index_.erase(index_order_[index_cursor_]);
            index_order_[index_cursor_] = obs.input_hash;
            index_cursor_ = (index_cursor_ + 1) % index_order_.size();
        }
        index_.emplace(obs.input_hash, obs.session);
        return;
    }
    const std::uint64_t owner_root = find_root(owner->second);
    if (owner_root == root) return;  // replaying our own campaign
    if (++rec.overlap[owner_root] >= config_.repeat_overlap) {
        merge_campaigns(obs.session, owner_root);
        rec.overlap.clear();
    }
}

// ---- pooled suspicion -------------------------------------------------------

std::uint64_t AttributionEngine::pooled_screened(std::uint64_t session) const {
    std::lock_guard lock(mutex_);
    if (sessions_.count(session) == 0) return 0;
    const auto it = campaigns_.find(find_root(session));
    return it != campaigns_.end() ? it->second.screened : 0;
}

double AttributionEngine::pooled_flagged_fraction(std::uint64_t session) const {
    std::lock_guard lock(mutex_);
    if (sessions_.count(session) == 0) return 0.0;
    const auto it = campaigns_.find(find_root(session));
    if (it == campaigns_.end() || it->second.screened == 0) return 0.0;
    return static_cast<double>(it->second.flagged) / static_cast<double>(it->second.screened);
}

double AttributionEngine::pooled_suspicion_fraction(std::uint64_t session) const {
    std::lock_guard lock(mutex_);
    if (sessions_.count(session) == 0) return 0.0;
    const auto it = campaigns_.find(find_root(session));
    if (it == campaigns_.end() || it->second.screened == 0) return 0.0;
    return static_cast<double>(std::max(it->second.flagged, it->second.suspicious)) /
           static_cast<double>(it->second.screened);
}

// ---- global window ----------------------------------------------------------

bool AttributionEngine::alert_locked() const {
    if (window_filled_ < config_.alert_min_screened) return false;
    const double n = static_cast<double>(window_filled_);
    return static_cast<double>(window_flagged_) / n >= config_.alert_flagged_fraction ||
           static_cast<double>(window_suspicious_) / n >= config_.alert_suspicious_fraction;
}

bool AttributionEngine::alert() const {
    std::lock_guard lock(mutex_);
    return alert_locked();
}

bool AttributionEngine::churn_hot_locked() const {
    return config_.churn_fresh_sources > 0 && churn_fresh_ >= config_.churn_fresh_sources;
}

bool AttributionEngine::churn_alert() const {
    std::lock_guard lock(mutex_);
    return churn_hot_locked();
}

bool AttributionEngine::probation(SourceId source) const {
    std::lock_guard lock(mutex_);
    return source != 0 && probation_.count(source) > 0 &&
           (alert_locked() || churn_hot_locked());
}

std::uint64_t AttributionEngine::window_screened() const {
    std::lock_guard lock(mutex_);
    return window_filled_;
}

double AttributionEngine::window_flagged_fraction() const {
    std::lock_guard lock(mutex_);
    return window_filled_ == 0
               ? 0.0
               : static_cast<double>(window_flagged_) / static_cast<double>(window_filled_);
}

double AttributionEngine::window_suspicious_fraction() const {
    std::lock_guard lock(mutex_);
    return window_filled_ == 0
               ? 0.0
               : static_cast<double>(window_suspicious_) / static_cast<double>(window_filled_);
}

// ---- telemetry --------------------------------------------------------------

std::size_t AttributionEngine::source_count() const {
    std::lock_guard lock(mutex_);
    return sources_.size();
}

std::vector<SourceId> AttributionEngine::sources() const {
    std::lock_guard lock(mutex_);
    std::vector<SourceId> out;
    out.reserve(sources_.size());
    for (const auto& [source, counters] : sources_) out.push_back(source);
    return out;  // std::map iteration: already sorted ascending
}

SourceCounters AttributionEngine::source_counters(SourceId source) const {
    std::lock_guard lock(mutex_);
    const auto it = sources_.find(source);
    if (it == sources_.end()) {
        throw ConfigError("attribution source " + std::to_string(source) +
                          " has never opened a session on this service");
    }
    return it->second;
}

CampaignCounters AttributionEngine::campaign_counters_locked(std::uint64_t root) const {
    const CampaignRec& camp = campaigns_.at(root);
    CampaignCounters out;
    out.id = root;
    out.sessions = camp.sessions;
    out.sources = camp.source_set.size();
    out.screened = camp.screened;
    out.flagged = camp.flagged;
    out.suspicious = camp.suspicious;
    out.sketch_hashes = camp.sketch.size();
    return out;
}

std::size_t AttributionEngine::campaign_count() const {
    std::lock_guard lock(mutex_);
    return campaigns_.size();
}

std::vector<CampaignCounters> AttributionEngine::campaigns() const {
    std::lock_guard lock(mutex_);
    std::vector<CampaignCounters> out;
    out.reserve(campaigns_.size());
    for (const auto& [root, camp] : campaigns_) out.push_back(campaign_counters_locked(root));
    std::sort(out.begin(), out.end(),
              [](const CampaignCounters& a, const CampaignCounters& b) { return a.id < b.id; });
    return out;
}

CampaignCounters AttributionEngine::campaign_of(std::uint64_t session) const {
    std::lock_guard lock(mutex_);
    if (sessions_.count(session) == 0) {
        throw ConfigError("session " + std::to_string(session) +
                          " is unknown to the attribution engine");
    }
    return campaign_counters_locked(find_root(session));
}

std::string AttributionEngine::json_snapshot() const {
    std::lock_guard lock(mutex_);
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(6);
    const double n = window_filled_ > 0 ? static_cast<double>(window_filled_) : 1.0;
    os << "{\"alert\":" << (alert_locked() ? "true" : "false")
       << ",\"churn_alert\":" << (churn_hot_locked() ? "true" : "false")
       << ",\"churn_fresh_sources\":" << churn_fresh_
       << ",\"probation_sources\":" << probation_.size() << ",\"window\":{\"screened\":"
       << window_filled_ << ",\"flagged_fraction\":" << static_cast<double>(window_flagged_) / n
       << ",\"suspicious_fraction\":" << static_cast<double>(window_suspicious_) / n << "}";
    os << ",\"sources\":[";
    bool first = true;
    for (const auto& [source, src] : sources_) {
        os << (first ? "" : ",") << "{\"source\":" << source << ",\"sessions\":" << src.sessions
           << ",\"screened\":" << src.screened << ",\"flagged\":" << src.flagged
           << ",\"suspicious\":" << src.suspicious << "}";
        first = false;
    }
    os << "],\"campaigns\":[";
    first = true;
    std::vector<std::uint64_t> roots;
    roots.reserve(campaigns_.size());
    for (const auto& [root, camp] : campaigns_) roots.push_back(root);
    std::sort(roots.begin(), roots.end());
    for (const std::uint64_t root : roots) {
        const CampaignCounters c = campaign_counters_locked(root);
        os << (first ? "" : ",") << "{\"id\":" << c.id << ",\"sessions\":" << c.sessions
           << ",\"sources\":" << c.sources << ",\"screened\":" << c.screened
           << ",\"flagged\":" << c.flagged << ",\"suspicious\":" << c.suspicious
           << ",\"sketch_hashes\":" << c.sketch_hashes << "}";
        first = false;
    }
    os << "]}";
    return os.str();
}

}  // namespace xbarsec::attrib
