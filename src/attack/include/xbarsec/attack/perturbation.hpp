// Perturbation bookkeeping shared by the attack implementations.
#pragma once

#include <vector>

#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::attack {

/// Constraint set R for adversarial perturbations (Eq. 1's feasible set).
struct PerturbationBudget {
    /// ℓ∞ cap on the perturbation (0 = unconstrained).
    double linf = 0.0;

    /// When true, the perturbed input is clamped back into [box_lo, box_hi].
    /// The paper's Figure-4 sweep does NOT clamp (attack strengths up to 10
    /// on [0,1] images), so this defaults off.
    bool clip_to_box = false;
    double box_lo = 0.0;
    double box_hi = 1.0;
};

/// Applies `r` to `u` under the budget: r is ℓ∞-projected first, then the
/// sum is optionally box-clamped. Returns the adversarial input u′.
tensor::Vector apply_perturbation(const tensor::Vector& u, const tensor::Vector& r,
                                  const PerturbationBudget& budget);

/// ℓ∞ projection of r onto the budget ball (identity when linf == 0).
tensor::Vector project_linf(const tensor::Vector& r, double linf);

/// One-hot target matrix from integer labels: row i has a 1 at labels[i].
/// Validates every label against num_classes. Shared by the batched
/// gradient attacks.
tensor::Matrix one_hot_targets(const std::vector<int>& labels, std::size_t num_classes);

}  // namespace xbarsec::attack
