// Black-box attack evaluation through the Oracle interface.
//
// Crafting helpers assemble whole adversarial batches (same per-sample
// RNG order as the scalar attack loops, so results are reproducible
// against the per-vector implementations), and the evaluators score them
// with batched label queries against an `Oracle&` — so the same code
// evaluates a bare crossbar, a software model, or a fully decorated
// defended deployment (where detector screening and query budgets apply
// to every evaluation query).
#pragma once

#include <vector>

#include "xbarsec/attack/multi_pixel.hpp"
#include "xbarsec/attack/pgd.hpp"
#include "xbarsec/attack/single_pixel.hpp"
#include "xbarsec/core/oracle.hpp"
#include "xbarsec/core/service.hpp"
#include "xbarsec/data/dataset.hpp"

namespace xbarsec::attack {

/// Fraction of rows of X the oracle labels as `labels` (batched queries).
double oracle_accuracy(core::Oracle& oracle, const tensor::Matrix& X,
                       const std::vector<int>& labels);

/// Oracle accuracy on a clean dataset.
double oracle_accuracy(core::Oracle& oracle, const data::Dataset& dataset);

/// Crafts one adversarial example per test sample with the single-pixel
/// method (same RNG consumption order as the per-sample loop).
tensor::Matrix craft_single_pixel_batch(SinglePixelMethod method, const data::Dataset& test,
                                        double strength, const tensor::Vector* power_l1,
                                        const nn::SingleLayerNet* white_box, Rng& rng);

/// Crafts one adversarial example per test sample with the multi-pixel
/// attack on the top-n `power_l1` pixels.
tensor::Matrix craft_multi_pixel_batch(const data::Dataset& test, const tensor::Vector& power_l1,
                                       std::size_t n, double strength,
                                       MultiPixelDirection direction,
                                       const nn::SingleLayerNet* white_box, Rng& rng);

/// Victim (oracle) accuracy when every sample is attacked with `method`
/// at `strength`. `white_box` supplies gradients for WorstCase only.
double evaluate_single_pixel_attack(core::Oracle& oracle, const data::Dataset& test,
                                    SinglePixelMethod method, double strength,
                                    const tensor::Vector* power_l1,
                                    const nn::SingleLayerNet* white_box, Rng& rng);

/// Victim (oracle) accuracy under the top-n multi-pixel attack.
double evaluate_multi_pixel_attack(core::Oracle& oracle, const data::Dataset& test,
                                   const tensor::Vector& power_l1, std::size_t n, double strength,
                                   MultiPixelDirection direction,
                                   const nn::SingleLayerNet* white_box, Rng& rng);

/// Victim (oracle) accuracy when every test sample is attacked with FGSM
/// crafted against `surrogate` (Figure 5's transfer attack). Crafting is
/// two GEMMs over the whole set; scoring is one batched label query.
double evaluate_fgsm_attack(core::Oracle& oracle, const nn::SingleLayerNet& surrogate,
                            const data::Dataset& test, double epsilon,
                            const PerturbationBudget& budget = {});

/// Victim (oracle) accuracy under PGD crafted against `surrogate` —
/// batched gradient steps, one batched label query to score.
double evaluate_pgd_attack(core::Oracle& oracle, const nn::SingleLayerNet& surrogate,
                           const data::Dataset& test, const PgdConfig& config);

// ---- session-based evaluation -----------------------------------------------
//
// The same black-box scoring driven through an OracleService session:
// crafting is unchanged, and the scoring queries ride the session's
// coalesced submit path under that tenant's policy (budget charged,
// detector screened, session noise applied). Convenience wrappers over
// Session::oracle().

double oracle_accuracy(core::Session& session, const tensor::Matrix& X,
                       const std::vector<int>& labels);
double oracle_accuracy(core::Session& session, const data::Dataset& dataset);

double evaluate_fgsm_attack(core::Session& session, const nn::SingleLayerNet& surrogate,
                            const data::Dataset& test, double epsilon,
                            const PerturbationBudget& budget = {});

double evaluate_pgd_attack(core::Session& session, const nn::SingleLayerNet& surrogate,
                           const data::Dataset& test, const PgdConfig& config);

}  // namespace xbarsec::attack
