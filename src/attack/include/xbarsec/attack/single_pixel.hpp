// Single-pixel attacks guided by power information (Section III, Fig. 4).
//
// Five methods, exactly as the paper's legend defines them:
//   RandomPixel (RP)   — random pixel, random ± direction (no model info);
//   PowerAdd (+)       — pixel with the largest column 1-norm, +strength;
//   PowerSub (−)       — same pixel, −strength;
//   PowerRandomDir (RD)— same pixel, random ± direction;
//   WorstCase (Worst)  — white-box bound: the most loss-sensitive pixel,
//                        perturbed in the loss-ascending direction
//                        (single-pixel FGSM).
// The power-guided methods consume only the 1-norm ranking the side
// channel leaks; WorstCase needs the true gradient and is the reference
// lower bound for accuracy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/network.hpp"

namespace xbarsec::attack {

enum class SinglePixelMethod { RandomPixel, PowerAdd, PowerSub, PowerRandomDir, WorstCase };

/// Paper legend label ("RP", "+", "-", "RD", "Worst").
std::string to_string(SinglePixelMethod m);

/// All five methods in the paper's legend order.
const std::vector<SinglePixelMethod>& all_single_pixel_methods();

/// Produces the adversarial input for one sample.
///   * `power_l1` — the attacker's (possibly noisy) estimate of the column
///     1-norms; required by the three power-guided methods.
///   * `white_box` — the true victim network; required by WorstCase.
///   * `rng` — consumed by RandomPixel / PowerRandomDir.
/// Inputs are NOT box-clamped (matching the paper's Figure 4 sweep).
tensor::Vector attack_single_pixel(SinglePixelMethod method, const tensor::Vector& u,
                                   const tensor::Vector& target, double strength,
                                   const tensor::Vector* power_l1,
                                   const nn::SingleLayerNet* white_box, Rng& rng);

/// Victim accuracy over `test` when every sample is attacked with
/// `method` at `strength`. `victim` is the network being evaluated (the
/// oracle); for WorstCase the same network provides the gradients.
double evaluate_single_pixel_attack(const nn::SingleLayerNet& victim, const data::Dataset& test,
                                    SinglePixelMethod method, double strength,
                                    const tensor::Vector* power_l1, Rng& rng);

}  // namespace xbarsec::attack
