// Projected gradient descent (iterated FGSM; Madry et al. 2018).
//
// Library extension beyond the paper: the paper evaluates single-step
// FGSM (Eq. 2); PGD is the standard stronger multi-step variant and is
// used by the ablations to bound how much headroom the one-step attack
// leaves on the table. Each step ascends the loss by step_size·sign(∇)
// and re-projects into the ℓ∞ ball of radius epsilon around the clean
// input (plus the optional box).
#pragma once

#include <cstdint>
#include <vector>

#include "xbarsec/attack/perturbation.hpp"
#include "xbarsec/nn/network.hpp"

namespace xbarsec::attack {

struct PgdConfig {
    double epsilon = 0.1;     ///< ℓ∞ radius of the perturbation ball
    double step_size = 0.025; ///< per-iteration step (≈ epsilon/4 is typical)
    std::size_t steps = 10;
    /// Start from a uniform random point inside the ball instead of the
    /// clean input (random restarts decorrelate from gradient masking).
    bool random_start = false;
    std::uint64_t seed = 71;
    /// Optional box clamp applied after every step.
    bool clip_to_box = false;
    double box_lo = 0.0;
    double box_hi = 1.0;
};

/// Runs PGD on one sample against `net` (untargeted: ascends the loss of
/// the true label). Returns the adversarial input.
tensor::Vector pgd_attack(const nn::SingleLayerNet& net, const tensor::Vector& u,
                          const tensor::Vector& target, const PgdConfig& config);

/// Batch variant over rows of X with integer labels.
tensor::Matrix pgd_attack_batch(const nn::SingleLayerNet& net, const tensor::Matrix& X,
                                const std::vector<int>& labels, std::size_t num_classes,
                                const PgdConfig& config);

}  // namespace xbarsec::attack
