// Fast gradient attacks (Goodfellow et al. 2015; the paper's Eq. 2).
//
// FGSM perturbs every input by ε·sign(∂L/∂u); FGV scales the raw gradient
// to the same ℓ∞ magnitude instead, preserving the gradient's shape. Both
// run against a SingleLayerNet — in the black-box pipeline that net is
// the attacker's *surrogate*, and the resulting adversarial examples are
// transferred to the oracle (Figure 5).
#pragma once

#include <vector>

#include "xbarsec/attack/perturbation.hpp"
#include "xbarsec/nn/network.hpp"

namespace xbarsec::attack {

/// Eq. 2: r = ε · sgn(∇_u L). `target` is the ground-truth one-hot (the
/// attack is untargeted: it ascends the loss).
tensor::Vector fgsm_perturbation(const nn::SingleLayerNet& net, const tensor::Vector& u,
                                 const tensor::Vector& target, double epsilon);

/// Fast-gradient-value variant: r = ε · ∇_u L / ‖∇_u L‖∞ (zero gradient ⇒
/// zero perturbation).
tensor::Vector fgv_perturbation(const nn::SingleLayerNet& net, const tensor::Vector& u,
                                const tensor::Vector& target, double epsilon);

/// Applies FGSM to every row of X (labels give the one-hot targets) and
/// returns the perturbed batch under `budget`.
tensor::Matrix fgsm_attack_batch(const nn::SingleLayerNet& net, const tensor::Matrix& X,
                                 const std::vector<int>& labels, std::size_t num_classes,
                                 double epsilon, const PerturbationBudget& budget = {});

}  // namespace xbarsec::attack
