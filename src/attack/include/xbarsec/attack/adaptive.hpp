// Adaptive attacker strategies against a rate-limited, suspicion-scaled
// serving deployment (the attack side of the arms race).
//
// The extraction pipeline itself is unchanged — query inputs, record
// outputs and power, fit a least-squares surrogate (Section IV). What
// this layer adds is *how* the queries are driven through OracleService
// sessions when the defender pushes back:
//
//   Fixed     fire as fast as the session allows; a refused query is a
//             lost sample (the paper's static attacker).
//   Throttle  back off and retry below the token-bucket refill rate —
//             recovers the samples, pays wall-clock.
//   Rotate    Throttle + rotate to a fresh session every N queries; each
//             rotation buys a fresh burst allowance and a fresh
//             detection window.
//   Spread    Rotate + camouflage mixing and flagged-fraction tracking:
//             keeps every session's suspicion under a target so
//             suspicion-scaled defenses never escalate.
//   Forge     Spread + a freshly forged SourceId on every rotation:
//             defeats per-source pooling and per-source rate limits by
//             never reusing an admission identity. Query-overlap
//             clustering is what a deployment has left against it.
#pragma once

#include <chrono>
#include <cstdint>

#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/core/service.hpp"

namespace xbarsec::attack {

enum class AttackerStrategy { Fixed, Throttle, Rotate, Spread, Forge };

const char* to_string(AttackerStrategy strategy);

struct AdaptiveAttackerConfig {
    AttackerStrategy strategy = AttackerStrategy::Fixed;

    /// Samples the campaign tries to collect (each is one raw/label
    /// query plus one power query through the session).
    std::size_t planned_queries = 600;

    /// Throttle/Rotate/Spread: sleep this long after a RateLimited
    /// refusal before retrying, up to max_retries per query.
    std::chrono::microseconds backoff{500};
    std::size_t max_retries = 64;

    /// Rotate/Spread: open a fresh session after this many collected
    /// samples (fresh burst allowance + fresh detection window).
    std::size_t rotate_after = 128;

    /// Spread: rotate immediately once the current session's flagged
    /// fraction exceeds this, and mix this fraction of clean camouflage
    /// inputs into the probe stream to keep suspicion low.
    double flag_target = 0.10;
    double camouflage = 0.5;

    /// Prefer raw output vectors; on AccessDenied (exposure policy or an
    /// adaptive band withholding raw) fall back to one-hot labels.
    bool query_raw = true;

    /// Forge: the first forged SourceId; each rotation takes the next
    /// one (base, base + 1, ...), so no two of the campaign's sessions
    /// ever share an admission identity.
    std::uint64_t forge_source_base = 0xF0000000ull;

    std::uint64_t seed = 7;
};

/// What the campaign gathered and what it cost the attacker.
struct AdaptiveAttackerOutcome {
    QueryDataset data;  ///< collected samples, ready for a surrogate fit

    std::size_t collected = 0;
    std::size_t refused = 0;      ///< lost samples (rate/budget/detector)
    std::size_t raw_denied = 0;   ///< raw withheld, fell back to labels
    std::size_t rate_hits = 0;    ///< RateLimited encounters (incl. retried)
    std::size_t sessions_used = 1;
    double wall_seconds = 0.0;
    double max_flagged_fraction = 0.0;  ///< worst per-session suspicion reached
};

/// Drives one extraction campaign through OracleService sessions opened
/// with the given per-tenant policy (the same policy every tenant gets —
/// the deployment cannot single the attacker out up front).
class AdaptiveAttacker {
public:
    AdaptiveAttacker(core::OracleService& service, core::SessionConfig tenant,
                     AdaptiveAttackerConfig config);

    /// Runs the campaign: picks inputs from `probe_pool` (high-leverage
    /// probe inputs; rows are query vectors) — and, under Spread, mixes
    /// rows of `camouflage_pool` (clean in-distribution inputs) — until
    /// planned_queries attempts are spent.
    AdaptiveAttackerOutcome run(const tensor::Matrix& probe_pool,
                                const tensor::Matrix& camouflage_pool);

private:
    core::OracleService* service_;
    core::SessionConfig tenant_;
    AdaptiveAttackerConfig config_;
};

}  // namespace xbarsec::attack
