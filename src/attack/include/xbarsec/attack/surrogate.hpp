// Power-aware surrogate training (Section IV, Eq. 9).
//
// The attacker queries the oracle with Q inputs, recording the outputs
// (raw vectors or one-hot labels) and the power side channel, then fits a
// linear single-layer surrogate with the joint loss
//     L = L_out + λ·L_power                                   (Eq. 9)
// where L_out is the output MSE and L_power the MSE between the oracle's
// power reading and the surrogate's own implied power
//     p̂(u) = Σ_j u_j·‖Ŵ[:,j]‖₁
// (the total current its weights would draw on an ideal one-sided
// crossbar, in weight units). The power term is differentiable a.e. with
// ∂p̂/∂ŵ_ij = u_j·sign(ŵ_ij).
#pragma once

#include <cstdint>
#include <vector>

#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/nn/network.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/tensor/workspace.hpp"

namespace xbarsec::attack {

/// What the attacker recorded from Q oracle queries.
struct QueryDataset {
    tensor::Matrix inputs;   ///< Q × N query inputs
    tensor::Matrix outputs;  ///< Q × M oracle outputs (raw, or one-hot labels)
    tensor::Vector power;    ///< Q power readings in weight units

    std::size_t size() const { return inputs.rows(); }
};

/// Hyperparameters of the surrogate fit.
struct SurrogateConfig {
    /// λ in Eq. 9. 0 disables the power term (the paper's baseline).
    double power_loss_weight = 0.0;

    /// Optimisation settings (epochs, batch size, learning rate, ...).
    nn::TrainConfig train;

    /// Glorot-init seed for the surrogate weights.
    std::uint64_t init_seed = 5;
};

/// Result of a surrogate fit with its per-epoch loss decomposition.
struct SurrogateTrainResult {
    nn::SingleLayerNet surrogate;
    std::vector<double> epoch_output_loss;
    std::vector<double> epoch_power_loss;  ///< unweighted (multiply by λ for Eq. 9's term)
};

/// The surrogate's implied power for one input: Σ_j u_j·‖Ŵ[:,j]‖₁.
double surrogate_power(const nn::SingleLayerNet& surrogate, const tensor::Vector& u);

/// Batch variant: implied power for each row of U.
tensor::Vector surrogate_power_batch(const tensor::Matrix& W, const tensor::Matrix& U);

/// Fits a linear (Linear+Mse) surrogate to the query data with Eq. 9's
/// loss via minibatch SGD. Throws ConfigError on shape mismatches.
SurrogateTrainResult train_surrogate(const QueryDataset& queries, const SurrogateConfig& config);

/// Closed-form baseline for the Q ≥ N regime (Section IV's observation
/// that W = U†·Ŷ): least-squares fit, ignoring the power channel. Ridge
/// regularisation `lambda_ridge` handles Q < N or rank deficiency. The
/// normal-equations GEMMs block over the kernel layer and shard across
/// `pool` when given, so surrogate-extraction sweeps parallelize. A
/// caller that fits repeatedly (query-budget sweeps) can pass a Workspace
/// so the N×N normal-equations temporaries are reused across fits.
nn::SingleLayerNet fit_least_squares_surrogate(const QueryDataset& queries,
                                               double lambda_ridge = 0.0,
                                               ThreadPool* pool = nullptr,
                                               tensor::Workspace* ws = nullptr);

}  // namespace xbarsec::attack
