// Multi-pixel extension of the power-guided attack (Section III remark).
//
// The paper notes that attacking the pixels with the top-N column 1-norms
// (each with a random ± direction) *decreases* in effectiveness with N,
// because the probability of guessing every direction correctly is
// (1/2)^N. These helpers implement that experiment (bench_multi_pixel)
// plus the all-add variant for comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/network.hpp"

namespace xbarsec::attack {

enum class MultiPixelDirection {
    RandomPerPixel,  ///< each selected pixel gets an independent ± (paper's setup)
    AllAdd,          ///< every selected pixel gets +strength
    Oracle,          ///< white-box sign per pixel (upper bound on this pixel set)
};

/// Indices of the top-n entries of `ranking`, descending.
std::vector<std::size_t> top_n_indices(const tensor::Vector& ranking, std::size_t n);

/// Perturbs the `pixels` of u by ±strength according to `direction`.
/// `white_box` is required only for MultiPixelDirection::Oracle.
tensor::Vector attack_pixels(const tensor::Vector& u, const tensor::Vector& target,
                             const std::vector<std::size_t>& pixels, double strength,
                             MultiPixelDirection direction, const nn::SingleLayerNet* white_box,
                             Rng& rng);

/// Victim accuracy over `test` when the top-n 1-norm pixels are attacked.
double evaluate_multi_pixel_attack(const nn::SingleLayerNet& victim, const data::Dataset& test,
                                   const tensor::Vector& power_l1, std::size_t n, double strength,
                                   MultiPixelDirection direction, Rng& rng);

}  // namespace xbarsec::attack
