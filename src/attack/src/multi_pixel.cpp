#include "xbarsec/attack/multi_pixel.hpp"

#include <algorithm>
#include <numeric>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {

std::vector<std::size_t> top_n_indices(const tensor::Vector& ranking, std::size_t n) {
    XS_EXPECTS(n >= 1 && n <= ranking.size());
    std::vector<std::size_t> idx(ranking.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n), idx.end(),
                      [&ranking](std::size_t a, std::size_t b) { return ranking[a] > ranking[b]; });
    idx.resize(n);
    return idx;
}

tensor::Vector attack_pixels(const tensor::Vector& u, const tensor::Vector& target,
                             const std::vector<std::size_t>& pixels, double strength,
                             MultiPixelDirection direction, const nn::SingleLayerNet* white_box,
                             Rng& rng) {
    XS_EXPECTS(strength >= 0.0);
    tensor::Vector adv = u;
    tensor::Vector gradient;
    if (direction == MultiPixelDirection::Oracle) {
        if (white_box == nullptr) {
            throw ConfigError("oracle-direction multi-pixel attack needs white-box access");
        }
        gradient = white_box->input_gradient(u, target);
    }
    for (const std::size_t j : pixels) {
        XS_EXPECTS(j < u.size());
        double dir = 1.0;
        switch (direction) {
            case MultiPixelDirection::RandomPerPixel: dir = rng.sign(); break;
            case MultiPixelDirection::AllAdd: dir = 1.0; break;
            case MultiPixelDirection::Oracle: dir = gradient[j] >= 0.0 ? 1.0 : -1.0; break;
        }
        adv[j] += dir * strength;
    }
    return adv;
}

double evaluate_multi_pixel_attack(const nn::SingleLayerNet& victim, const data::Dataset& test,
                                   const tensor::Vector& power_l1, std::size_t n, double strength,
                                   MultiPixelDirection direction, Rng& rng) {
    XS_EXPECTS(test.size() > 0);
    XS_EXPECTS(power_l1.size() == victim.inputs());
    const std::vector<std::size_t> pixels = top_n_indices(power_l1, n);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        const tensor::Vector u = test.input(i);
        const tensor::Vector t = test.target(i);
        const tensor::Vector adv = attack_pixels(u, t, pixels, strength, direction, &victim, rng);
        if (victim.classify(adv) == test.label(i)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace xbarsec::attack
