#include "xbarsec/attack/pgd.hpp"

#include <algorithm>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {

tensor::Vector pgd_attack(const nn::SingleLayerNet& net, const tensor::Vector& u,
                          const tensor::Vector& target, const PgdConfig& config) {
    XS_EXPECTS(config.epsilon >= 0.0);
    XS_EXPECTS(config.step_size > 0.0);
    XS_EXPECTS(config.steps >= 1);
    XS_EXPECTS(u.size() == net.inputs());

    tensor::Vector adv = u;
    if (config.random_start && config.epsilon > 0.0) {
        Rng rng(config.seed);
        for (std::size_t j = 0; j < adv.size(); ++j) {
            adv[j] += rng.uniform(-config.epsilon, config.epsilon);
        }
    }

    for (std::size_t step = 0; step < config.steps; ++step) {
        const tensor::Vector g = net.input_gradient(adv, target);
        for (std::size_t j = 0; j < adv.size(); ++j) {
            if (g[j] > 0.0) adv[j] += config.step_size;
            else if (g[j] < 0.0) adv[j] -= config.step_size;
            // Project back into the ℓ∞ ball around the clean input.
            adv[j] = std::clamp(adv[j], u[j] - config.epsilon, u[j] + config.epsilon);
            if (config.clip_to_box) adv[j] = std::clamp(adv[j], config.box_lo, config.box_hi);
        }
    }
    return adv;
}

tensor::Matrix pgd_attack_batch(const nn::SingleLayerNet& net, const tensor::Matrix& X,
                                const std::vector<int>& labels, std::size_t num_classes,
                                const PgdConfig& config) {
    XS_EXPECTS(X.rows() == labels.size());
    XS_EXPECTS(num_classes == net.outputs());
    tensor::Matrix out(X.rows(), X.cols());
    for (std::size_t i = 0; i < X.rows(); ++i) {
        XS_EXPECTS(labels[i] >= 0 && static_cast<std::size_t>(labels[i]) < num_classes);
        tensor::Vector t(num_classes, 0.0);
        t[static_cast<std::size_t>(labels[i])] = 1.0;
        PgdConfig per_sample = config;
        per_sample.seed = config.seed + i;  // independent random starts
        const tensor::Vector adv = pgd_attack(net, X.row(i), t, per_sample);
        auto dst = out.row_span(i);
        std::copy(adv.begin(), adv.end(), dst.begin());
    }
    return out;
}

}  // namespace xbarsec::attack
