#include "xbarsec/attack/pgd.hpp"

#include <algorithm>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {

tensor::Vector pgd_attack(const nn::SingleLayerNet& net, const tensor::Vector& u,
                          const tensor::Vector& target, const PgdConfig& config) {
    XS_EXPECTS(config.epsilon >= 0.0);
    XS_EXPECTS(config.step_size > 0.0);
    XS_EXPECTS(config.steps >= 1);
    XS_EXPECTS(u.size() == net.inputs());

    tensor::Vector adv = u;
    if (config.random_start && config.epsilon > 0.0) {
        Rng rng(config.seed);
        for (std::size_t j = 0; j < adv.size(); ++j) {
            adv[j] += rng.uniform(-config.epsilon, config.epsilon);
        }
    }

    for (std::size_t step = 0; step < config.steps; ++step) {
        const tensor::Vector g = net.input_gradient(adv, target);
        for (std::size_t j = 0; j < adv.size(); ++j) {
            if (g[j] > 0.0) adv[j] += config.step_size;
            else if (g[j] < 0.0) adv[j] -= config.step_size;
            // Project back into the ℓ∞ ball around the clean input.
            adv[j] = std::clamp(adv[j], u[j] - config.epsilon, u[j] + config.epsilon);
            if (config.clip_to_box) adv[j] = std::clamp(adv[j], config.box_lo, config.box_hi);
        }
    }
    return adv;
}

tensor::Matrix pgd_attack_batch(const nn::SingleLayerNet& net, const tensor::Matrix& X,
                                const std::vector<int>& labels, std::size_t num_classes,
                                const PgdConfig& config) {
    XS_EXPECTS(config.epsilon >= 0.0);
    XS_EXPECTS(config.step_size > 0.0);
    XS_EXPECTS(config.steps >= 1);
    XS_EXPECTS(X.rows() == labels.size());
    XS_EXPECTS(X.cols() == net.inputs());
    XS_EXPECTS(num_classes == net.outputs());

    const tensor::Matrix T = one_hot_targets(labels, num_classes);
    tensor::Matrix adv = X;

    if (config.random_start && config.epsilon > 0.0) {
        // Per-row RNG seeded exactly like the per-sample path (seed + i),
        // so batched and scalar attacks draw identical random starts.
        for (std::size_t i = 0; i < adv.rows(); ++i) {
            Rng rng(config.seed + i);
            auto row = adv.row_span(i);
            for (double& a : row) a += rng.uniform(-config.epsilon, config.epsilon);
        }
    }

    // Every iteration takes the whole batch's gradient in two GEMMs and
    // applies the sign step + projection elementwise — the same update,
    // in the same order, as the per-sample loop.
    const std::size_t total = X.size();
    for (std::size_t step = 0; step < config.steps; ++step) {
        const tensor::Matrix G = net.input_gradient_batch(adv, T);
        const double* __restrict x = X.data();
        const double* __restrict g = G.data();
        double* __restrict a = adv.data();
        for (std::size_t j = 0; j < total; ++j) {
            double v = a[j];
            if (g[j] > 0.0) v += config.step_size;
            else if (g[j] < 0.0) v -= config.step_size;
            v = std::clamp(v, x[j] - config.epsilon, x[j] + config.epsilon);
            if (config.clip_to_box) v = std::clamp(v, config.box_lo, config.box_hi);
            a[j] = v;
        }
    }
    return adv;
}

}  // namespace xbarsec::attack
