#include "xbarsec/attack/adaptive.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "xbarsec/common/rng.hpp"

namespace xbarsec::attack {

using core::AccessDenied;
using core::Oracle;
using core::QueryBudgetExceeded;
using core::QueryRefused;
using core::RateLimited;
using core::Session;

const char* to_string(AttackerStrategy strategy) {
    switch (strategy) {
        case AttackerStrategy::Fixed: return "fixed";
        case AttackerStrategy::Throttle: return "throttle";
        case AttackerStrategy::Rotate: return "rotate";
        case AttackerStrategy::Spread: return "spread";
        case AttackerStrategy::Forge: return "forge";
    }
    return "?";
}

AdaptiveAttacker::AdaptiveAttacker(core::OracleService& service, core::SessionConfig tenant,
                                   AdaptiveAttackerConfig config)
    : service_(&service), tenant_(std::move(tenant)), config_(config) {}

namespace {

/// Runs `fn`, absorbing RateLimited per the strategy: Fixed gives up on
/// the first refusal; the adaptive strategies back off and retry.
template <typename Fn>
auto with_rate_retry(Fn&& fn, const AdaptiveAttackerConfig& config, std::size_t& rate_hits)
    -> decltype(fn()) {
    for (std::size_t attempt = 0;; ++attempt) {
        try {
            return fn();
        } catch (const RateLimited&) {
            ++rate_hits;
            if (config.strategy == AttackerStrategy::Fixed || attempt >= config.max_retries) {
                throw;
            }
            std::this_thread::sleep_for(config.backoff);
        }
    }
}

}  // namespace

AdaptiveAttackerOutcome AdaptiveAttacker::run(const tensor::Matrix& probe_pool,
                                              const tensor::Matrix& camouflage_pool) {
    const bool forges = config_.strategy == AttackerStrategy::Forge;
    const bool rotates = config_.strategy == AttackerStrategy::Rotate ||
                         config_.strategy == AttackerStrategy::Spread || forges;
    const bool spreads = config_.strategy == AttackerStrategy::Spread || forges;

    AdaptiveAttackerOutcome out;
    Rng rng(config_.seed);
    const std::size_t outputs = service_->outputs();

    std::vector<tensor::Vector> inputs;
    std::vector<tensor::Vector> raw_rows;
    std::vector<double> powers;
    inputs.reserve(config_.planned_queries);
    raw_rows.reserve(config_.planned_queries);
    powers.reserve(config_.planned_queries);

    const auto t0 = std::chrono::steady_clock::now();
    // Forge presents a fresh admission identity from the first session
    // on — the deployment never sees the tenant's real SourceId.
    if (forges) tenant_.source = config_.forge_source_base;
    Session session = service_->open_session(tenant_);
    // The Oracle& view survives session rotation: operator=(Session&&)
    // rebinds the existing view, so one reference drives the whole
    // campaign regardless of how many sessions it spans.
    Oracle& oracle = session.oracle();
    std::size_t since_rotation = 0;

    auto note_suspicion = [&] {
        out.max_flagged_fraction = std::max(out.max_flagged_fraction, session.flagged_fraction());
    };
    auto rotate = [&] {
        note_suspicion();
        // A forging attacker never reuses an identity: every rotation is
        // a "new customer" as far as per-source defenses can tell.
        if (forges) tenant_.source = config_.forge_source_base + out.sessions_used;
        session = service_->open_session(tenant_);
        ++out.sessions_used;
        since_rotation = 0;
    };

    for (std::size_t q = 0; q < config_.planned_queries; ++q) {
        if (rotates && since_rotation >= config_.rotate_after) rotate();
        if (spreads && session.flagged_fraction() > config_.flag_target &&
            session.screened() > 0) {
            rotate();
        }

        // Spread dilutes its high-leverage probes with clean camouflage
        // rows; every query is still a usable sample for the fit.
        const bool camo = spreads && camouflage_pool.rows() > 0 &&
                          rng.uniform() < config_.camouflage;
        const tensor::Matrix& pool = camo ? camouflage_pool : probe_pool;
        const tensor::Vector u = pool.row(static_cast<std::size_t>(rng.below(pool.rows())));

        tensor::Vector y;
        double p = 0.0;
        try {
            try {
                if (!config_.query_raw) throw AccessDenied("labels only");
                y = with_rate_retry([&] { return oracle.query_raw(u); }, config_, out.rate_hits);
            } catch (const AccessDenied&) {
                // Raw withheld (static exposure or an escalated adaptive
                // band) — a one-hot label is the degraded fallback.
                if (config_.query_raw) ++out.raw_denied;
                const int label =
                    with_rate_retry([&] { return oracle.query_label(u); }, config_, out.rate_hits);
                y = tensor::Vector(outputs, 0.0);
                y[static_cast<std::size_t>(label)] = 1.0;
            }
            p = with_rate_retry([&] { return oracle.query_power(u); }, config_, out.rate_hits);
        } catch (const RateLimited&) {
            ++out.refused;  // Fixed gives up; adaptive ran out of retries
            continue;
        } catch (const QueryBudgetExceeded&) {
            ++out.refused;
            continue;
        } catch (const QueryRefused&) {
            ++out.refused;  // a blocking detector rejected the input
            continue;
        } catch (const AccessDenied&) {
            ++out.refused;  // power channel withheld too — sample unusable
            continue;
        }

        inputs.push_back(u);
        raw_rows.push_back(std::move(y));
        powers.push_back(p);
        ++since_rotation;
    }
    note_suspicion();
    const auto t1 = std::chrono::steady_clock::now();

    out.collected = inputs.size();
    out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    if (!inputs.empty()) {
        out.data.inputs = tensor::Matrix::from_rows(inputs);
        out.data.outputs = tensor::Matrix::from_rows(raw_rows);
        out.data.power = tensor::Vector(powers.size(), 0.0);
        std::copy(powers.begin(), powers.end(), out.data.power.begin());
    }
    return out;
}

}  // namespace xbarsec::attack
