#include "xbarsec/attack/fgsm.hpp"

#include <algorithm>

#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {

tensor::Vector fgsm_perturbation(const nn::SingleLayerNet& net, const tensor::Vector& u,
                                 const tensor::Vector& target, double epsilon) {
    XS_EXPECTS(epsilon >= 0.0);
    tensor::Vector r = tensor::sign(net.input_gradient(u, target));
    r *= epsilon;
    return r;
}

tensor::Vector fgv_perturbation(const nn::SingleLayerNet& net, const tensor::Vector& u,
                                const tensor::Vector& target, double epsilon) {
    XS_EXPECTS(epsilon >= 0.0);
    tensor::Vector g = net.input_gradient(u, target);
    const double m = tensor::norm_inf(g);
    if (m == 0.0) return tensor::Vector(g.size(), 0.0);
    g *= epsilon / m;
    return g;
}

tensor::Matrix fgsm_attack_batch(const nn::SingleLayerNet& net, const tensor::Matrix& X,
                                 const std::vector<int>& labels, std::size_t num_classes,
                                 double epsilon, const PerturbationBudget& budget) {
    XS_EXPECTS(X.rows() == labels.size());
    XS_EXPECTS(num_classes == net.outputs());
    tensor::Matrix out(X.rows(), X.cols());
    tensor::Vector u(X.cols());
    for (std::size_t i = 0; i < X.rows(); ++i) {
        const auto src = X.row_span(i);
        std::copy(src.begin(), src.end(), u.begin());
        tensor::Vector t(num_classes, 0.0);
        XS_EXPECTS(labels[i] >= 0 && static_cast<std::size_t>(labels[i]) < num_classes);
        t[static_cast<std::size_t>(labels[i])] = 1.0;
        const tensor::Vector r = fgsm_perturbation(net, u, t, epsilon);
        const tensor::Vector adv = apply_perturbation(u, r, budget);
        auto dst = out.row_span(i);
        std::copy(adv.begin(), adv.end(), dst.begin());
    }
    return out;
}

}  // namespace xbarsec::attack
