#include "xbarsec/attack/fgsm.hpp"

#include <algorithm>

#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {

tensor::Vector fgsm_perturbation(const nn::SingleLayerNet& net, const tensor::Vector& u,
                                 const tensor::Vector& target, double epsilon) {
    XS_EXPECTS(epsilon >= 0.0);
    tensor::Vector r = tensor::sign(net.input_gradient(u, target));
    r *= epsilon;
    return r;
}

tensor::Vector fgv_perturbation(const nn::SingleLayerNet& net, const tensor::Vector& u,
                                const tensor::Vector& target, double epsilon) {
    XS_EXPECTS(epsilon >= 0.0);
    tensor::Vector g = net.input_gradient(u, target);
    const double m = tensor::norm_inf(g);
    if (m == 0.0) return tensor::Vector(g.size(), 0.0);
    g *= epsilon / m;
    return g;
}

tensor::Matrix fgsm_attack_batch(const nn::SingleLayerNet& net, const tensor::Matrix& X,
                                 const std::vector<int>& labels, std::size_t num_classes,
                                 double epsilon, const PerturbationBudget& budget) {
    XS_EXPECTS(epsilon >= 0.0);
    XS_EXPECTS(X.rows() == labels.size());
    XS_EXPECTS(num_classes == net.outputs());
    XS_EXPECTS(budget.linf >= 0.0);
    if (budget.clip_to_box) XS_EXPECTS(budget.box_lo <= budget.box_hi);

    // The whole test set's gradients in two GEMMs, then one elementwise
    // pass applying Eq. 2 and the budget (identical per-element semantics
    // to fgsm_perturbation + apply_perturbation on every row).
    const tensor::Matrix T = one_hot_targets(labels, num_classes);
    const tensor::Matrix G = net.input_gradient_batch(X, T);

    tensor::Matrix out(X.rows(), X.cols());
    const double* __restrict x = X.data();
    const double* __restrict g = G.data();
    double* __restrict o = out.data();
    const double eps = budget.linf > 0.0 ? std::min(epsilon, budget.linf) : epsilon;
    for (std::size_t i = 0; i < X.size(); ++i) {
        const double r = g[i] > 0.0 ? eps : (g[i] < 0.0 ? -eps : 0.0);
        double a = x[i] + r;
        if (budget.clip_to_box) a = std::clamp(a, budget.box_lo, budget.box_hi);
        o[i] = a;
    }
    return out;
}

}  // namespace xbarsec::attack
