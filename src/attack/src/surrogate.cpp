#include "xbarsec/attack/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/linalg.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {

double surrogate_power(const nn::SingleLayerNet& surrogate, const tensor::Vector& u) {
    XS_EXPECTS(u.size() == surrogate.inputs());
    return tensor::dot(tensor::column_abs_sums(surrogate.weights()), u);
}

tensor::Vector surrogate_power_batch(const tensor::Matrix& W, const tensor::Matrix& U) {
    XS_EXPECTS(U.cols() == W.cols());
    // Eq. 9's p̂ for the whole batch is one matvec against the column
    // 1-norms (the same kernel the crossbar's batched power path uses).
    return tensor::matvec(U, tensor::column_abs_sums(W));
}

namespace {

void validate(const QueryDataset& q) {
    if (q.inputs.rows() == 0) throw ConfigError("surrogate: empty query set");
    if (q.outputs.rows() != q.inputs.rows()) {
        throw ConfigError("surrogate: inputs/outputs row mismatch");
    }
    if (q.power.size() != q.inputs.rows()) {
        throw ConfigError("surrogate: inputs/power row mismatch");
    }
}

}  // namespace

SurrogateTrainResult train_surrogate(const QueryDataset& queries, const SurrogateConfig& config) {
    validate(queries);
    XS_EXPECTS(config.power_loss_weight >= 0.0);
    const std::size_t n_inputs = queries.inputs.cols();
    const std::size_t n_outputs = queries.outputs.cols();
    const std::size_t Q = queries.size();
    const auto& tc = config.train;
    XS_EXPECTS(tc.epochs > 0 && tc.batch_size > 0);

    Rng init_rng(config.init_seed);
    SurrogateTrainResult result{
        nn::SingleLayerNet(init_rng, n_inputs, n_outputs, nn::Activation::Linear, nn::Loss::Mse),
        {},
        {}};
    nn::SingleLayerNet& net = result.surrogate;

    auto optimizer = nn::make_optimizer(tc.optimizer, tc.learning_rate, tc.momentum);
    const std::size_t w_slot = optimizer->register_parameter(net.weights().size());

    double decay = 1.0;
    if (tc.final_lr_fraction > 0.0 && tc.epochs > 1 && tc.optimizer == nn::OptimizerKind::Sgd) {
        decay = std::pow(tc.final_lr_fraction, 1.0 / static_cast<double>(tc.epochs - 1));
    }

    Rng shuffle_rng(tc.shuffle_seed);
    std::vector<std::size_t> order(Q);
    for (std::size_t i = 0; i < Q; ++i) order[i] = i;

    const double lambda = config.power_loss_weight;
    tensor::Matrix grad_w(n_outputs, n_inputs, 0.0);

    // Minibatch temporaries draw from one reused Workspace when the train
    // config's arena flag is on (see trainer.cpp — same pattern, same
    // bit-identical-either-way contract).
    tensor::Workspace arena_ws;

    for (std::size_t epoch = 0; epoch < tc.epochs; ++epoch) {
        shuffle_rng.shuffle(order);
        double out_loss_acc = 0.0, power_loss_acc = 0.0;
        std::size_t sample_count = 0;

        for (std::size_t lo = 0; lo < Q; lo += tc.batch_size) {
            const std::size_t hi = std::min(lo + tc.batch_size, Q);
            const std::size_t b = hi - lo;
            const double inv_b = 1.0 / static_cast<double>(b);
            tensor::Workspace fresh_ws;
            tensor::Workspace& ws = tc.arena ? arena_ws : fresh_ws;
            ws.reset();

            tensor::Matrix& xb = ws.matrix(b, queries.inputs.cols());
            tensor::gather_rows(queries.inputs, order, lo, hi, xb);
            tensor::Matrix& tb = ws.matrix(b, queries.outputs.cols());
            tensor::gather_rows(queries.outputs, order, lo, hi, tb);

            // ---- output term: linear activation, MSE over outputs -------
            tensor::Matrix& sb = ws.matrix(b, n_outputs);
            tensor::gemm(1.0, xb, tensor::Op::None, net.weights(), tensor::Op::Transpose, 0.0, sb);
            // δ = 2/M (ŷ − t); accumulate the loss from the same residuals.
            tensor::Matrix& delta = ws.matrix(b, n_outputs);
            const double out_scale = 2.0 / static_cast<double>(n_outputs);
            for (std::size_t r = 0; r < b; ++r) {
                const auto srow = sb.row_span(r);
                const auto trow = tb.row_span(r);
                auto drow = delta.row_span(r);
                double sample_loss = 0.0;
                for (std::size_t c = 0; c < n_outputs; ++c) {
                    const double resid = srow[c] - trow[c];
                    drow[c] = out_scale * resid;
                    sample_loss += resid * resid;
                }
                out_loss_acc += sample_loss / static_cast<double>(n_outputs);
            }
            tensor::gemm(inv_b, delta, tensor::Op::Transpose, xb, tensor::Op::None, 0.0, grad_w);

            // ---- power term (Eq. 9): p̂ = X·colabs(W) -------------------
            if (lambda > 0.0) {
                const tensor::Vector p_hat = surrogate_power_batch(net.weights(), xb);
                tensor::Vector& e = ws.vector(b);
                for (std::size_t r = 0; r < b; ++r) {
                    e[r] = p_hat[r] - queries.power[order[lo + r]];
                    power_loss_acc += e[r] * e[r];
                }
                // q_j = (2/b) Σ_r e_r x_rj = Xᵀ·(2/b·e), scaled in place
                // once the loss has been accumulated from the residuals;
                // ∂L_power/∂w_ij = λ·sign(w_ij)·q_j.
                e *= 2.0 * inv_b;
                const tensor::Vector q = tensor::matvec_transposed(xb, e);
                tensor::Matrix& W = net.weights();
                for (std::size_t i = 0; i < n_outputs; ++i) {
                    auto wrow = W.row_span(i);
                    auto grow = grad_w.row_span(i);
                    for (std::size_t j = 0; j < n_inputs; ++j) {
                        if (wrow[j] > 0.0) grow[j] += lambda * q[j];
                        else if (wrow[j] < 0.0) grow[j] -= lambda * q[j];
                    }
                }
            }

            optimizer->step(w_slot, {net.weights().data(), net.weights().size()},
                            {grad_w.data(), grad_w.size()});
            sample_count += b;
        }

        result.epoch_output_loss.push_back(out_loss_acc / static_cast<double>(sample_count));
        result.epoch_power_loss.push_back(
            lambda > 0.0 ? power_loss_acc / static_cast<double>(sample_count) : 0.0);
        if (auto* sgd = dynamic_cast<nn::Sgd*>(optimizer.get()); sgd != nullptr && decay != 1.0) {
            sgd->set_learning_rate(sgd->learning_rate() * decay);
        }
    }
    return result;
}

nn::SingleLayerNet fit_least_squares_surrogate(const QueryDataset& queries, double lambda_ridge,
                                               ThreadPool* pool, tensor::Workspace* ws) {
    validate(queries);
    const std::size_t n_inputs = queries.inputs.cols();
    const std::size_t n_outputs = queries.outputs.cols();
    tensor::Matrix Wt;  // N × M solution of min ‖U·X − Y‖
    if (lambda_ridge == 0.0 && queries.size() >= n_inputs) {
        Wt = tensor::lstsq(queries.inputs, queries.outputs);
    } else {
        Wt = tensor::ridge_solve(queries.inputs, queries.outputs,
                                 lambda_ridge > 0.0 ? lambda_ridge : 1e-8, pool, ws);
    }
    nn::DenseLayer layer(n_outputs, n_inputs, /*with_bias=*/false);
    layer.weights() = Wt.transposed();
    return nn::SingleLayerNet(std::move(layer), nn::Activation::Linear, nn::Loss::Mse);
}

}  // namespace xbarsec::attack
