#include "xbarsec/attack/evaluate.hpp"

#include "xbarsec/attack/fgsm.hpp"

namespace xbarsec::attack {

double oracle_accuracy(core::Oracle& oracle, const tensor::Matrix& X,
                       const std::vector<int>& labels) {
    XS_EXPECTS(X.rows() == labels.size());
    XS_EXPECTS(X.rows() > 0);
    const std::vector<int> predicted = oracle.query_labels(X);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (predicted[i] == labels[i]) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double oracle_accuracy(core::Oracle& oracle, const data::Dataset& dataset) {
    return oracle_accuracy(oracle, dataset.inputs(), dataset.labels());
}

tensor::Matrix craft_single_pixel_batch(SinglePixelMethod method, const data::Dataset& test,
                                        double strength, const tensor::Vector* power_l1,
                                        const nn::SingleLayerNet* white_box, Rng& rng) {
    XS_EXPECTS(test.size() > 0);
    tensor::Matrix adv(test.size(), test.input_dim());
    for (std::size_t i = 0; i < test.size(); ++i) {
        adv.set_row(i, attack_single_pixel(method, test.input(i), test.target(i), strength,
                                           power_l1, white_box, rng));
    }
    return adv;
}

tensor::Matrix craft_multi_pixel_batch(const data::Dataset& test, const tensor::Vector& power_l1,
                                       std::size_t n, double strength,
                                       MultiPixelDirection direction,
                                       const nn::SingleLayerNet* white_box, Rng& rng) {
    XS_EXPECTS(test.size() > 0);
    XS_EXPECTS(power_l1.size() == test.input_dim());
    const std::vector<std::size_t> pixels = top_n_indices(power_l1, n);
    tensor::Matrix adv(test.size(), test.input_dim());
    for (std::size_t i = 0; i < test.size(); ++i) {
        adv.set_row(i, attack_pixels(test.input(i), test.target(i), pixels, strength, direction,
                                     white_box, rng));
    }
    return adv;
}

double evaluate_single_pixel_attack(core::Oracle& oracle, const data::Dataset& test,
                                    SinglePixelMethod method, double strength,
                                    const tensor::Vector* power_l1,
                                    const nn::SingleLayerNet* white_box, Rng& rng) {
    XS_EXPECTS(test.input_dim() == oracle.inputs());
    const tensor::Matrix adv =
        craft_single_pixel_batch(method, test, strength, power_l1, white_box, rng);
    return oracle_accuracy(oracle, adv, test.labels());
}

double evaluate_multi_pixel_attack(core::Oracle& oracle, const data::Dataset& test,
                                   const tensor::Vector& power_l1, std::size_t n, double strength,
                                   MultiPixelDirection direction,
                                   const nn::SingleLayerNet* white_box, Rng& rng) {
    XS_EXPECTS(test.input_dim() == oracle.inputs());
    const tensor::Matrix adv =
        craft_multi_pixel_batch(test, power_l1, n, strength, direction, white_box, rng);
    return oracle_accuracy(oracle, adv, test.labels());
}

double evaluate_fgsm_attack(core::Oracle& oracle, const nn::SingleLayerNet& surrogate,
                            const data::Dataset& test, double epsilon,
                            const PerturbationBudget& budget) {
    XS_EXPECTS(test.input_dim() == oracle.inputs());
    XS_EXPECTS(test.size() > 0);
    const tensor::Matrix adv = fgsm_attack_batch(surrogate, test.inputs(), test.labels(),
                                                 test.num_classes(), epsilon, budget);
    return oracle_accuracy(oracle, adv, test.labels());
}

double evaluate_pgd_attack(core::Oracle& oracle, const nn::SingleLayerNet& surrogate,
                           const data::Dataset& test, const PgdConfig& config) {
    XS_EXPECTS(test.input_dim() == oracle.inputs());
    XS_EXPECTS(test.size() > 0);
    const tensor::Matrix adv =
        pgd_attack_batch(surrogate, test.inputs(), test.labels(), test.num_classes(), config);
    return oracle_accuracy(oracle, adv, test.labels());
}

// ---- session-based evaluation -----------------------------------------------

double oracle_accuracy(core::Session& session, const tensor::Matrix& X,
                       const std::vector<int>& labels) {
    return oracle_accuracy(session.oracle(), X, labels);
}

double oracle_accuracy(core::Session& session, const data::Dataset& dataset) {
    return oracle_accuracy(session.oracle(), dataset);
}

double evaluate_fgsm_attack(core::Session& session, const nn::SingleLayerNet& surrogate,
                            const data::Dataset& test, double epsilon,
                            const PerturbationBudget& budget) {
    return evaluate_fgsm_attack(session.oracle(), surrogate, test, epsilon, budget);
}

double evaluate_pgd_attack(core::Session& session, const nn::SingleLayerNet& surrogate,
                           const data::Dataset& test, const PgdConfig& config) {
    return evaluate_pgd_attack(session.oracle(), surrogate, test, config);
}

}  // namespace xbarsec::attack
