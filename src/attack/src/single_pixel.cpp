#include "xbarsec/attack/single_pixel.hpp"

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::attack {

std::string to_string(SinglePixelMethod m) {
    switch (m) {
        case SinglePixelMethod::RandomPixel: return "RP";
        case SinglePixelMethod::PowerAdd: return "+";
        case SinglePixelMethod::PowerSub: return "-";
        case SinglePixelMethod::PowerRandomDir: return "RD";
        case SinglePixelMethod::WorstCase: return "Worst";
    }
    return "?";
}

const std::vector<SinglePixelMethod>& all_single_pixel_methods() {
    static const std::vector<SinglePixelMethod> methods = {
        SinglePixelMethod::RandomPixel, SinglePixelMethod::PowerAdd, SinglePixelMethod::PowerSub,
        SinglePixelMethod::PowerRandomDir, SinglePixelMethod::WorstCase};
    return methods;
}

tensor::Vector attack_single_pixel(SinglePixelMethod method, const tensor::Vector& u,
                                   const tensor::Vector& target, double strength,
                                   const tensor::Vector* power_l1,
                                   const nn::SingleLayerNet* white_box, Rng& rng) {
    XS_EXPECTS(strength >= 0.0);
    tensor::Vector adv = u;
    switch (method) {
        case SinglePixelMethod::RandomPixel: {
            const auto j = static_cast<std::size_t>(rng.below(u.size()));
            adv[j] += rng.sign() * strength;
            return adv;
        }
        case SinglePixelMethod::PowerAdd:
        case SinglePixelMethod::PowerSub:
        case SinglePixelMethod::PowerRandomDir: {
            if (power_l1 == nullptr) {
                throw ConfigError("power-guided single-pixel attack needs the 1-norm estimate");
            }
            XS_EXPECTS(power_l1->size() == u.size());
            const std::size_t j = tensor::argmax(*power_l1);
            double direction = 1.0;
            if (method == SinglePixelMethod::PowerSub) direction = -1.0;
            if (method == SinglePixelMethod::PowerRandomDir) direction = rng.sign();
            adv[j] += direction * strength;
            return adv;
        }
        case SinglePixelMethod::WorstCase: {
            if (white_box == nullptr) {
                throw ConfigError("the worst-case single-pixel attack needs white-box access");
            }
            const tensor::Vector g = white_box->input_gradient(u, target);
            // Most sensitive pixel, perturbed along the loss gradient.
            const std::size_t j = tensor::argmax(tensor::abs(g));
            adv[j] += (g[j] >= 0.0 ? 1.0 : -1.0) * strength;
            return adv;
        }
    }
    throw ConfigError("unhandled single-pixel method");
}

double evaluate_single_pixel_attack(const nn::SingleLayerNet& victim, const data::Dataset& test,
                                    SinglePixelMethod method, double strength,
                                    const tensor::Vector* power_l1, Rng& rng) {
    XS_EXPECTS(test.size() > 0);
    XS_EXPECTS(test.input_dim() == victim.inputs());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        const tensor::Vector u = test.input(i);
        const tensor::Vector t = test.target(i);
        const tensor::Vector adv =
            attack_single_pixel(method, u, t, strength, power_l1, &victim, rng);
        if (victim.classify(adv) == test.label(i)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace xbarsec::attack
