#include "xbarsec/attack/perturbation.hpp"

#include <algorithm>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::attack {

tensor::Vector project_linf(const tensor::Vector& r, double linf) {
    XS_EXPECTS(linf >= 0.0);
    if (linf == 0.0) return r;
    tensor::Vector out(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) out[i] = std::clamp(r[i], -linf, linf);
    return out;
}

tensor::Vector apply_perturbation(const tensor::Vector& u, const tensor::Vector& r,
                                  const PerturbationBudget& budget) {
    XS_EXPECTS(u.size() == r.size());
    const tensor::Vector projected = project_linf(r, budget.linf);
    tensor::Vector out = u;
    out += projected;
    if (budget.clip_to_box) {
        XS_EXPECTS(budget.box_lo <= budget.box_hi);
        for (auto& x : out) x = std::clamp(x, budget.box_lo, budget.box_hi);
    }
    return out;
}

}  // namespace xbarsec::attack
