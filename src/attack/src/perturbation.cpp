#include "xbarsec/attack/perturbation.hpp"

#include <algorithm>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::attack {

tensor::Vector project_linf(const tensor::Vector& r, double linf) {
    XS_EXPECTS(linf >= 0.0);
    if (linf == 0.0) return r;
    tensor::Vector out(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) out[i] = std::clamp(r[i], -linf, linf);
    return out;
}

tensor::Matrix one_hot_targets(const std::vector<int>& labels, std::size_t num_classes) {
    tensor::Matrix T(labels.size(), num_classes, 0.0);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        XS_EXPECTS(labels[i] >= 0 && static_cast<std::size_t>(labels[i]) < num_classes);
        T(i, static_cast<std::size_t>(labels[i])) = 1.0;
    }
    return T;
}

tensor::Vector apply_perturbation(const tensor::Vector& u, const tensor::Vector& r,
                                  const PerturbationBudget& budget) {
    XS_EXPECTS(u.size() == r.size());
    const tensor::Vector projected = project_linf(r, budget.linf);
    tensor::Vector out = u;
    out += projected;
    if (budget.clip_to_box) {
        XS_EXPECTS(budget.box_lo <= budget.box_hi);
        for (auto& x : out) x = std::clamp(x, budget.box_lo, budget.box_hi);
    }
    return out;
}

}  // namespace xbarsec::attack
