#include "xbarsec/core/fig5.hpp"

#include <algorithm>
#include <mutex>

#include "xbarsec/attack/fgsm.hpp"
#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/common/error.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/stats/aggregate.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {

nn::TrainConfig surrogate_schedule(std::size_t queries) {
    XS_EXPECTS(queries >= 1);
    nn::TrainConfig tc;
    // Smaller query sets need more passes to converge; the cost of an
    // epoch scales with Q so the total work stays roughly bounded.
    tc.epochs = std::clamp<std::size_t>(40000 / queries, 30, 150);
    tc.batch_size = std::min<std::size_t>(32, queries);
    tc.learning_rate = 0.05;
    tc.momentum = 0.9;
    tc.final_lr_fraction = 0.1;
    return tc;
}

nn::TrainConfig surrogate_schedule(std::size_t queries, double mean_sq_input_norm) {
    nn::TrainConfig tc = surrogate_schedule(queries);
    tc.learning_rate = std::clamp(5.0 / std::max(1.0, mean_sq_input_norm), 1e-4, 0.2);
    return tc;
}

const Fig5Cell& Fig5Result::cell(double lambda, std::size_t queries) const {
    for (const auto& c : cells) {
        if (c.lambda == lambda && c.queries == queries) return c;
    }
    throw ConfigError("no Fig5 cell for the requested (lambda, queries)");
}

namespace {

/// Per-run measurements for every (λ, Q) pair, gathered in run order.
struct RunOutput {
    std::vector<double> surrogate_acc;  ///< indexed by (λ_idx * |Q| + q_idx)
    std::vector<double> adv_acc;
    double clean_acc = 0.0;
};

RunOutput execute_run(std::size_t run, const data::DataSplit& split, const OutputConfig& output,
                      const VictimConfig& base_config, const Fig5Options& options) {
    VictimConfig config = base_config;
    config.output = output;
    config.init_seed = options.seed + 10007 * run;
    config.train.shuffle_seed = options.seed + 10007 * run + 31;

    const TrainedVictim victim = train_victim(split, config);
    CrossbarOracle backend = deploy_victim(victim.net, config);
    // The shared pool also serves each run's batched oracle queries: the
    // kernel layer is bit-identical under any partition, and nested
    // parallel_for is safe (the calling thread drains tasks), so this
    // composes with the run-level parallel_for below.
    backend.set_thread_pool(options.pool);
    DecoratorStack stack(backend);
    if (options.defense) options.defense(stack, backend);
    Oracle& oracle = stack.top();  // what the attacker sees
    const nn::SingleLayerNet deployed = backend.hardware_for_evaluation().effective_network();

    const data::Dataset eval_set =
        options.eval_limit > 0 ? split.test.take(options.eval_limit) : split.test;

    RunOutput out;
    out.surrogate_acc.resize(options.lambdas.size() * options.query_counts.size(), 0.0);
    out.adv_acc.resize(options.lambdas.size() * options.query_counts.size(), 0.0);
    out.clean_acc = nn::accuracy(deployed, eval_set);

    for (std::size_t qi = 0; qi < options.query_counts.size(); ++qi) {
        const std::size_t Q = options.query_counts[qi];
        QueryPlan plan;
        plan.count = Q;
        plan.raw_outputs = options.raw_outputs;
        plan.record_power = true;
        plan.seed = options.seed + 7919 * run + qi;
        const attack::QueryDataset queries = collect_queries(oracle, split.train, plan);

        const double mean_sq_norm = tensor::mean_squared_row_norm(queries.inputs, 512);
        for (std::size_t li = 0; li < options.lambdas.size(); ++li) {
            attack::SurrogateConfig sc;
            sc.power_loss_weight = options.lambdas[li];
            sc.train = surrogate_schedule(Q, mean_sq_norm);
            sc.train.shuffle_seed = options.seed + 7919 * run + 100 * li + qi;
            sc.init_seed = options.seed + 54321 * run + 100 * li + qi;

            const attack::SurrogateTrainResult fit = attack::train_surrogate(queries, sc);

            const std::size_t idx = li * options.query_counts.size() + qi;
            out.surrogate_acc[idx] = nn::accuracy(fit.surrogate, split.test);

            const tensor::Matrix adv = attack::fgsm_attack_batch(
                fit.surrogate, eval_set.inputs(), eval_set.labels(), eval_set.num_classes(),
                options.fgsm_eps);
            out.adv_acc[idx] = nn::accuracy(deployed, adv, eval_set.labels());
        }
    }
    return out;
}

}  // namespace

Fig5Result run_fig5(const data::DataSplit& split, const std::string& dataset_name,
                    const OutputConfig& output, const VictimConfig& base_config,
                    const Fig5Options& options) {
    XS_EXPECTS(options.runs >= 2);
    XS_EXPECTS(!options.query_counts.empty());
    XS_EXPECTS_MSG(std::find(options.lambdas.begin(), options.lambdas.end(), 0.0) !=
                       options.lambdas.end(),
                   "the lambda sweep must include the λ=0 baseline");

    Fig5Result result;
    result.label = dataset_name + "/" + output.name() + (options.raw_outputs ? "/raw" : "/label");
    result.options = options;

    std::vector<RunOutput> runs(options.runs);
    std::mutex log_mutex;
    auto body = [&](std::size_t run) {
        runs[run] = execute_run(run, split, output, base_config, options);
        std::lock_guard lock(log_mutex);
        log::info("fig5 ", result.label, " run ", run + 1, "/", options.runs, " done");
    };
    if (options.pool != nullptr) {
        parallel_for(*options.pool, options.runs, body);
    } else {
        for (std::size_t run = 0; run < options.runs; ++run) body(run);
    }

    // Aggregate across runs.
    stats::RunAggregator agg;
    double clean_acc = 0.0;
    for (const auto& run : runs) {
        clean_acc += run.clean_acc;
        for (std::size_t li = 0; li < options.lambdas.size(); ++li) {
            for (std::size_t qi = 0; qi < options.query_counts.size(); ++qi) {
                const std::size_t idx = li * options.query_counts.size() + qi;
                const std::string key = std::to_string(li) + "|" + std::to_string(qi);
                agg.add("sur|" + key, run.surrogate_acc[idx]);
                agg.add("adv|" + key, run.adv_acc[idx]);
            }
        }
    }
    result.oracle_clean_accuracy_mean = clean_acc / static_cast<double>(options.runs);

    const auto baseline_it = std::find(options.lambdas.begin(), options.lambdas.end(), 0.0);
    const auto baseline_li = static_cast<std::size_t>(baseline_it - options.lambdas.begin());

    for (std::size_t li = 0; li < options.lambdas.size(); ++li) {
        for (std::size_t qi = 0; qi < options.query_counts.size(); ++qi) {
            const std::string key = std::to_string(li) + "|" + std::to_string(qi);
            const std::string base_key =
                std::to_string(baseline_li) + "|" + std::to_string(qi);
            Fig5Cell cell;
            cell.lambda = options.lambdas[li];
            cell.queries = options.query_counts[qi];
            cell.surrogate_accuracy = agg.summary("sur|" + key);
            cell.oracle_adv_accuracy = agg.summary("adv|" + key);
            if (li != baseline_li) {
                const auto test = agg.compare("adv|" + base_key, "adv|" + key);
                // Positive improvement: the power-aided surrogate drives the
                // oracle's adversarial accuracy lower than the baseline does.
                cell.improvement = test.mean_a - test.mean_b;
                cell.p_value = test.p_value;
            }
            result.cells.push_back(cell);
        }
    }
    return result;
}

namespace {

Table render_metric(const Fig5Result& result, bool adversarial) {
    std::vector<std::string> header{"lambda \\ Q"};
    for (const std::size_t q : result.options.query_counts) header.push_back(std::to_string(q));
    Table t(std::move(header));
    for (const double lambda : result.options.lambdas) {
        t.begin_row();
        t.add(Table::format_number(lambda, 4));
        for (const std::size_t q : result.options.query_counts) {
            const Fig5Cell& c = result.cell(lambda, q);
            const stats::Summary& s =
                adversarial ? c.oracle_adv_accuracy : c.surrogate_accuracy;
            t.add(Table::format_number(s.mean, 4) + "±" + Table::format_number(s.stddev, 4));
        }
    }
    return t;
}

}  // namespace

Table render_fig5_surrogate_accuracy(const Fig5Result& result) {
    return render_metric(result, /*adversarial=*/false);
}

Table render_fig5_adversarial_accuracy(const Fig5Result& result) {
    return render_metric(result, /*adversarial=*/true);
}

Table render_fig5_improvement(const Fig5Result& result) {
    std::vector<std::string> header{"lambda \\ Q"};
    for (const std::size_t q : result.options.query_counts) header.push_back(std::to_string(q));
    Table t(std::move(header));
    for (const double lambda : result.options.lambdas) {
        if (lambda == 0.0) continue;  // baseline row is identically zero
        t.begin_row();
        t.add(Table::format_number(lambda, 4));
        for (const std::size_t q : result.options.query_counts) {
            const Fig5Cell& c = result.cell(lambda, q);
            std::string cell = Table::format_number(c.improvement, 4);
            if (c.p_value < 0.05) cell += " *";
            t.add(std::move(cell));
        }
    }
    return t;
}

}  // namespace xbarsec::core
