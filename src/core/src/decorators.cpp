#include "xbarsec/core/decorators.hpp"

#include <algorithm>
#include <string>

namespace xbarsec::core {

// ---- ObfuscatedOracle -------------------------------------------------------

namespace {

sidechannel::TotalCurrentFn build_obfuscation(Oracle& inner, const ObfuscationConfig& config) {
    // The wrapped measurement routes through inner.query_power, so the
    // backend counts the read and deeper decorators still apply.
    sidechannel::TotalCurrentFn base = [&inner](const tensor::Vector& v) {
        return inner.query_power(v);
    };
    switch (config.kind) {
        case ObfuscationConfig::Kind::Dither:
            return sidechannel::make_dithered_measure(std::move(base), config.magnitude,
                                                      config.seed);
        case ObfuscationConfig::Kind::UniformDummy:
            return sidechannel::make_uniform_dummy_measure(std::move(base), config.magnitude);
        case ObfuscationConfig::Kind::RandomDummy:
            return sidechannel::make_random_dummy_measure(std::move(base), inner.inputs(),
                                                          config.magnitude, config.seed);
    }
    throw ConfigError("unknown obfuscation kind");
}

}  // namespace

ObfuscatedOracle::ObfuscatedOracle(Oracle& inner, ObfuscationConfig config)
    : OracleDecorator(inner), config_(config), obfuscated_(build_obfuscation(inner, config)) {}

double ObfuscatedOracle::query_power(const tensor::Vector& u) {
    // The dither transform draws from a stateful Rng inside the wrapper;
    // serialise so concurrent (e.g. thread-pool) queries stay defined and
    // the obfuscation stream deterministic.
    std::lock_guard lock(mutex_);
    return obfuscated_(u);
}

tensor::Vector ObfuscatedOracle::query_power_batch(const tensor::Matrix& U) {
    // The base implementation serialises through this->query_power, which
    // is exactly the documented per-measurement transform semantics.
    return Oracle::query_power_batch(U);
}

// ---- NoisyPowerOracle -------------------------------------------------------

NoisyPowerOracle::NoisyPowerOracle(Oracle& inner, double sigma, std::uint64_t seed)
    : OracleDecorator(inner), sigma_(sigma), rng_(seed) {
    XS_EXPECTS(sigma >= 0.0);
}

double NoisyPowerOracle::query_power(const tensor::Vector& u) {
    const double clean = inner().query_power(u);
    std::lock_guard lock(mutex_);
    return clean + rng_.normal(0.0, sigma_);
}

tensor::Vector NoisyPowerOracle::query_power_batch(const tensor::Matrix& U) {
    tensor::Vector p = inner().query_power_batch(U);
    std::lock_guard lock(mutex_);
    for (std::size_t r = 0; r < p.size(); ++r) p[r] += rng_.normal(0.0, sigma_);
    return p;
}

// ---- BudgetLedger -----------------------------------------------------------

void BudgetLedger::charge_inference(std::uint64_t n) {
    std::lock_guard lock(mutex_);
    if (budget_.max_inference != 0 && spent_inference_ + n > budget_.max_inference) {
        throw QueryBudgetExceeded("inference budget of " + std::to_string(budget_.max_inference) +
                                  " queries is exhausted");
    }
    if (budget_.max_total != 0 && spent_inference_ + spent_power_ + n > budget_.max_total) {
        throw QueryBudgetExceeded("total budget of " + std::to_string(budget_.max_total) +
                                  " queries is exhausted");
    }
    spent_inference_ += n;
}

void BudgetLedger::charge_power(std::uint64_t n) {
    std::lock_guard lock(mutex_);
    if (budget_.max_power != 0 && spent_power_ + n > budget_.max_power) {
        throw QueryBudgetExceeded("power budget of " + std::to_string(budget_.max_power) +
                                  " measurements is exhausted");
    }
    if (budget_.max_total != 0 && spent_inference_ + spent_power_ + n > budget_.max_total) {
        throw QueryBudgetExceeded("total budget of " + std::to_string(budget_.max_total) +
                                  " queries is exhausted");
    }
    spent_power_ += n;
}

void BudgetLedger::refund_inference(std::uint64_t n) {
    std::lock_guard lock(mutex_);
    spent_inference_ -= std::min(n, spent_inference_);
}

void BudgetLedger::refund_power(std::uint64_t n) {
    std::lock_guard lock(mutex_);
    spent_power_ -= std::min(n, spent_power_);
}

QueryCounters BudgetLedger::spent() const {
    std::lock_guard lock(mutex_);
    QueryCounters c;
    c.inference = spent_inference_;
    c.power = spent_power_;
    return c;
}

void BudgetLedger::reset() {
    std::lock_guard lock(mutex_);
    spent_inference_ = 0;
    spent_power_ = 0;
}

// ---- QueryBudgetOracle ------------------------------------------------------

QueryBudgetOracle::QueryBudgetOracle(Oracle& inner, QueryBudget budget)
    : OracleDecorator(inner), ledger_(budget) {}

int QueryBudgetOracle::query_label(const tensor::Vector& u) {
    ledger_.charge_inference(1);
    return inner().query_label(u);
}

tensor::Vector QueryBudgetOracle::query_raw(const tensor::Vector& u) {
    ledger_.charge_inference(1);
    return inner().query_raw(u);
}

double QueryBudgetOracle::query_power(const tensor::Vector& u) {
    ledger_.charge_power(1);
    return inner().query_power(u);
}

std::vector<int> QueryBudgetOracle::query_labels(const tensor::Matrix& U) {
    ledger_.charge_inference(U.rows());
    return inner().query_labels(U);
}

tensor::Matrix QueryBudgetOracle::query_raw_batch(const tensor::Matrix& U) {
    ledger_.charge_inference(U.rows());
    return inner().query_raw_batch(U);
}

tensor::Vector QueryBudgetOracle::query_power_batch(const tensor::Matrix& U) {
    ledger_.charge_power(U.rows());
    return inner().query_power_batch(U);
}

// ---- TokenBucket ------------------------------------------------------------

namespace {

std::chrono::nanoseconds steady_now() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now().time_since_epoch());
}

/// Floating refill accumulation can land a hair under an integer token
/// count; admit within this slack so "advance exactly 1s at 100/s, take
/// 100" behaves as written under a test clock.
constexpr double kTokenEpsilon = 1e-9;

}  // namespace

TokenBucket::TokenBucket(RateLimit limit, ClockFn clock)
    : limit_(limit), clock_(clock != nullptr ? clock : &steady_now) {
    XS_EXPECTS(!limit.unlimited());
    capacity_ = limit.burst > 0.0 ? limit.burst : std::max(limit.refill_per_sec, 1.0);
    tokens_ = capacity_;  // a fresh client starts with its burst allowance
    last_ = clock_();
}

double TokenBucket::refilled(std::chrono::nanoseconds now) const {
    if (now <= last_) return tokens_;  // monotonic clock; tolerate ties
    const double elapsed_s = static_cast<double>((now - last_).count()) * 1e-9;
    return std::min(capacity_, tokens_ + elapsed_s * limit_.refill_per_sec);
}

bool TokenBucket::try_acquire(std::uint64_t n) {
    const double need = static_cast<double>(n);
    std::lock_guard lock(mutex_);
    const std::chrono::nanoseconds now = clock_();
    const double have = refilled(now);
    tokens_ = have;
    if (now > last_) last_ = now;
    if (have + kTokenEpsilon < need) return false;
    tokens_ = have - need;
    return true;
}

void TokenBucket::acquire(std::uint64_t n) {
    if (try_acquire(n)) return;
    throw RateLimited(std::to_string(n) + " row(s) exceed the per-session rate of " +
                      std::to_string(limit_.refill_per_sec) + "/s (burst " +
                      std::to_string(capacity_) + ")");
}

void TokenBucket::refund(std::uint64_t n) {
    std::lock_guard lock(mutex_);
    tokens_ = std::min(capacity_, tokens_ + static_cast<double>(n));
}

double TokenBucket::available() const {
    std::lock_guard lock(mutex_);
    return refilled(clock_());
}

// ---- AdaptivePolicy ---------------------------------------------------------

const AdaptivePolicy::Band* AdaptivePolicy::band_for(double suspicion,
                                                     std::uint64_t screened) const {
    // `screened == 0` is checked on its own: a policy configured with
    // min_screened = 0 must still not pick a band off an empty window
    // (flagged_fraction is 0/0 there, and the first screened query would
    // otherwise admit under whatever band suspicion 0.0 selects).
    if (bands.empty() || screened == 0 || screened < min_screened) return nullptr;
    const Band* active = nullptr;
    for (const Band& band : bands) {
        if (suspicion >= band.min_suspicion) active = &band;
    }
    return active;
}

AdaptivePolicy AdaptivePolicy::escalate_at(double threshold, double sigma_multiplier,
                                           bool withhold_raw) {
    AdaptivePolicy policy;
    Band escalated;
    escalated.min_suspicion = threshold;
    escalated.sigma_multiplier = sigma_multiplier;
    escalated.expose_raw_outputs = !withhold_raw;
    policy.bands.push_back(escalated);
    return policy;
}

// ---- DetectorScreen ---------------------------------------------------------

double DetectorScreen::flagged_fraction() const {
    // Two atomics are read without a common lock; screen() bumps
    // screened_ before flagged_, so reading flagged_ *first* can never
    // observe a flag whose screened increment it misses (fraction > 1).
    // The clamp keeps the value a fraction even if a future writer
    // reorders the increments.
    const std::uint64_t f = flagged_.load(std::memory_order_seq_cst);
    const std::uint64_t n = screened_.load(std::memory_order_seq_cst);
    return n == 0 ? 0.0 : static_cast<double>(std::min(f, n)) / static_cast<double>(n);
}

bool DetectorScreen::screen(const tensor::Vector& u) {
    screened_.fetch_add(1, std::memory_order_seq_cst);
    if (detector_->is_adversarial(u)) {
        flagged_.fetch_add(1, std::memory_order_seq_cst);
        if (block_flagged_) {
            throw QueryRefused("input flagged by the current-signature detector");
        }
        return true;
    }
    return false;
}

std::size_t DetectorScreen::screen_batch(const tensor::Matrix& U) {
    std::size_t flagged = 0;
    for (std::size_t r = 0; r < U.rows(); ++r) {
        if (screen(U.row(r))) ++flagged;
    }
    return flagged;
}

void DetectorScreen::reset() {
    screened_.store(0, std::memory_order_relaxed);
    flagged_.store(0, std::memory_order_relaxed);
}

// ---- DetectorOracle ---------------------------------------------------------

DetectorOracle::DetectorOracle(Oracle& inner,
                               const sidechannel::CurrentSignatureDetector& detector,
                               bool block_flagged)
    : OracleDecorator(inner), screen_(detector, block_flagged) {}

int DetectorOracle::query_label(const tensor::Vector& u) {
    screen_.screen(u);
    return inner().query_label(u);
}

tensor::Vector DetectorOracle::query_raw(const tensor::Vector& u) {
    screen_.screen(u);
    return inner().query_raw(u);
}

std::vector<int> DetectorOracle::query_labels(const tensor::Matrix& U) {
    screen_.screen_batch(U);
    return inner().query_labels(U);
}

tensor::Matrix DetectorOracle::query_raw_batch(const tensor::Matrix& U) {
    screen_.screen_batch(U);
    return inner().query_raw_batch(U);
}

}  // namespace xbarsec::core
