#include "xbarsec/core/queries.hpp"

#include <algorithm>

namespace xbarsec::core {

attack::QueryDataset collect_queries(CrossbarOracle& oracle, const data::Dataset& pool,
                                     const QueryPlan& plan) {
    XS_EXPECTS(plan.count > 0);
    XS_EXPECTS(pool.size() > 0);
    XS_EXPECTS(pool.input_dim() == oracle.inputs());

    Rng rng(plan.seed);
    // Without replacement while the pool lasts; extra draws (Q > pool) are
    // uniform with replacement — the attacker reuses inputs.
    std::vector<std::size_t> picks;
    picks.reserve(plan.count);
    {
        const std::size_t head = std::min(plan.count, pool.size());
        picks = sample_without_replacement(rng, pool.size(), head);
        while (picks.size() < plan.count) {
            picks.push_back(static_cast<std::size_t>(rng.below(pool.size())));
        }
    }

    attack::QueryDataset q;
    q.inputs = tensor::Matrix(plan.count, pool.input_dim());
    q.outputs = tensor::Matrix(plan.count, oracle.outputs(), 0.0);
    q.power = tensor::Vector(plan.count, 0.0);

    for (std::size_t r = 0; r < plan.count; ++r) {
        const tensor::Vector u = pool.input(picks[r]);
        {
            const auto src = pool.inputs().row_span(picks[r]);
            auto dst = q.inputs.row_span(r);
            std::copy(src.begin(), src.end(), dst.begin());
        }
        if (plan.raw_outputs) {
            const tensor::Vector y = oracle.query_raw(u);
            auto dst = q.outputs.row_span(r);
            std::copy(y.begin(), y.end(), dst.begin());
        } else {
            const int label = oracle.query_label(u);
            q.outputs(r, static_cast<std::size_t>(label)) = 1.0;
        }
        if (plan.record_power) q.power[r] = oracle.query_power(u);
    }
    return q;
}

}  // namespace xbarsec::core
