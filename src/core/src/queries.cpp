#include "xbarsec/core/queries.hpp"

#include <algorithm>

namespace xbarsec::core {

attack::QueryDataset collect_queries(Oracle& oracle, const data::Dataset& pool,
                                     const QueryPlan& plan) {
    XS_EXPECTS(plan.count > 0);
    XS_EXPECTS(pool.size() > 0);
    XS_EXPECTS(pool.input_dim() == oracle.inputs());

    Rng rng(plan.seed);
    // Without replacement while the pool lasts; extra draws (Q > pool) are
    // uniform with replacement — the attacker reuses inputs.
    std::vector<std::size_t> picks;
    picks.reserve(plan.count);
    {
        const std::size_t head = std::min(plan.count, pool.size());
        picks = sample_without_replacement(rng, pool.size(), head);
        while (picks.size() < plan.count) {
            picks.push_back(static_cast<std::size_t>(rng.below(pool.size())));
        }
    }

    attack::QueryDataset q;
    q.inputs = tensor::Matrix(plan.count, pool.input_dim());
    for (std::size_t r = 0; r < plan.count; ++r) {
        const auto src = pool.inputs().row_span(picks[r]);
        auto dst = q.inputs.row_span(r);
        std::copy(src.begin(), src.end(), dst.begin());
    }

    if (plan.raw_outputs) {
        q.outputs = oracle.query_raw_batch(q.inputs);
    } else {
        q.outputs = tensor::Matrix(plan.count, oracle.outputs(), 0.0);
        const std::vector<int> labels = oracle.query_labels(q.inputs);
        for (std::size_t r = 0; r < plan.count; ++r) {
            q.outputs(r, static_cast<std::size_t>(labels[r])) = 1.0;
        }
    }
    q.power = plan.record_power ? oracle.query_power_batch(q.inputs)
                                : tensor::Vector(plan.count, 0.0);
    return q;
}

sidechannel::ProbeResult probe_columns(Oracle& oracle, const sidechannel::ProbeOptions& options) {
    // Basis batches ride the oracle's batched power path (and any decorator
    // stack above it) instead of issuing one query_power at a time.
    return sidechannel::probe_columns_batch(
        [&oracle](const tensor::Matrix& V) { return oracle.query_power_batch(V); },
        oracle.inputs(), options);
}

sidechannel::SearchResult find_argmax(Oracle& oracle, const data::ImageShape& shape,
                                      sidechannel::SearchStrategy strategy,
                                      const sidechannel::SearchOptions& options) {
    XS_EXPECTS(shape.pixels() == oracle.inputs());
    const sidechannel::FieldFn field = [&oracle](std::size_t j) {
        return oracle.query_power(tensor::Vector::basis(oracle.inputs(), j));
    };
    return sidechannel::find_argmax(field, shape, strategy, options);
}

attack::QueryDataset collect_queries(Session& session, const data::Dataset& pool,
                                     const QueryPlan& plan) {
    return collect_queries(session.oracle(), pool, plan);
}

sidechannel::ProbeResult probe_columns(Session& session,
                                       const sidechannel::ProbeOptions& options) {
    return probe_columns(session.oracle(), options);
}

sidechannel::SearchResult find_argmax(Session& session, const data::ImageShape& shape,
                                      sidechannel::SearchStrategy strategy,
                                      const sidechannel::SearchOptions& options) {
    return find_argmax(session.oracle(), shape, strategy, options);
}

}  // namespace xbarsec::core
