#include "xbarsec/core/victim.hpp"

#include <algorithm>

#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {

VictimConfig VictimConfig::defaults(OutputConfig output_config) {
    VictimConfig c;
    c.output = output_config;
    c.train.epochs = 20;
    c.train.batch_size = 32;
    // Heavy-ball stability: lr*lambda_max < 2(1+beta). With momentum 0.9 and
    // MNIST/CIFAR-scale inputs the MSE Hessian scale (2/M * ||x||^2) caps the
    // usable lr around ~0.2; 0.1 converges for both output configurations.
    c.train.learning_rate = 0.1;
    c.train.momentum = 0.9;
    c.train.final_lr_fraction = 0.1;
    c.train.shuffle_seed = 77;
    return c;
}

TrainedVictim train_victim(const data::DataSplit& split, const VictimConfig& config) {
    XS_EXPECTS(split.train.size() > 0 && split.test.size() > 0);
    Rng init_rng(config.init_seed);
    TrainedVictim victim{
        nn::SingleLayerNet(init_rng, split.train.input_dim(), split.train.num_classes(),
                           config.output.activation, config.output.loss, /*with_bias=*/false),
        0.0, 0.0};
    nn::TrainConfig train_config = config.train;
    if (config.auto_lr) {
        const double msn =
            std::max(1.0, tensor::mean_squared_row_norm(split.train.inputs(), 512));
        // The MSE loss carries a 2/M gradient factor, so its curvature is
        // ~half the crossentropy case at matched data; give it double the
        // numerator (both stay well inside the heavy-ball bound).
        const double numerator =
            config.output.loss == nn::Loss::Mse ? 2.0 * config.lr_numerator : config.lr_numerator;
        train_config.learning_rate = numerator / msn;
    }
    nn::train(victim.net, split.train, train_config);
    victim.train_accuracy = nn::accuracy(victim.net, split.train);
    victim.test_accuracy = nn::accuracy(victim.net, split.test);
    return victim;
}

CrossbarOracle deploy_victim(const nn::SingleLayerNet& net, const VictimConfig& config) {
    xbar::CrossbarNetwork hardware(net, config.device, config.nonideal);
    return CrossbarOracle(std::move(hardware), config.oracle);
}

std::vector<CrossbarOracle> deploy_victim_fleet(const nn::SingleLayerNet& net,
                                                const VictimConfig& config,
                                                std::size_t replicas) {
    XS_EXPECTS(replicas > 0);
    std::vector<CrossbarOracle> fleet;
    fleet.reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
        xbar::NonIdealityConfig nonideal = config.nonideal;
        nonideal.seed = xbar::replica_variation_seed(config.nonideal.seed, r);
        xbar::MappingOptions mapping;
        mapping.noise_seed = xbar::replica_variation_seed(mapping.noise_seed, r);
        fleet.emplace_back(xbar::CrossbarNetwork(net, config.device, nonideal, mapping),
                           config.oracle);
    }
    return fleet;
}

}  // namespace xbarsec::core
