#include "xbarsec/core/table1.hpp"

#include "xbarsec/common/log.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/nn/sensitivity.hpp"

namespace xbarsec::core {

Table1Row run_table1_config(const data::DataSplit& split, const std::string& dataset_name,
                            const OutputConfig& output, const Table1Options& options) {
    XS_EXPECTS(options.runs >= 1);
    Table1Row row;
    row.dataset = dataset_name;
    row.activation = output.name();

    for (std::size_t run = 0; run < options.runs; ++run) {
        VictimConfig config = options.victim;
        config.output = output;
        config.init_seed = options.seed + 1000 * run;
        config.train.shuffle_seed = options.seed + 1000 * run + 17;

        const TrainedVictim victim = train_victim(split, config);
        CrossbarOracle oracle = deploy_victim(victim.net, config);
        oracle.set_thread_pool(options.pool);

        // The attacker's view of the 1-norms: probe the deployed array.
        const sidechannel::ProbeResult probe = probe_columns(oracle);
        const tensor::Vector& l1 = probe.conductance_sums;  // weight units (oracle normalises)

        row.mean_corr_train += nn::mean_per_sample_correlation(victim.net, split.train, l1);
        row.mean_corr_test += nn::mean_per_sample_correlation(victim.net, split.test, l1);
        row.corr_of_mean_train += nn::correlation_of_mean(victim.net, split.train, l1);
        row.corr_of_mean_test += nn::correlation_of_mean(victim.net, split.test, l1);
        row.victim_test_accuracy += victim.test_accuracy;

        log::info("table1 ", dataset_name, "/", row.activation, " run ", run + 1, "/",
                  options.runs, " done (victim test acc ", victim.test_accuracy, ")");
    }

    const double inv = 1.0 / static_cast<double>(options.runs);
    row.mean_corr_train *= inv;
    row.mean_corr_test *= inv;
    row.corr_of_mean_train *= inv;
    row.corr_of_mean_test *= inv;
    row.victim_test_accuracy *= inv;
    return row;
}

Table render_table1(const std::vector<Table1Row>& rows) {
    Table t({"Dataset", "Activation", "Mean Corr (Train)", "Mean Corr (Test)",
             "Corr of Mean (Train)", "Corr of Mean (Test)", "Victim Test Acc"});
    for (const auto& r : rows) {
        t.begin_row();
        t.add(r.dataset);
        t.add(r.activation);
        t.add(r.mean_corr_train, 2);
        t.add(r.mean_corr_test, 2);
        t.add(r.corr_of_mean_train, 2);
        t.add(r.corr_of_mean_test, 2);
        t.add(r.victim_test_accuracy, 3);
    }
    return t;
}

}  // namespace xbarsec::core
