#include "xbarsec/core/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <thread>

#include "xbarsec/attack/evaluate.hpp"
#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/core/report.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {

std::string to_string(DatasetKind kind) {
    switch (kind) {
        case DatasetKind::MnistLike: return "MNIST-like";
        case DatasetKind::Cifar10Like: return "CIFAR-10-like";
    }
    return "?";
}

std::string to_string(ExperimentKind kind) {
    switch (kind) {
        case ExperimentKind::Fig3: return "fig3";
        case ExperimentKind::Fig4: return "fig4";
        case ExperimentKind::Fig5: return "fig5";
        case ExperimentKind::Table1: return "table1";
        case ExperimentKind::Probe: return "probe";
        case ExperimentKind::MultiClient: return "multiclient";
        case ExperimentKind::ReplicaSweep: return "replica-sweep";
        case ExperimentKind::CacheTiming: return "cache-timing";
        case ExperimentKind::ArmsRace: return "arms-race";
    }
    return "?";
}

std::string to_string(ReplicaSweepOptions::Axis axis) {
    switch (axis) {
        case ReplicaSweepOptions::Axis::ReplicaCount: return "replica-count";
        case ReplicaSweepOptions::Axis::Routing: return "routing";
    }
    return "?";
}

std::string to_string(MultiClientOptions::Mode mode) {
    switch (mode) {
        case MultiClientOptions::Mode::HiddenAttacker: return "hidden-attacker";
        case MultiClientOptions::Mode::BudgetExhaustion: return "budget-exhaustion";
        case MultiClientOptions::Mode::DetectorIsolation: return "detector-isolation";
    }
    return "?";
}

void apply_smoke(ScenarioSpec& spec) {
    spec.load.train_count = 400;
    spec.load.test_count = 120;
    spec.victim.train.epochs = 4;
    spec.fig4.strengths = {0, 5, 10};
    spec.fig4.eval_limit = 80;
    spec.fig5.runs = 2;
    spec.fig5.query_counts = {10, 100};
    spec.fig5.lambdas = {0.0, 0.005};
    spec.fig5.eval_limit = 60;
    spec.table1.runs = 2;
    for (DefenseSpec& d : spec.defenses) {
        d.detector_enrollment = std::min<std::size_t>(d.detector_enrollment, 200);
    }
    spec.multiclient.benign_clients = std::min<std::size_t>(spec.multiclient.benign_clients, 2);
    spec.multiclient.benign_queries = std::min<std::size_t>(spec.multiclient.benign_queries, 48);
    spec.multiclient.attack_queries = std::min<std::size_t>(spec.multiclient.attack_queries, 16);
    spec.multiclient.detector_enrollment =
        std::min<std::size_t>(spec.multiclient.detector_enrollment, 200);
    spec.replica_sweep.queries = std::min<std::size_t>(spec.replica_sweep.queries, 96);
    spec.replica_sweep.eval_limit = std::min<std::size_t>(spec.replica_sweep.eval_limit, 60);
    if (spec.replica_sweep.replica_counts.size() > 2) {
        spec.replica_sweep.replica_counts = {1, 2};
    }
    spec.replica_sweep.routing_replicas =
        std::min<std::size_t>(spec.replica_sweep.routing_replicas, 2);
    spec.cache_timing.candidate_pool = std::min<std::size_t>(spec.cache_timing.candidate_pool, 24);
    spec.cache_timing.probe_repeats = std::min<std::size_t>(spec.cache_timing.probe_repeats, 2);
    spec.arms_race.attacker.planned_queries =
        std::min<std::size_t>(spec.arms_race.attacker.planned_queries, 96);
    spec.arms_race.attacker.rotate_after =
        std::min<std::size_t>(spec.arms_race.attacker.rotate_after, 32);
    spec.arms_race.benign_clients = std::min<std::size_t>(spec.arms_race.benign_clients, 2);
    spec.arms_race.benign_queries = std::min<std::size_t>(spec.arms_race.benign_queries, 48);
    spec.arms_race.eval_limit = std::min<std::size_t>(spec.arms_race.eval_limit, 60);
    spec.arms_race.detector_enrollment =
        std::min<std::size_t>(spec.arms_race.detector_enrollment, 200);
}

// ---- registry ---------------------------------------------------------------

void ScenarioRegistry::add(ScenarioSpec spec) {
    if (spec.name.empty()) throw ConfigError("scenario name must not be empty");
    if (specs_.count(spec.name) != 0) {
        throw ConfigError("scenario '" + spec.name + "' is already registered");
    }
    specs_.emplace(spec.name, std::move(spec));
}

bool ScenarioRegistry::contains(const std::string& name) const {
    return specs_.count(name) != 0;
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& name) const {
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
        std::string available;
        for (const auto& [key, value] : specs_) {
            (void)value;
            if (!available.empty()) available += ", ";
            available += key;
        }
        throw ConfigError("unknown scenario '" + name + "'; available: " + available);
    }
    return it->second;
}

std::vector<std::string> ScenarioRegistry::names(const std::string& prefix) const {
    std::vector<std::string> out;
    for (const auto& [key, value] : specs_) {
        (void)value;
        if (key.rfind(prefix, 0) == 0) out.push_back(key);
    }
    return out;
}

// ---- built-in scenarios -----------------------------------------------------

namespace {

ScenarioSpec base_spec(std::string name, std::string description, DatasetKind dataset,
                       OutputConfig output, ExperimentKind experiment) {
    ScenarioSpec s;
    s.name = std::move(name);
    s.description = std::move(description);
    s.dataset = dataset;
    s.output = output;
    s.victim = VictimConfig::defaults(output);
    s.victim.train.epochs = 15;
    s.load.train_count = 6000;
    s.load.test_count = 1500;
    s.load.seed = 2022;
    s.experiment = experiment;
    s.fig4.seed = 2022 + 33;
    s.fig5.seed = 2022;
    s.table1.seed = 2022;
    return s;
}

void register_builtins(ScenarioRegistry& registry) {
    const struct {
        DatasetKind kind;
        const char* tag;
    } datasets[] = {{DatasetKind::MnistLike, "mnist"}, {DatasetKind::Cifar10Like, "cifar"}};
    const struct {
        OutputConfig output;
        const char* tag;
    } outputs[] = {{OutputConfig::linear_mse(), "linear"},
                   {OutputConfig::softmax_ce(), "softmax"}};

    // The paper's core sweeps: every dataset × activation cell of
    // Figure 3, Figure 4, and Table I.
    for (const auto& ds : datasets) {
        for (const auto& out : outputs) {
            registry.add(base_spec(std::string("fig3/") + ds.tag + "/" + out.tag,
                                   "Figure 3 panel pair: sensitivity map vs probed 1-norm map",
                                   ds.kind, out.output, ExperimentKind::Fig3));
            registry.add(base_spec(std::string("fig4/") + ds.tag + "/" + out.tag,
                                   "Figure 4: power-guided single-pixel attack sweep", ds.kind,
                                   out.output, ExperimentKind::Fig4));
            registry.add(base_spec(std::string("table1/") + ds.tag + "/" + out.tag,
                                   "Table I: sensitivity/1-norm correlations over runs", ds.kind,
                                   out.output, ExperimentKind::Table1));
        }
    }

    // Figure 5 (Section IV uses the linear oracle only).
    for (const bool raw : {false, true}) {
        {
            ScenarioSpec s = base_spec(std::string("fig5/mnist/") + (raw ? "raw" : "label"),
                                       "Figure 5 MNIST row: power-aware surrogate attacks",
                                       DatasetKind::MnistLike, OutputConfig::linear_mse(),
                                       ExperimentKind::Fig5);
            s.fig5.raw_outputs = raw;
            s.fig5.eval_limit = 500;
            registry.add(std::move(s));
        }
        {
            ScenarioSpec s = base_spec(std::string("fig5/cifar/") + (raw ? "raw" : "label"),
                                       "Figure 5 CIFAR row: power-aware surrogate attacks",
                                       DatasetKind::Cifar10Like, OutputConfig::linear_mse(),
                                       ExperimentKind::Fig5);
            s.load.train_count = 3000;
            s.fig5.raw_outputs = raw;
            s.fig5.query_counts = {2, 10, 50, 100, 500, 1500};
            s.fig5.eval_limit = 300;
            registry.add(std::move(s));
        }
    }

    // Device non-idealities: the Figure 4 sweep on a noisy, faulty array.
    {
        ScenarioSpec s = base_spec("fig4/mnist/softmax-noisy-device",
                                   "Figure 4 on a non-ideal device (read noise + stuck faults)",
                                   DatasetKind::MnistLike, OutputConfig::softmax_ce(),
                                   ExperimentKind::Fig4);
        s.victim.nonideal.read_noise_std = 0.05;
        s.victim.nonideal.stuck_off_fraction = 0.01;
        registry.add(std::move(s));
    }

    // Defended deployments (decorator stacks).
    {
        ScenarioSpec s = base_spec("fig4/mnist/softmax-detected",
                                   "Figure 4 against a detector-guarded deployment (log-only)",
                                   DatasetKind::MnistLike, OutputConfig::softmax_ce(),
                                   ExperimentKind::Fig4);
        DefenseSpec det;
        det.kind = DefenseSpec::Kind::Detector;
        det.block_flagged = false;
        s.defenses.push_back(det);
        s.fig4.evaluate_via_oracle = true;  // the detector must see the attack inputs
        registry.add(std::move(s));
    }
    {
        ScenarioSpec s = base_spec("fig5/mnist/label-defended",
                                   "Figure 5 MNIST label row against a noisy-power defense",
                                   DatasetKind::MnistLike, OutputConfig::linear_mse(),
                                   ExperimentKind::Fig5);
        s.fig5.eval_limit = 500;
        DefenseSpec noise;
        noise.kind = DefenseSpec::Kind::NoisyPower;
        noise.magnitude = 0.25;
        s.defenses.push_back(noise);
        registry.add(std::move(s));
    }
    {
        ScenarioSpec s = base_spec("probe/mnist/undefended",
                                   "Side-channel probe quality on the bare deployment",
                                   DatasetKind::MnistLike, OutputConfig::softmax_ce(),
                                   ExperimentKind::Probe);
        registry.add(std::move(s));
    }
    // Multi-tenant serving scenarios: concurrent sessions on one
    // OracleService over one shared deployment (the threat model's
    // "attacker among millions of users", scaled to a test bench).
    {
        ScenarioSpec s = base_spec("service/mnist/hidden-attacker",
                                   "One attacker probing and attacking among benign tenants, "
                                   "per-session detection windows",
                                   DatasetKind::MnistLike, OutputConfig::softmax_ce(),
                                   ExperimentKind::MultiClient);
        s.multiclient.mode = MultiClientOptions::Mode::HiddenAttacker;
        s.multiclient.benign_clients = 4;
        s.multiclient.benign_queries = 256;
        s.multiclient.attack_queries = 64;
        // Far beyond the enrolled envelope (the auto-calibrated threshold
        // sits around 2-3x the clean per-line range): the scenario
        // demonstrates *whose window* flags, not detector sensitivity.
        s.multiclient.attack_strength = 50.0;
        registry.add(std::move(s));
    }
    {
        ScenarioSpec s = base_spec("service/mnist/budget-exhaustion",
                                   "Per-tenant query budgets: the attacker's probe exhausts its "
                                   "own budget while benign tenants run on",
                                   DatasetKind::MnistLike, OutputConfig::softmax_ce(),
                                   ExperimentKind::MultiClient);
        s.multiclient.mode = MultiClientOptions::Mode::BudgetExhaustion;
        s.multiclient.benign_clients = 4;
        s.multiclient.benign_queries = 128;
        s.multiclient.attack_queries = 32;
        registry.add(std::move(s));
    }
    {
        ScenarioSpec s = base_spec("service/mnist/detector-isolation",
                                   "Two tenants, one adversarial: per-session flagged windows "
                                   "must not bleed across sessions",
                                   DatasetKind::MnistLike, OutputConfig::softmax_ce(),
                                   ExperimentKind::MultiClient);
        s.multiclient.mode = MultiClientOptions::Mode::DetectorIsolation;
        s.multiclient.benign_clients = 1;
        s.multiclient.benign_queries = 256;
        s.multiclient.attack_queries = 64;
        s.multiclient.attack_strength = 50.0;
        registry.add(std::move(s));
    }
    // Replica-fleet extraction sweeps: the same trained victim deployed
    // on N physically distinct crossbars (independent stuck cells and
    // noise streams), served behind one OracleService. Measures whether
    // mixing device signatures helps or hurts surrogate extraction.
    {
        ScenarioSpec s = base_spec("service/mnist/replica-fidelity",
                                   "Surrogate extraction fidelity vs replica count "
                                   "(round-robin over per-replica device signatures)",
                                   DatasetKind::MnistLike, OutputConfig::linear_mse(),
                                   ExperimentKind::ReplicaSweep);
        s.victim.nonideal.read_noise_std = 0.05;
        s.victim.nonideal.stuck_off_fraction = 0.01;
        s.routing = RoutingPolicy::RoundRobin;
        s.replica_sweep.axis = ReplicaSweepOptions::Axis::ReplicaCount;
        s.replica_sweep.seed = 2022 + 55;
        registry.add(std::move(s));
    }
    {
        ScenarioSpec s = base_spec("service/mnist/replica-routing",
                                   "Surrogate extraction fidelity vs routing policy over a "
                                   "4-replica fleet of distinct device signatures",
                                   DatasetKind::MnistLike, OutputConfig::linear_mse(),
                                   ExperimentKind::ReplicaSweep);
        s.victim.nonideal.read_noise_std = 0.05;
        s.victim.nonideal.stuck_off_fraction = 0.01;
        s.replica_sweep.axis = ReplicaSweepOptions::Axis::Routing;
        s.replica_sweep.routing_replicas = 4;
        s.replica_sweep.seed = 2022 + 55;
        registry.add(std::move(s));
    }
    // The arms race: every adaptive-attacker strategy against every
    // defense policy (token-bucket rate limiting, suspicion-scaled
    // escalation), with benign tenants paying the defender's cost.
    {
        ScenarioSpec s = base_spec("service/mnist/arms-race",
                                   "Adaptive attacker strategies vs token-bucket rate limits "
                                   "and suspicion-scaled defenses, with benign-tenant cost",
                                   DatasetKind::MnistLike, OutputConfig::linear_mse(),
                                   ExperimentKind::ArmsRace);
        s.arms_race.seed = 2022 + 77;
        registry.add(std::move(s));
    }
    // Cross-session attribution: the rotation-proof defense the arms
    // race motivated. The session-rotating (spread) and identity-forging
    // (forge) attackers run against the PR 8 best defense (rate +
    // adaptive, which spread beats) and against the attribution stack
    // (per-source windows + buckets, deployment alert, query-overlap
    // campaign clustering).
    {
        ScenarioSpec s = base_spec("service/mnist/attribution",
                                   "Session-rotating and identity-forging attackers vs "
                                   "cross-session attribution (per-source windows, campaign "
                                   "clustering, deployment alert)",
                                   DatasetKind::MnistLike, OutputConfig::linear_mse(),
                                   ExperimentKind::ArmsRace);
        s.arms_race.strategies = {attack::AttackerStrategy::Spread,
                                  attack::AttackerStrategy::Forge};
        ArmsDefense baseline;
        baseline.name = "rate+adaptive";
        baseline.rate = RateLimit{400.0, 48.0};
        baseline.suspicion_scaled = true;
        ArmsDefense attrib;
        attrib.name = "attrib";
        attrib.suspicion_scaled = true;
        attrib.attribution = true;
        // The per-source allowance replaces the tight per-session bucket:
        // same refill, but a burst a benign tenant's whole workload fits
        // inside — rotation buys the attacker nothing, so the bucket no
        // longer has to be stingy to matter.
        attrib.source_rate = RateLimit{400.0, 256.0};
        // Enforcement that per-query escalation cannot provide: campaigns
        // whose pooled windows cross 0.35 suspicion are refused outright
        // (the attacker's probe traffic sits near 0.55 — half probes, half
        // in-distribution camouflage; benign tenants stay under 0.03), and
        // the short campaign trips the deployment alert at 64 screened
        // rows so forged sources hit the registration freeze early.
        attrib.quarantine_suspicion = 0.35;
        attrib.alert_min_screened = 64;
        // Forge mints a fresh SourceId every few queries (~300 over the
        // campaign); the cell onboards 2 benign principals total. Eight
        // first-time sources inside the churn window is unreachable for
        // the benign fleet and a handful of rotations for the forger.
        attrib.churn_fresh_sources = 8;
        s.arms_race.defenses = {baseline, attrib};
        s.arms_race.seed = 2022 + 101;
        registry.add(std::move(s));
    }
    // The optimization-induced side channel: a shared result cache turns
    // hit/miss latency into a cross-tenant leak of *which inputs* other
    // sessions queried; per-session partitioning is the defense.
    {
        ScenarioSpec s = base_spec("service/mnist/cache-timing",
                                   "Attacker infers a co-tenant's query contents from result-"
                                   "cache hit/miss latency; partitioning closes the channel",
                                   DatasetKind::MnistLike, OutputConfig::softmax_ce(),
                                   ExperimentKind::CacheTiming);
        s.cache_timing.seed = 2022 + 89;
        registry.add(std::move(s));
    }
    {
        // The decorator-stacked defended deployment: randomised dummy
        // loads, sensing noise, and a hard power-measurement budget.
        ScenarioSpec s = base_spec("probe/mnist/defended",
                                   "Probe quality against dummies + noise + query budget",
                                   DatasetKind::MnistLike, OutputConfig::softmax_ce(),
                                   ExperimentKind::Probe);
        DefenseSpec dummies;
        dummies.kind = DefenseSpec::Kind::RandomDummy;
        dummies.magnitude = 1.0;
        s.defenses.push_back(dummies);
        DefenseSpec noise;
        noise.kind = DefenseSpec::Kind::NoisyPower;
        noise.magnitude = 0.25;
        s.defenses.push_back(noise);
        DefenseSpec budget;
        budget.kind = DefenseSpec::Kind::QueryBudget;
        budget.budget.max_power = 4 * 784;  // one full probe plus headroom
        s.defenses.push_back(budget);
        registry.add(std::move(s));
    }
}

}  // namespace

ScenarioRegistry& builtin_scenarios() {
    static ScenarioRegistry registry = [] {
        ScenarioRegistry r;
        register_builtins(r);
        return r;
    }();
    return registry;
}

// ---- deployment -------------------------------------------------------------

namespace {

data::DataSplit load_split(const ScenarioSpec& spec) {
    return spec.dataset == DatasetKind::Cifar10Like ? data::load_cifar10_like(spec.load)
                                                    : data::load_mnist_like(spec.load);
}

std::string experiment_label(const ScenarioSpec& spec) {
    return to_string(spec.dataset) + "/" + spec.output.name();
}

/// Applies one DefenseSpec as a decorator layer. `scale` is the deployed
/// weights' max column 1-norm (for relative magnitudes); `detector` must
/// be non-null for Kind::Detector.
DetectorOracle* push_defense_layer(DecoratorStack& stack, const DefenseSpec& d, double scale,
                                   const sidechannel::CurrentSignatureDetector* detector) {
    const double magnitude = d.relative ? d.magnitude * scale : d.magnitude;
    switch (d.kind) {
        case DefenseSpec::Kind::DitherPower:
        case DefenseSpec::Kind::UniformDummy:
        case DefenseSpec::Kind::RandomDummy: {
            ObfuscationConfig config;
            config.kind = d.kind == DefenseSpec::Kind::DitherPower
                              ? ObfuscationConfig::Kind::Dither
                              : (d.kind == DefenseSpec::Kind::UniformDummy
                                     ? ObfuscationConfig::Kind::UniformDummy
                                     : ObfuscationConfig::Kind::RandomDummy);
            config.magnitude = magnitude;
            config.seed = d.seed;
            stack.push<ObfuscatedOracle>(config);
            return nullptr;
        }
        case DefenseSpec::Kind::NoisyPower:
            stack.push<NoisyPowerOracle>(magnitude, d.seed);
            return nullptr;
        case DefenseSpec::Kind::QueryBudget:
            stack.push<QueryBudgetOracle>(d.budget);
            return nullptr;
        case DefenseSpec::Kind::Detector:
            XS_EXPECTS_MSG(detector != nullptr,
                           "detector layer requested without an enrolled detector");
            return &stack.push<DetectorOracle>(*detector, d.block_flagged);
    }
    throw ConfigError("unknown defense kind");
}

double deployed_weight_scale(const CrossbarOracle& backend) {
    return tensor::max(
        tensor::column_abs_sums(backend.hardware_for_evaluation().effective_network().weights()));
}

}  // namespace

DeployedScenario ScenarioRunner::deploy(const ScenarioSpec& spec) const {
    DeployedScenario d;
    d.spec_ = spec;
    d.spec_.victim.output = spec.output;
    d.split_ = load_split(spec);
    d.victim_ = train_victim(d.split_, d.spec_.victim);
    // Replica 0 derives the spec's own seeds (replica_variation_seed is
    // the identity at index 0), so a fleet of one is exactly the classic
    // single deployment.
    const std::size_t replicas = std::max<std::size_t>(1, spec.replicas);
    d.backends_ = deploy_victim_fleet(d.victim_.net, d.spec_.victim, replicas);
    for (CrossbarOracle& backend : d.backends_) backend.set_thread_pool(pool_);

    // A detector is enrolled when a stack layer asks for one, or when a
    // multi-client experiment screens per session (shared enrolment,
    // per-tenant windows). Enrolment happens once, on replica 0's
    // hardware: the deployment registers one clean signature for the
    // service, not one per device.
    const auto it = std::find_if(
        spec.defenses.begin(), spec.defenses.end(),
        [](const DefenseSpec& ds) { return ds.kind == DefenseSpec::Kind::Detector; });
    const bool multiclient_detector =
        spec.experiment == ExperimentKind::MultiClient &&
        spec.multiclient.mode != MultiClientOptions::Mode::BudgetExhaustion;
    if (it != spec.defenses.end() || multiclient_detector) {
        // Enrol on clean training data through the deployed hardware.
        const sidechannel::DetectorConfig config =
            it != spec.defenses.end() ? it->detector : spec.multiclient.detector;
        const std::size_t take = it != spec.defenses.end() ? it->detector_enrollment
                                                           : spec.multiclient.detector_enrollment;
        const data::Dataset enrollment = take > 0 ? d.split_.train.take(take) : d.split_.train;
        d.detector_ = std::make_unique<sidechannel::CurrentSignatureDetector>(
            d.backends_.front().hardware_for_evaluation(), enrollment, config);
    }

    // One decorator stack per replica, all built from the same defense
    // specs. Relative magnitudes use replica 0's deployed scale for every
    // replica — the operator configures one defense policy for the
    // deployment, not per-device tuning.
    const double scale = deployed_weight_scale(d.backends_.front());
    d.stacks_.reserve(replicas);
    for (CrossbarOracle& backend : d.backends_) {
        auto stack = std::make_unique<DecoratorStack>(backend);
        for (const DefenseSpec& defense : spec.defenses) {
            DetectorOracle* layer =
                push_defense_layer(*stack, defense, scale, d.detector_.get());
            if (layer != nullptr && d.stacks_.empty()) d.detector_layer_ = layer;
        }
        d.stacks_.push_back(std::move(stack));
    }

    // Front the stacks with the serving layer. Single-client experiments
    // run through the default session (pass-through policy and, under the
    // default session-affine routing, one replica — bit-identical to
    // querying the stack top directly); multi-client experiments open
    // further sessions on the same service.
    std::vector<Oracle*> tops;
    tops.reserve(replicas);
    for (auto& stack : d.stacks_) tops.push_back(&stack->top());
    ServiceConfig service_config;
    service_config.pool = pool_;
    service_config.routing = spec.routing;
    service_config.cache = spec.cache;
    d.service_ = std::make_unique<OracleService>(tops, service_config);
    d.session_ = d.service_->open_session();
    return d;
}

// ---- experiments ------------------------------------------------------------

namespace {

void finish_with_cost(ScenarioOutcome& outcome, DeployedScenario& d) {
    outcome.attacker_cost = d.backend().counters();
    outcome.metrics["attacker_inference_queries"] =
        static_cast<double>(outcome.attacker_cost.inference);
    outcome.metrics["attacker_power_queries"] = static_cast<double>(outcome.attacker_cost.power);
    if (d.detector_layer() != nullptr) {
        outcome.metrics["detector_screened"] = static_cast<double>(d.detector_layer()->screened());
        outcome.metrics["detector_flagged_fraction"] = d.detector_layer()->flagged_fraction();
    }
}

ScenarioOutcome run_fig3_scenario(const ScenarioRunner& runner, const ScenarioSpec& spec) {
    ScenarioOutcome outcome;
    DeployedScenario d = runner.deploy(spec);
    const Fig3Panel panel = run_fig3_on(d.oracle(), d.victim(), d.split().test,
                                        experiment_label(spec));
    outcome.label = panel.label;

    Table summary({"Config", "Pearson r", "Roughness(sens)", "Roughness(L1)", "Victim test acc"});
    summary.begin_row();
    summary.add(panel.label);
    summary.add(panel.correlation, 3);
    summary.add(map_roughness(panel.sensitivity_map, panel.shape), 3);
    summary.add(map_roughness(panel.l1_map, panel.shape), 3);
    summary.add(panel.victim_test_accuracy, 3);
    outcome.tables.emplace_back("summary", std::move(summary));

    outcome.metrics["correlation"] = panel.correlation;
    outcome.metrics["victim_test_accuracy"] = panel.victim_test_accuracy;
    outcome.notes.emplace_back("sensitivity map (mean |dL/du|)",
                               render_ascii_heatmap(panel.sensitivity_map, panel.shape));
    outcome.notes.emplace_back("probed column 1-norms",
                               render_ascii_heatmap(panel.l1_map, panel.shape));
    outcome.grids.push_back({"sensitivity", panel.sensitivity_map, panel.shape});
    outcome.grids.push_back({"l1", panel.l1_map, panel.shape});
    finish_with_cost(outcome, d);
    return outcome;
}

ScenarioOutcome run_fig4_scenario(const ScenarioRunner& runner, const ScenarioSpec& spec) {
    ScenarioOutcome outcome;
    DeployedScenario d = runner.deploy(spec);
    const data::Dataset eval_set = spec.fig4.eval_limit > 0
                                       ? d.split().test.take(spec.fig4.eval_limit)
                                       : d.split().test;
    const Fig4Result result = run_fig4_on(d.oracle(), d.backend().hardware_for_evaluation(),
                                          eval_set, experiment_label(spec), spec.fig4);
    outcome.label = result.label;
    outcome.tables.emplace_back("fig4", render_fig4(result));
    outcome.metrics["clean_accuracy"] = result.clean_accuracy;
    finish_with_cost(outcome, d);
    return outcome;
}

ScenarioOutcome run_fig5_scenario(const ScenarioSpec& spec, ThreadPool* pool) {
    for (const DefenseSpec& defense : spec.defenses) {
        if (defense.kind == DefenseSpec::Kind::Detector) {
            throw ConfigError("fig5 scenarios do not support detector layers (each run deploys "
                              "a fresh victim; use a fig4 or probe scenario)");
        }
    }
    ScenarioOutcome outcome;
    const data::DataSplit split = load_split(spec);
    Fig5Options options = spec.fig5;
    options.pool = pool;
    if (!spec.defenses.empty()) {
        options.defense = [defenses = spec.defenses](DecoratorStack& stack,
                                                     CrossbarOracle& backend) {
            const double scale = deployed_weight_scale(backend);
            for (const DefenseSpec& defense : defenses) {
                push_defense_layer(stack, defense, scale, nullptr);
            }
        };
    }
    VictimConfig victim = spec.victim;
    const Fig5Result result =
        run_fig5(split, to_string(spec.dataset), spec.output, victim, options);
    outcome.label = result.label;
    outcome.tables.emplace_back("surrogate_acc", render_fig5_surrogate_accuracy(result));
    outcome.tables.emplace_back("adv_acc", render_fig5_adversarial_accuracy(result));
    outcome.tables.emplace_back("improvement", render_fig5_improvement(result));
    outcome.metrics["oracle_clean_accuracy_mean"] = result.oracle_clean_accuracy_mean;
    return outcome;
}

ScenarioOutcome run_table1_scenario(const ScenarioSpec& spec, ThreadPool* pool) {
    if (!spec.defenses.empty()) {
        throw ConfigError("table1 scenarios do not support defense stacks (the probe is the "
                          "measurement itself; use a probe scenario to study defenses)");
    }
    ScenarioOutcome outcome;
    const data::DataSplit split = load_split(spec);
    Table1Options options = spec.table1;
    options.victim = spec.victim;
    options.pool = pool;
    const Table1Row row = run_table1_config(split, to_string(spec.dataset), spec.output, options);
    outcome.label = row.dataset + "/" + row.activation;
    outcome.tables.emplace_back("table1", render_table1({row}));
    outcome.metrics["mean_corr_test"] = row.mean_corr_test;
    outcome.metrics["corr_of_mean_test"] = row.corr_of_mean_test;
    outcome.metrics["victim_test_accuracy"] = row.victim_test_accuracy;
    return outcome;
}

ScenarioOutcome run_probe_scenario(const ScenarioRunner& runner, const ScenarioSpec& spec) {
    ScenarioOutcome outcome;
    DeployedScenario d = runner.deploy(spec);
    outcome.label = experiment_label(spec);

    const tensor::Vector truth = tensor::column_abs_sums(
        d.backend().hardware_for_evaluation().effective_network().weights());
    const sidechannel::ProbeResult probe = probe_columns(d.oracle(), spec.probe);
    const double rel_error = sidechannel::relative_error(probe.conductance_sums, truth);
    const double agreement =
        sidechannel::topk_agreement(probe.conductance_sums, truth, spec.probe_topk);

    Table table({"Deployment", "L1 rel. error",
                 "Top-" + std::to_string(spec.probe_topk) + " ranking agreement",
                 "Power queries"});
    table.begin_row();
    table.add(spec.defenses.empty()
                  ? std::string("undefended")
                  : "defended (" + std::to_string(spec.defenses.size()) + "-layer stack)");
    table.add(rel_error, 4);
    table.add(agreement, 3);
    table.add(static_cast<long long>(probe.queries));
    outcome.tables.emplace_back("probe", std::move(table));

    outcome.metrics["l1_relative_error"] = rel_error;
    outcome.metrics["topk_agreement"] = agreement;
    finish_with_cost(outcome, d);
    return outcome;
}

// ---- multi-client serving experiments ---------------------------------------

/// Outcome of one benign tenant's streamed clean-label workload.
struct BenignOutcome {
    std::uint64_t answered = 0;
    std::uint64_t refused = 0;  ///< budget/detector refusals
    double flagged_fraction = 0.0;
    QueryCounters counters;
};

/// Streams `count` clean label queries (random test rows) through the
/// session as pipelined async submissions — the traffic the attacker
/// hides in, and what the coalescer packs into shared GEMM batches.
BenignOutcome run_benign_client(Session& session, const data::Dataset& test, std::size_t count,
                                std::uint64_t seed) {
    BenignOutcome out;
    Rng rng(seed);
    constexpr std::size_t kWindow = 32;
    std::vector<std::future<int>> window;
    window.reserve(kWindow);
    for (std::size_t q = 0; q < count;) {
        window.clear();
        for (std::size_t w = 0; w < kWindow && q < count; ++w, ++q) {
            const std::size_t pick = static_cast<std::size_t>(rng.below(test.size()));
            try {
                window.push_back(session.submit_label(test.inputs().row(pick)));
            } catch (const Error&) {
                ++out.refused;  // budget exhausted / query refused at submission
            }
        }
        for (auto& f : window) {
            try {
                (void)f.get();
                ++out.answered;
            } catch (const Error&) {
                ++out.refused;
            }
        }
    }
    out.flagged_fraction = session.flagged_fraction();
    out.counters = session.counters();
    return out;
}

/// One attacker among benign tenants: every client is a concurrent
/// session on one OracleService over one shared deployment. The three
/// modes measure what multi-tenancy adds over the single-client
/// decorators: per-tenant detection windows, per-tenant budgets, and
/// isolation of both.
ScenarioOutcome run_multiclient_scenario(const ScenarioRunner& runner, const ScenarioSpec& spec) {
    using Mode = MultiClientOptions::Mode;
    const MultiClientOptions& mc = spec.multiclient;
    ScenarioOutcome outcome;
    DeployedScenario d = runner.deploy(spec);
    OracleService& service = d.service();
    outcome.label = experiment_label(spec) + "/" + to_string(mc.mode);
    const data::Dataset& test = d.split().test;

    // Per-tenant policy. Benign tenants and the attacker get the *same*
    // policy — the deployment cannot know who is who up front.
    SessionConfig tenant;
    tenant.budget = mc.tenant_budget;
    if (mc.mode == Mode::BudgetExhaustion && tenant.budget.unlimited()) {
        // Enough power budget for half a probe sweep, plenty of
        // inference for the benign workloads.
        tenant.budget.max_power = service.inputs() / 2;
        tenant.budget.max_inference = mc.benign_queries * 4;
    }
    if (d.enrolled_detector() != nullptr) {
        tenant.detector = d.enrolled_detector();
        tenant.block_flagged = false;  // log-only: measure, don't distort traffic
    }

    Session attacker = service.open_session(tenant);
    std::vector<Session> benign;
    benign.reserve(mc.benign_clients);
    for (std::size_t c = 0; c < mc.benign_clients; ++c) benign.push_back(service.open_session(tenant));

    // Benign tenants stream concurrently with the attacker.
    std::vector<BenignOutcome> benign_out(mc.benign_clients);
    std::vector<std::thread> clients;
    clients.reserve(mc.benign_clients);
    for (std::size_t c = 0; c < mc.benign_clients; ++c) {
        clients.emplace_back([&, c] {
            benign_out[c] =
                run_benign_client(benign[c], test, mc.benign_queries, mc.seed ^ (c + 1));
        });
    }

    // The attacker's campaign: locate the highest-leakage input line via
    // the power channel, then drive it with single-pixel inference
    // queries hidden inside the benign traffic.
    double attacker_flagged = 0.0;
    bool attacker_exhausted = false;
    std::uint64_t attacker_answered = 0;
    {
        Rng rng(mc.seed ^ 0xA77ACC3Ull);
        std::size_t target = 0;
        try {
            const auto probe = probe_columns(attacker.oracle(), spec.probe);
            target = tensor::argmax(probe.conductance_sums);
        } catch (const QueryBudgetExceeded&) {
            attacker_exhausted = true;
            // Fall back to the strongest line the tenant budget let it see:
            // ground truth is fine here, the probe already proved the point.
            target = tensor::argmax(tensor::column_abs_sums(
                d.backend().hardware_for_evaluation().effective_network().weights()));
        }
        std::vector<std::future<int>> pending;
        pending.reserve(mc.attack_queries);
        for (std::size_t q = 0; q < mc.attack_queries; ++q) {
            const std::size_t pick = static_cast<std::size_t>(rng.below(test.size()));
            tensor::Vector u = test.inputs().row(pick);
            u[target] = mc.attack_strength;  // clean pixels live in [0, 1]
            try {
                pending.push_back(attacker.submit_label(std::move(u)));
            } catch (const QueryBudgetExceeded&) {
                attacker_exhausted = true;
                break;
            } catch (const QueryRefused&) {
                continue;  // blocking detector refused it; keep trying
            }
        }
        for (auto& f : pending) {
            try {
                (void)f.get();
                ++attacker_answered;
            } catch (const Error&) {
            }
        }
        attacker_flagged = attacker.flagged_fraction();
    }
    for (std::thread& t : clients) t.join();

    // Per-tenant accounting table.
    Table table({"Tenant", "Answered", "Refused", "Flagged frac.", "Power spent", "Inf. spent"});
    double benign_flagged_sum = 0.0;
    std::uint64_t benign_answered = 0, benign_refused = 0;
    for (std::size_t c = 0; c < mc.benign_clients; ++c) {
        const BenignOutcome& b = benign_out[c];
        benign_flagged_sum += b.flagged_fraction;
        benign_answered += b.answered;
        benign_refused += b.refused;
        table.begin_row();
        table.add("benign#" + std::to_string(c));
        table.add(static_cast<long long>(b.answered));
        table.add(static_cast<long long>(b.refused));
        table.add(b.flagged_fraction, 3);
        table.add(static_cast<long long>(benign[c].budget_spent().power));
        table.add(static_cast<long long>(benign[c].budget_spent().inference));
    }
    table.begin_row();
    table.add("attacker");
    table.add(static_cast<long long>(attacker_answered));
    table.add(attacker_exhausted ? "budget-exhausted" : "0");
    table.add(attacker_flagged, 3);
    table.add(static_cast<long long>(attacker.budget_spent().power));
    table.add(static_cast<long long>(attacker.budget_spent().inference));
    outcome.tables.emplace_back("tenants", std::move(table));

    const double benign_flagged_mean =
        mc.benign_clients > 0 ? benign_flagged_sum / static_cast<double>(mc.benign_clients) : 0.0;
    outcome.metrics["attacker_flagged_fraction"] = attacker_flagged;
    outcome.metrics["benign_flagged_fraction_mean"] = benign_flagged_mean;
    outcome.metrics["detector_separation"] = attacker_flagged - benign_flagged_mean;
    outcome.metrics["attacker_exhausted"] = attacker_exhausted ? 1.0 : 0.0;
    outcome.metrics["benign_answered"] = static_cast<double>(benign_answered);
    outcome.metrics["benign_refused"] = static_cast<double>(benign_refused);
    outcome.metrics["attacker_answered"] = static_cast<double>(attacker_answered);
    outcome.metrics["service_sessions"] = static_cast<double>(service.sessions_opened());
    outcome.metrics["coalesced_batches"] = static_cast<double>(service.flushed_batches());
    outcome.metrics["mean_coalesced_rows"] =
        service.flushed_batches() > 0
            ? static_cast<double>(service.flushed_rows()) /
                  static_cast<double>(service.flushed_batches())
            : 0.0;
    // Attacker cost is the *attacker session's* ledger, not the backend
    // counters — those aggregate every tenant's traffic here. The
    // deployment-wide load is reported separately.
    outcome.attacker_cost = attacker.counters();
    outcome.metrics["attacker_inference_queries"] =
        static_cast<double>(outcome.attacker_cost.inference);
    outcome.metrics["attacker_power_queries"] = static_cast<double>(outcome.attacker_cost.power);
    outcome.metrics["deployment_total_queries"] =
        static_cast<double>(d.backend().counters().total());
    return outcome;
}

// ---- replica-fleet extraction sweeps ----------------------------------------

/// Streams `count` raw+power query pairs through the session as
/// pipelined per-row submissions. Unlike collect_queries (one batched
/// unit — which the service routes to exactly one replica), every row
/// here is its own unit, so the fleet's routing policy actually spreads
/// the attacker's stream over the replicas' device signatures.
attack::QueryDataset collect_queries_pipelined(Session& session, const data::Dataset& pool,
                                               std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    attack::QueryDataset q;
    q.inputs = tensor::Matrix(count, pool.input_dim());
    for (std::size_t r = 0; r < count; ++r) {
        const auto src = pool.inputs().row_span(static_cast<std::size_t>(rng.below(pool.size())));
        auto dst = q.inputs.row_span(r);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    q.outputs = tensor::Matrix(count, session.oracle().outputs());
    q.power = tensor::Vector(count, 0.0);

    constexpr std::size_t kWindow = 64;
    std::vector<std::future<tensor::Vector>> raw;
    std::vector<std::future<double>> power;
    raw.reserve(kWindow);
    power.reserve(kWindow);
    for (std::size_t start = 0; start < count; start += kWindow) {
        const std::size_t stop = std::min(count, start + kWindow);
        raw.clear();
        power.clear();
        for (std::size_t r = start; r < stop; ++r) {
            raw.push_back(session.submit_raw(q.inputs.row(r)));
            power.push_back(session.submit_power(q.inputs.row(r)));
        }
        for (std::size_t r = start; r < stop; ++r) {
            const tensor::Vector y = raw[r - start].get();
            auto dst = q.outputs.row_span(r);
            std::copy(y.begin(), y.end(), dst.begin());
            q.power[r] = power[r - start].get();
        }
    }
    return q;
}

/// Label agreement between the extracted surrogate and the victim's
/// *software* network on clean test inputs — the extraction-fidelity
/// measure the fleet sweep reports.
double surrogate_fidelity(const nn::SingleLayerNet& surrogate, const nn::SingleLayerNet& victim,
                          const tensor::Matrix& X, std::size_t limit) {
    const std::size_t n = limit > 0 ? std::min(limit, X.rows()) : X.rows();
    std::size_t agree = 0;
    for (std::size_t r = 0; r < n; ++r) {
        const tensor::Vector u = X.row(r);
        if (surrogate.classify(u) == victim.classify(u)) ++agree;
    }
    return n > 0 ? static_cast<double>(agree) / static_cast<double>(n) : 0.0;
}

/// One sweep point: a fleet of `replicas` distinct devices behind one
/// service with `routing`; the attacker extracts a surrogate through a
/// pipelined per-row query stream and we score its fidelity.
struct ReplicaSweepPoint {
    std::size_t replicas = 1;
    RoutingPolicy routing = RoutingPolicy::SessionAffine;
    double fidelity = 0.0;
    std::uint64_t min_replica_rows = 0;  ///< routed-row spread over the fleet
    std::uint64_t max_replica_rows = 0;
};

ReplicaSweepPoint run_replica_sweep_point(const TrainedVictim& victim,
                                          const VictimConfig& victim_config,
                                          const data::DataSplit& split,
                                          const ReplicaSweepOptions& rs, std::size_t replicas,
                                          RoutingPolicy routing, ThreadPool* pool) {
    ReplicaSweepPoint point;
    point.replicas = replicas;
    point.routing = routing;

    std::vector<CrossbarOracle> fleet = deploy_victim_fleet(victim.net, victim_config, replicas);
    std::vector<Oracle*> backends;
    backends.reserve(fleet.size());
    for (CrossbarOracle& oracle : fleet) {
        oracle.set_thread_pool(pool);
        backends.push_back(&oracle);
    }
    ServiceConfig service_config;
    service_config.pool = pool;
    service_config.routing = routing;
    service_config.max_batch = 64;
    OracleService service(backends, service_config);
    Session attacker = service.open_session();

    const attack::QueryDataset queries =
        collect_queries_pipelined(attacker, split.train, rs.queries, rs.seed);
    const nn::SingleLayerNet surrogate =
        attack::fit_least_squares_surrogate(queries, rs.lambda_ridge, pool);
    point.fidelity =
        surrogate_fidelity(surrogate, victim.net, split.test.inputs(), rs.eval_limit);

    point.min_replica_rows = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t k = 0; k < service.replica_count(); ++k) {
        const std::uint64_t rows = service.replica_counters(k).total();
        point.min_replica_rows = std::min(point.min_replica_rows, rows);
        point.max_replica_rows = std::max(point.max_replica_rows, rows);
    }
    return point;
}

ScenarioOutcome run_replica_sweep_scenario(const ScenarioSpec& spec, ThreadPool* pool) {
    if (!spec.defenses.empty()) {
        throw ConfigError("replica-sweep scenarios do not support defense stacks (each point "
                          "deploys a bare fleet; use a fig4 or probe scenario to study defenses)");
    }
    const ReplicaSweepOptions& rs = spec.replica_sweep;
    ScenarioOutcome outcome;
    const data::DataSplit split = load_split(spec);
    VictimConfig victim_config = spec.victim;
    victim_config.output = spec.output;
    // One victim, trained once: every sweep point redeploys the same
    // weights onto a fresh fleet, so fidelity differences come from the
    // fleet, not training variance.
    const TrainedVictim victim = train_victim(split, victim_config);
    outcome.label = experiment_label(spec) + "/" + to_string(rs.axis);

    std::vector<ReplicaSweepPoint> points;
    if (rs.axis == ReplicaSweepOptions::Axis::ReplicaCount) {
        for (const std::size_t n : rs.replica_counts) {
            points.push_back(run_replica_sweep_point(victim, victim_config, split, rs,
                                                     std::max<std::size_t>(1, n), spec.routing,
                                                     pool));
        }
    } else {
        for (const RoutingPolicy routing : rs.routings) {
            points.push_back(run_replica_sweep_point(victim, victim_config, split, rs,
                                                     rs.routing_replicas, routing, pool));
        }
    }

    Table table({"Replicas", "Routing", "Surrogate fidelity", "Rows/replica (min..max)"});
    for (const ReplicaSweepPoint& p : points) {
        table.begin_row();
        table.add(static_cast<long long>(p.replicas));
        table.add(to_string(p.routing));
        table.add(p.fidelity, 3);
        table.add(std::to_string(p.min_replica_rows) + ".." + std::to_string(p.max_replica_rows));
        const std::string key = rs.axis == ReplicaSweepOptions::Axis::ReplicaCount
                                    ? "fidelity_replicas_" + std::to_string(p.replicas)
                                    : "fidelity_" + to_string(p.routing);
        outcome.metrics[key] = p.fidelity;
    }
    outcome.tables.emplace_back("replica_sweep", std::move(table));
    outcome.metrics["victim_test_accuracy"] = victim.test_accuracy;
    outcome.metrics["queries_per_point"] = static_cast<double>(rs.queries);
    return outcome;
}

// ---- cache-timing -----------------------------------------------------------

/// One prime-and-probe trial against a fresh deployment of the trained
/// victim: the victim session primes the cache with its secret member
/// set, then the attacker session times one probe of every candidate.
/// Appends (latency, is_member) samples; only the first probe of a
/// candidate carries signal (the probe itself populates the cache), so
/// repeats are independent trials, not repeated probes.
struct CacheTimingSamples {
    std::vector<double> member_ns;
    std::vector<double> nonmember_ns;
};

void run_cache_timing_trial(const TrainedVictim& victim, const VictimConfig& victim_config,
                            const data::Dataset& candidates, const std::vector<bool>& is_member,
                            const tensor::Vector& warmup, const CacheTimingOptions& ct,
                            bool partitioned, std::uint64_t seed, ThreadPool* pool,
                            CacheTimingSamples& samples, double& hit_rate_out) {
    std::vector<CrossbarOracle> fleet = deploy_victim_fleet(victim.net, victim_config, 1);
    fleet.front().set_thread_pool(pool);
    ServiceConfig service_config;
    service_config.pool = pool;
    service_config.cache.enabled = true;
    service_config.cache.capacity = ct.cache_capacity;
    service_config.cache.partition_by_session = partitioned;
    OracleService service({&fleet.front()}, service_config);

    Session victim_session = service.open_session();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (is_member[i]) victim_session.oracle().query_label(candidates.input(i));
    }

    Session attacker = service.open_session();
    Oracle& probe = attacker.oracle();
    // Warm the attacker's submission path (first-query thread wakeup,
    // lazy allocations) on an input *outside* the candidate pool, so the
    // warm-up cannot seed any candidate into the attacker's partition.
    probe.query_label(warmup);
    // Probe in an attacker-shuffled order so queue/scheduling drift over
    // the pass cannot correlate with membership.
    std::vector<std::size_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    Rng rng(seed);
    for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[static_cast<std::size_t>(rng.below(i))]);
    }
    for (const std::size_t i : order) {
        const tensor::Vector u = candidates.input(i);
        const auto t0 = std::chrono::steady_clock::now();
        probe.query_label(u);
        const auto t1 = std::chrono::steady_clock::now();
        const double ns =
            static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                                    .count());
        (is_member[i] ? samples.member_ns : samples.nonmember_ns).push_back(ns);
    }
    hit_rate_out = service.cache_hit_rate();
}

/// Mann-Whitney AUC of "members probe faster": P(m < n) + ½·P(m = n)
/// over all member/non-member latency pairs. 1.0 = perfect inference of
/// the co-tenant's query contents, 0.5 = chance.
double membership_auc(const CacheTimingSamples& samples) {
    if (samples.member_ns.empty() || samples.nonmember_ns.empty()) return 0.5;
    double wins = 0.0;
    for (const double m : samples.member_ns) {
        for (const double n : samples.nonmember_ns) {
            if (m < n) {
                wins += 1.0;
            } else if (m == n) {
                wins += 0.5;
            }
        }
    }
    return wins / (static_cast<double>(samples.member_ns.size()) *
                   static_cast<double>(samples.nonmember_ns.size()));
}

ScenarioOutcome run_cache_timing_scenario(const ScenarioSpec& spec, ThreadPool* pool) {
    if (!spec.defenses.empty()) {
        throw ConfigError("cache-timing scenarios do not support defense stacks (the channel "
                          "lives in the serving layer, above any decorator)");
    }
    const CacheTimingOptions& ct = spec.cache_timing;
    ScenarioOutcome outcome;
    const data::DataSplit split = load_split(spec);
    VictimConfig victim_config = spec.victim;
    victim_config.output = spec.output;
    const TrainedVictim victim = train_victim(split, victim_config);
    outcome.label = experiment_label(spec) + "/cache-timing";

    // A public candidate pool; the victim queries a secret half. The
    // attacker knows the pool (realistic: popular inputs are public) but
    // not the subset.
    const std::size_t pool_size = std::min<std::size_t>(ct.candidate_pool, split.test.size());
    const data::Dataset candidates = split.test.take(pool_size);
    std::vector<bool> is_member(pool_size, false);
    {
        std::vector<std::size_t> order(pool_size);
        for (std::size_t i = 0; i < pool_size; ++i) order[i] = i;
        Rng rng(ct.seed);
        for (std::size_t i = pool_size; i > 1; --i) {
            std::swap(order[i - 1], order[static_cast<std::size_t>(rng.below(i))]);
        }
        for (std::size_t i = 0; i < pool_size / 2; ++i) is_member[order[i]] = true;
    }

    Table table({"Cache mode", "Attacker AUC", "Attacker hit rate", "Trials"});
    for (const bool partitioned : {false, true}) {
        CacheTimingSamples samples;
        double hit_rate = 0.0;
        for (std::size_t trial = 0; trial < std::max<std::size_t>(1, ct.probe_repeats); ++trial) {
            run_cache_timing_trial(victim, victim_config, candidates, is_member,
                                   split.train.input(0), ct, partitioned, ct.seed + 1 + trial,
                                   pool, samples, hit_rate);
        }
        const double auc = membership_auc(samples);
        const std::string mode = partitioned ? "partitioned" : "shared";
        table.begin_row();
        table.add(mode);
        table.add(auc, 3);
        table.add(hit_rate, 3);
        table.add(static_cast<long long>(std::max<std::size_t>(1, ct.probe_repeats)));
        outcome.metrics["attacker_auc_" + mode] = auc;
        outcome.metrics["attacker_hit_rate_" + mode] = hit_rate;
    }
    outcome.tables.emplace_back("cache_timing", std::move(table));
    outcome.metrics["victim_test_accuracy"] = victim.test_accuracy;
    outcome.metrics["candidate_pool"] = static_cast<double>(pool_size);
    return outcome;
}

// ---- arms race ---------------------------------------------------------------

/// One cell of the strategy × policy matrix, with everything it measured.
struct ArmsCell {
    attack::AttackerStrategy strategy = attack::AttackerStrategy::Fixed;
    const ArmsDefense* defense = nullptr;
    double fidelity = 0.0;
    attack::AdaptiveAttackerOutcome attacker;
    std::uint64_t benign_answered = 0;
    std::uint64_t benign_refused = 0;
    double benign_wall_s = 0.0;

    // Attribution cells only (defense->attribution).
    std::size_t campaigns = 0;           ///< final campaign-cluster count
    std::size_t benign_false_merges = 0; ///< benign sessions clustered with anything
    bool alert = false;                  ///< deployment alert state at campaign end
    std::string attrib_snapshot;         ///< engine JSON snapshot
};

/// Runs one cell: a fresh single-replica deployment of the trained
/// victim, benign tenants streaming concurrently, and the strategy's
/// AdaptiveAttacker campaign — every session under the cell's defense
/// policy (the deployment cannot single the attacker out).
void run_arms_cell(const TrainedVictim& victim, const VictimConfig& victim_config,
                   const data::DataSplit& split, const ArmsRaceOptions& ar,
                   const sidechannel::CurrentSignatureDetector* detector,
                   const tensor::Matrix& probe_pool, const tensor::Matrix& camouflage,
                   std::uint64_t cell_seed, ThreadPool* pool, ArmsCell& cell) {
    std::vector<CrossbarOracle> fleet = deploy_victim_fleet(victim.net, victim_config, 1);
    fleet.front().set_thread_pool(pool);
    ServiceConfig service_config;
    service_config.pool = pool;
    service_config.max_batch = 64;
    if (cell.defense->attribution) {
        service_config.attribution.enabled = true;
        service_config.attribution.source_rate = cell.defense->source_rate;
        if (cell.defense->alert_min_screened > 0) {
            service_config.attribution.engine.alert_min_screened =
                cell.defense->alert_min_screened;
        }
        if (cell.defense->churn_fresh_sources > 0) {
            service_config.attribution.engine.churn_fresh_sources =
                cell.defense->churn_fresh_sources;
        }
    }
    OracleService service({&fleet.front()}, service_config);

    SessionConfig tenant;
    tenant.rate = cell.defense->rate;
    if (cell.defense->suspicion_scaled) {
        XS_EXPECTS_MSG(detector != nullptr,
                       "suspicion-scaled arms-race cell without an enrolled detector");
        tenant.detector = detector;
        tenant.block_flagged = false;  // log-only: suspicion feeds the policy
        tenant.adaptive = ar.adaptive;
        if (cell.defense->quarantine_suspicion > 0.0) {
            // Quarantine rung: refuse everything once the session's
            // campaign-pooled suspicion crosses the line (see ArmsDefense).
            AdaptivePolicy::Band top;
            top.min_suspicion = cell.defense->quarantine_suspicion;
            top.sigma_multiplier =
                tenant.adaptive.bands.empty() ? 4.0 : tenant.adaptive.bands.back().sigma_multiplier;
            top.expose_raw_outputs = false;
            top.refuse_queries = true;
            tenant.adaptive.bands.push_back(top);
        }
        tenant.power_noise_sigma = ar.power_noise_rel * deployed_weight_scale(fleet.front());
    }

    // Benign tenants stream for the whole campaign; their refusals and
    // throughput under this cell's policy are the defender's cost.
    std::vector<Session> benign;
    benign.reserve(ar.benign_clients);
    for (std::size_t c = 0; c < ar.benign_clients; ++c) {
        // Each benign tenant is its own admission principal (ignored by
        // non-attribution cells: the engine is off there).
        SessionConfig benign_tenant = tenant;
        benign_tenant.source = 1000 + c;
        benign.push_back(service.open_session(benign_tenant));
    }
    std::vector<BenignOutcome> benign_out(ar.benign_clients);
    const auto benign_t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(ar.benign_clients);
    for (std::size_t c = 0; c < ar.benign_clients; ++c) {
        clients.emplace_back([&, c] {
            benign_out[c] =
                run_benign_client(benign[c], split.test, ar.benign_queries, cell_seed ^ (c + 1));
        });
    }

    attack::AdaptiveAttackerConfig config = ar.attacker;
    config.strategy = cell.strategy;
    config.seed = cell_seed;
    // The attacker's *real* principal; Forge overrides it per rotation
    // with freshly fabricated SourceIds.
    SessionConfig attacker_tenant = tenant;
    attacker_tenant.source = 1;
    attack::AdaptiveAttacker attacker(service, attacker_tenant, config);
    cell.attacker = attacker.run(probe_pool, camouflage);

    for (std::thread& t : clients) t.join();
    cell.benign_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - benign_t0).count();
    for (const BenignOutcome& b : benign_out) {
        cell.benign_answered += b.answered;
        cell.benign_refused += b.refused;
    }

    if (service.attribution_enabled()) {
        cell.alert = service.attribution_alert();
        cell.campaigns = service.attribution_campaign_count();
        // A benign session's campaign should contain exactly itself; a
        // larger cluster means a clean tenant was blamed for someone
        // else's probes (the false-merge count bench_attrib gates on 0).
        for (const Session& b : benign) {
            if (service.attribution_campaign_of(b.id()).sessions > 1) {
                ++cell.benign_false_merges;
            }
        }
        cell.attrib_snapshot = service.attribution_snapshot();
    }

    if (cell.attacker.collected > 0) {
        const nn::SingleLayerNet surrogate =
            attack::fit_least_squares_surrogate(cell.attacker.data, ar.lambda_ridge, pool);
        cell.fidelity =
            surrogate_fidelity(surrogate, victim.net, split.test.inputs(), ar.eval_limit);
    }
}

ScenarioOutcome run_arms_race_scenario(const ScenarioSpec& spec, ThreadPool* pool) {
    if (!spec.defenses.empty()) {
        throw ConfigError("arms-race scenarios do not support decorator defense stacks (the "
                          "defenses under study are session policies: rate + adaptive)");
    }
    const ArmsRaceOptions& ar = spec.arms_race;
    if (ar.strategies.empty() || ar.defenses.empty()) {
        throw ConfigError("arms-race needs at least one strategy and one defense policy");
    }
    ScenarioOutcome outcome;
    const data::DataSplit split = load_split(spec);
    VictimConfig victim_config = spec.victim;
    victim_config.output = spec.output;
    // One victim, trained once: every cell redeploys the same weights,
    // so fidelity differences come from the arms race, not training.
    const TrainedVictim victim = train_victim(split, victim_config);
    outcome.label = experiment_label(spec) + "/arms-race";

    // Shared detector enrolment for the suspicion-scaled cells (clean
    // training signatures on a reference deployment of the victim).
    std::unique_ptr<sidechannel::CurrentSignatureDetector> detector;
    const bool any_scaled =
        std::any_of(ar.defenses.begin(), ar.defenses.end(),
                    [](const ArmsDefense& d) { return d.suspicion_scaled; });
    std::vector<CrossbarOracle> reference;
    if (any_scaled) {
        reference = deploy_victim_fleet(victim.net, victim_config, 1);
        const data::Dataset enrollment = ar.detector_enrollment > 0
                                             ? split.train.take(ar.detector_enrollment)
                                             : split.train;
        detector = std::make_unique<sidechannel::CurrentSignatureDetector>(
            reference.front().hardware_for_evaluation(), enrollment, ar.detector);
    }

    // High-leverage probe inputs: amplified uniform noise covers input
    // space far better than the clean manifold (a stronger least-squares
    // design, higher power-channel SNR) but drives per-line currents
    // past the detector's clean envelope — exactly the tension the
    // Spread strategy plays against.
    tensor::Matrix probe_pool(512, split.train.input_dim());
    {
        Rng rng(ar.seed ^ 0xAB0BEull);
        double* v = probe_pool.data();
        for (std::size_t i = 0; i < probe_pool.rows() * probe_pool.cols(); ++i) {
            v[i] = ar.probe_strength * rng.uniform();
        }
    }

    // The attacker's small clean pool (Spread's camouflage material).
    const data::Dataset camouflage_set =
        split.train.take(std::max<std::size_t>(1, std::min(ar.camouflage_pool, split.train.size())));
    const tensor::Matrix& camouflage = camouflage_set.inputs();

    std::vector<ArmsCell> cells;
    cells.reserve(ar.strategies.size() * ar.defenses.size());
    for (const attack::AttackerStrategy strategy : ar.strategies) {
        for (const ArmsDefense& defense : ar.defenses) {
            ArmsCell cell;
            cell.strategy = strategy;
            cell.defense = &defense;
            cells.push_back(std::move(cell));
        }
    }

    // Fan the matrix out on the shared pool. Each cell owns its
    // deployment and service; parallel_for is nesting-safe, so the
    // cells' pooled GEMMs compose with the outer fan-out.
    const auto run_cell = [&](std::size_t i) {
        run_arms_cell(victim, victim_config, split, ar, detector.get(), probe_pool, camouflage,
                      ar.seed ^ ((i + 1) * 0x9E3779B97F4A7C15ull), pool, cells[i]);
    };
    if (pool != nullptr) {
        parallel_for(*pool, cells.size(), run_cell);
    } else {
        parallel_for(cells.size(), run_cell);
    }

    Table table({"Strategy", "Defense", "Fidelity", "Collected", "Refused", "Raw denied",
                 "Sessions", "Wall (s)", "Benign ok", "Benign refused"});
    for (const ArmsCell& cell : cells) {
        const std::string strategy = attack::to_string(cell.strategy);
        const std::string key = strategy + "_" + cell.defense->name;
        table.begin_row();
        table.add(strategy);
        table.add(cell.defense->name);
        table.add(cell.fidelity, 3);
        table.add(static_cast<long long>(cell.attacker.collected));
        table.add(static_cast<long long>(cell.attacker.refused));
        table.add(static_cast<long long>(cell.attacker.raw_denied));
        table.add(static_cast<long long>(cell.attacker.sessions_used));
        table.add(cell.attacker.wall_seconds, 3);
        table.add(static_cast<long long>(cell.benign_answered));
        table.add(static_cast<long long>(cell.benign_refused));
        outcome.metrics["fidelity_" + key] = cell.fidelity;
        outcome.metrics["collected_" + key] = static_cast<double>(cell.attacker.collected);
        outcome.metrics["refused_" + key] = static_cast<double>(cell.attacker.refused);
        outcome.metrics["raw_denied_" + key] = static_cast<double>(cell.attacker.raw_denied);
        outcome.metrics["sessions_" + key] = static_cast<double>(cell.attacker.sessions_used);
        outcome.metrics["attacker_wall_s_" + key] = cell.attacker.wall_seconds;
        outcome.metrics["max_flagged_" + key] = cell.attacker.max_flagged_fraction;
        outcome.metrics["benign_answered_" + key] = static_cast<double>(cell.benign_answered);
        outcome.metrics["benign_refused_" + key] = static_cast<double>(cell.benign_refused);
        outcome.metrics["benign_qps_" + key] =
            cell.benign_wall_s > 0.0 ? static_cast<double>(cell.benign_answered) / cell.benign_wall_s
                                     : 0.0;
        if (cell.defense->attribution) {
            outcome.metrics["campaigns_" + key] = static_cast<double>(cell.campaigns);
            outcome.metrics["benign_false_merges_" + key] =
                static_cast<double>(cell.benign_false_merges);
            outcome.metrics["alert_" + key] = cell.alert ? 1.0 : 0.0;
            outcome.notes.emplace_back("attribution_" + key, cell.attrib_snapshot);
        }
    }
    outcome.tables.emplace_back("arms_race", std::move(table));
    outcome.metrics["victim_test_accuracy"] = victim.test_accuracy;
    outcome.metrics["planned_queries"] = static_cast<double>(ar.attacker.planned_queries);
    return outcome;
}

}  // namespace

ScenarioOutcome ScenarioRunner::run(const ScenarioSpec& spec) const {
    ScenarioOutcome outcome;
    switch (spec.experiment) {
        case ExperimentKind::Fig3: outcome = run_fig3_scenario(*this, spec); break;
        case ExperimentKind::Fig4: outcome = run_fig4_scenario(*this, spec); break;
        case ExperimentKind::Fig5: outcome = run_fig5_scenario(spec, pool_); break;
        case ExperimentKind::Table1: outcome = run_table1_scenario(spec, pool_); break;
        case ExperimentKind::Probe: outcome = run_probe_scenario(*this, spec); break;
        case ExperimentKind::MultiClient: outcome = run_multiclient_scenario(*this, spec); break;
        case ExperimentKind::ReplicaSweep: outcome = run_replica_sweep_scenario(spec, pool_); break;
        case ExperimentKind::CacheTiming: outcome = run_cache_timing_scenario(spec, pool_); break;
        case ExperimentKind::ArmsRace: outcome = run_arms_race_scenario(spec, pool_); break;
    }
    outcome.name = spec.name;
    return outcome;
}

ScenarioOutcome ScenarioRunner::run(const std::string& name) const {
    return run(builtin_scenarios().get(name));
}

}  // namespace xbarsec::core
