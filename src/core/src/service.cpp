#include "xbarsec/core/service.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <limits>
#include <list>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "xbarsec/attrib/sketch.hpp"
#include "xbarsec/common/rng.hpp"

namespace xbarsec::core {

std::string to_string(RoutingPolicy policy) {
    switch (policy) {
        case RoutingPolicy::SessionAffine: return "session-affine";
        case RoutingPolicy::RoundRobin: return "round-robin";
        case RoutingPolicy::LeastLoaded: return "least-loaded";
    }
    return "?";
}

RoutingPolicy parse_routing_policy(const std::string& name) {
    // Bench and example CLIs pass user input through verbatim, so accept
    // any trim/case/separator spelling ("RoundRobin", " least-loaded ",
    // "SESSION_AFFINE"): drop whitespace and -/_ separators, case-fold,
    // and match the canonical words.
    std::string key;
    key.reserve(name.size());
    for (const char ch : name) {
        const auto c = static_cast<unsigned char>(ch);
        if (std::isspace(c) != 0 || ch == '-' || ch == '_') continue;
        key.push_back(static_cast<char>(std::tolower(c)));
    }
    if (key == "sessionaffine") return RoutingPolicy::SessionAffine;
    if (key == "roundrobin") return RoutingPolicy::RoundRobin;
    if (key == "leastloaded") return RoutingPolicy::LeastLoaded;
    throw ConfigError("unknown routing policy '" + name +
                      "'; expected session-affine, round-robin, or least-loaded");
}

namespace detail {

enum class QueryKind { Label, Raw, Power };

/// The content-addressed result cache (ServiceConfig::cache). Keys mix
/// (kind, replica index, partition, input-row bit pattern) into one
/// 64-bit hash; a probe verifies the stored entry byte-for-byte before
/// answering, so a hash collision degrades to a miss, never to a wrong
/// answer. Values are the backend's *clean* answers — per-session
/// transforms (power noise) are re-applied by the hit path.
///
/// One mutex guards the LRU list and the index. That is deliberate: a
/// hit is a short critical section on the submitting thread while a miss
/// pays a queue roundtrip plus a backend batch — the latency asymmetry
/// the cache exists for, and exactly the cross-tenant timing signal the
/// service/mnist/cache-timing scenario measures (partitioning removes
/// the cross-tenant information, not the asymmetry).
class ResultCache {
public:
    explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

    /// One cached answer; `kind` (in the key) says which field is live.
    struct Value {
        int label = 0;
        tensor::Vector raw;
        double power = 0.0;
    };

    static std::uint64_t key_hash(QueryKind kind, std::size_t replica, std::uint64_t partition,
                                  std::span<const double> row) {
        // FNV-1a over the key fields and the row's double bit patterns,
        // finished with the counter-rng avalanche so the map sees
        // well-mixed buckets. The content-hash steps are the shared
        // attrib machinery, so the attribution layer's per-row hashes
        // and these cache keys agree on input identity.
        std::uint64_t h = attrib::kContentHashOffset;
        h = attrib::content_hash_mix(h, static_cast<std::uint64_t>(kind));
        h = attrib::content_hash_mix(h, replica);
        h = attrib::content_hash_mix(h, partition);
        h = attrib::content_hash_doubles(h, row);
        return attrib::content_hash_finish(h);
    }

    /// Probes for an exact entry; a hit refreshes its LRU position.
    /// Every call counts toward hits/misses (callers probe only for
    /// cache-eligible submissions).
    bool lookup(std::uint64_t hash, QueryKind kind, std::size_t replica, std::uint64_t partition,
                std::span<const double> row, Value& out) {
        std::lock_guard lock(mutex_);
        const auto it = index_.find(hash);
        if (it == index_.end() || !matches(*it->second, kind, replica, partition, row)) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        lru_.splice(lru_.begin(), lru_, it->second);
        out = it->second->value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    void insert(std::uint64_t hash, QueryKind kind, std::size_t replica, std::uint64_t partition,
                tensor::Vector input, Value value) {
        std::lock_guard lock(mutex_);
        const auto it = index_.find(hash);
        if (it != index_.end()) {
            // Concurrent misses of the same input race to insert (both
            // executed on the backend), or — astronomically rarely — a
            // 64-bit collision lands here; either way the slot keeps the
            // newest answer and its verification fields.
            Entry& e = *it->second;
            e.kind = kind;
            e.replica = replica;
            e.partition = partition;
            e.input = std::move(input);
            e.value = std::move(value);
            lru_.splice(lru_.begin(), lru_, it->second);
            return;
        }
        if (index_.size() >= capacity_) {
            index_.erase(lru_.back().hash);
            lru_.pop_back();
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
        lru_.push_front(Entry{hash, kind, replica, partition, std::move(input), std::move(value)});
        index_.emplace(hash, lru_.begin());
    }

    std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
    std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
    std::size_t entries() const {
        std::lock_guard lock(mutex_);
        return index_.size();
    }

private:
    struct Entry {
        std::uint64_t hash = 0;
        QueryKind kind = QueryKind::Label;
        std::size_t replica = 0;
        std::uint64_t partition = 0;
        tensor::Vector input;
        Value value;
    };

    static bool matches(const Entry& e, QueryKind kind, std::size_t replica,
                        std::uint64_t partition, std::span<const double> row) {
        if (e.kind != kind || e.replica != replica || e.partition != partition) return false;
        if (e.input.size() != row.size()) return false;
        // Bitwise identity, matching the hash: -0.0 != 0.0 here, and a
        // NaN row can still hit its own cached answer.
        return std::memcmp(e.input.data(), row.data(), row.size() * sizeof(double)) == 0;
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

/// One submission: 1..N input rows of one kind from one session, with
/// the promise its results are delivered through. Units are never split
/// across backend calls or replicas (an explicitly-submitted batch keeps
/// the backend stack's all-or-nothing semantics); a replica's coalescer
/// only *merges* consecutive same-kind units up to max_batch rows.
struct Unit {
    std::shared_ptr<SessionState> session;
    QueryKind kind = QueryKind::Label;
    bool scalar = false;
    tensor::Matrix inputs;
    std::uint64_t power_ordinal = 0;  ///< session noise-stream base (Power only)
    double power_sigma = 0.0;  ///< effective sensing-noise sigma at admission (Power only)
    std::uint64_t cache_hash = 0;     ///< submit-time key (cache_store only)
    bool cache_store = false;  ///< scalar cache miss: deliver into the cache too
    std::variant<std::promise<int>, std::promise<std::vector<int>>, std::promise<double>,
                 std::promise<tensor::Vector>, std::promise<tensor::Matrix>>
        promise;
};

/// One backend replica's serving state: its private coalescing queue,
/// flush signalling, and telemetry. Replicas never share a queue lock —
/// the only cross-replica contention is the (optional) shared ThreadPool
/// underneath the backend GEMMs.
struct ReplicaState {
    Oracle* backend = nullptr;
    std::size_t index = 0;

    std::mutex mutex;
    std::condition_variable cv;
    /// Producers append; the flusher swaps the whole vector against a
    /// recycled empty one, so steady-state submission never allocates.
    std::vector<Unit> queue;
    std::size_t pending_rows = 0;
    bool flush_now = false;
    bool stopping = false;

    /// Rows enqueued but not yet answered — the lock-free load signal
    /// LeastLoaded routing scans.
    std::atomic<std::size_t> inflight_rows{0};

    /// Per-replica accepted-query counters (fleet aggregate = sum).
    std::atomic<std::uint64_t> inference_count{0};
    std::atomic<std::uint64_t> power_count{0};

    std::atomic<std::uint64_t> flushed_batches{0};
    std::atomic<std::uint64_t> flushed_rows{0};
};

/// Cross-session attribution state (null unless attribution.enabled):
/// the engine (bookkeeping) plus the per-source token buckets the
/// service enforces from it. Buckets live here — not on sessions — so
/// the allowance survives rotation; the map only grows (sources are
/// principals, not sessions) and bucket addresses are stable.
struct AttribState {
    explicit AttribState(const AttributionConfig& config) : engine(config.engine) {}

    attrib::AttributionEngine engine;
    std::mutex bucket_mutex;
    std::unordered_map<attrib::SourceId, std::unique_ptr<TokenBucket>> buckets;
};

struct ServiceState {
    ThreadPool* pool = nullptr;  ///< the pool behind the backends' batched paths (may be null)
    ServiceConfig config;
    std::size_t inputs = 0;
    std::size_t outputs = 0;

    std::vector<std::unique_ptr<ReplicaState>> replicas;
    std::atomic<std::uint64_t> rr_cursor{0};  ///< RoundRobin unit cursor

    /// Content-addressed result cache (null unless config.cache.enabled).
    std::unique_ptr<ResultCache> cache;

    /// Cross-session attribution (null unless config.attribution.enabled).
    std::unique_ptr<AttribState> attrib;

    std::atomic<std::uint64_t> next_session_id{1};
};

struct SessionState {
    std::shared_ptr<ServiceState> service;
    SessionConfig config;
    std::uint64_t id = 0;
    std::size_t home_replica = 0;  ///< SessionAffine target

    BudgetLedger ledger;
    std::unique_ptr<DetectorScreen> screen;  ///< null when the session has no detector
    std::unique_ptr<TokenBucket> bucket;     ///< null when the session has no rate limit

    /// The per-*source* bucket (owned by AttribState, shared by every
    /// session of this source); null when attribution or source_rate is
    /// off. Survives this session: rotation draws from the same bucket.
    TokenBucket* source_bucket = nullptr;

    std::atomic<std::uint64_t> inference_count{0};
    std::atomic<std::uint64_t> power_count{0};
    std::atomic<std::uint64_t> power_ordinal{0};  ///< noise-stream position, never reset
    std::atomic<bool> open{true};

    SessionState(std::shared_ptr<ServiceState> svc, SessionConfig cfg, std::uint64_t sid)
        : service(std::move(svc)), config(cfg), id(sid), ledger(cfg.budget) {
        home_replica = static_cast<std::size_t>((id - 1) % service->replicas.size());
        if (config.detector != nullptr) {
            screen = std::make_unique<DetectorScreen>(*config.detector, config.block_flagged);
        }
        if (!config.rate.unlimited()) {
            bucket = std::make_unique<TokenBucket>(config.rate, config.rate_clock);
        }
        if (AttribState* at = service->attrib.get()) {
            at->engine.note_session_open(id, config.source);
            const AttributionConfig& ac = service->config.attribution;
            if (!ac.source_rate.unlimited()) {
                std::lock_guard lock(at->bucket_mutex);
                std::unique_ptr<TokenBucket>& slot = at->buckets[config.source];
                if (slot == nullptr) {
                    slot = std::make_unique<TokenBucket>(ac.source_rate, ac.source_clock);
                }
                source_bucket = slot.get();
            }
        }
    }
};

namespace {

/// Per-session sensing noise for the session's k-th power reading: a
/// pure function of (seed, sigma, k), so coalescing/batching cannot
/// change it. `sigma` is the effective (possibly suspicion-scaled)
/// sigma captured at admission.
double session_noise(const SessionState& s, double sigma, std::uint64_t ordinal) {
    return sigma * Rng::normal_at(s.config.noise_seed, ordinal, 0);
}

/// The session's active suspicion band — null when the adaptive policy
/// is off, the session has no detector window, or the window is still
/// warming up. Read on the submitting thread at admission: a serial
/// submitter's escalation sequence is therefore deterministic and
/// independent of how its submissions coalesce into backend batches.
///
/// With attribution enabled the band is chosen on the session's whole
/// *campaign* window (same-source siblings and overlap-merged rotations
/// included), and a deployment alert waives the warm-up floor — a
/// rotating attacker inherits its own history instead of opening each
/// session with a clean slate.
const AdaptivePolicy::Band* adaptive_band(const SessionState& s) {
    if (!s.config.adaptive.enabled()) return nullptr;
    AttribState* at = s.service->attrib.get();
    if (s.screen == nullptr && at == nullptr) return nullptr;
    std::uint64_t screened = s.screen != nullptr ? s.screen->screened() : 0;
    double suspicion = s.screen != nullptr ? s.screen->flagged_fraction() : 0.0;
    if (at != nullptr) {
        screened = std::max(screened, at->engine.pooled_screened(s.id));
        // Campaign suspicion is the max of the detector-flagged and
        // probe-shaped row fractions: hard-driven extraction probes are
        // escalated even where the enrolled detector's coverage is
        // partial, while clean tenants stay near zero on both.
        suspicion = std::max(suspicion, at->engine.pooled_suspicion_fraction(s.id));
        if (at->engine.alert()) {
            // The deployment is under active probing: warm-up no longer
            // shields a freshly rotated session. band_for still refuses
            // an entirely empty window (screened == 0).
            screened = std::max<std::uint64_t>(
                screened, std::max<std::uint64_t>(s.config.adaptive.min_screened, 1));
        }
    }
    return s.config.adaptive.band_for(suspicion, screened);
}

/// Effective sensing-noise sigma at admission: the session's static
/// sigma scaled by the active suspicion band (identity when the policy
/// is off — the default service stays bit-identical).
double effective_power_sigma(const SessionState& s) {
    double sigma = s.config.power_noise_sigma;
    if (const AdaptivePolicy::Band* band = adaptive_band(s)) sigma *= band->sigma_multiplier;
    return sigma;
}

/// Sigma for one admitted submission: the band-scaled sigma, raised to
/// the strongest band's multiplier when this submission itself was
/// escalated (deployment alert + its own rows looked like probes). The
/// per-query escalation is what closes the pre-merge window — a forged
/// source's first probes get degraded before clustering catches up.
double escalated_power_sigma(const SessionState& s, bool escalate) {
    double sigma = effective_power_sigma(s);
    if (escalate && s.config.adaptive.enabled()) {
        sigma = std::max(sigma,
                         s.config.power_noise_sigma * s.config.adaptive.bands.back().sigma_multiplier);
    }
    return sigma;
}

/// Picks the replica for one admitted unit. SessionAffine pins the
/// session's home replica; RoundRobin rotates one atomic cursor;
/// LeastLoaded scans the racy inflight-row snapshots (ties take the
/// lowest index, so an idle fleet behaves like a fixed assignment).
ReplicaState& route(ServiceState& svc, const SessionState& s) {
    const std::size_t n = svc.replicas.size();
    if (n == 1) return *svc.replicas.front();
    switch (svc.config.routing) {
        case RoutingPolicy::SessionAffine: return *svc.replicas[s.home_replica];
        case RoutingPolicy::RoundRobin:
            return *svc.replicas[svc.rr_cursor.fetch_add(1, std::memory_order_relaxed) % n];
        case RoutingPolicy::LeastLoaded: {
            std::size_t best = 0;
            std::size_t best_load = std::numeric_limits<std::size_t>::max();
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t load =
                    svc.replicas[i]->inflight_rows.load(std::memory_order_relaxed);
                if (load < best_load) {
                    best = i;
                    best_load = load;
                }
            }
            return *svc.replicas[best];
        }
    }
    return *svc.replicas.front();
}

/// Admission control runs on the submitting thread, *before* routing —
/// policy is per-session, not per-replica — and is split in two so cache
/// hits can replay it exactly: `screen` (exposure + detector, never
/// charged) runs for every submission, hit or miss; `charge` (budget +
/// session counters) runs after the cache verdict, because whether a hit
/// touches the BudgetLedger is a ServiceConfig decision. A submission
/// refused at any step charges and counts nothing downstream of the
/// refusal point.
///
/// Returns whether this submission is *escalated*: attribution is on,
/// the deployment alert is up, and at least one of these rows was
/// flagged or probe-shaped. Callers degrade an escalated submission
/// per-query (Raw → refused, Power → strongest-band sigma). Always
/// false with attribution off — the legacy path is untouched.
bool screen(SessionState& s, QueryKind kind, const tensor::Matrix& U) {
    XS_EXPECTS(U.rows() > 0);
    XS_EXPECTS(U.cols() == s.service->inputs);
    switch (kind) {
        case QueryKind::Label: break;
        case QueryKind::Raw:
            if (!s.config.expose_raw_outputs) {
                throw AccessDenied("raw outputs are not exposed to this session");
            }
            // Suspicion-scaled cutoff: a tenant whose screened traffic
            // looks adversarial loses raw-output access (labels still
            // work). Decided on the window *before* this submission is
            // screened, so the refusal depends only on past behaviour.
            if (const AdaptivePolicy::Band* band = adaptive_band(s);
                band != nullptr && !band->expose_raw_outputs) {
                throw AccessDenied("raw outputs are withheld at this session's suspicion level");
            }
            break;
        case QueryKind::Power:
            if (!s.config.expose_power) {
                throw AccessDenied("power measurement is not exposed to this session");
            }
            break;
    }
    AttribState* at = s.service->attrib.get();
    if (at == nullptr) {
        if (kind != QueryKind::Power && s.screen != nullptr) s.screen->screen_batch(U);
        return false;
    }
    // Attribution path: screen row by row so every row's detector
    // verdict and content hash reach the engine (power rows are not
    // detector-screened — same as the legacy path — but their shape
    // still feeds the probe-population window and the sketches).
    const attrib::EngineConfig& ec = at->engine.config();
    bool hot = false;
    for (std::size_t r = 0; r < U.rows(); ++r) {
        const auto row = U.row_span(r);
        bool flagged = false;
        if (kind != QueryKind::Power && s.screen != nullptr) flagged = s.screen->screen(U.row(r));
        attrib::Observation obs;
        obs.session = s.id;
        obs.source = s.config.source;
        obs.input_hash = attrib::hash_row(row);
        obs.flagged = flagged;
        obs.suspicious = attrib::AttributionEngine::suspicious_row(row, ec);
        obs.basis_like = attrib::AttributionEngine::basis_like_row(row, ec);
        at->engine.observe(obs);
        hot = hot || flagged || obs.suspicious;
    }
    // Alert read *after* observing: a burst that trips the window
    // escalates from the same submission on.
    return hot && at->engine.alert();
}

/// Budget then session counters. `charge_budget` is false only for cache
/// hits under CacheConfig::hits_charge_budget = false — the session's
/// own counters count every accepted query regardless.
void charge(SessionState& s, QueryKind kind, std::uint64_t rows, bool charge_budget) {
    // An unlimited budget never refuses, so skip its mutex on the
    // per-query fast path.
    const bool budgeted = charge_budget && !s.config.budget.unlimited();
    if (kind == QueryKind::Power) {
        if (budgeted) s.ledger.charge_power(rows);
        s.power_count.fetch_add(rows, std::memory_order_relaxed);
    } else {
        if (budgeted) s.ledger.charge_inference(rows);
        s.inference_count.fetch_add(rows, std::memory_order_relaxed);
    }
}

/// Enqueues an admitted unit on `replica` and wakes its flusher.
/// `flush_hint` asks for an immediate flush (a synchronous caller is
/// already waiting). Per-replica counters are bumped only after the push
/// succeeded, so a SessionClosed thrown here leaves them untouched.
template <typename Promise>
auto enqueue(const std::shared_ptr<SessionState>& session, ReplicaState& replica, QueryKind kind,
             bool scalar, tensor::Matrix inputs, bool flush_hint, std::uint64_t cache_hash,
             bool cache_store, bool escalate) {
    const ServiceConfig& config = session->service->config;
    Unit unit;
    unit.session = session;
    unit.kind = kind;
    unit.scalar = scalar;
    unit.cache_hash = cache_hash;
    unit.cache_store = cache_store;
    if (kind == QueryKind::Power) {
        unit.power_ordinal =
            session->power_ordinal.fetch_add(inputs.rows(), std::memory_order_relaxed);
        // Capture the (possibly suspicion-scaled, possibly escalated)
        // sigma now: the noise a submission gets reflects the session's
        // standing when it was admitted, not when the flusher happens
        // to deliver it.
        unit.power_sigma = escalated_power_sigma(*session, escalate);
    }
    const std::size_t rows = inputs.rows();
    unit.inputs = std::move(inputs);
    Promise promise;
    auto future = promise.get_future();
    unit.promise = std::move(promise);
    // Pre-charge the load signal *before* the queue push: LeastLoaded
    // routing reads inflight_rows lock-free, and charging after the push
    // opened a window where a unit already sitting in the queue counted
    // as zero load, steering the next submission to the busier replica.
    // One combined counter (decremented only after the rows are answered,
    // in flush()) also keeps the queue→flusher migration coherent — the
    // batch never transiently disappears from or double-counts in the
    // load snapshot while the flusher drains the queue.
    replica.inflight_rows.fetch_add(rows, std::memory_order_relaxed);
    bool wake = false;
    {
        std::lock_guard lock(replica.mutex);
        if (replica.stopping) {
            replica.inflight_rows.fetch_sub(rows, std::memory_order_relaxed);
            throw SessionClosed("the service is shut down");
        }
        // Wake the flusher only on state transitions it is actually
        // waiting for — the first pending unit (it may be in its
        // indefinite wait) or a newly-met flush condition. Waking on
        // every submission would context-switch once per query under
        // pipelined load.
        wake = replica.queue.empty();
        replica.queue.push_back(std::move(unit));
        replica.pending_rows += rows;
        if ((flush_hint || replica.pending_rows >= config.max_batch) && !replica.flush_now) {
            replica.flush_now = true;
            wake = true;
        }
    }
    if (kind == QueryKind::Power) {
        replica.power_count.fetch_add(rows, std::memory_order_relaxed);
    } else {
        replica.inference_count.fetch_add(rows, std::memory_order_relaxed);
    }
    if (wake) replica.cv.notify_all();
    return future;
}

/// Rolls an admitted-but-not-enqueued submission back out of the
/// session's ledger and counters, so a SessionClosed thrown by the
/// queue push leaves nothing charged or counted.
void unadmit(SessionState& s, QueryKind kind, std::uint64_t rows) {
    const bool budgeted = !s.config.budget.unlimited();
    if (kind == QueryKind::Power) {
        if (budgeted) s.ledger.refund_power(rows);
        s.power_count.fetch_sub(rows, std::memory_order_relaxed);
    } else {
        if (budgeted) s.ledger.refund_inference(rows);
        s.inference_count.fetch_sub(rows, std::memory_order_relaxed);
    }
}

/// Checks the session handle, screens the submission, probes the result
/// cache (scalar submissions only — a cached batch would have to match
/// row-for-row, which skewed traffic never does), then charges and either
/// answers inline (hit) or routes to a replica and enqueues (miss).
///
/// The hit path replays the hitting session's *own* policy: exposure and
/// detector screening already ran above, the budget charge obeys
/// CacheConfig::hits_charge_budget, session counters always advance, and
/// a power hit draws the session's next noise ordinal — so a session
/// cannot tell (except by latency) whether its answer was recomputed.
/// Per-replica counters never see a hit: nothing was routed.
template <typename Promise>
auto submit(const std::shared_ptr<SessionState>& session, QueryKind kind, bool scalar,
            tensor::Matrix inputs, bool flush_hint) {
    if (session == nullptr || !session->open.load(std::memory_order_acquire)) {
        throw SessionClosed("submit on a closed session");
    }
    SessionState& s = *session;
    ServiceState& svc = *s.service;
    const bool escalate = screen(s, kind, inputs);
    if (escalate && kind == QueryKind::Raw) {
        // Deployment alert + probe-shaped rows: raw outputs close
        // per-query, before campaign clustering has even merged the
        // session — a forged source gets no pre-attribution window.
        throw AccessDenied("raw outputs are withheld while the deployment alert is active");
    }
    // Attribution-level refusals run *after* screening so the refused
    // rows still feed the engine: the probe-population window stays hot
    // (the alert cannot be waited out by hammering a frozen source) and
    // overlap evidence keeps accruing against the campaign.
    if (AttribState* at = svc.attrib.get()) {
        if (at->engine.probation(s.config.source)) {
            throw QueryRefused(
                "source is on probation: first seen while the deployment alert was active");
        }
    }
    if (const AdaptivePolicy::Band* band = adaptive_band(s);
        band != nullptr && band->refuse_queries) {
        // Campaign quarantine: the top suspicion band refuses service
        // outright. Label-degraded answers still distill a model; an
        // attributed campaign gets nothing, and rotation lands every
        // fresh session straight back in the pooled window.
        throw QueryRefused("session's campaign is quarantined at this suspicion level");
    }
    const std::uint64_t rows = inputs.rows();
    // Rate admission after screening (a screened-out submission spends
    // no tokens) and before the cache probe — hits consume rate like
    // any answered query, otherwise replaying popular inputs would be
    // rate-free. All-or-nothing: RateLimited takes nothing. The
    // per-source bucket (attribution) is acquired second and rolls the
    // session bucket back on refusal, so a refusal still takes nothing.
    if (s.bucket != nullptr) s.bucket->acquire(rows);
    if (s.source_bucket != nullptr) {
        try {
            s.source_bucket->acquire(rows);
        } catch (...) {
            if (s.bucket != nullptr) s.bucket->refund(rows);
            throw;
        }
    }
    try {
        std::uint64_t cache_hash = 0;
        bool cacheable = false;
        ReplicaState* replica = nullptr;
        if (svc.cache != nullptr && scalar) {
            // Route *before* probing: the replica index is part of the key
            // (replicas have distinct device-variation signatures, so their
            // answers are not interchangeable).
            replica = &route(svc, s);
            const std::uint64_t partition = svc.config.cache.partition_by_session ? s.id : 0;
            cache_hash = ResultCache::key_hash(kind, replica->index, partition, inputs.row_span(0));
            ResultCache::Value value;
            if (svc.cache->lookup(cache_hash, kind, replica->index, partition, inputs.row_span(0),
                                  value)) {
                // May throw QueryBudgetExceeded — before anything was
                // counted or answered, exactly like a refused miss.
                charge(s, kind, rows, svc.config.cache.hits_charge_budget);
                Promise promise;
                auto future = promise.get_future();
                if constexpr (std::is_same_v<Promise, std::promise<int>>) {
                    promise.set_value(value.label);
                } else if constexpr (std::is_same_v<Promise, std::promise<double>>) {
                    const std::uint64_t ordinal =
                        s.power_ordinal.fetch_add(1, std::memory_order_relaxed);
                    const double sigma = escalated_power_sigma(s, escalate);
                    promise.set_value(value.power +
                                      (sigma > 0.0 ? session_noise(s, sigma, ordinal) : 0.0));
                } else if constexpr (std::is_same_v<Promise, std::promise<tensor::Vector>>) {
                    // Scalar + promise<Vector> is only ever a raw query (a
                    // scalar power submission resolves a promise<double>).
                    promise.set_value(std::move(value.raw));
                }
                return future;
            }
            cacheable = true;  // miss: the flusher stores the clean answer
        }
        charge(s, kind, rows, true);
        try {
            if (replica == nullptr) replica = &route(svc, s);
            return enqueue<Promise>(session, *replica, kind, scalar, std::move(inputs), flush_hint,
                                    cache_hash, cacheable, escalate);
        } catch (...) {
            unadmit(s, kind, rows);
            throw;
        }
    } catch (...) {
        // Refused downstream of rate admission (budget, shutdown): the
        // tokens go back, so a refusal costs the client nothing.
        if (s.bucket != nullptr) s.bucket->refund(rows);
        if (s.source_bucket != nullptr) s.source_bucket->refund(rows);
        throw;
    }
}

/// Concatenates the inputs of `units[first, last)` (one kind) into one
/// backend batch. Returns a pointer into the single unit when no
/// stitching is needed, so the common scenario path (one batch unit per
/// flush) is copy-free.
const tensor::Matrix* gather_inputs(std::vector<Unit>& units, std::size_t first, std::size_t last,
                                    tensor::Matrix& storage) {
    if (last - first == 1) return &units[first].inputs;
    std::size_t rows = 0;
    for (std::size_t i = first; i < last; ++i) rows += units[i].inputs.rows();
    // resize() reuses the scratch matrix's heap capacity (values are
    // unspecified afterwards — every row is overwritten below).
    storage.resize(rows, units[first].inputs.cols());
    std::size_t at = 0;
    for (std::size_t i = first; i < last; ++i) {
        const tensor::Matrix& in = units[i].inputs;
        for (std::size_t r = 0; r < in.rows(); ++r, ++at) {
            const auto src = in.row_span(r);
            auto dst = storage.row_span(at);
            std::copy(src.begin(), src.end(), dst.begin());
        }
    }
    return &storage;
}

/// Stores a scalar miss's *clean* backend answer under the key computed
/// at submit time. Runs on the flusher thread, before the promise is
/// fulfilled — once a future resolves, the entry is probeable.
void store_in_cache(const Unit& u, const ReplicaState& replica, ResultCache::Value value) {
    const SessionState& s = *u.session;
    ServiceState& svc = *s.service;
    const std::uint64_t partition = svc.config.cache.partition_by_session ? s.id : 0;
    svc.cache->insert(u.cache_hash, u.kind, replica.index, partition, u.inputs.row(0),
                      std::move(value));
}

void deliver_labels(std::vector<Unit>& units, std::size_t first, std::size_t last,
                    const ReplicaState& replica, const std::vector<int>& labels) {
    std::size_t at = 0;
    for (std::size_t i = first; i < last; ++i) {
        Unit& u = units[i];
        const std::size_t rows = u.inputs.rows();
        if (u.scalar) {
            if (u.cache_store) {
                ResultCache::Value v;
                v.label = labels[at];
                store_in_cache(u, replica, std::move(v));
            }
            std::get<std::promise<int>>(u.promise).set_value(labels[at]);
        } else {
            std::get<std::promise<std::vector<int>>>(u.promise)
                .set_value(std::vector<int>(labels.begin() + static_cast<std::ptrdiff_t>(at),
                                            labels.begin() + static_cast<std::ptrdiff_t>(at + rows)));
        }
        at += rows;
    }
}

void deliver_raw(std::vector<Unit>& units, std::size_t first, std::size_t last,
                 const ReplicaState& replica, const tensor::Matrix& Y) {
    std::size_t at = 0;
    for (std::size_t i = first; i < last; ++i) {
        Unit& u = units[i];
        const std::size_t rows = u.inputs.rows();
        if (u.scalar) {
            if (u.cache_store) {
                ResultCache::Value v;
                v.raw = Y.row(at);
                store_in_cache(u, replica, std::move(v));
            }
            std::get<std::promise<tensor::Vector>>(u.promise).set_value(Y.row(at));
        } else {
            tensor::Matrix block(rows, Y.cols());
            for (std::size_t r = 0; r < rows; ++r) {
                const auto src = Y.row_span(at + r);
                auto dst = block.row_span(r);
                std::copy(src.begin(), src.end(), dst.begin());
            }
            std::get<std::promise<tensor::Matrix>>(u.promise).set_value(std::move(block));
        }
        at += rows;
    }
}

void deliver_power(std::vector<Unit>& units, std::size_t first, std::size_t last,
                   const ReplicaState& replica, const tensor::Vector& p) {
    std::size_t at = 0;
    for (std::size_t i = first; i < last; ++i) {
        Unit& u = units[i];
        const SessionState& s = *u.session;
        const std::size_t rows = u.inputs.rows();
        const bool noisy = u.power_sigma > 0.0;
        if (u.scalar) {
            if (u.cache_store) {
                // The cache keeps the *clean* reading; each hit re-draws
                // the hitting session's own noise at its own ordinal.
                ResultCache::Value v;
                v.power = p[at];
                store_in_cache(u, replica, std::move(v));
            }
            const double value =
                p[at] + (noisy ? session_noise(s, u.power_sigma, u.power_ordinal) : 0.0);
            std::get<std::promise<double>>(u.promise).set_value(value);
        } else {
            tensor::Vector block(rows, 0.0);
            for (std::size_t r = 0; r < rows; ++r) {
                block[r] = p[at + r] +
                           (noisy ? session_noise(s, u.power_sigma, u.power_ordinal + r) : 0.0);
            }
            std::get<std::promise<tensor::Vector>>(u.promise).set_value(std::move(block));
        }
        at += rows;
    }
}

void fail_units(std::vector<Unit>& units, std::size_t first, std::size_t last,
                const std::exception_ptr& error) {
    for (std::size_t i = first; i < last; ++i) {
        std::visit([&](auto& promise) { promise.set_exception(error); }, units[i].promise);
    }
}

/// Runs one backend call for units[first, last) (already one kind) and
/// delivers results to their promises. Throws what the backend throws.
void execute_group(ReplicaState& replica, std::vector<Unit>& units, std::size_t first,
                   std::size_t last, std::size_t rows, tensor::Matrix& storage) {
    const tensor::Matrix* input = gather_inputs(units, first, last, storage);
    // Stats first: a submitter whose future resolves inside the
    // deliver_* call below may read them immediately.
    replica.flushed_batches.fetch_add(1, std::memory_order_relaxed);
    replica.flushed_rows.fetch_add(rows, std::memory_order_relaxed);
    switch (units[first].kind) {
        case QueryKind::Label:
            deliver_labels(units, first, last, replica, replica.backend->query_labels(*input));
            break;
        case QueryKind::Raw:
            deliver_raw(units, first, last, replica, replica.backend->query_raw_batch(*input));
            break;
        case QueryKind::Power:
            deliver_power(units, first, last, replica, replica.backend->query_power_batch(*input));
            break;
    }
}

/// Executes one drained replica queue: consecutive same-kind units are
/// merged into backend batch calls of up to max_batch rows (a single
/// unit larger than that still goes through whole — explicit batches are
/// never split, preserving the backend stack's all-or-nothing charging
/// and its noise-stream layout).
///
/// A backend-stack exception (shared blocking detector, shared budget
/// cap) from a *merged* group must not take innocent tenants' queries
/// down with the one that tripped it, so the group falls back to
/// per-unit backend calls — each unit then succeeds or fails exactly as
/// it would have under serial issue. (Stack-level screening counters
/// may see the offending rows once more on the retry; isolation of the
/// tenants' answers is the contract that matters.)
void flush(ReplicaState& replica, std::size_t max_batch, std::vector<Unit>& units,
           tensor::Matrix& storage) {
    std::size_t first = 0;
    while (first < units.size()) {
        const QueryKind kind = units[first].kind;
        std::size_t last = first + 1;
        std::size_t rows = units[first].inputs.rows();
        while (last < units.size() && units[last].kind == kind &&
               rows + units[last].inputs.rows() <= max_batch) {
            rows += units[last].inputs.rows();
            ++last;
        }
        try {
            execute_group(replica, units, first, last, rows, storage);
        } catch (...) {
            if (last - first == 1) {
                fail_units(units, first, last, std::current_exception());
            } else {
                for (std::size_t i = first; i < last; ++i) {
                    try {
                        execute_group(replica, units, i, i + 1, units[i].inputs.rows(), storage);
                    } catch (...) {
                        fail_units(units, i, i + 1, std::current_exception());
                    }
                }
            }
        }
        replica.inflight_rows.fetch_sub(rows, std::memory_order_relaxed);
        first = last;
    }
}

void flusher_loop(const std::shared_ptr<ServiceState>& svc, ReplicaState& replica) {
    const ServiceConfig& config = svc->config;
    std::unique_lock lock(replica.mutex);
    bool saturated = false;    ///< new work arrived while the last flush ran
    std::vector<Unit> batch;   ///< recycled: swaps capacity with the queue
    tensor::Matrix storage;    ///< recycled gather scratch (per replica, never shared)
    for (;;) {
        replica.cv.wait(lock, [&] { return replica.stopping || !replica.queue.empty(); });
        if (replica.queue.empty()) return;  // stopping, fully drained
        if (!saturated && !replica.stopping && !replica.flush_now &&
            config.max_wait.count() > 0 && replica.pending_rows < config.max_batch) {
            // Coalescing window: give concurrent submitters max_wait to
            // pile more rows on before paying for a backend call.
            // max_wait == 0 means flush-immediately and skips the window
            // outright — a zero-length timed wait would have the flusher
            // spinning through wakeups instead of batching what's there.
            replica.cv.wait_for(lock, config.max_wait, [&] {
                return replica.stopping || replica.flush_now ||
                       replica.pending_rows >= config.max_batch;
            });
        }
        replica.flush_now = false;
        batch.swap(replica.queue);  // the queue inherits batch's old capacity
        replica.pending_rows = 0;
        lock.unlock();  // backend calls run without the queue lock
        flush(replica, config.max_batch, batch, storage);
        batch.clear();  // destroy units (promises already fulfilled)
        lock.lock();
        // Under streaming load the next batch formed while this one was
        // in the backend — flush it straight away instead of opening a
        // fresh latency window (the window exists to coalesce trickles,
        // not to throttle a saturated queue).
        saturated = !replica.queue.empty();
    }
}

}  // namespace
}  // namespace detail

// ---- SessionOracleView ------------------------------------------------------

namespace {

using detail::QueryKind;

/// Synchronous Oracle adapter over a session: every query submits with a
/// flush hint (the caller is about to block on the result) and waits.
/// This is what lets collect_queries, probe_columns, the attack
/// evaluators, and the figure sweeps run unchanged through a session.
class SessionOracleView : public Oracle {
public:
    explicit SessionOracleView(std::shared_ptr<detail::SessionState> state)
        : state_(std::move(state)) {}

    std::size_t inputs() const override { return state_->service->inputs; }
    std::size_t outputs() const override { return state_->service->outputs; }

    int query_label(const tensor::Vector& u) override {
        return detail::submit<std::promise<int>>(state_, QueryKind::Label, true, tensor::Matrix::from_row(u), true)
            .get();
    }
    tensor::Vector query_raw(const tensor::Vector& u) override {
        return detail::submit<std::promise<tensor::Vector>>(state_, QueryKind::Raw, true,
                                                            tensor::Matrix::from_row(u), true)
            .get();
    }
    double query_power(const tensor::Vector& u) override {
        return detail::submit<std::promise<double>>(state_, QueryKind::Power, true, tensor::Matrix::from_row(u),
                                                    true)
            .get();
    }
    std::vector<int> query_labels(const tensor::Matrix& U) override {
        return detail::submit<std::promise<std::vector<int>>>(state_, QueryKind::Label, false, U,
                                                              true)
            .get();
    }
    tensor::Matrix query_raw_batch(const tensor::Matrix& U) override {
        return detail::submit<std::promise<tensor::Matrix>>(state_, QueryKind::Raw, false, U, true)
            .get();
    }
    tensor::Vector query_power_batch(const tensor::Matrix& U) override {
        return detail::submit<std::promise<tensor::Vector>>(state_, QueryKind::Power, false, U,
                                                            true)
            .get();
    }

    QueryCounters counters() const override {
        QueryCounters c;
        c.inference = state_->inference_count.load(std::memory_order_relaxed);
        c.power = state_->power_count.load(std::memory_order_relaxed);
        return c;
    }
    void reset_counters() override {
        state_->inference_count.store(0, std::memory_order_relaxed);
        state_->power_count.store(0, std::memory_order_relaxed);
    }

    /// Re-point the view at a different session. Session::operator=(&&)
    /// keeps the view object alive across the move so Oracle& references
    /// handed out by oracle() stay valid and track the new state.
    void rebind(std::shared_ptr<detail::SessionState> state) { state_ = std::move(state); }

private:
    std::shared_ptr<detail::SessionState> state_;
};

}  // namespace

// ---- Session ----------------------------------------------------------------

Session::Session(std::shared_ptr<detail::SessionState> state) : state_(std::move(state)) {}

Session::~Session() { close(); }

Session& Session::operator=(Session&& other) noexcept {
    if (this != &other) {
        // The displaced session is closed (not leaked open on the
        // service), and an existing oracle_view_ is rebound rather than
        // replaced: Oracle& references previously returned by oracle()
        // must keep working against the newly adopted state.
        close();
        state_ = std::move(other.state_);
        if (oracle_view_ != nullptr) {
            if (state_ != nullptr) {
                static_cast<SessionOracleView*>(oracle_view_.get())->rebind(state_);
            } else {
                oracle_view_.reset();
            }
            other.oracle_view_.reset();
        } else {
            oracle_view_ = std::move(other.oracle_view_);
        }
    }
    return *this;
}

std::future<int> Session::submit_label(tensor::Vector u) {
    return detail::submit<std::promise<int>>(state_, QueryKind::Label, true, tensor::Matrix::from_row(std::move(u)), false);
}

std::future<tensor::Vector> Session::submit_raw(tensor::Vector u) {
    return detail::submit<std::promise<tensor::Vector>>(state_, QueryKind::Raw, true, tensor::Matrix::from_row(std::move(u)),
                                                        false);
}

std::future<double> Session::submit_power(tensor::Vector u) {
    return detail::submit<std::promise<double>>(state_, QueryKind::Power, true, tensor::Matrix::from_row(std::move(u)),
                                                false);
}

std::future<std::vector<int>> Session::submit_labels(tensor::Matrix U) {
    return detail::submit<std::promise<std::vector<int>>>(state_, QueryKind::Label, false,
                                                          std::move(U), false);
}

std::future<tensor::Matrix> Session::submit_raw_batch(tensor::Matrix U) {
    return detail::submit<std::promise<tensor::Matrix>>(state_, QueryKind::Raw, false,
                                                        std::move(U), false);
}

std::future<tensor::Vector> Session::submit_power_batch(tensor::Matrix U) {
    return detail::submit<std::promise<tensor::Vector>>(state_, QueryKind::Power, false,
                                                        std::move(U), false);
}

Oracle& Session::oracle() {
    if (state_ == nullptr) throw SessionClosed("oracle() on a moved-from session");
    if (oracle_view_ == nullptr) oracle_view_ = std::make_unique<SessionOracleView>(state_);
    return *oracle_view_;
}

QueryCounters Session::counters() const {
    QueryCounters c;
    if (state_ != nullptr) {
        c.inference = state_->inference_count.load(std::memory_order_relaxed);
        c.power = state_->power_count.load(std::memory_order_relaxed);
    }
    return c;
}

void Session::reset_counters() {
    if (state_ == nullptr) return;
    state_->inference_count.store(0, std::memory_order_relaxed);
    state_->power_count.store(0, std::memory_order_relaxed);
}

QueryCounters Session::budget_spent() const {
    return state_ != nullptr ? state_->ledger.spent() : QueryCounters{};
}

std::uint64_t Session::screened() const {
    return (state_ != nullptr && state_->screen != nullptr) ? state_->screen->screened() : 0;
}

std::uint64_t Session::flagged() const {
    return (state_ != nullptr && state_->screen != nullptr) ? state_->screen->flagged() : 0;
}

double Session::flagged_fraction() const {
    return (state_ != nullptr && state_->screen != nullptr) ? state_->screen->flagged_fraction()
                                                            : 0.0;
}

std::uint64_t Session::id() const { return state_ != nullptr ? state_->id : 0; }

std::size_t Session::home_replica() const {
    return state_ != nullptr ? state_->home_replica : 0;
}

bool Session::open() const {
    return state_ != nullptr && state_->open.load(std::memory_order_acquire);
}

void Session::close() {
    if (state_ == nullptr) return;
    // exchange(): exactly one closer runs the attribution close hook
    // (destructor after an explicit close() must not run it twice).
    const bool was_open = state_->open.exchange(false, std::memory_order_acq_rel);
    if (was_open && state_->service->attrib != nullptr) {
        // The sketch-similarity merge pass; per-source and campaign
        // windows survive — that is the point of the attribution layer.
        state_->service->attrib->engine.note_session_close(state_->id);
    }
    // In-flight submissions complete normally; nudge every flusher so
    // their futures resolve promptly.
    for (auto& replica : state_->service->replicas) {
        {
            std::lock_guard lock(replica->mutex);
            replica->flush_now = true;
        }
        replica->cv.notify_all();
    }
}

// ---- OracleService ----------------------------------------------------------

OracleService::OracleService(Oracle& backend, ServiceConfig config)
    : OracleService(std::vector<Oracle*>{&backend}, config) {}

OracleService::OracleService(const std::vector<Oracle*>& replicas, ServiceConfig config)
    : state_(std::make_shared<detail::ServiceState>()) {
    // Misconfiguration throws ConfigError at construction — a max_batch
    // of 0 would deadlock every flush (no group ever fits) and a
    // negative max_wait has no meaning as a coalescing window.
    if (config.max_batch == 0) {
        throw ConfigError("ServiceConfig::max_batch must be > 0 (0 rows can never flush)");
    }
    if (config.max_wait.count() < 0) {
        throw ConfigError("ServiceConfig::max_wait must be >= 0 (0 = flush immediately)");
    }
    if (replicas.empty()) throw ConfigError("OracleService needs at least one backend replica");
    for (Oracle* backend : replicas) {
        if (backend == nullptr) throw ConfigError("OracleService replica must not be null");
    }
    const std::size_t inputs = replicas.front()->inputs();
    const std::size_t outputs = replicas.front()->outputs();
    for (Oracle* backend : replicas) {
        if (backend->inputs() != inputs || backend->outputs() != outputs) {
            throw ConfigError("OracleService replicas must share one input/output shape");
        }
    }
    if (config.pool == nullptr && config.workers > 0) {
        owned_pool_ = std::make_unique<ThreadPool>(config.workers);
    }
    state_->pool = config.pool != nullptr ? config.pool : owned_pool_.get();
    state_->config = config;
    if (config.cache.enabled) {
        if (config.cache.capacity == 0) {
            throw ConfigError("CacheConfig::capacity must be > 0 when the cache is enabled");
        }
        state_->cache = std::make_unique<detail::ResultCache>(config.cache.capacity);
    }
    if (config.attribution.enabled) {
        const attrib::EngineConfig& ec = config.attribution.engine;
        if (ec.window_events == 0 || ec.sketch_k == 0 || ec.repeat_overlap == 0 ||
            ec.index_capacity == 0) {
            throw ConfigError(
                "AttributionConfig::engine window_events, sketch_k, repeat_overlap, and "
                "index_capacity must all be > 0 when attribution is enabled");
        }
        state_->attrib = std::make_unique<detail::AttribState>(config.attribution);
    }
    state_->inputs = inputs;
    state_->outputs = outputs;
    state_->replicas.reserve(replicas.size());
    for (std::size_t i = 0; i < replicas.size(); ++i) {
        auto replica = std::make_unique<detail::ReplicaState>();
        replica->backend = replicas[i];
        replica->index = i;
        state_->replicas.push_back(std::move(replica));
    }
    flushers_.reserve(replicas.size());
    for (auto& replica : state_->replicas) {
        flushers_.emplace_back(
            [state = state_, r = replica.get()] { detail::flusher_loop(state, *r); });
    }
}

OracleService::~OracleService() {
    for (auto& replica : state_->replicas) {
        {
            std::lock_guard lock(replica->mutex);
            replica->stopping = true;
        }
        replica->cv.notify_all();
    }
    for (std::thread& flusher : flushers_) {
        if (flusher.joinable()) flusher.join();
    }
}

Session OracleService::open_session(SessionConfig config) {
    const std::uint64_t id = state_->next_session_id.fetch_add(1, std::memory_order_relaxed);
    return Session(std::make_shared<detail::SessionState>(state_, config, id));
}

std::size_t OracleService::inputs() const { return state_->inputs; }
std::size_t OracleService::outputs() const { return state_->outputs; }
std::size_t OracleService::replica_count() const { return state_->replicas.size(); }

QueryCounters OracleService::counters() const {
    // Each per-replica bucket is independently monotone; a plain + across
    // near-max replicas could wrap and break total()'s monotonicity, so
    // the fleet aggregate saturates instead.
    QueryCounters c;
    for (const auto& replica : state_->replicas) {
        QueryCounters r;
        r.inference = replica->inference_count.load(std::memory_order_relaxed);
        r.power = replica->power_count.load(std::memory_order_relaxed);
        c.add_saturating(r);
    }
    return c;
}

namespace {

/// Telemetry accessors take caller-supplied replica indices (bench
/// loops, dashboards); an out-of-range index is a configuration error,
/// not a programming contract, so it throws ConfigError instead of
/// indexing past the fleet vector.
void check_replica_index(std::size_t replica, std::size_t fleet) {
    if (replica >= fleet) {
        throw ConfigError("replica index " + std::to_string(replica) +
                          " is out of range for a fleet of " + std::to_string(fleet) +
                          " replica(s)");
    }
}

}  // namespace

QueryCounters OracleService::replica_counters(std::size_t replica) const {
    check_replica_index(replica, state_->replicas.size());
    QueryCounters c;
    c.inference = state_->replicas[replica]->inference_count.load(std::memory_order_relaxed);
    c.power = state_->replicas[replica]->power_count.load(std::memory_order_relaxed);
    return c;
}

void OracleService::reset_counters() {
    for (auto& replica : state_->replicas) {
        replica->inference_count.store(0, std::memory_order_relaxed);
        replica->power_count.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t OracleService::flushed_batches() const {
    std::uint64_t total = 0;
    for (const auto& replica : state_->replicas) {
        total += replica->flushed_batches.load(std::memory_order_relaxed);
    }
    return total;
}

std::uint64_t OracleService::flushed_rows() const {
    std::uint64_t total = 0;
    for (const auto& replica : state_->replicas) {
        total += replica->flushed_rows.load(std::memory_order_relaxed);
    }
    return total;
}

std::uint64_t OracleService::flushed_batches(std::size_t replica) const {
    check_replica_index(replica, state_->replicas.size());
    return state_->replicas[replica]->flushed_batches.load(std::memory_order_relaxed);
}

std::uint64_t OracleService::flushed_rows(std::size_t replica) const {
    check_replica_index(replica, state_->replicas.size());
    return state_->replicas[replica]->flushed_rows.load(std::memory_order_relaxed);
}

std::size_t OracleService::queue_depth(std::size_t replica) const {
    check_replica_index(replica, state_->replicas.size());
    return state_->replicas[replica]->inflight_rows.load(std::memory_order_relaxed);
}

std::size_t OracleService::sessions_opened() const {
    return state_->next_session_id.load(std::memory_order_relaxed) - 1;
}

std::uint64_t OracleService::cache_hits() const {
    return state_->cache != nullptr ? state_->cache->hits() : 0;
}

std::uint64_t OracleService::cache_misses() const {
    return state_->cache != nullptr ? state_->cache->misses() : 0;
}

std::uint64_t OracleService::cache_evictions() const {
    return state_->cache != nullptr ? state_->cache->evictions() : 0;
}

std::size_t OracleService::cache_entries() const {
    return state_->cache != nullptr ? state_->cache->entries() : 0;
}

double OracleService::cache_hit_rate() const {
    if (state_->cache == nullptr) return 0.0;
    const std::uint64_t hits = state_->cache->hits();
    const std::uint64_t probes = QueryCounters::saturating_add(hits, state_->cache->misses());
    return probes > 0 ? static_cast<double>(hits) / static_cast<double>(probes) : 0.0;
}

bool OracleService::attribution_enabled() const { return state_->attrib != nullptr; }

bool OracleService::attribution_alert() const {
    return state_->attrib != nullptr && state_->attrib->engine.alert();
}

std::size_t OracleService::attribution_source_count() const {
    return state_->attrib != nullptr ? state_->attrib->engine.source_count() : 0;
}

std::vector<attrib::SourceId> OracleService::attribution_sources() const {
    if (state_->attrib == nullptr) return {};
    return state_->attrib->engine.sources();
}

attrib::SourceCounters OracleService::attribution_source_counters(attrib::SourceId source) const {
    // Keyed telemetry follows the per-replica convention: asking a
    // service without the subsystem (or for an unknown key) is a
    // configuration error, not a zero.
    if (state_->attrib == nullptr) {
        throw ConfigError("attribution is not enabled on this service");
    }
    return state_->attrib->engine.source_counters(source);
}

std::size_t OracleService::attribution_campaign_count() const {
    return state_->attrib != nullptr ? state_->attrib->engine.campaign_count() : 0;
}

std::vector<attrib::CampaignCounters> OracleService::attribution_campaigns() const {
    if (state_->attrib == nullptr) return {};
    return state_->attrib->engine.campaigns();
}

attrib::CampaignCounters OracleService::attribution_campaign_of(std::uint64_t session) const {
    if (state_->attrib == nullptr) {
        throw ConfigError("attribution is not enabled on this service");
    }
    return state_->attrib->engine.campaign_of(session);
}

std::string OracleService::attribution_snapshot() const {
    return state_->attrib != nullptr ? state_->attrib->engine.json_snapshot() : "{}";
}

ThreadPool* OracleService::pool() { return state_->pool; }

const ServiceConfig& OracleService::config() const { return state_->config; }

}  // namespace xbarsec::core
