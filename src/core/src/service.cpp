#include "xbarsec/core/service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "xbarsec/common/rng.hpp"

namespace xbarsec::core {

std::string to_string(RoutingPolicy policy) {
    switch (policy) {
        case RoutingPolicy::SessionAffine: return "session-affine";
        case RoutingPolicy::RoundRobin: return "round-robin";
        case RoutingPolicy::LeastLoaded: return "least-loaded";
    }
    return "?";
}

RoutingPolicy parse_routing_policy(const std::string& name) {
    if (name == "session-affine") return RoutingPolicy::SessionAffine;
    if (name == "round-robin") return RoutingPolicy::RoundRobin;
    if (name == "least-loaded") return RoutingPolicy::LeastLoaded;
    throw ConfigError("unknown routing policy '" + name +
                      "'; expected session-affine, round-robin, or least-loaded");
}

namespace detail {

enum class QueryKind { Label, Raw, Power };

/// One submission: 1..N input rows of one kind from one session, with
/// the promise its results are delivered through. Units are never split
/// across backend calls or replicas (an explicitly-submitted batch keeps
/// the backend stack's all-or-nothing semantics); a replica's coalescer
/// only *merges* consecutive same-kind units up to max_batch rows.
struct Unit {
    std::shared_ptr<SessionState> session;
    QueryKind kind = QueryKind::Label;
    bool scalar = false;
    tensor::Matrix inputs;
    std::uint64_t power_ordinal = 0;  ///< session noise-stream base (Power only)
    std::variant<std::promise<int>, std::promise<std::vector<int>>, std::promise<double>,
                 std::promise<tensor::Vector>, std::promise<tensor::Matrix>>
        promise;
};

/// One backend replica's serving state: its private coalescing queue,
/// flush signalling, and telemetry. Replicas never share a queue lock —
/// the only cross-replica contention is the (optional) shared ThreadPool
/// underneath the backend GEMMs.
struct ReplicaState {
    Oracle* backend = nullptr;
    std::size_t index = 0;

    std::mutex mutex;
    std::condition_variable cv;
    /// Producers append; the flusher swaps the whole vector against a
    /// recycled empty one, so steady-state submission never allocates.
    std::vector<Unit> queue;
    std::size_t pending_rows = 0;
    bool flush_now = false;
    bool stopping = false;

    /// Rows enqueued but not yet answered — the lock-free load signal
    /// LeastLoaded routing scans.
    std::atomic<std::size_t> inflight_rows{0};

    /// Per-replica accepted-query counters (fleet aggregate = sum).
    std::atomic<std::uint64_t> inference_count{0};
    std::atomic<std::uint64_t> power_count{0};

    std::atomic<std::uint64_t> flushed_batches{0};
    std::atomic<std::uint64_t> flushed_rows{0};
};

struct ServiceState {
    ThreadPool* pool = nullptr;  ///< the pool behind the backends' batched paths (may be null)
    ServiceConfig config;
    std::size_t inputs = 0;
    std::size_t outputs = 0;

    std::vector<std::unique_ptr<ReplicaState>> replicas;
    std::atomic<std::uint64_t> rr_cursor{0};  ///< RoundRobin unit cursor

    std::atomic<std::uint64_t> next_session_id{1};
};

struct SessionState {
    std::shared_ptr<ServiceState> service;
    SessionConfig config;
    std::uint64_t id = 0;
    std::size_t home_replica = 0;  ///< SessionAffine target

    BudgetLedger ledger;
    std::unique_ptr<DetectorScreen> screen;  ///< null when the session has no detector

    std::atomic<std::uint64_t> inference_count{0};
    std::atomic<std::uint64_t> power_count{0};
    std::atomic<std::uint64_t> power_ordinal{0};  ///< noise-stream position, never reset
    std::atomic<bool> open{true};

    SessionState(std::shared_ptr<ServiceState> svc, SessionConfig cfg, std::uint64_t sid)
        : service(std::move(svc)), config(cfg), id(sid), ledger(cfg.budget) {
        home_replica = static_cast<std::size_t>((id - 1) % service->replicas.size());
        if (config.detector != nullptr) {
            screen = std::make_unique<DetectorScreen>(*config.detector, config.block_flagged);
        }
    }
};

namespace {

/// Per-session sensing noise for the session's k-th power reading: a
/// pure function of (seed, k), so coalescing/batching cannot change it.
double session_noise(const SessionState& s, std::uint64_t ordinal) {
    return s.config.power_noise_sigma * Rng::normal_at(s.config.noise_seed, ordinal, 0);
}

/// Picks the replica for one admitted unit. SessionAffine pins the
/// session's home replica; RoundRobin rotates one atomic cursor;
/// LeastLoaded scans the racy inflight-row snapshots (ties take the
/// lowest index, so an idle fleet behaves like a fixed assignment).
ReplicaState& route(ServiceState& svc, const SessionState& s) {
    const std::size_t n = svc.replicas.size();
    if (n == 1) return *svc.replicas.front();
    switch (svc.config.routing) {
        case RoutingPolicy::SessionAffine: return *svc.replicas[s.home_replica];
        case RoutingPolicy::RoundRobin:
            return *svc.replicas[svc.rr_cursor.fetch_add(1, std::memory_order_relaxed) % n];
        case RoutingPolicy::LeastLoaded: {
            std::size_t best = 0;
            std::size_t best_load = std::numeric_limits<std::size_t>::max();
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t load =
                    svc.replicas[i]->inflight_rows.load(std::memory_order_relaxed);
                if (load < best_load) {
                    best = i;
                    best_load = load;
                }
            }
            return *svc.replicas[best];
        }
    }
    return *svc.replicas.front();
}

/// Admission control, on the submitting thread: exposure, detector
/// screening (inference kinds only), budget, then session counters. A
/// submission refused at any step charges and counts nothing downstream
/// of the refusal point (screening refusals are never charged). Runs
/// *before* routing — policy is per-session, not per-replica.
void admit(SessionState& s, QueryKind kind, const tensor::Matrix& U) {
    XS_EXPECTS(U.rows() > 0);
    XS_EXPECTS(U.cols() == s.service->inputs);
    switch (kind) {
        case QueryKind::Label: break;
        case QueryKind::Raw:
            if (!s.config.expose_raw_outputs) {
                throw AccessDenied("raw outputs are not exposed to this session");
            }
            break;
        case QueryKind::Power:
            if (!s.config.expose_power) {
                throw AccessDenied("power measurement is not exposed to this session");
            }
            break;
    }
    const std::uint64_t rows = U.rows();
    // An unlimited budget never refuses, so skip its mutex on the
    // per-query fast path.
    const bool budgeted = !s.config.budget.unlimited();
    if (kind == QueryKind::Power) {
        if (budgeted) s.ledger.charge_power(rows);
        s.power_count.fetch_add(rows, std::memory_order_relaxed);
    } else {
        if (s.screen != nullptr) s.screen->screen_batch(U);
        if (budgeted) s.ledger.charge_inference(rows);
        s.inference_count.fetch_add(rows, std::memory_order_relaxed);
    }
}

/// Enqueues an admitted unit on `replica` and wakes its flusher.
/// `flush_hint` asks for an immediate flush (a synchronous caller is
/// already waiting). Per-replica counters are bumped only after the push
/// succeeded, so a SessionClosed thrown here leaves them untouched.
template <typename Promise>
auto enqueue(const std::shared_ptr<SessionState>& session, ReplicaState& replica, QueryKind kind,
             bool scalar, tensor::Matrix inputs, bool flush_hint) {
    const ServiceConfig& config = session->service->config;
    Unit unit;
    unit.session = session;
    unit.kind = kind;
    unit.scalar = scalar;
    if (kind == QueryKind::Power) {
        unit.power_ordinal =
            session->power_ordinal.fetch_add(inputs.rows(), std::memory_order_relaxed);
    }
    const std::size_t rows = inputs.rows();
    unit.inputs = std::move(inputs);
    Promise promise;
    auto future = promise.get_future();
    unit.promise = std::move(promise);
    bool wake = false;
    {
        std::lock_guard lock(replica.mutex);
        if (replica.stopping) throw SessionClosed("the service is shut down");
        // Wake the flusher only on state transitions it is actually
        // waiting for — the first pending unit (it may be in its
        // indefinite wait) or a newly-met flush condition. Waking on
        // every submission would context-switch once per query under
        // pipelined load.
        wake = replica.queue.empty();
        replica.queue.push_back(std::move(unit));
        replica.pending_rows += rows;
        if ((flush_hint || replica.pending_rows >= config.max_batch) && !replica.flush_now) {
            replica.flush_now = true;
            wake = true;
        }
    }
    replica.inflight_rows.fetch_add(rows, std::memory_order_relaxed);
    if (kind == QueryKind::Power) {
        replica.power_count.fetch_add(rows, std::memory_order_relaxed);
    } else {
        replica.inference_count.fetch_add(rows, std::memory_order_relaxed);
    }
    if (wake) replica.cv.notify_all();
    return future;
}

/// Rolls an admitted-but-not-enqueued submission back out of the
/// session's ledger and counters, so a SessionClosed thrown by the
/// queue push leaves nothing charged or counted.
void unadmit(SessionState& s, QueryKind kind, std::uint64_t rows) {
    const bool budgeted = !s.config.budget.unlimited();
    if (kind == QueryKind::Power) {
        if (budgeted) s.ledger.refund_power(rows);
        s.power_count.fetch_sub(rows, std::memory_order_relaxed);
    } else {
        if (budgeted) s.ledger.refund_inference(rows);
        s.inference_count.fetch_sub(rows, std::memory_order_relaxed);
    }
}

/// Checks the session handle, admits the submission, routes it to a
/// replica, and enqueues it there.
template <typename Promise>
auto submit(const std::shared_ptr<SessionState>& session, QueryKind kind, bool scalar,
            tensor::Matrix inputs, bool flush_hint) {
    if (session == nullptr || !session->open.load(std::memory_order_acquire)) {
        throw SessionClosed("submit on a closed session");
    }
    admit(*session, kind, inputs);
    const std::uint64_t rows = inputs.rows();
    try {
        ReplicaState& replica = route(*session->service, *session);
        return enqueue<Promise>(session, replica, kind, scalar, std::move(inputs), flush_hint);
    } catch (...) {
        unadmit(*session, kind, rows);
        throw;
    }
}

/// Concatenates the inputs of `units[first, last)` (one kind) into one
/// backend batch. Returns a pointer into the single unit when no
/// stitching is needed, so the common scenario path (one batch unit per
/// flush) is copy-free.
const tensor::Matrix* gather_inputs(std::vector<Unit>& units, std::size_t first, std::size_t last,
                                    tensor::Matrix& storage) {
    if (last - first == 1) return &units[first].inputs;
    std::size_t rows = 0;
    for (std::size_t i = first; i < last; ++i) rows += units[i].inputs.rows();
    // resize() reuses the scratch matrix's heap capacity (values are
    // unspecified afterwards — every row is overwritten below).
    storage.resize(rows, units[first].inputs.cols());
    std::size_t at = 0;
    for (std::size_t i = first; i < last; ++i) {
        const tensor::Matrix& in = units[i].inputs;
        for (std::size_t r = 0; r < in.rows(); ++r, ++at) {
            const auto src = in.row_span(r);
            auto dst = storage.row_span(at);
            std::copy(src.begin(), src.end(), dst.begin());
        }
    }
    return &storage;
}

void deliver_labels(std::vector<Unit>& units, std::size_t first, std::size_t last,
                    const std::vector<int>& labels) {
    std::size_t at = 0;
    for (std::size_t i = first; i < last; ++i) {
        Unit& u = units[i];
        const std::size_t rows = u.inputs.rows();
        if (u.scalar) {
            std::get<std::promise<int>>(u.promise).set_value(labels[at]);
        } else {
            std::get<std::promise<std::vector<int>>>(u.promise)
                .set_value(std::vector<int>(labels.begin() + static_cast<std::ptrdiff_t>(at),
                                            labels.begin() + static_cast<std::ptrdiff_t>(at + rows)));
        }
        at += rows;
    }
}

void deliver_raw(std::vector<Unit>& units, std::size_t first, std::size_t last,
                 const tensor::Matrix& Y) {
    std::size_t at = 0;
    for (std::size_t i = first; i < last; ++i) {
        Unit& u = units[i];
        const std::size_t rows = u.inputs.rows();
        if (u.scalar) {
            std::get<std::promise<tensor::Vector>>(u.promise).set_value(Y.row(at));
        } else {
            tensor::Matrix block(rows, Y.cols());
            for (std::size_t r = 0; r < rows; ++r) {
                const auto src = Y.row_span(at + r);
                auto dst = block.row_span(r);
                std::copy(src.begin(), src.end(), dst.begin());
            }
            std::get<std::promise<tensor::Matrix>>(u.promise).set_value(std::move(block));
        }
        at += rows;
    }
}

void deliver_power(std::vector<Unit>& units, std::size_t first, std::size_t last,
                   const tensor::Vector& p) {
    std::size_t at = 0;
    for (std::size_t i = first; i < last; ++i) {
        Unit& u = units[i];
        const SessionState& s = *u.session;
        const std::size_t rows = u.inputs.rows();
        const bool noisy = s.config.power_noise_sigma > 0.0;
        if (u.scalar) {
            const double value = p[at] + (noisy ? session_noise(s, u.power_ordinal) : 0.0);
            std::get<std::promise<double>>(u.promise).set_value(value);
        } else {
            tensor::Vector block(rows, 0.0);
            for (std::size_t r = 0; r < rows; ++r) {
                block[r] = p[at + r] + (noisy ? session_noise(s, u.power_ordinal + r) : 0.0);
            }
            std::get<std::promise<tensor::Vector>>(u.promise).set_value(std::move(block));
        }
        at += rows;
    }
}

void fail_units(std::vector<Unit>& units, std::size_t first, std::size_t last,
                const std::exception_ptr& error) {
    for (std::size_t i = first; i < last; ++i) {
        std::visit([&](auto& promise) { promise.set_exception(error); }, units[i].promise);
    }
}

/// Runs one backend call for units[first, last) (already one kind) and
/// delivers results to their promises. Throws what the backend throws.
void execute_group(ReplicaState& replica, std::vector<Unit>& units, std::size_t first,
                   std::size_t last, std::size_t rows, tensor::Matrix& storage) {
    const tensor::Matrix* input = gather_inputs(units, first, last, storage);
    // Stats first: a submitter whose future resolves inside the
    // deliver_* call below may read them immediately.
    replica.flushed_batches.fetch_add(1, std::memory_order_relaxed);
    replica.flushed_rows.fetch_add(rows, std::memory_order_relaxed);
    switch (units[first].kind) {
        case QueryKind::Label:
            deliver_labels(units, first, last, replica.backend->query_labels(*input));
            break;
        case QueryKind::Raw:
            deliver_raw(units, first, last, replica.backend->query_raw_batch(*input));
            break;
        case QueryKind::Power:
            deliver_power(units, first, last, replica.backend->query_power_batch(*input));
            break;
    }
}

/// Executes one drained replica queue: consecutive same-kind units are
/// merged into backend batch calls of up to max_batch rows (a single
/// unit larger than that still goes through whole — explicit batches are
/// never split, preserving the backend stack's all-or-nothing charging
/// and its noise-stream layout).
///
/// A backend-stack exception (shared blocking detector, shared budget
/// cap) from a *merged* group must not take innocent tenants' queries
/// down with the one that tripped it, so the group falls back to
/// per-unit backend calls — each unit then succeeds or fails exactly as
/// it would have under serial issue. (Stack-level screening counters
/// may see the offending rows once more on the retry; isolation of the
/// tenants' answers is the contract that matters.)
void flush(ReplicaState& replica, std::size_t max_batch, std::vector<Unit>& units,
           tensor::Matrix& storage) {
    std::size_t first = 0;
    while (first < units.size()) {
        const QueryKind kind = units[first].kind;
        std::size_t last = first + 1;
        std::size_t rows = units[first].inputs.rows();
        while (last < units.size() && units[last].kind == kind &&
               rows + units[last].inputs.rows() <= max_batch) {
            rows += units[last].inputs.rows();
            ++last;
        }
        try {
            execute_group(replica, units, first, last, rows, storage);
        } catch (...) {
            if (last - first == 1) {
                fail_units(units, first, last, std::current_exception());
            } else {
                for (std::size_t i = first; i < last; ++i) {
                    try {
                        execute_group(replica, units, i, i + 1, units[i].inputs.rows(), storage);
                    } catch (...) {
                        fail_units(units, i, i + 1, std::current_exception());
                    }
                }
            }
        }
        replica.inflight_rows.fetch_sub(rows, std::memory_order_relaxed);
        first = last;
    }
}

void flusher_loop(const std::shared_ptr<ServiceState>& svc, ReplicaState& replica) {
    const ServiceConfig& config = svc->config;
    std::unique_lock lock(replica.mutex);
    bool saturated = false;    ///< new work arrived while the last flush ran
    std::vector<Unit> batch;   ///< recycled: swaps capacity with the queue
    tensor::Matrix storage;    ///< recycled gather scratch (per replica, never shared)
    for (;;) {
        replica.cv.wait(lock, [&] { return replica.stopping || !replica.queue.empty(); });
        if (replica.queue.empty()) return;  // stopping, fully drained
        if (!saturated && !replica.stopping && !replica.flush_now &&
            replica.pending_rows < config.max_batch) {
            // Coalescing window: give concurrent submitters max_wait to
            // pile more rows on before paying for a backend call.
            replica.cv.wait_for(lock, config.max_wait, [&] {
                return replica.stopping || replica.flush_now ||
                       replica.pending_rows >= config.max_batch;
            });
        }
        replica.flush_now = false;
        batch.swap(replica.queue);  // the queue inherits batch's old capacity
        replica.pending_rows = 0;
        lock.unlock();  // backend calls run without the queue lock
        flush(replica, config.max_batch, batch, storage);
        batch.clear();  // destroy units (promises already fulfilled)
        lock.lock();
        // Under streaming load the next batch formed while this one was
        // in the backend — flush it straight away instead of opening a
        // fresh latency window (the window exists to coalesce trickles,
        // not to throttle a saturated queue).
        saturated = !replica.queue.empty();
    }
}

}  // namespace
}  // namespace detail

// ---- SessionOracleView ------------------------------------------------------

namespace {

using detail::QueryKind;

/// Synchronous Oracle adapter over a session: every query submits with a
/// flush hint (the caller is about to block on the result) and waits.
/// This is what lets collect_queries, probe_columns, the attack
/// evaluators, and the figure sweeps run unchanged through a session.
class SessionOracleView : public Oracle {
public:
    explicit SessionOracleView(std::shared_ptr<detail::SessionState> state)
        : state_(std::move(state)) {}

    std::size_t inputs() const override { return state_->service->inputs; }
    std::size_t outputs() const override { return state_->service->outputs; }

    int query_label(const tensor::Vector& u) override {
        return detail::submit<std::promise<int>>(state_, QueryKind::Label, true, tensor::Matrix::from_row(u), true)
            .get();
    }
    tensor::Vector query_raw(const tensor::Vector& u) override {
        return detail::submit<std::promise<tensor::Vector>>(state_, QueryKind::Raw, true,
                                                            tensor::Matrix::from_row(u), true)
            .get();
    }
    double query_power(const tensor::Vector& u) override {
        return detail::submit<std::promise<double>>(state_, QueryKind::Power, true, tensor::Matrix::from_row(u),
                                                    true)
            .get();
    }
    std::vector<int> query_labels(const tensor::Matrix& U) override {
        return detail::submit<std::promise<std::vector<int>>>(state_, QueryKind::Label, false, U,
                                                              true)
            .get();
    }
    tensor::Matrix query_raw_batch(const tensor::Matrix& U) override {
        return detail::submit<std::promise<tensor::Matrix>>(state_, QueryKind::Raw, false, U, true)
            .get();
    }
    tensor::Vector query_power_batch(const tensor::Matrix& U) override {
        return detail::submit<std::promise<tensor::Vector>>(state_, QueryKind::Power, false, U,
                                                            true)
            .get();
    }

    QueryCounters counters() const override {
        QueryCounters c;
        c.inference = state_->inference_count.load(std::memory_order_relaxed);
        c.power = state_->power_count.load(std::memory_order_relaxed);
        return c;
    }
    void reset_counters() override {
        state_->inference_count.store(0, std::memory_order_relaxed);
        state_->power_count.store(0, std::memory_order_relaxed);
    }

private:
    std::shared_ptr<detail::SessionState> state_;
};

}  // namespace

// ---- Session ----------------------------------------------------------------

Session::Session(std::shared_ptr<detail::SessionState> state) : state_(std::move(state)) {}

Session::~Session() { close(); }

Session& Session::operator=(Session&& other) noexcept {
    if (this != &other) {
        close();
        state_ = std::move(other.state_);
        oracle_view_ = std::move(other.oracle_view_);
    }
    return *this;
}

std::future<int> Session::submit_label(tensor::Vector u) {
    return detail::submit<std::promise<int>>(state_, QueryKind::Label, true, tensor::Matrix::from_row(std::move(u)), false);
}

std::future<tensor::Vector> Session::submit_raw(tensor::Vector u) {
    return detail::submit<std::promise<tensor::Vector>>(state_, QueryKind::Raw, true, tensor::Matrix::from_row(std::move(u)),
                                                        false);
}

std::future<double> Session::submit_power(tensor::Vector u) {
    return detail::submit<std::promise<double>>(state_, QueryKind::Power, true, tensor::Matrix::from_row(std::move(u)),
                                                false);
}

std::future<std::vector<int>> Session::submit_labels(tensor::Matrix U) {
    return detail::submit<std::promise<std::vector<int>>>(state_, QueryKind::Label, false,
                                                          std::move(U), false);
}

std::future<tensor::Matrix> Session::submit_raw_batch(tensor::Matrix U) {
    return detail::submit<std::promise<tensor::Matrix>>(state_, QueryKind::Raw, false,
                                                        std::move(U), false);
}

std::future<tensor::Vector> Session::submit_power_batch(tensor::Matrix U) {
    return detail::submit<std::promise<tensor::Vector>>(state_, QueryKind::Power, false,
                                                        std::move(U), false);
}

Oracle& Session::oracle() {
    if (state_ == nullptr) throw SessionClosed("oracle() on a moved-from session");
    if (oracle_view_ == nullptr) oracle_view_ = std::make_unique<SessionOracleView>(state_);
    return *oracle_view_;
}

QueryCounters Session::counters() const {
    QueryCounters c;
    if (state_ != nullptr) {
        c.inference = state_->inference_count.load(std::memory_order_relaxed);
        c.power = state_->power_count.load(std::memory_order_relaxed);
    }
    return c;
}

void Session::reset_counters() {
    if (state_ == nullptr) return;
    state_->inference_count.store(0, std::memory_order_relaxed);
    state_->power_count.store(0, std::memory_order_relaxed);
}

QueryCounters Session::budget_spent() const {
    return state_ != nullptr ? state_->ledger.spent() : QueryCounters{};
}

std::uint64_t Session::screened() const {
    return (state_ != nullptr && state_->screen != nullptr) ? state_->screen->screened() : 0;
}

std::uint64_t Session::flagged() const {
    return (state_ != nullptr && state_->screen != nullptr) ? state_->screen->flagged() : 0;
}

double Session::flagged_fraction() const {
    return (state_ != nullptr && state_->screen != nullptr) ? state_->screen->flagged_fraction()
                                                            : 0.0;
}

std::uint64_t Session::id() const { return state_ != nullptr ? state_->id : 0; }

std::size_t Session::home_replica() const {
    return state_ != nullptr ? state_->home_replica : 0;
}

bool Session::open() const {
    return state_ != nullptr && state_->open.load(std::memory_order_acquire);
}

void Session::close() {
    if (state_ == nullptr) return;
    state_->open.store(false, std::memory_order_release);
    // In-flight submissions complete normally; nudge every flusher so
    // their futures resolve promptly.
    for (auto& replica : state_->service->replicas) {
        {
            std::lock_guard lock(replica->mutex);
            replica->flush_now = true;
        }
        replica->cv.notify_all();
    }
}

// ---- OracleService ----------------------------------------------------------

OracleService::OracleService(Oracle& backend, ServiceConfig config)
    : OracleService(std::vector<Oracle*>{&backend}, config) {}

OracleService::OracleService(const std::vector<Oracle*>& replicas, ServiceConfig config)
    : state_(std::make_shared<detail::ServiceState>()) {
    XS_EXPECTS(config.max_batch > 0);
    if (replicas.empty()) throw ConfigError("OracleService needs at least one backend replica");
    for (Oracle* backend : replicas) {
        if (backend == nullptr) throw ConfigError("OracleService replica must not be null");
    }
    const std::size_t inputs = replicas.front()->inputs();
    const std::size_t outputs = replicas.front()->outputs();
    for (Oracle* backend : replicas) {
        if (backend->inputs() != inputs || backend->outputs() != outputs) {
            throw ConfigError("OracleService replicas must share one input/output shape");
        }
    }
    if (config.pool == nullptr && config.workers > 0) {
        owned_pool_ = std::make_unique<ThreadPool>(config.workers);
    }
    state_->pool = config.pool != nullptr ? config.pool : owned_pool_.get();
    state_->config = config;
    state_->inputs = inputs;
    state_->outputs = outputs;
    state_->replicas.reserve(replicas.size());
    for (std::size_t i = 0; i < replicas.size(); ++i) {
        auto replica = std::make_unique<detail::ReplicaState>();
        replica->backend = replicas[i];
        replica->index = i;
        state_->replicas.push_back(std::move(replica));
    }
    flushers_.reserve(replicas.size());
    for (auto& replica : state_->replicas) {
        flushers_.emplace_back(
            [state = state_, r = replica.get()] { detail::flusher_loop(state, *r); });
    }
}

OracleService::~OracleService() {
    for (auto& replica : state_->replicas) {
        {
            std::lock_guard lock(replica->mutex);
            replica->stopping = true;
        }
        replica->cv.notify_all();
    }
    for (std::thread& flusher : flushers_) {
        if (flusher.joinable()) flusher.join();
    }
}

Session OracleService::open_session(SessionConfig config) {
    const std::uint64_t id = state_->next_session_id.fetch_add(1, std::memory_order_relaxed);
    return Session(std::make_shared<detail::SessionState>(state_, config, id));
}

std::size_t OracleService::inputs() const { return state_->inputs; }
std::size_t OracleService::outputs() const { return state_->outputs; }
std::size_t OracleService::replica_count() const { return state_->replicas.size(); }

QueryCounters OracleService::counters() const {
    QueryCounters c;
    for (const auto& replica : state_->replicas) {
        c.inference += replica->inference_count.load(std::memory_order_relaxed);
        c.power += replica->power_count.load(std::memory_order_relaxed);
    }
    return c;
}

QueryCounters OracleService::replica_counters(std::size_t replica) const {
    XS_EXPECTS(replica < state_->replicas.size());
    QueryCounters c;
    c.inference = state_->replicas[replica]->inference_count.load(std::memory_order_relaxed);
    c.power = state_->replicas[replica]->power_count.load(std::memory_order_relaxed);
    return c;
}

void OracleService::reset_counters() {
    for (auto& replica : state_->replicas) {
        replica->inference_count.store(0, std::memory_order_relaxed);
        replica->power_count.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t OracleService::flushed_batches() const {
    std::uint64_t total = 0;
    for (const auto& replica : state_->replicas) {
        total += replica->flushed_batches.load(std::memory_order_relaxed);
    }
    return total;
}

std::uint64_t OracleService::flushed_rows() const {
    std::uint64_t total = 0;
    for (const auto& replica : state_->replicas) {
        total += replica->flushed_rows.load(std::memory_order_relaxed);
    }
    return total;
}

std::uint64_t OracleService::flushed_batches(std::size_t replica) const {
    XS_EXPECTS(replica < state_->replicas.size());
    return state_->replicas[replica]->flushed_batches.load(std::memory_order_relaxed);
}

std::uint64_t OracleService::flushed_rows(std::size_t replica) const {
    XS_EXPECTS(replica < state_->replicas.size());
    return state_->replicas[replica]->flushed_rows.load(std::memory_order_relaxed);
}

std::size_t OracleService::queue_depth(std::size_t replica) const {
    XS_EXPECTS(replica < state_->replicas.size());
    return state_->replicas[replica]->inflight_rows.load(std::memory_order_relaxed);
}

std::size_t OracleService::sessions_opened() const {
    return state_->next_session_id.load(std::memory_order_relaxed) - 1;
}

ThreadPool* OracleService::pool() { return state_->pool; }

const ServiceConfig& OracleService::config() const { return state_->config; }

}  // namespace xbarsec::core
