#include "xbarsec/core/oracle.hpp"

namespace xbarsec::core {

CrossbarOracle::CrossbarOracle(xbar::CrossbarNetwork hardware, OracleOptions options)
    : hardware_(std::move(hardware)), options_(options) {}

int CrossbarOracle::query_label(const tensor::Vector& u) {
    XS_EXPECTS(u.size() == inputs());
    ++counters_.inference;
    return hardware_.classify(u);
}

tensor::Vector CrossbarOracle::query_raw(const tensor::Vector& u) {
    if (!options_.expose_raw_outputs) {
        throw AccessDenied("raw outputs are not exposed by this deployment");
    }
    XS_EXPECTS(u.size() == inputs());
    ++counters_.inference;
    return hardware_.predict(u);
}

double CrossbarOracle::query_power(const tensor::Vector& u) {
    if (!options_.expose_power) {
        throw AccessDenied("power measurement is not possible on this deployment");
    }
    XS_EXPECTS(u.size() == inputs());
    ++counters_.power;
    return hardware_.total_current(u) / hardware_.crossbar().program().weight_scale;
}

sidechannel::TotalCurrentFn CrossbarOracle::power_measure_fn() {
    return [this](const tensor::Vector& v) { return query_power(v); };
}

}  // namespace xbarsec::core
