#include "xbarsec/core/oracle.hpp"

#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::core {

// ---- Oracle -----------------------------------------------------------------

std::vector<int> Oracle::query_labels(const tensor::Matrix& U) {
    std::vector<int> labels(U.rows());
    for (std::size_t r = 0; r < U.rows(); ++r) labels[r] = query_label(U.row(r));
    return labels;
}

tensor::Matrix Oracle::query_raw_batch(const tensor::Matrix& U) {
    tensor::Matrix Y(U.rows(), outputs(), 0.0);
    for (std::size_t r = 0; r < U.rows(); ++r) Y.set_row(r, query_raw(U.row(r)));
    return Y;
}

tensor::Vector Oracle::query_power_batch(const tensor::Matrix& U) {
    tensor::Vector p(U.rows(), 0.0);
    for (std::size_t r = 0; r < U.rows(); ++r) p[r] = query_power(U.row(r));
    return p;
}

sidechannel::TotalCurrentFn Oracle::power_measure_fn() {
    return [this](const tensor::Vector& v) { return query_power(v); };
}

// ---- BackendOracle ----------------------------------------------------------

BackendOracle::BackendOracle(BackendOracle&& other) noexcept
    : options_(other.options_),
      pool_(other.pool_),
      inference_count_(other.inference_count_.load(std::memory_order_relaxed)),
      power_count_(other.power_count_.load(std::memory_order_relaxed)) {}

BackendOracle& BackendOracle::operator=(BackendOracle&& other) noexcept {
    options_ = other.options_;
    pool_ = other.pool_;
    inference_count_.store(other.inference_count_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    power_count_.store(other.power_count_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
}

QueryCounters BackendOracle::counters() const {
    QueryCounters snapshot;
    snapshot.inference = inference_count_.load(std::memory_order_relaxed);
    snapshot.power = power_count_.load(std::memory_order_relaxed);
    return snapshot;
}

void BackendOracle::reset_counters() {
    inference_count_.store(0, std::memory_order_relaxed);
    power_count_.store(0, std::memory_order_relaxed);
}

void BackendOracle::require_raw_access() const {
    if (!options_.expose_raw_outputs) {
        throw AccessDenied("raw outputs are not exposed by this deployment");
    }
}

void BackendOracle::require_power_access() const {
    if (!options_.expose_power) {
        throw AccessDenied("power measurement is not possible on this deployment");
    }
}

// ---- CrossbarOracle ---------------------------------------------------------

CrossbarOracle::CrossbarOracle(xbar::CrossbarNetwork hardware, OracleOptions options)
    : BackendOracle(options),
      hardware_(std::move(hardware)),
      weight_scale_(hardware_.crossbar().program().weight_scale) {}

int CrossbarOracle::query_label(const tensor::Vector& u) {
    XS_EXPECTS(u.size() == inputs());
    count_inference();
    return hardware_.classify(u);
}

tensor::Vector CrossbarOracle::query_raw(const tensor::Vector& u) {
    require_raw_access();
    XS_EXPECTS(u.size() == inputs());
    count_inference();
    return hardware_.predict(u);
}

double CrossbarOracle::query_power(const tensor::Vector& u) {
    require_power_access();
    XS_EXPECTS(u.size() == inputs());
    count_power();
    return hardware_.total_current(u) / weight_scale_;
}

std::vector<int> CrossbarOracle::query_labels(const tensor::Matrix& U) {
    XS_EXPECTS(U.cols() == inputs());
    count_inference(U.rows());
    return hardware_.classify_batch(U, thread_pool());
}

tensor::Matrix CrossbarOracle::query_raw_batch(const tensor::Matrix& U) {
    require_raw_access();
    XS_EXPECTS(U.cols() == inputs());
    count_inference(U.rows());
    return hardware_.predict_batch(U, thread_pool());
}

tensor::Vector CrossbarOracle::query_power_batch(const tensor::Matrix& U) {
    require_power_access();
    XS_EXPECTS(U.cols() == inputs());
    count_power(U.rows());
    tensor::Vector p = hardware_.total_current_batch(U, thread_pool());
    p /= weight_scale_;
    return p;
}

// ---- SoftwareOracle ---------------------------------------------------------

SoftwareOracle::SoftwareOracle(nn::SingleLayerNet net, OracleOptions options)
    : BackendOracle(options),
      net_(std::move(net)),
      column_l1_(tensor::column_abs_sums(net_.weights())) {}

int SoftwareOracle::query_label(const tensor::Vector& u) {
    XS_EXPECTS(u.size() == inputs());
    count_inference();
    return net_.classify(u);
}

tensor::Vector SoftwareOracle::query_raw(const tensor::Vector& u) {
    require_raw_access();
    XS_EXPECTS(u.size() == inputs());
    count_inference();
    return net_.predict(u);
}

double SoftwareOracle::query_power(const tensor::Vector& u) {
    require_power_access();
    XS_EXPECTS(u.size() == inputs());
    count_power();
    return tensor::dot(u, column_l1_);
}

std::vector<int> SoftwareOracle::query_labels(const tensor::Matrix& U) {
    XS_EXPECTS(U.cols() == inputs());
    count_inference(U.rows());
    return tensor::argmax_rows(net_.predict_batch(U));
}

tensor::Matrix SoftwareOracle::query_raw_batch(const tensor::Matrix& U) {
    require_raw_access();
    XS_EXPECTS(U.cols() == inputs());
    count_inference(U.rows());
    return net_.predict_batch(U);
}

tensor::Vector SoftwareOracle::query_power_batch(const tensor::Matrix& U) {
    require_power_access();
    XS_EXPECTS(U.cols() == inputs());
    count_power(U.rows());
    return tensor::matvec(U, column_l1_, thread_pool());
}

}  // namespace xbarsec::core
