#include "xbarsec/core/fig3.hpp"

#include "xbarsec/nn/sensitivity.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/stats/correlation.hpp"

namespace xbarsec::core {

Fig3Panel run_fig3_config(const data::DataSplit& split, const std::string& dataset_name,
                          const OutputConfig& output, const VictimConfig& base_config) {
    VictimConfig config = base_config;
    config.output = output;

    const TrainedVictim victim = train_victim(split, config);
    CrossbarOracle oracle = deploy_victim(victim.net, config);

    Fig3Panel panel;
    panel.label = dataset_name + "/" + output.name();
    panel.shape = split.test.shape();
    panel.sensitivity_map = nn::mean_abs_input_gradient(victim.net, split.test);
    panel.l1_map =
        sidechannel::probe_columns(oracle.power_measure_fn(), oracle.inputs()).conductance_sums;
    panel.correlation = stats::pearson(panel.sensitivity_map, panel.l1_map);
    panel.victim_test_accuracy = victim.test_accuracy;
    return panel;
}

}  // namespace xbarsec::core
