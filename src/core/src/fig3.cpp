#include "xbarsec/core/fig3.hpp"

#include "xbarsec/core/queries.hpp"
#include "xbarsec/nn/sensitivity.hpp"
#include "xbarsec/stats/correlation.hpp"

namespace xbarsec::core {

Fig3Panel run_fig3_on(Oracle& attacker, const TrainedVictim& victim, const data::Dataset& test,
                      const std::string& label) {
    Fig3Panel panel;
    panel.label = label;
    panel.shape = test.shape();
    panel.sensitivity_map = nn::mean_abs_input_gradient(victim.net, test);
    panel.l1_map = probe_columns(attacker).conductance_sums;
    panel.correlation = stats::pearson(panel.sensitivity_map, panel.l1_map);
    panel.victim_test_accuracy = victim.test_accuracy;
    return panel;
}

Fig3Panel run_fig3_config(const data::DataSplit& split, const std::string& dataset_name,
                          const OutputConfig& output, const VictimConfig& base_config) {
    VictimConfig config = base_config;
    config.output = output;

    const TrainedVictim victim = train_victim(split, config);
    CrossbarOracle oracle = deploy_victim(victim.net, config);
    return run_fig3_on(oracle, victim, split.test, dataset_name + "/" + output.name());
}

}  // namespace xbarsec::core
