#include "xbarsec/core/fig4.hpp"

#include "xbarsec/common/log.hpp"
#include "xbarsec/nn/metrics.hpp"
#include "xbarsec/sidechannel/probe.hpp"

namespace xbarsec::core {

Fig4Result run_fig4_config(const data::DataSplit& split, const std::string& dataset_name,
                           const OutputConfig& output, const VictimConfig& base_config,
                           const Fig4Options& options) {
    XS_EXPECTS(!options.strengths.empty());
    VictimConfig config = base_config;
    config.output = output;

    const TrainedVictim victim = train_victim(split, config);
    CrossbarOracle oracle = deploy_victim(victim.net, config);

    // What the victim actually computes in deployment (equals the software
    // net when the device config is ideal).
    const nn::SingleLayerNet deployed = oracle.hardware_for_evaluation().effective_network();

    // Attacker side: probe the power channel once for the 1-norm ranking.
    const tensor::Vector l1 =
        sidechannel::probe_columns(oracle.power_measure_fn(), oracle.inputs()).conductance_sums;

    const data::Dataset eval_set =
        options.eval_limit > 0 ? split.test.take(options.eval_limit) : split.test;

    Fig4Result result;
    result.label = dataset_name + "/" + output.name();
    result.strengths = options.strengths;
    result.clean_accuracy = nn::accuracy(deployed, eval_set);

    for (const attack::SinglePixelMethod method : attack::all_single_pixel_methods()) {
        Fig4Series series;
        series.method = method;
        series.accuracy.reserve(options.strengths.size());
        for (const double strength : options.strengths) {
            // Fresh deterministic stream per (method, strength) point so
            // points are independent and reproducible in isolation.
            Rng rng(options.seed ^ (static_cast<std::uint64_t>(method) << 32) ^
                    static_cast<std::uint64_t>(strength * 1024.0));
            series.accuracy.push_back(attack::evaluate_single_pixel_attack(
                deployed, eval_set, method, strength, &l1, rng));
        }
        log::info("fig4 ", result.label, " method ", to_string(method), " done");
        result.series.push_back(std::move(series));
    }
    return result;
}

Table render_fig4(const Fig4Result& result) {
    std::vector<std::string> header{"Strength"};
    for (const auto& s : result.series) header.push_back(to_string(s.method));
    Table t(std::move(header));
    for (std::size_t k = 0; k < result.strengths.size(); ++k) {
        t.begin_row();
        t.add(result.strengths[k], 1);
        for (const auto& s : result.series) t.add(s.accuracy[k], 4);
    }
    return t;
}

}  // namespace xbarsec::core
