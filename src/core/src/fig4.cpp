#include "xbarsec/core/fig4.hpp"

#include "xbarsec/attack/evaluate.hpp"
#include "xbarsec/common/log.hpp"
#include "xbarsec/core/queries.hpp"
#include "xbarsec/nn/metrics.hpp"

namespace xbarsec::core {

Fig4Result run_fig4_on(Oracle& attacker, const xbar::CrossbarNetwork& hardware,
                       const data::Dataset& eval_set, const std::string& label,
                       const Fig4Options& options) {
    XS_EXPECTS(!options.strengths.empty());
    XS_EXPECTS(eval_set.size() > 0);

    // What the victim actually computes in deployment (equals the software
    // net when the device config is ideal); the WorstCase reference method
    // takes its white-box gradients from here.
    const nn::SingleLayerNet deployed = hardware.effective_network();

    // Attacker side: probe the power channel once for the 1-norm ranking —
    // through the decorator stack, so obfuscation defenses degrade it.
    const tensor::Vector l1 = probe_columns(attacker).conductance_sums;

    Fig4Result result;
    result.label = label;
    result.strengths = options.strengths;
    result.clean_accuracy = options.evaluate_via_oracle
                                ? attack::oracle_accuracy(attacker, eval_set)
                                : nn::accuracy(deployed, eval_set);

    for (const attack::SinglePixelMethod method : attack::all_single_pixel_methods()) {
        Fig4Series series;
        series.method = method;
        series.accuracy.reserve(options.strengths.size());
        for (const double strength : options.strengths) {
            // Fresh deterministic stream per (method, strength) point so
            // points are independent and reproducible in isolation.
            Rng rng(options.seed ^ (static_cast<std::uint64_t>(method) << 32) ^
                    static_cast<std::uint64_t>(strength * 1024.0));
            const tensor::Matrix adv = attack::craft_single_pixel_batch(
                method, eval_set, strength, &l1, &deployed, rng);
            series.accuracy.push_back(
                options.evaluate_via_oracle
                    ? attack::oracle_accuracy(attacker, adv, eval_set.labels())
                    : nn::accuracy(deployed, adv, eval_set.labels()));
        }
        log::info("fig4 ", result.label, " method ", to_string(method), " done");
        result.series.push_back(std::move(series));
    }
    return result;
}

Fig4Result run_fig4_config(const data::DataSplit& split, const std::string& dataset_name,
                           const OutputConfig& output, const VictimConfig& base_config,
                           const Fig4Options& options) {
    VictimConfig config = base_config;
    config.output = output;

    const TrainedVictim victim = train_victim(split, config);
    CrossbarOracle oracle = deploy_victim(victim.net, config);

    const data::Dataset eval_set =
        options.eval_limit > 0 ? split.test.take(options.eval_limit) : split.test;
    return run_fig4_on(oracle, oracle.hardware_for_evaluation(), eval_set,
                       dataset_name + "/" + output.name(), options);
}

Table render_fig4(const Fig4Result& result) {
    std::vector<std::string> header{"Strength"};
    for (const auto& s : result.series) header.push_back(to_string(s.method));
    Table t(std::move(header));
    for (std::size_t k = 0; k < result.strengths.size(); ++k) {
        t.begin_row();
        t.add(result.strengths[k], 1);
        for (const auto& s : result.series) t.add(s.accuracy[k], 4);
    }
    return t;
}

}  // namespace xbarsec::core
