#include "xbarsec/core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"

namespace xbarsec::core {

void write_grid_csv(const std::string& path, const tensor::Vector& map,
                    const data::ImageShape& shape, std::size_t channel) {
    XS_EXPECTS(map.size() == shape.pixels());
    XS_EXPECTS(channel < shape.channels);
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(p);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    const std::size_t plane = shape.height * shape.width;
    for (std::size_t y = 0; y < shape.height; ++y) {
        for (std::size_t x = 0; x < shape.width; ++x) {
            if (x) out << ',';
            out << map[channel * plane + y * shape.width + x];
        }
        out << '\n';
    }
    if (!out) throw IoError("short write to '" + path + "'");
}

std::string render_ascii_heatmap(const tensor::Vector& map, const data::ImageShape& shape,
                                 std::size_t channel) {
    XS_EXPECTS(map.size() == shape.pixels());
    XS_EXPECTS(channel < shape.channels);
    static constexpr char kRamp[] = " .:-=+*#%@";
    constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // exclude '\0', index max

    const std::size_t plane = shape.height * shape.width;
    const double* base = map.data() + channel * plane;
    const auto [mn_it, mx_it] = std::minmax_element(base, base + plane);
    const double mn = *mn_it, mx = *mx_it;
    const double span = mx > mn ? mx - mn : 1.0;

    std::ostringstream os;
    for (std::size_t y = 0; y < shape.height; ++y) {
        for (std::size_t x = 0; x < shape.width; ++x) {
            const double t = (base[y * shape.width + x] - mn) / span;
            const auto level = static_cast<std::size_t>(t * static_cast<double>(kLevels));
            os << kRamp[std::min(level, kLevels)];
        }
        os << '\n';
    }
    return os.str();
}

double map_roughness(const tensor::Vector& map, const data::ImageShape& shape) {
    XS_EXPECTS(map.size() >= shape.height * shape.width);
    XS_EXPECTS(shape.width >= 2 && shape.height >= 1);
    const std::size_t plane = shape.height * shape.width;
    double lo = map[0], hi = map[0];
    for (std::size_t j = 0; j < plane; ++j) {
        lo = std::min(lo, map[j]);
        hi = std::max(hi, map[j]);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t y = 0; y < shape.height; ++y) {
        for (std::size_t x = 0; x + 1 < shape.width; ++x) {
            acc += std::abs(map[y * shape.width + x + 1] - map[y * shape.width + x]) / span;
            ++count;
        }
    }
    return acc / static_cast<double>(count);
}

std::string sanitize_label(const std::string& label) {
    std::string out = label;
    for (char& c : out) {
        if (c == '/' || c == '\\' || c == ' ') c = '_';
    }
    return out;
}

std::string results_dir() {
    if (const char* env = std::getenv("XBARSEC_RESULTS_DIR"); env != nullptr && *env != '\0') {
        return env;
    }
    return "bench_results";
}

}  // namespace xbarsec::core
