// Table I: correlation between loss-sensitivity magnitude and the column
// 1-norms leaked by the power side channel.
//
// For each (dataset, activation) configuration the paper reports four
// numbers, each averaged over 5 independent runs:
//   * Mean Correlation (train/test): the average over samples of
//     pearson(|∂L/∂u| for one sample, ‖W[:,j]‖₁);
//   * Correlation of Mean (train/test): pearson(E[|∂L/∂u|], ‖W[:,j]‖₁).
// The 1-norms come from probing the deployed crossbar, not from reading
// the weights — the experiment exercises the full side channel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xbarsec/common/table.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/dataset.hpp"

namespace xbarsec::core {

struct Table1Options {
    std::size_t runs = 5;
    VictimConfig victim = VictimConfig::defaults(OutputConfig::softmax_ce());
    std::uint64_t seed = 2022;

    /// Optional pool for each run's batched probe queries (runs stay
    /// serial: the row accumulates across them in run order).
    ThreadPool* pool = nullptr;
};

/// One row of Table I (already averaged over runs).
struct Table1Row {
    std::string dataset;
    std::string activation;
    double mean_corr_train = 0.0;
    double mean_corr_test = 0.0;
    double corr_of_mean_train = 0.0;
    double corr_of_mean_test = 0.0;
    double victim_test_accuracy = 0.0;  ///< extra context, not in the paper's table
};

/// Runs one (dataset, activation) configuration; `options.victim.output`
/// is overridden by `output`.
Table1Row run_table1_config(const data::DataSplit& split, const std::string& dataset_name,
                            const OutputConfig& output, const Table1Options& options);

/// Renders rows in the paper's layout.
Table render_table1(const std::vector<Table1Row>& rows);

}  // namespace xbarsec::core
