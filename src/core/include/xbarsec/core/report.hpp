// Rendering helpers for experiment outputs: CSV heat-map grids (for
// re-plotting Figure 3) and ASCII heat maps (terminal-visible shape
// checks in the benches).
#pragma once

#include <string>

#include "xbarsec/data/dataset.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::core {

/// Writes one channel of a flattened per-pixel map as an H×W CSV grid.
/// Throws IoError on write failure.
void write_grid_csv(const std::string& path, const tensor::Vector& map,
                    const data::ImageShape& shape, std::size_t channel = 0);

/// Renders one channel of a per-pixel map as an ASCII heat map
/// (min→' ', max→'@'), one text row per pixel row.
std::string render_ascii_heatmap(const tensor::Vector& map, const data::ImageShape& shape,
                                 std::size_t channel = 0);

/// Mean absolute pixel-to-neighbour difference of a (normalised) map —
/// the roughness measure behind the paper's smooth-MNIST vs rough-CIFAR
/// contrast (Figure 3 discussion).
double map_roughness(const tensor::Vector& map, const data::ImageShape& shape);

/// Filesystem-safe version of an experiment label ('/' and spaces → '_').
std::string sanitize_label(const std::string& label);

/// Directory used by the benches for CSV outputs; created on demand.
/// Resolves to "bench_results" under the current working directory unless
/// the XBARSEC_RESULTS_DIR environment variable overrides it.
std::string results_dir();

}  // namespace xbarsec::core
